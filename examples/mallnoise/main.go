// Mallnoise: robustness sweep across the paper's four background-noise
// regimes (Figure 19's setting) — the same 7 m free-hand localization run
// in a quiet room, a chatting room, a mall with music, and a busy mall.
package main

import (
	"fmt"
	"log"

	"hyperear"
	"hyperear/internal/imu"
	"hyperear/internal/stats"
)

func main() {
	regimes := []hyperear.NoiseRegime{
		hyperear.NoiseQuietRoom,
		hyperear.NoiseChatting,
		hyperear.NoiseMallOffPeak,
		hyperear.NoiseMallBusy,
	}
	const trials = 5

	fmt.Println("3D localization at 7 m, Galaxy S4 in hand, 5 trials per regime")
	for _, regime := range regimes {
		env := hyperear.MeetingRoom()
		if regime == hyperear.NoiseMallOffPeak || regime == hyperear.NoiseMallBusy {
			env = hyperear.MallCorridor()
		}
		var errs []float64
		failed := 0
		for trial := 0; trial < trials; trial++ {
			scenario := hyperear.Scenario{
				Env:            env,
				Phone:          hyperear.GalaxyS4(),
				Source:         hyperear.DefaultBeacon(),
				SpeakerPos:     hyperear.Vec3{X: 12, Y: 8, Z: 1.2},
				PhoneStart:     hyperear.Vec3{X: 5, Y: 8, Z: 1.3},
				SpeakerSkewPPM: 25,
				Protocol: hyperear.Protocol{
					SlideDist:     0.55,
					SlideDur:      1.0,
					HoldDur:       0.45,
					Slides:        10,
					Mode:          hyperear.ModeHand,
					StatureChange: 0.4,
				},
				IMU:   imu.DefaultConfig(),
				Noise: regime.Source(),
				SNRdB: regime.SNRdB(),
				Seed:  int64(100*int(regime) + trial),
			}
			session, err := hyperear.Simulate(scenario)
			if err != nil {
				log.Fatal(err)
			}
			loc, err := hyperear.NewLocalizer(scenario.Phone, scenario.Source)
			if err != nil {
				log.Fatal(err)
			}
			fix, err := loc.Locate3D(session)
			if err != nil {
				failed++
				continue
			}
			errs = append(errs, hyperear.Error2D(fix.World, session))
		}
		s := stats.Summarize(errs)
		fmt.Printf("%-14s (SNR %4.0f dB): %s", regime, regime.SNRdB(), s)
		if failed > 0 {
			fmt.Printf("  failed=%d", failed)
		}
		fmt.Println()
	}
	fmt.Println("\nexpect: voice barely hurts (filtered out), mall music costs a little,")
	fmt.Println("busy-hour broadband noise costs the most — the paper's worst case is")
	fmt.Println("a 37.2 cm mean at 3 dB SNR.")
}
