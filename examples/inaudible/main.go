// Inaudible: the paper's future-work beacon (§IX) end to end — an
// 18-21.5 kHz near-ultrasonic chirp nobody in the room can hear, captured
// at 48 kHz through a microphone with realistic high-frequency roll-off,
// localized with a response-calibrated matched filter. Run side by side
// with the audible beacon on the same geometry to see the cost of going
// silent.
package main

import (
	"fmt"
	"log"

	"hyperear"
	"hyperear/internal/imu"
	"hyperear/internal/room"
)

func main() {
	speaker := hyperear.Vec3{X: 9, Y: 6, Z: 1.2}
	user := hyperear.Vec3{X: 4, Y: 6, Z: 1.2}

	type setup struct {
		name   string
		phone  hyperear.Phone
		beacon hyperear.Beacon
	}
	setups := []setup{
		{"audible 2-6.4 kHz @44.1 kHz", hyperear.GalaxyS4(), hyperear.DefaultBeacon()},
		{"inaudible 18-21.5 kHz @48 kHz", hyperear.GalaxyS4().HiResVariant(), hyperear.InaudibleBeacon()},
	}
	for _, su := range setups {
		scenario := hyperear.Scenario{
			Env:            hyperear.MeetingRoom(),
			Phone:          su.phone,
			Source:         su.beacon,
			SpeakerPos:     speaker,
			PhoneStart:     user,
			SpeakerSkewPPM: 20,
			Protocol:       hyperear.DefaultProtocol(),
			IMU:            imu.DefaultConfig(),
			Noise:          room.WhiteNoise{},
			SNRdB:          15,
			Seed:           17,
		}
		session, err := hyperear.Simulate(scenario)
		if err != nil {
			log.Fatal(err)
		}
		loc, err := hyperear.NewLocalizer(su.phone, su.beacon)
		if err != nil {
			log.Fatal(err)
		}
		fix, err := loc.Locate2D(session)
		if err != nil {
			log.Fatalf("%s: %v", su.name, err)
		}
		fmt.Printf("%-32s distance %.2f m, error %5.1f cm (%d slides)\n",
			su.name, fix.Distance, hyperear.Error2D(fix.World, session)*100, fix.Slides)
	}
	fmt.Println("\nthe inaudible beacon pays for silence with ~8 dB of microphone")
	fmt.Println("roll-off and a narrower fractional bandwidth — still decimeter-class,")
	fmt.Println("exactly the trade the paper's future-work section anticipated.")
}
