// Quickstart: the minimal HyperEar session — simulate a speaker 5 m away
// in the paper's meeting room, run the pipeline, print the fix.
package main

import (
	"fmt"
	"log"

	"hyperear"
)

func main() {
	// A speaker (attached to, say, a lost wallet) sits 5 m from the user
	// in a 17 m × 13 m meeting room. Both are 1.2 m above the floor.
	scenario := hyperear.Scenario{
		Env:            hyperear.MeetingRoom(),
		Phone:          hyperear.GalaxyS4(),
		Source:         hyperear.DefaultBeacon(),
		SpeakerPos:     hyperear.Vec3{X: 10, Y: 6, Z: 1.2},
		PhoneStart:     hyperear.Vec3{X: 5, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20, // speaker and phone clocks disagree by 20 ppm
		Protocol:       hyperear.DefaultProtocol(),
		Seed:           1,
	}

	// Render what the phone would record: two microphone channels and a
	// 100 Hz IMU trace while the user slides the phone five times.
	session, err := hyperear.Simulate(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// Run the HyperEar pipeline: band-pass + matched-filter chirp
	// detection, SFO correction, movement segmentation, drift-corrected
	// displacement, augmented-TDoA triangulation, median aggregation.
	loc, err := hyperear.NewLocalizer(scenario.Phone, scenario.Source)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := loc.Locate2D(session)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("speaker found %.2f m away (%d slides aggregated)\n",
		fix.Distance, fix.Slides)
	fmt.Printf("estimated floor position: %v\n", fix.World)
	fmt.Printf("true floor position:      %v\n", scenario.SpeakerPos.XY())
	fmt.Printf("localization error:       %.1f cm\n",
		hyperear.Error2D(fix.World, session)*100)
}
