// Directionfind: the SDF stage in isolation — the user rolls the phone
// one full turn and the program narrates the measured TDoA as it sweeps
// the Figure 7 curve, announcing the two in-direction positions.
package main

import (
	"fmt"
	"log"
	"math"

	"hyperear"
	"hyperear/internal/core"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

func main() {
	phone := hyperear.GalaxyS4()
	beacon := hyperear.DefaultBeacon()
	user := hyperear.Vec3{X: 6, Y: 6, Z: 1.2}
	speaker := hyperear.Vec3{X: 10, Y: 9, Z: 1.2}
	trueBearing := hyperear.BroadsideYaw(user, speaker)

	sweep, err := sim.RotationSweep(user, 8)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env:       hyperear.MeetingRoom(),
		Source:    beacon,
		SourcePos: speaker,
		Phone:     phone,
		Traj:      sweep,
		Noise:     room.WhiteNoise{},
		SNRdB:     15,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = 4
	trace, err := imu.Sample(sweep, imuCfg)
	if err != nil {
		log.Fatal(err)
	}

	asp, err := core.NewASP(beacon, phone.SampleRate, core.DefaultASPConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := asp.Process(rec)
	if err != nil {
		log.Fatal(err)
	}

	yaws := imu.IntegrateYaw(trace, 0)
	yawAt := func(t float64) float64 {
		i := int(t * trace.Fs)
		if i < 0 {
			i = 0
		}
		if i >= len(yaws) {
			i = len(yaws) - 1
		}
		return yaws[i]
	}

	fmt.Printf("rolling the phone: %d beacons heard during the sweep\n", len(res.Beacons))
	fmt.Println("  yaw (°)   TDoA (ms)   hint")
	maxT := phone.MicSeparation / hyperear.MeetingRoom().SpeedOfSound() * 1000
	for i, b := range res.Beacons {
		if i%3 != 0 {
			continue
		}
		yaw := yawAt(b.T1) * 180 / math.Pi
		tdoa := b.TDoA() * 1000
		bar := hintBar(tdoa, maxT)
		fmt.Printf("  %7.1f   %+8.4f   %s\n", yaw, tdoa, bar)
	}

	sdf := core.FindDirection(res.Beacons, yawAt, +1)
	if len(sdf.Fixes) == 0 {
		log.Fatal("no in-direction position found")
	}
	fmt.Println("\nin-direction positions (TDoA zero crossings):")
	for _, f := range sdf.Fixes {
		side := "+x (right of phone)"
		if !f.PositiveX {
			side = "-x (left of phone)"
		}
		fmt.Printf("  t=%.2f s  yaw %.1f°  speaker on %s  => bearing %.1f°\n",
			f.Time, f.Yaw*180/math.Pi, side, f.BearingWorld*180/math.Pi)
	}
	fmt.Printf("true bearing: %.1f°\n", trueBearing*180/math.Pi)
}

// hintBar renders the rolling instruction a real app would display:
// "keep rolling" vs "stop here".
func hintBar(tdoaMS, maxMS float64) string {
	frac := math.Abs(tdoaMS) / maxMS
	switch {
	case frac < 0.05:
		return "<<< STOP: in direction >>>"
	case frac < 0.3:
		return "almost there"
	default:
		return "keep rolling"
	}
}
