// Objectfinder: the paper's motivating scenario end to end — find a keyring
// that fell behind furniture. The speaker is on the floor (0.5 m tripod
// stature), the user stands somewhere in the meeting room, finds the
// beacon's direction with a rotation sweep, then runs the two-stature 3D
// protocol free-hand and walks to the projected spot.
package main

import (
	"fmt"
	"log"
	"math"

	"hyperear"
	"hyperear/internal/core"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

func main() {
	env := hyperear.MeetingRoom()
	phone := hyperear.GalaxyS4()
	beacon := hyperear.DefaultBeacon()

	// Ground truth: the keys are near the stage, the user by the seats.
	keys := hyperear.Vec3{X: 13, Y: 9, Z: 0.5}
	user := hyperear.Vec3{X: 6, Y: 5, Z: 1.3}

	// --- Phase 1: direction finding (SDF) ------------------------------
	// The user holds still and rolls the phone one full turn; the SDF
	// stage watches the inter-mic TDoA for zero crossings.
	fmt.Println("phase 1: rolling the phone to find the beacon's direction...")
	sweep, err := sim.RotationSweep(user, 8)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env: env, Source: beacon, SourcePos: keys,
		Phone: phone, Traj: sweep,
		Noise: room.WhiteNoise{}, SNRdB: 15, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = 12
	trace, err := imu.Sample(sweep, imuCfg)
	if err != nil {
		log.Fatal(err)
	}
	asp, err := core.NewASP(beacon, phone.SampleRate, core.DefaultASPConfig())
	if err != nil {
		log.Fatal(err)
	}
	aspRes, err := asp.Process(rec)
	if err != nil {
		log.Fatal(err)
	}
	yaws := imu.IntegrateYaw(trace, 0)
	sdf := core.FindDirection(aspRes.Beacons, func(t float64) float64 {
		i := int(t * trace.Fs)
		if i < 0 {
			i = 0
		}
		if i >= len(yaws) {
			i = len(yaws) - 1
		}
		return yaws[i]
	}, +1)
	if len(sdf.Fixes) == 0 {
		log.Fatal("no in-direction fix found")
	}
	bearing := sdf.Fixes[0].BearingWorld
	trueBearing := hyperear.BroadsideYaw(user, keys)
	fmt.Printf("  beacon bearing: %.1f° (truth %.1f°)\n",
		bearing*180/math.Pi, trueBearing*180/math.Pi)

	// --- Phase 2: two-stature slides (full pipeline) --------------------
	fmt.Println("phase 2: sliding the phone at two statures...")
	protocol := hyperear.Protocol{
		SlideDist:     0.55,
		SlideDur:      1.0,
		HoldDur:       0.45,
		Slides:        10,
		Mode:          hyperear.ModeHand,
		StatureChange: -0.45, // crouch a little for the second stature
	}
	scenario := hyperear.Scenario{
		Env: env, Phone: phone, Source: beacon,
		SpeakerPos: keys, PhoneStart: user,
		SpeakerSkewPPM: 25,
		Protocol:       protocol,
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{}, SNRdB: 15,
		Seed: 13,
	}
	session, err := hyperear.Simulate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	loc, err := hyperear.NewLocalizer(phone, beacon)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := loc.Locate3D(session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  slant distances: L1 %.2f m, L2 %.2f m across H %.2f m\n",
		fix.L1, fix.L2, fix.H)
	fmt.Printf("  projected distance: %.2f m using %d slides\n",
		fix.Distance, fix.Slides)
	fmt.Printf("  keys are at %v on the floor map (truth %v)\n",
		fix.World, keys.XY())
	fmt.Printf("  error: %.1f cm — walk there and look down!\n",
		hyperear.Error2D(fix.World, session)*100)
}
