package hyperear

import (
	"math"
	"testing"

	"hyperear/internal/imu"
	"hyperear/internal/room"
)

// TestFacadeLocateFull3D runs the full-3D extension through the public
// API on a standard two-stature session: the single stature change plus
// the horizontal slides give enough geometric diversity to recover the
// speaker's height as well as its floor position.
func TestFacadeLocateFull3D(t *testing.T) {
	sc := Scenario{
		Env:            MeetingRoom(),
		Phone:          GalaxyS4(),
		Source:         DefaultBeacon(),
		SpeakerPos:     Vec3{X: 9, Y: 6, Z: 0.5},
		SpeakerSkewPPM: 20,
		PhoneStart:     Vec3{X: 5, Y: 6, Z: 1.3},
		Protocol: Protocol{
			SlideDist:     0.55,
			SlideDur:      1.0,
			HoldDur:       0.5,
			CalibHold:     3,
			Slides:        6,
			Mode:          ModeRuler,
			StatureChange: -0.5,
		},
		IMU:   imu.DefaultConfig(),
		Noise: room.WhiteNoise{},
		SNRdB: 18,
		Seed:  71,
	}
	s, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(sc.Phone, sc.Source)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := loc.LocateFull3D(s)
	if err != nil {
		t.Fatal(err)
	}
	// Floor-map accuracy.
	if e := fix.World.XY().Dist(sc.SpeakerPos.XY()); e > 0.6 {
		t.Errorf("full-3D planar error = %.2f m (fix %+v)", e, fix)
	}
	// Height: the novel output. Speaker at 0.5 m, phone starts at 1.3 m.
	if math.Abs(fix.World.Z-0.5) > 0.5 {
		t.Errorf("height estimate = %.2f m, want ≈0.5 m", fix.World.Z)
	}
	if fix.Observations < 10 {
		t.Errorf("observations = %d", fix.Observations)
	}
	if fix.RMSResidual > 0.05 {
		t.Errorf("rms residual = %.3f m, suspiciously large", fix.RMSResidual)
	}
}

func TestFacadeLocateFull3DNilSession(t *testing.T) {
	loc, err := NewLocalizer(GalaxyS4(), DefaultBeacon())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.LocateFull3D(nil); err == nil {
		t.Error("nil session should error")
	}
}
