// Package hyperear is a from-scratch reproduction of "HyperEar: Indoor
// Remote Object Finding with a Single Phone" (Zhu et al., IEEE ICDCS
// 2019) as a Go library.
//
// HyperEar localizes a small acoustic beacon (a cheap speaker attached to
// keys, a wallet, …) with a single commodity two-microphone smartphone and
// no synchronization channel. The phone is slid through the air; the slide
// virtually enlarges the microphone baseline, turning the ~35
// distinguishable TDoA hyperbolas of a 13.66 cm phone into a fine-grained
// "augmented TDoA" geometry whose resolution is set by the slide length.
// Displacement is recovered from the noisy onboard IMU with a
// zero-velocity-endpoint linear drift correction, and two slide statures
// project the speaker onto the floor map without knowing either height.
//
// Because the original system runs on phone hardware, this package pairs
// the full processing pipeline (package internal/core) with a
// physics-based simulator of everything the phone would sense: chirp
// beacons, room acoustics with multipath and the paper's four noise
// regimes, a two-microphone ADC with sampling-frequency offset and 16-bit
// quantization, a biased 100 Hz IMU, and human slide motion with hand
// tremor. The public API below exposes both sides:
//
//	scenario := hyperear.Scenario{
//	    Env:        hyperear.MeetingRoom(),
//	    Phone:      hyperear.GalaxyS4(),
//	    Source:     hyperear.DefaultBeacon(),
//	    SpeakerPos: hyperear.Vec3{X: 10, Y: 6, Z: 1.2},
//	    PhoneStart: hyperear.Vec3{X: 5, Y: 6, Z: 1.2},
//	    Protocol:   hyperear.DefaultProtocol(),
//	}
//	session, _ := hyperear.Simulate(scenario)
//	loc, _ := hyperear.NewLocalizer(scenario.Phone, scenario.Source)
//	fix, _ := loc.Locate2D(session)
//	fmt.Printf("speaker is %.2f m away\n", fix.Distance)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every figure.
package hyperear

import (
	"fmt"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// Re-exported value types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Vec2 is a 2D point/vector in meters.
	Vec2 = geom.Vec2
	// Vec3 is a 3D point/vector in meters.
	Vec3 = geom.Vec3
	// Phone describes a two-microphone handset (geometry, ADC, clock).
	Phone = mic.Phone
	// Beacon parameterizes the speaker's up-down chirp.
	Beacon = chirp.Params
	// Environment is a simulated indoor space.
	Environment = room.Environment
	// NoiseRegime selects one of the paper's four background conditions.
	NoiseRegime = room.Regime
	// Scenario configures a simulated session.
	Scenario = sim.Scenario
	// Session is a rendered scenario (audio + IMU + ground truth).
	Session = sim.Session
	// Protocol is the user-motion script of a session.
	Protocol = sim.Protocol
)

// Device presets from the paper's evaluation (§VII-A).
var (
	// GalaxyS4 returns the Samsung Galaxy S4 profile (D = 13.66 cm).
	GalaxyS4 = mic.GalaxyS4
	// GalaxyNote3 returns the Samsung Galaxy Note3 profile (D = 15.12 cm).
	GalaxyNote3 = mic.GalaxyNote3
	// DefaultBeacon returns the paper's 2-6.4 kHz chirp played every 200 ms.
	DefaultBeacon = chirp.Default
	// InaudibleBeacon returns the 18-21.5 kHz near-ultrasonic chirp of the
	// paper's future-work section; use it with Phone.HiResVariant() (48 kHz).
	InaudibleBeacon = chirp.Inaudible
	// MeetingRoom returns the 17 m × 13 m evaluation room.
	MeetingRoom = room.MeetingRoom
	// MallCorridor returns the 95 m × 16.5 m evaluation corridor.
	MallCorridor = room.MallCorridor
	// FreeField returns an anechoic environment.
	FreeField = room.FreeField
	// DefaultProtocol returns the standard 5×55 cm slide session.
	DefaultProtocol = sim.DefaultProtocol
	// Simulate renders a scenario into a Session.
	Simulate = sim.Run
	// BroadsideYaw computes the in-direction phone yaw for a geometry.
	BroadsideYaw = sim.BroadsideYaw
)

// Noise regimes of Figure 19.
const (
	NoiseQuietRoom   = room.RegimeQuietRoom
	NoiseChatting    = room.RegimeChatting
	NoiseMallOffPeak = room.RegimeMallOffPeak
	NoiseMallBusy    = room.RegimeMallBusy
)

// Movement modes.
const (
	// ModeRuler mounts the phone on a level slide ruler (Figs. 14-16).
	ModeRuler = sim.ModeRuler
	// ModeHand is free-hand operation with tremor (Figs. 17-19).
	ModeHand = sim.ModeHand
)

// Fix2D is a 2D localization result.
type Fix2D struct {
	// Distance is the estimated perpendicular distance from the slide
	// line to the speaker in meters (the paper's L).
	Distance float64
	// Body is the speaker estimate in the phone's start body frame:
	// X toward the speaker (the in-direction axis), Y along the slide.
	Body Vec2
	// World is the estimate mapped onto the floor map using the
	// session's start pose.
	World Vec2
	// Slides is the number of slides that survived quality gating and
	// contributed to the estimate.
	Slides int
	// Movements is the total number of segmented movements the session
	// produced, accepted or not.
	Movements int
	// Diagnostics records, reason-coded, every movement that produced no
	// fix (quality-gate rejections, missing anchor beacons, failed
	// triangulations).
	Diagnostics []SlideError
}

// Fix3D is a two-stature (projected 3D) localization result.
type Fix3D struct {
	// Distance is the projected horizontal distance L* in meters.
	Distance float64
	// World is the projected speaker estimate on the floor map.
	World Vec2
	// L1, L2 are the per-stature slant distances; H the measured stature
	// change; all in meters.
	L1, L2, H float64
	// Slides counts the contributing slides across both statures.
	Slides int
	// Movements is the total number of segmented movements the session
	// produced, accepted or not.
	Movements int
	// Diagnostics records, reason-coded, every movement that produced no
	// fix (see Fix2D.Diagnostics).
	Diagnostics []SlideError
}

// SlideError is one reason-coded per-movement rejection record (see
// core.SlideError for the reason-code vocabulary).
type SlideError = core.SlideError

// Localizer runs the HyperEar pipeline on sessions.
type Localizer struct {
	inner *core.Localizer
	cfg   core.Config
}

// DefaultConfigFor returns the paper-default pipeline configuration for
// a phone and beacon — the config NewLocalizer uses — so callers can
// adjust fields (Parallelism, Obs, ablation switches) before building
// the Localizer with NewLocalizerConfig.
func DefaultConfigFor(phone Phone, beacon Beacon) Config {
	cfg := core.DefaultConfig(beacon, phone.SampleRate, phone.MicSeparation)
	if phone.HFRolloffDB > 0 {
		cfg.ASP.TemplateGain = phone.HFGain
	}
	return cfg
}

// NewLocalizer builds a Localizer for a phone and beacon using the
// paper's default stage parameters. On phones with a high-frequency
// roll-off, the matched-filter template is calibrated to the device's
// response, which near-ultrasonic beacons require for unbiased timing.
func NewLocalizer(phone Phone, beacon Beacon) (*Localizer, error) {
	return NewLocalizerConfig(DefaultConfigFor(phone, beacon))
}

// Config exposes the full pipeline configuration for advanced use
// (ablations, alternative gates). See core.Config for the fields.
type Config = core.Config

// NewLocalizerConfig builds a Localizer from an explicit configuration.
func NewLocalizerConfig(cfg Config) (*Localizer, error) {
	inner, err := core.NewLocalizer(cfg)
	if err != nil {
		return nil, fmt.Errorf("hyperear: %w", err)
	}
	return &Localizer{inner: inner, cfg: cfg}, nil
}

// Locate2D runs the single-stature pipeline on a session and maps the
// estimate onto the floor map using the session's start pose.
func (l *Localizer) Locate2D(s *Session) (*Fix2D, error) {
	if s == nil {
		return nil, fmt.Errorf("hyperear: nil session")
	}
	res, err := l.inner.Locate2D(s.Recording, s.IMU)
	if err != nil {
		return nil, fmt.Errorf("hyperear: %w", err)
	}
	return &Fix2D{
		Distance:    res.L,
		Body:        res.Pos,
		World:       BodyToWorld(res.Pos, s),
		Slides:      len(res.Fixes),
		Movements:   len(res.Movements),
		Diagnostics: res.Diagnostics,
	}, nil
}

// Locate3D runs the two-stature pipeline on a session.
func (l *Localizer) Locate3D(s *Session) (*Fix3D, error) {
	if s == nil {
		return nil, fmt.Errorf("hyperear: nil session")
	}
	res, err := l.inner.Locate3D(s.Recording, s.IMU)
	if err != nil {
		return nil, fmt.Errorf("hyperear: %w", err)
	}
	return &Fix3D{
		Distance:    res.ProjectedDist,
		World:       BodyToWorld(res.ProjectedPos, s),
		L1:          res.L1,
		L2:          res.L2,
		H:           res.H,
		Slides:      len(res.Fixes[0]) + len(res.Fixes[1]),
		Movements:   len(res.Movements),
		Diagnostics: res.Diagnostics,
	}, nil
}

// FixFull3D is a complete relative 3D localization (the paper's §I
// extension): unlike Fix3D it also recovers the speaker's height.
type FixFull3D struct {
	// Body is the speaker estimate in the phone's start body frame
	// (x toward the speaker, y along the horizontal slide axis, z up).
	Body Vec3
	// World is the estimate mapped to world coordinates (floor map XY
	// plus absolute height).
	World Vec3
	// Observations is the number of augmented-TDoA constraints fused.
	Observations int
	// RMSResidual is the solver's goodness of fit in meters.
	RMSResidual float64
}

// LocateFull3D runs the full-3D extension on a session whose protocol
// mixes horizontal and vertical slides (see core.LocateFull3D).
func (l *Localizer) LocateFull3D(s *Session) (*FixFull3D, error) {
	if s == nil {
		return nil, fmt.Errorf("hyperear: nil session")
	}
	res, err := l.inner.LocateFull3D(s.Recording, s.IMU)
	if err != nil {
		return nil, fmt.Errorf("hyperear: %w", err)
	}
	xy := BodyToWorld(res.Pos.XY(), s)
	return &FixFull3D{
		Body:         res.Pos,
		World:        Vec3{X: xy.X, Y: xy.Y, Z: s.Scenario.PhoneStart.Z + res.Pos.Z},
		Observations: res.Observations,
		RMSResidual:  res.RMSResidual,
	}, nil
}

// LoSAssessment re-exports the core line-of-sight assessment.
type LoSAssessment = core.LoSAssessment

// Line-of-sight verdicts (see core.LoSVerdict).
const (
	LoSLikely  = core.LoSLikely
	LoSSuspect = core.LoSSuspect
	NLoSLikely = core.NLoSLikely
)

// CheckLineOfSight runs the acoustic stage only and assesses whether the
// session's evidence is consistent with a direct speaker-to-phone path
// (the paper's §IX LoS assumption). Applications should prompt the user
// to move before trusting a fix from an NLoS-likely session.
func (l *Localizer) CheckLineOfSight(s *Session) (LoSAssessment, error) {
	if s == nil {
		return LoSAssessment{}, fmt.Errorf("hyperear: nil session")
	}
	res, err := l.inner.Preprocess(s.Recording)
	if err != nil {
		return LoSAssessment{Verdict: core.NLoSLikely,
			Reasons: []string{"acoustic preprocessing failed: " + err.Error()}}, nil
	}
	dur := float64(len(s.Recording.Mic1)) / s.Recording.Fs
	return core.AssessLoS(res, l.inner.MicSeparation(), l.inner.SpeedOfSound(), dur), nil
}

// BodyToWorld maps a start-body-frame estimate onto the floor map. The
// localizer reports positions in the frame the user *believes* they
// established during direction finding; the session's believed yaw is the
// true yaw minus the (unknown to the system) residual direction error, so
// residual yaw error shows up as localization error — exactly as it would
// on a real phone.
func BodyToWorld(body Vec2, s *Session) Vec2 {
	believedYaw := s.TrueYaw - geom.Radians(s.Scenario.Protocol.YawErrDeg)
	return s.Scenario.PhoneStart.XY().Add(body.Rotate(believedYaw))
}

// Error2D returns the planar distance between a fix and the true speaker
// position, the paper's accuracy metric.
func Error2D(world Vec2, s *Session) float64 {
	return world.Dist(s.Scenario.SpeakerPos.XY())
}
