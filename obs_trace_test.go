package hyperear

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"hyperear/internal/core"
	"hyperear/internal/obs"
)

// runTraced simulates the seeded scenario and runs Locate2D with a JSONL
// sink and registry attached, returning the fix, the decoded trace, and
// the metrics snapshot.
func runTraced(t *testing.T, seed int64) (*Fix2D, []obs.Event, obs.Snapshot) {
	t.Helper()
	sc := testScenario(seed)
	s, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	reg := obs.NewRegistry()
	cfg := DefaultConfigFor(sc.Phone, sc.Source)
	cfg.Obs = obs.New(sink, reg)
	loc, err := NewLocalizerConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := loc.Locate2D(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	var events []obs.Event
	scan := bufio.NewScanner(&buf)
	for scan.Scan() {
		var e obs.Event
		if err := json.Unmarshal(scan.Bytes(), &e); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v", len(events), err)
		}
		events = append(events, e)
	}
	return fix, events, reg.Snapshot()
}

// TestTraceGoldenLocate2D pins the trace a seeded 2D run emits: one span
// per stage in pipeline order, all durations sane, and the metrics
// snapshot's slide tallies exactly accounting for every movement.
func TestTraceGoldenLocate2D(t *testing.T) {
	fix, events, snap := runTraced(t, 7)

	stages := make([]string, len(events))
	for i, e := range events {
		stages[i] = e.Stage
		if e.DurNS < 0 {
			t.Errorf("span %q has negative duration %d", e.Stage, e.DurNS)
		}
		if e.StartNS <= 0 {
			t.Errorf("span %q has start %d", e.Stage, e.StartNS)
		}
	}
	// Spans end innermost-first, so the stage order is fixed for a 2D run.
	want := []string{"asp", "msp", "pde", "ttl", "locate2d"}
	if !reflect.DeepEqual(stages, want) {
		t.Fatalf("trace stages = %v, want %v", stages, want)
	}

	// The acceptance invariant: accepted + rejected.* counters account
	// for every segmented movement exactly once.
	accepted := snap.Counters[core.MSlideAccepted]
	rejected := snap.SumPrefix(core.MSlideRejectedPrefix)
	if got, want := accepted+rejected, uint64(fix.Movements); got != want {
		t.Fatalf("accepted(%d)+rejected(%d) = %d, want %d movements\ncounters: %v",
			accepted, rejected, got, want, snap.Counters)
	}
	if accepted != uint64(fix.Slides) {
		t.Errorf("accepted = %d, want %d usable slides", accepted, fix.Slides)
	}
	if rejected != uint64(len(fix.Diagnostics)) {
		t.Errorf("rejected = %d, want %d diagnostics", rejected, len(fix.Diagnostics))
	}
	// Each stage span must also land in its duration histogram.
	for _, stage := range want {
		if h, ok := snap.Histograms["span."+stage]; !ok || h.Count != 1 {
			t.Errorf("span.%s histogram = %+v, ok=%v", stage, h, ok)
		}
	}

	// Same seed, same pipeline: a second run emits an identical span
	// sequence (durations differ; structure must not).
	_, events2, _ := runTraced(t, 7)
	stages2 := make([]string, len(events2))
	for i, e := range events2 {
		stages2[i] = e.Stage
	}
	if !reflect.DeepEqual(stages, stages2) {
		t.Fatalf("trace not reproducible: %v vs %v", stages, stages2)
	}
}

// TestObsConcurrentPipelines shares one sink+registry across concurrent
// localizations that each use an internal worker pool — `make check`
// runs this under the race detector, which is the point.
func TestObsConcurrentPipelines(t *testing.T) {
	sc := testScenario(7)
	s, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.MemSink{}
	reg := obs.NewRegistry()
	o := obs.New(sink, reg)

	const runs = 4
	movements := make([]int, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultConfigFor(sc.Phone, sc.Source)
			cfg.Parallelism = 2
			cfg.Obs = o
			loc, err := NewLocalizerConfig(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			fix, err := loc.Locate2D(s)
			if err != nil {
				t.Error(err)
				return
			}
			movements[i] = fix.Movements
		}(i)
	}
	wg.Wait()

	total := 0
	for _, m := range movements {
		total += m
	}
	snap := reg.Snapshot()
	accepted := snap.Counters[core.MSlideAccepted]
	rejected := snap.SumPrefix(core.MSlideRejectedPrefix)
	if got := accepted + rejected; got != uint64(total) {
		t.Fatalf("accepted(%d)+rejected(%d) = %d across %d runs, want %d movements",
			accepted, rejected, got, runs, total)
	}
	if got := len(sink.Events()); got != runs*5 {
		t.Fatalf("sink saw %d spans, want %d (5 per run)", got, runs*5)
	}
}
