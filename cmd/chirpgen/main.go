// Command chirpgen writes the HyperEar beacon waveform to a 16-bit mono
// PCM WAV file, so the chirp can be inspected in an audio editor or even
// played through a real speaker.
//
// Usage:
//
//	chirpgen [-out beacon.wav] [-seconds 2] [-fs 44100]
//	         [-low 2000] [-high 6400] [-duration 0.04] [-period 0.2]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hyperear/internal/chirp"
	"hyperear/internal/sessionio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chirpgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chirpgen", flag.ContinueOnError)
	out := fs.String("out", "beacon.wav", "output WAV path")
	seconds := fs.Float64("seconds", 2, "length of audio to write")
	rate := fs.Float64("fs", 44100, "sample rate in Hz")
	low := fs.Float64("low", 2000, "chirp start frequency (Hz)")
	high := fs.Float64("high", 6400, "chirp apex frequency (Hz)")
	duration := fs.Float64("duration", 0.04, "chirp duration (s)")
	period := fs.Float64("period", 0.2, "beacon period (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Guard the free-form numeric flags before any arithmetic: a zero,
	// negative, or NaN rate (the !(x > 0) form catches NaN too) would
	// otherwise produce an empty or corrupt WAV header, and the chirp must
	// fit under Nyquist to be playable at all.
	if !(*rate > 0) || math.IsInf(*rate, 0) {
		return fmt.Errorf("sample rate %v Hz invalid (need a finite rate > 0)", *rate)
	}
	if !(*seconds > 0) || math.IsInf(*seconds, 0) {
		return fmt.Errorf("length %v s invalid (need a finite duration > 0)", *seconds)
	}
	p := chirp.Params{Low: *low, High: *high, Duration: *duration, Period: *period, Amplitude: 0.8}
	if err := p.Validate(); err != nil {
		return err
	}
	if *rate < 2**high {
		return fmt.Errorf("sample rate %v Hz below Nyquist for a %v Hz chirp (need ≥ %v)",
			*rate, *high, 2**high)
	}
	n := int(*seconds * *rate)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = p.Eval(float64(i) / *rate)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sessionio.WriteWAV(f, int(*rate), samples); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples (%.1f s, %d beacons) to %s\n",
		n, *seconds, int(*seconds / *period), *out)
	return nil
}
