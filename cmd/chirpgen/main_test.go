package main

import (
	"os"
	"path/filepath"
	"testing"

	"hyperear/internal/sessionio"
)

func TestRunWritesPlayableWAV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "beacon.wav")
	if err := run([]string{"-out", out, "-seconds", "0.5"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rate, chans, err := sessionio.ReadWAV(f)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 44100 || len(chans) != 1 {
		t.Fatalf("rate=%d channels=%d", rate, len(chans))
	}
	if got, want := len(chans[0]), int(0.5*44100); got != want {
		t.Errorf("samples = %d, want %d", got, want)
	}
	// The first chirp occupies the first 40 ms: energy present.
	var energy float64
	for _, v := range chans[0][:1764] {
		energy += v * v
	}
	if energy < 1 {
		t.Errorf("chirp energy %v suspiciously low", energy)
	}
	// Inter-beacon silence.
	var silence float64
	for _, v := range chans[0][3000:8000] {
		silence += v * v
	}
	if silence > 0.01 {
		t.Errorf("inter-beacon energy %v, want ≈0", silence)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	out := filepath.Join(t.TempDir(), "beacon.wav")
	if err := run([]string{"-out", out, "-low", "9000", "-high", "2000"}); err == nil {
		t.Error("inverted band should error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should error")
	}
	// Regression: a zero, negative, or NaN sample rate used to reach the
	// WAV writer and produce a corrupt file; a sub-Nyquist rate produced
	// an aliased chirp.
	for _, rate := range []string{"0", "-44100", "NaN", "+Inf", "8000"} {
		if err := run([]string{"-out", out, "-fs", rate}); err == nil {
			t.Errorf("-fs %s should error", rate)
		}
	}
	if err := run([]string{"-out", out, "-seconds", "0"}); err == nil {
		t.Error("-seconds 0 should error")
	}
}
