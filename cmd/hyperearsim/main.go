// Command hyperearsim regenerates the paper's figures on the simulated
// substrate and prints text tables and CDF plots.
//
// Usage:
//
//	hyperearsim [-trials N] [-seed S] [-fig fig15,fig19] [-cdf] [-list]
//	            [-pprof :6060] [-trace out.jsonl] [-metrics]
//
// With no -fig it runs every figure plus the ablation suite (this takes a
// few minutes at the default 10 trials per condition).
//
// -pprof serves net/http/pprof and expvar (/debug/vars, including the
// live metrics registry) on the given address for the duration of the
// run — point `go tool pprof http://localhost:6060/debug/pprof/profile`
// at it while figures render. -trace writes per-trial spans as JSONL;
// -metrics prints the counter snapshot when the run ends.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperear/internal/experiment"
	"hyperear/internal/obs"
)

var runners = map[string]func(experiment.Options) experiment.Figure{
	"fig3":          experiment.RunFig3,
	"fig4":          experiment.RunFig4,
	"fig7":          experiment.RunFig7,
	"fig8":          experiment.RunFig8,
	"fig9":          experiment.RunFig9,
	"fig14":         experiment.RunFig14,
	"fig15":         experiment.RunFig15,
	"fig16":         experiment.RunFig16,
	"fig17":         experiment.RunFig17,
	"fig18":         experiment.RunFig18,
	"fig19":         experiment.RunFig19,
	"abl-sfo":       experiment.RunAblationSFO,
	"abl-drift":     experiment.RunAblationDrift,
	"abl-direction": experiment.RunAblationDirection,
	"abl-agg":       experiment.RunAblationAggregation,
	"cmp-direction": experiment.RunDirectionComparison,
	"cmp-full3d":    experiment.RunFull3DComparison,
	"cmp-baseline":  experiment.RunBaselineComparison,
}

var order = []string{
	"fig3", "fig4", "fig7", "fig8", "fig9",
	"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
	"abl-sfo", "abl-drift", "abl-direction", "abl-agg", "cmp-direction", "cmp-full3d", "cmp-baseline",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperearsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyperearsim", flag.ContinueOnError)
	trials := fs.Int("trials", 10, "sessions per condition")
	seed := fs.Int64("seed", 1, "random seed")
	figList := fs.String("fig", "", "comma-separated figure ids (default: all)")
	cdf := fs.Bool("cdf", false, "also print text CDF plots")
	list := fs.Bool("list", false, "list available figures and exit")
	par := fs.Int("parallel", 0, "max concurrent sessions (0 = GOMAXPROCS)")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof and /debug/vars on this address during the run (e.g. :6060)")
	trace := fs.String("trace", "", "write a JSONL per-trial span trace to this file")
	metrics := fs.Bool("metrics", false, "print the metrics snapshot when the run ends")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return nil
	}
	opt := experiment.Options{Trials: *trials, Seed: *seed, Parallelism: *par}

	// Observability: the registry feeds both -metrics and the -pprof
	// server's /debug/vars, so any of the three flags enables it.
	var sink obs.Sink
	var reg *obs.Registry
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONLSink(f)
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "hyperearsim: trace write:", err)
			}
		}()
		sink = jsonl
	}
	if *metrics || *pprofAddr != "" || *trace != "" {
		reg = obs.NewRegistry()
		reg.PublishExpvar("hyperear")
	}
	opt.Obs = obs.New(sink, reg)
	if *pprofAddr != "" {
		srv, addr, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	ids := order
	if *figList != "" {
		ids = strings.Split(*figList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", id)
		}
		fig := runner(opt)
		fmt.Print(fig.String())
		if *cdf {
			fmt.Print(fig.CDFReport(1.0))
		}
		fmt.Println()
	}
	if *trace != "" {
		fmt.Printf("trace written to %s\n", *trace)
	}
	if *metrics {
		fmt.Print("--- metrics ---\n", reg.Snapshot().String())
	}
	return nil
}
