package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunnersCoverOrder(t *testing.T) {
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("order lists %q but runners lacks it", id)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("order has %d entries, runners %d", len(order), len(runners))
	}
}

func TestSingleCheapFigure(t *testing.T) {
	// fig4 is analytic and fast — exercise the full CLI path.
	if err := run([]string{"-fig", "fig4", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFFlagOnCheapFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Monte-Carlo figure")
	}
	if err := run([]string{"-fig", "fig3", "-trials", "1", "-cdf"}); err != nil {
		t.Fatal(err)
	}
}
