package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-phone", "pixel"}); err == nil || !strings.Contains(err.Error(), "unknown -phone") {
		t.Fatalf("bad phone: got %v", err)
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag must error")
	}
}

// TestSIGTERMDrains boots the daemon on an ephemeral port, verifies it
// serves, sends the process SIGTERM (the handler is installed before the
// listener opens, so self-signaling is safe), and requires run to return
// cleanly within the drain budget.
func TestSIGTERMDrains(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s", "-trace", trace})
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}

	base := fmt.Sprintf("http://%s", addr)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("trace file not written: %v", err)
	}
}
