// Command hyperearservd serves the HyperEar localization pipeline over
// HTTP: POST a recorded session bundle to /v1/locate, or stream audio
// chunk by chunk through /v1/sessions for live beacon-detection feedback
// before the final localization. See DESIGN.md "Service architecture"
// for the endpoint table, admission model and shutdown sequence.
//
// Usage:
//
//	hyperearservd [-addr :8787] [-phone s4|note3] [-workers N] [-queue N]
//	              [-timeout 30s] [-max-body 64MiB-as-bytes]
//	              [-session-idle 2m] [-max-sessions 64]
//	              [-data-dir /data] [-fsync always|none|100ms]
//	              [-wal-snapshot bytes]
//	              [-trace out.jsonl] [-debug-addr :6060]
//	              [-access-log path|-] [-slo-target 1s] [-slo-objective 0.99]
//	              [-metrics-window 5m]
//
// The server sheds load instead of queueing unboundedly: past
// workers+queue admitted localizations, requests get 429 with
// Retry-After. SIGINT/SIGTERM triggers a graceful drain: readiness
// flips to 503, in-flight work finishes (bounded by -drain-timeout),
// then sessions are evicted and the trace sink is flushed.
//
// With -data-dir set, streaming sessions are durable: every mutation is
// appended to a CRC-framed write-ahead log under the directory
// (compacted into snapshots as it grows), and a restart on the same
// directory resumes every in-flight session — same ids, same
// accumulated audio, bit-identical localization. -fsync selects the
// append durability policy; the drain sequence flushes the WAL before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperear"
	"hyperear/internal/core"
	"hyperear/internal/obs"
	"hyperear/internal/server"
	"hyperear/internal/sessionstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperearservd:", err)
		os.Exit(1)
	}
}

// onListen, when non-nil, receives the bound listen address once the
// socket is open and signals are being handled — the hook the SIGTERM
// drain test synchronizes on.
var onListen func(addr net.Addr)

func run(args []string) error {
	fs := flag.NewFlagSet("hyperearservd", flag.ContinueOnError)
	addr := fs.String("addr", ":8787", "listen address")
	phoneName := fs.String("phone", "s4", "default phone profile: s4 or note3 (per-request meta may override geometry)")
	workers := fs.Int("workers", 0, "concurrent localizations (0 = pipeline parallelism default)")
	queue := fs.Int("queue", 0, "admitted-but-waiting requests beyond workers (0 = 2×workers)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request pipeline deadline")
	maxBody := fs.Int64("max-body", 64<<20, "max request body bytes")
	sessionIdle := fs.Duration("session-idle", 2*time.Minute, "evict streaming sessions idle this long")
	maxSessions := fs.Int("max-sessions", 64, "max live streaming sessions")
	dataDir := fs.String("data-dir", "", "persist streaming sessions to this directory (WAL + snapshots); empty = in-memory only")
	fsyncPolicy := fs.String("fsync", "always", "session WAL fsync policy: always, none, or a flush interval like 100ms")
	walSnapshot := fs.Int64("wal-snapshot", 8<<20, "compact the session WAL into a snapshot past this many bytes (negative disables)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	trace := fs.String("trace", "", "write a JSONL stage-span trace to this file")
	debugAddr := fs.String("debug-addr", "", "serve pprof + expvar on this address (e.g. :6060)")
	accessLog := fs.String("access-log", "", "write one JSON line per request to this file (\"-\" for stdout)")
	sloTarget := fs.Duration("slo-target", 0, "per-request latency target for /debug/slo (0 = 1s)")
	sloObjective := fs.Float64("slo-objective", 0, "SLO attainment objective in (0,1] (0 = 0.99)")
	metricsWindow := fs.Duration("metrics-window", 0, "rolling latency window span (0 = 5m, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if math.IsNaN(*sloObjective) || math.IsInf(*sloObjective, 0) || *sloObjective < 0 || *sloObjective > 1 {
		return fmt.Errorf("-slo-objective %v out of range (want 0 < o <= 1, or 0 for the default)", *sloObjective)
	}

	var phone hyperear.Phone
	switch *phoneName {
	case "s4":
		phone = hyperear.GalaxyS4()
	case "note3":
		phone = hyperear.GalaxyNote3()
	default:
		return fmt.Errorf("unknown -phone %q (want s4 or note3)", *phoneName)
	}

	reg := obs.NewRegistry()
	var sink obs.Sink
	var jsonl *obs.JSONLSink
	var traceFile *os.File
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		traceFile = f
		jsonl = obs.NewJSONLSink(f)
		sink = jsonl
	}
	o := obs.New(sink, reg)

	var accessWriter io.Writer
	var accessFile *os.File
	switch *accessLog {
	case "":
	case "-":
		accessWriter = os.Stdout
	default:
		f, err := os.Create(*accessLog)
		if err != nil {
			return err
		}
		accessFile = f
		accessWriter = f
	}

	// The store opens (and recovers) before the server constructs, so
	// New's boot-time replay sees every persisted session; a store that
	// cannot open is fatal rather than silently non-durable.
	var store *sessionstore.FileStore
	if *dataDir != "" {
		policy, interval, err := sessionstore.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		store, err = sessionstore.Open(*dataDir, sessionstore.Options{
			Fsync:         policy,
			FsyncInterval: interval,
			SnapshotBytes: *walSnapshot,
			Obs:           o,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hyperearservd: session store in %s (fsync %s)\n", *dataDir, policy)
	}

	pipeCfg := core.DefaultConfig(hyperear.DefaultBeacon(), phone.SampleRate, phone.MicSeparation)
	pipeCfg.Obs = o
	srvCfg := server.Config{
		Workers:            *workers,
		Queue:              *queue,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		SessionIdleTimeout: *sessionIdle,
		MaxSessions:        *maxSessions,
		MetricsWindow:      *metricsWindow,
		SLOTarget:          *sloTarget,
		SLOObjective:       *sloObjective,
		AccessLog:          accessWriter,
		Pipeline:           pipeCfg,
		Obs:                o,
	}
	if store != nil {
		// Assigned only when non-nil so a disabled store stays a nil
		// interface, not a typed-nil *FileStore.
		srvCfg.Store = store
	}
	srv := server.New(srvCfg)

	if *debugAddr != "" {
		reg.PublishExpvar("hyperear")
		dbg, bound, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "hyperearservd: debug (pprof, expvar) on %s\n", bound)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hyperearservd: listening on %s\n", ln.Addr())
	if onListen != nil {
		onListen(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain sequence: stop admitting (readyz 503, queued waiters shed),
	// let in-flight handlers finish within the drain budget, then evict
	// the remaining sessions and flush the session WAL and trace sink.
	// Shutdown evictions are deliberately not persisted — the sessions
	// stay in the store so the next boot on the same -data-dir resumes
	// them.
	fmt.Fprintln(os.Stderr, "hyperearservd: draining")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = hs.Shutdown(dctx)
	srv.FinishShutdown()
	if store != nil {
		if werr := store.Flush(); werr != nil && err == nil {
			err = werr
		}
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if jsonl != nil {
		// The sink swallows write errors per event to keep span emission
		// non-blocking; surface the sticky first error at shutdown so a
		// full disk does not silently produce a truncated trace.
		if werr := jsonl.Err(); werr != nil {
			fmt.Fprintln(os.Stderr, "hyperearservd: trace write:", werr)
		}
	}
	if traceFile != nil {
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
	}
	if accessFile != nil {
		if cerr := accessFile.Close(); err == nil {
			err = cerr
		}
	}
	fmt.Fprintf(os.Stderr, "hyperearservd: stopped\n%s", reg.Snapshot().String())
	return err
}
