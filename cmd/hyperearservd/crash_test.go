package main

// Crash-recovery soak: the daemon is SIGKILLed between acknowledged
// session mutations and restarted on the same -data-dir; every
// acknowledged byte must survive, and the final localization must be
// bit-identical to an uninterrupted control run. The daemon runs as a
// child process (the test binary re-execs itself via TestMain) so the
// kill is a real SIGKILL — no deferred flushes, no atexit handlers.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sessionio"
	"hyperear/internal/sim"
)

const (
	childEnv = "HYPEREARSERVD_CHILD"
	argsEnv  = "HYPEREARSERVD_ARGS"
)

// TestMain re-execs the test binary as the daemon itself when the child
// marker is set: the soak needs a separate process it can SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		args := strings.Split(os.Getenv(argsEnv), "\n")
		if err := run(args); err != nil {
			fmt.Fprintln(os.Stderr, "hyperearservd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashDir picks the durable directory for the soak. CI sets
// HYPEREAR_CRASH_DIR to a workspace path so the WAL + snapshot survive
// the test run and upload as an artifact when the job fails.
func crashDir(t *testing.T) string {
	t.Helper()
	if d := os.Getenv("HYPEREAR_CRASH_DIR"); d != "" {
		p := filepath.Join(d, t.Name())
		if err := os.RemoveAll(p); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		return p
	}
	return t.TempDir()
}

// daemon is one child hyperearservd process.
type daemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	base    string        // http://host:port
	exited  chan struct{} // closed once the child is reaped
	waitErr error         // cmd.Wait result; valid after exited closes
}

// startDaemon spawns the daemon with the given flags and waits for its
// listen line on stderr.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"=1", argsEnv+"="+strings.Join(args, "\n"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, exited: make(chan struct{})}
	go func() {
		d.waitErr = cmd.Wait()
		close(d.exited)
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		const marker = "hyperearservd: listening on "
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[daemon %d] %s", cmd.Process.Pid, line)
			if rest, ok := strings.CutPrefix(line, marker); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-d.exited:
		t.Fatalf("daemon exited before listening: %v", d.waitErr)
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never reported its listen address")
	}
	// Safe after any exit path: Kill on a reaped process just errors, and
	// the exited channel stays closed for repeat waits.
	t.Cleanup(func() { cmd.Process.Kill(); <-d.exited })
	return d
}

// kill SIGKILLs the daemon — no drain, no WAL flush beyond what fsync
// policy already made durable — and reaps it.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	<-d.exited
}

// stop SIGTERMs the daemon and requires a clean drained exit.
func (d *daemon) stop() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	select {
	case <-d.exited:
		if d.waitErr != nil {
			d.t.Fatalf("daemon drain exit: %v", d.waitErr)
		}
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		d.t.Fatal("daemon did not drain after SIGTERM")
	}
}

// soakSession lazily renders the one simulated session the soak drives
// through the daemons (same scenario family as the server tests: two
// ruler slides, enough for beacon fixes).
var soakSession = sync.OnceValues(func() (*sim.Session, error) {
	phone := mic.GalaxyS4()
	return sim.Run(sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          phone,
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 8, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 25,
		PhoneStart:     geom.Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol: sim.Protocol{
			SlideDist: 0.55,
			SlideDur:  1.0,
			HoldDur:   0.45,
			Slides:    2,
			Mode:      sim.ModeRuler,
		},
		IMU:   imu.DefaultConfig(),
		Noise: room.WhiteNoise{},
		SNRdB: 18,
		Seed:  7,
	})
})

func soakPCMChunks(s *sim.Session) [][]byte {
	const chunkSamples = 65536
	var chunks [][]byte
	for at := 0; at < len(s.Recording.Mic1); at += chunkSamples {
		end := at + chunkSamples
		if end > len(s.Recording.Mic1) {
			end = len(s.Recording.Mic1)
		}
		m1, m2 := s.Recording.Mic1[at:end], s.Recording.Mic2[at:end]
		out := make([]byte, 4*len(m1))
		for i := range m1 {
			binary.LittleEndian.PutUint16(out[i*4:], uint16(int16(clampPCM(m1[i]))))
			binary.LittleEndian.PutUint16(out[i*4+2:], uint16(int16(clampPCM(m2[i]))))
		}
		chunks = append(chunks, out)
	}
	return chunks
}

func clampPCM(v float64) int32 {
	s := int32(v * 32767)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return s
}

func soakPost(t *testing.T, url, contentType string, body []byte, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, out)
	}
	return out
}

func soakCreate(t *testing.T, base string, meta []byte) string {
	t.Helper()
	body := soakPost(t, base+"/v1/sessions", "application/json", meta, http.StatusCreated)
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("create response %q: %v", body, err)
	}
	return created.ID
}

// soakFinish posts the IMU trace and runs the final locate, returning
// the raw locate response bytes.
func soakFinish(t *testing.T, base, id string, imuCSV []byte) []byte {
	t.Helper()
	soakPost(t, base+"/v1/sessions/"+id+"/imu", "text/csv", imuCSV, http.StatusNoContent)
	return soakPost(t, base+"/v1/sessions/"+id+"/locate", "", nil, http.StatusOK)
}

// TestCrashRecoverySoak is the durability acceptance gate: a daemon on a
// WAL-backed store is SIGKILLed after session create and between every
// acknowledged audio chunk, restarted on the same directory each time,
// and finally restarted once more through a graceful SIGTERM drain. The
// resumed session's locate must match an uninterrupted in-memory control
// run byte for byte.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak spawns daemons; skipped in -short")
	}
	s, err := soakSession()
	if err != nil {
		t.Fatal(err)
	}
	chunks := soakPCMChunks(s)
	if len(chunks) < 2 {
		t.Fatalf("soak session renders %d chunks, need >= 2 for a mid-stream kill", len(chunks))
	}
	meta := []byte(fmt.Sprintf(`{"sampleRateHz":%g,"micSeparationM":%g}`,
		s.Scenario.Phone.SampleRate, s.Scenario.Phone.MicSeparation))
	var imuBuf bytes.Buffer
	if err := sessionio.WriteIMU(&imuBuf, s.IMU); err != nil {
		t.Fatal(err)
	}

	// Control: one uninterrupted daemon, no store.
	ctl := startDaemon(t, "-addr", "127.0.0.1:0")
	ctlID := soakCreate(t, ctl.base, meta)
	for _, chunk := range chunks {
		soakPost(t, ctl.base+"/v1/sessions/"+ctlID+"/audio", "application/octet-stream", chunk, http.StatusOK)
	}
	want := soakFinish(t, ctl.base, ctlID, imuBuf.Bytes())
	ctl.stop()

	// Interrupted run: durable store, fsync on every append so an
	// acknowledged response implies the record is on disk.
	dir := crashDir(t)
	durableArgs := []string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-fsync", "always"}

	d := startDaemon(t, durableArgs...)
	id := soakCreate(t, d.base, meta)

	// Kill #0: right after create — the emptiest possible recovery.
	d.kill()
	d = startDaemon(t, durableArgs...)

	for i, chunk := range chunks {
		soakPost(t, d.base+"/v1/sessions/"+id+"/audio", "application/octet-stream", chunk, http.StatusOK)
		if i < len(chunks)-1 {
			// Kill between acknowledged chunks; the restarted daemon must
			// resume the session with every acknowledged sample intact (a
			// 404 on the next append means recovery lost it).
			d.kill()
			d = startDaemon(t, durableArgs...)
		}
	}

	// One graceful restart too: shutdown evictions are not persisted, so
	// a drained daemon's sessions also resume.
	d.stop()
	d = startDaemon(t, durableArgs...)

	got := soakFinish(t, d.base, id, imuBuf.Bytes())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered locate differs from uninterrupted control run\n got: %s\nwant: %s", got, want)
	}
	var res struct {
		Fixes int `json:"fixes"`
	}
	if err := json.Unmarshal(got, &res); err != nil || res.Fixes == 0 {
		t.Fatalf("recovered locate produced no fixes (%v): %s", err, got)
	}
	d.stop()
}
