package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkPipelineLocate2D-8   \t      12\t  95123456 ns/op\t 8123456 B/op\t   40321 allocs/op")
	if !ok {
		t.Fatal("expected benchmark line to parse")
	}
	if r.Name != "BenchmarkPipelineLocate2D-8" || r.Iterations != 12 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 95123456 || r.BytesPerOp != 8123456 || r.AllocsPerOp != 40321 {
		t.Fatalf("metrics = %v %v %v", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCorrelate-4 100 250000 ns/op 812.5 MB/s 64 B/op 2 allocs/op")
	if !ok {
		t.Fatal("expected line to parse")
	}
	if r.Extra["MB/s"] != 812.5 {
		t.Fatalf("extra = %v", r.Extra)
	}
}

func writeReport(t *testing.T, path string, results []Result) {
	t.Helper()
	raw, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	fresh := filepath.Join(dir, "fresh.json")
	writeReport(t, base, []Result{
		{Name: "BenchmarkPipelineLocate2D-8", NsPerOp: 100_000_000, Iterations: 10},
		{Name: "BenchmarkDetect-8", NsPerOp: 1_000_000, Iterations: 100},
	})
	// Seeded >30% slowdown on one hot path; the other within tolerance
	// (different -procs suffix must still match).
	writeReport(t, fresh, []Result{
		{Name: "BenchmarkPipelineLocate2D-4", NsPerOp: 140_000_000, Iterations: 10},
		{Name: "BenchmarkDetect-4", NsPerOp: 1_200_000, Iterations: 100},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", base, "-new", fresh, "-tolerance", "0.30"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("seeded 40%% regression must fail the compare; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkPipelineLocate2D") {
		t.Errorf("error must name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkDetect") {
		t.Errorf("in-tolerance benchmark must not be listed as a regression: %v", err)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	fresh := filepath.Join(dir, "fresh.json")
	writeReport(t, base, []Result{
		{Name: "BenchmarkDetect-8", NsPerOp: 1_000_000, Iterations: 100},
		{Name: "BenchmarkOnlyInBaseline-8", NsPerOp: 5, Iterations: 1},
	})
	writeReport(t, fresh, []Result{
		{Name: "BenchmarkDetect-8", NsPerOp: 1_290_000, Iterations: 100},
		{Name: "BenchmarkOnlyInFresh-8", NsPerOp: 7, Iterations: 1},
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", base, "-new", fresh}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("29%% slowdown within default 30%% tolerance must pass: %v\n%s", err, out.String())
	}
	// Unmatched benchmarks are reported, never fatal.
	if !strings.Contains(out.String(), "BenchmarkOnlyInFresh") || !strings.Contains(out.String(), "BenchmarkOnlyInBaseline") {
		t.Errorf("unmatched benchmarks must be listed:\n%s", out.String())
	}
}

func TestCompareErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeReport(t, base, []Result{{Name: "BenchmarkA-8", NsPerOp: 1, Iterations: 1}})
	other := filepath.Join(dir, "other.json")
	writeReport(t, other, []Result{{Name: "BenchmarkB-8", NsPerOp: 1, Iterations: 1}})

	if err := run([]string{"-compare", base}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("-compare without -new must error")
	}
	if err := run([]string{"-compare", base, "-new", filepath.Join(dir, "missing.json")},
		strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("missing fresh report must error")
	}
	if err := run([]string{"-compare", base, "-new", other}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("zero benchmarks in common must error")
	}
	if err := run([]string{"-compare", base, "-new", base, "-tolerance", "NaN"},
		strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("NaN tolerance must be rejected")
	}
	if err := run([]string{"-compare", base, "-new", base, "-alloc-tolerance", "-1"},
		strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("negative alloc tolerance must be rejected")
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	fresh := filepath.Join(dir, "fresh.json")
	writeReport(t, base, []Result{
		// A reintroduced per-call buffer: 75 -> 115 allocs/op while
		// wall-clock stays flat, the exact failure ns/op gating misses.
		{Name: "BenchmarkPipelineLocate2D-8", NsPerOp: 100_000_000, AllocsPerOp: 75, Iterations: 10},
		// Small-count benchmark drifting by one alloc: inside the
		// absolute slack, must pass.
		{Name: "BenchmarkDetect-8", NsPerOp: 1_000_000, AllocsPerOp: 3, Iterations: 100},
		// Baseline captured without -benchmem: exempt from the gate.
		{Name: "BenchmarkNoMem-8", NsPerOp: 500, AllocsPerOp: 0, Iterations: 100},
	})
	writeReport(t, fresh, []Result{
		{Name: "BenchmarkPipelineLocate2D-8", NsPerOp: 101_000_000, AllocsPerOp: 115, Iterations: 10},
		{Name: "BenchmarkDetect-8", NsPerOp: 1_000_000, AllocsPerOp: 4, Iterations: 100},
		{Name: "BenchmarkNoMem-8", NsPerOp: 500, AllocsPerOp: 40, Iterations: 100},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", base, "-new", fresh}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("seeded alloc regression must fail the compare; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkPipelineLocate2D") || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("error must name the alloc-regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkDetect") {
		t.Errorf("one-alloc drift inside slack must not be listed: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkNoMem") {
		t.Errorf("zero-alloc baseline (no -benchmem) must be exempt: %v", err)
	}
}

func TestCompareAllocToleranceFlag(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	fresh := filepath.Join(dir, "fresh.json")
	writeReport(t, base, []Result{
		{Name: "BenchmarkPipelineLocate2D-8", NsPerOp: 100, AllocsPerOp: 100, Iterations: 10},
	})
	writeReport(t, fresh, []Result{
		{Name: "BenchmarkPipelineLocate2D-8", NsPerOp: 100, AllocsPerOp: 140, Iterations: 10},
	})
	if err := run([]string{"-compare", base, "-new", fresh}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("40% alloc growth must fail the default 10% gate")
	}
	if err := run([]string{"-compare", base, "-new", fresh, "-alloc-tolerance", "0.50"},
		strings.NewReader(""), &bytes.Buffer{}); err != nil {
		t.Errorf("40%% growth must pass a 50%% alloc tolerance: %v", err)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkDetect-8":      "BenchmarkDetect",
		"BenchmarkDetect-16":     "BenchmarkDetect",
		"BenchmarkDetect":        "BenchmarkDetect",
		"BenchmarkFFT/n=1024-8":  "BenchmarkFFT/n=1024",
		"BenchmarkOdd-name":      "BenchmarkOdd-name",
		"BenchmarkTrailingDash-": "BenchmarkTrailingDash-",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \thyperear\t12.345s",
		"goos: linux",
		"BenchmarkBroken notanumber 1 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q should not parse as a benchmark", line)
		}
	}
}
