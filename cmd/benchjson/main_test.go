package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkPipelineLocate2D-8   \t      12\t  95123456 ns/op\t 8123456 B/op\t   40321 allocs/op")
	if !ok {
		t.Fatal("expected benchmark line to parse")
	}
	if r.Name != "BenchmarkPipelineLocate2D-8" || r.Iterations != 12 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 95123456 || r.BytesPerOp != 8123456 || r.AllocsPerOp != 40321 {
		t.Fatalf("metrics = %v %v %v", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCorrelate-4 100 250000 ns/op 812.5 MB/s 64 B/op 2 allocs/op")
	if !ok {
		t.Fatal("expected line to parse")
	}
	if r.Extra["MB/s"] != 812.5 {
		t.Fatalf("extra = %v", r.Extra)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \thyperear\t12.345s",
		"goos: linux",
		"BenchmarkBroken notanumber 1 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q should not parse as a benchmark", line)
		}
	}
}
