// Command benchjson converts `go test -bench -benchmem` output into a
// JSON benchmark report, and compares two reports for regressions.
//
// Capture mode reads the benchmark run from stdin, echoes every line to
// stdout (so the run stays visible in the terminal), and writes the
// parsed results to -out:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-08-05.json
//
// Compare mode is the CI regression guard: it reads a baseline report
// and a fresh one and exits non-zero when any benchmark present in both
// slowed down (ns/op) by more than -tolerance, or grew its allocation
// count (allocs/op) beyond -alloc-tolerance:
//
//	benchjson -compare BENCH_2026-08-05.json -new fresh.json -tolerance 0.30
//
// Unlike wall-clock, allocation counts are deterministic across machines,
// so the alloc gate is much tighter (default 10% plus two allocations of
// absolute slack for runtime-version drift). A benchmark whose baseline
// recorded no allocs/op (captured without -benchmem) is exempt.
//
// Names are matched with the -GOMAXPROCS suffix stripped, so a baseline
// captured on an 8-core machine still matches a 4-core CI runner; the
// generous default tolerance absorbs machine-to-machine noise while
// still catching algorithmic regressions. Benchmarks that appear in
// only one report are listed but never fail the run.
//
// Each result records the benchmark name, iteration count, ns/op, B/op,
// allocs/op, and any custom go-bench metrics (MB/s etc.) under "extra".
// The Makefile's bench-json and bench-compare targets wrap both modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file written to -out.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "JSON report path (capture mode)")
	baseline := fs.String("compare", "", "baseline JSON report (compare mode)")
	fresh := fs.String("new", "", "fresh JSON report to compare against -compare")
	tolerance := fs.Float64("tolerance", 0.30, "allowed fractional ns/op slowdown before failing (compare mode)")
	allocTolerance := fs.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op growth before failing (compare mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline != "" {
		if *fresh == "" {
			return fmt.Errorf("-compare requires -new")
		}
		if math.IsNaN(*tolerance) || math.IsInf(*tolerance, 0) || *tolerance < 0 {
			return fmt.Errorf("-tolerance must be a finite fraction >= 0, got %v", *tolerance)
		}
		if math.IsNaN(*allocTolerance) || math.IsInf(*allocTolerance, 0) || *allocTolerance < 0 {
			return fmt.Errorf("-alloc-tolerance must be a finite fraction >= 0, got %v", *allocTolerance)
		}
		return compare(*baseline, *fresh, *tolerance, *allocTolerance, out)
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}

	var rep Report
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results found on stdin")
	}

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchjson: %d results -> %s\n", len(rep.Results), *outPath)
	return nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names, so reports from machines with different core counts
// compare by benchmark identity.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no results", path)
	}
	return rep, nil
}

// allocSlack is the absolute allocs/op headroom granted on top of the
// fractional alloc tolerance. It keeps small-count benchmarks (a baseline
// of 3 allocs/op would otherwise fail on a single incidental allocation)
// and zero-alloc baselines from flaking on runtime-version drift, while a
// reintroduced per-call buffer — tens of allocations — still trips the
// gate.
const allocSlack = 2

// compare is the regression gate: every benchmark present in both
// reports must not have slowed down by more than tolerance (fractional
// ns/op increase) nor grown its allocation count beyond allocTolerance
// plus allocSlack. Returns an error listing every offender.
func compare(basePath, freshPath string, tolerance, allocTolerance float64, out io.Writer) error {
	base, err := loadReport(basePath)
	if err != nil {
		return err
	}
	fresh, err := loadReport(freshPath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[stripProcs(r.Name)] = r
	}
	var regressions []string
	matched := 0
	names := make([]string, 0, len(fresh.Results))
	freshBy := make(map[string]Result, len(fresh.Results))
	for _, r := range fresh.Results {
		key := stripProcs(r.Name)
		names = append(names, key)
		freshBy[key] = r
	}
	sort.Strings(names)
	for _, key := range names {
		nr := freshBy[key]
		br, ok := baseBy[key]
		if !ok {
			fmt.Fprintf(out, "  new       %-50s %14.0f ns/op (no baseline)\n", key, nr.NsPerOp)
			continue
		}
		matched++
		delta := math.Inf(1)
		if br.NsPerOp > 0 {
			delta = nr.NsPerOp/br.NsPerOp - 1
		}
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, tolerance %+.0f%%)",
					key, br.NsPerOp, nr.NsPerOp, 100*delta, 100*tolerance))
		}
		// Alloc gate: only meaningful when the baseline actually recorded
		// allocation counts (captured with -benchmem).
		if br.AllocsPerOp > 0 && nr.AllocsPerOp > br.AllocsPerOp*(1+allocTolerance)+allocSlack {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f allocs/op (tolerance %+.0f%% + %d)",
					key, br.AllocsPerOp, nr.AllocsPerOp, 100*allocTolerance, allocSlack))
		}
		fmt.Fprintf(out, "  %-9s %-50s %14.0f -> %.0f ns/op (%+.1f%%), %.0f -> %.0f allocs/op\n",
			verdict, key, br.NsPerOp, nr.NsPerOp, 100*delta, br.AllocsPerOp, nr.AllocsPerOp)
	}
	for name := range baseBy {
		if _, ok := freshBy[name]; !ok {
			fmt.Fprintf(out, "  missing   %-50s (in baseline only)\n", name)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", basePath, freshPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%% tolerance:\n  %s",
			len(regressions), 100*tolerance, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "benchjson: %d benchmarks within %.0f%% of baseline\n", matched, 100*tolerance)
	return nil
}

// parseBenchLine parses one "BenchmarkName-8  123  456 ns/op  0 B/op ..."
// line. It returns ok=false for non-benchmark lines (PASS, ok, headers).
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			// A non-finite measurement would round-trip through the
			// JSON snapshot as an unmarshalable token; drop the line.
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
		seen = true
	}
	return r, seen
}
