// Command benchjson converts `go test -bench -benchmem` output into a
// JSON benchmark report. It reads the benchmark run from stdin, echoes
// every line to stdout (so the run stays visible in the terminal), and
// writes the parsed results to -out.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-08-05.json
//
// Each result records the benchmark name, iteration count, ns/op, B/op,
// allocs/op, and any custom go-bench metrics (MB/s etc.) under "extra".
// The Makefile's bench-json target wraps this into a dated snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file written to -out.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in *os.File, out *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "JSON report path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}

	var rep Report
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results found on stdin")
	}

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchjson: %d results -> %s\n", len(rep.Results), *outPath)
	return nil
}

// parseBenchLine parses one "BenchmarkName-8  123  456 ns/op  0 B/op ..."
// line. It returns ok=false for non-benchmark lines (PASS, ok, headers).
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			// A non-finite measurement would round-trip through the
			// JSON snapshot as an unmarshalable token; drop the line.
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
		seen = true
	}
	return r, seen
}
