// Command replay loads a session bundle from disk (audio.wav + imu.csv +
// meta.json — simulated by cmd/record, or assembled from a real phone
// capture) and runs the HyperEar pipeline on it.
//
// Usage:
//
//	replay -in ./session1 [-3d] [-trace out.jsonl] [-metrics]
//
// -trace writes one JSON line per pipeline stage span; -metrics prints
// the reason-coded counter snapshot after the run — together they answer
// "where did this session's time and rejections go" for real captures.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/obs"
	"hyperear/internal/sessionio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	in := fs.String("in", "", "session directory (required)")
	threeD := fs.Bool("3d", false, "run the two-stature 3D pipeline")
	trace := fs.String("trace", "", "write a JSONL stage-span trace to this file")
	metrics := fs.Bool("metrics", false, "print the metrics snapshot after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	bundle, err := sessionio.Load(*in)
	if err != nil {
		return err
	}
	m := bundle.Meta
	source := chirp.Params{
		Low:       m.ChirpLowHz,
		High:      m.ChirpHighHz,
		Duration:  m.ChirpDurS,
		Period:    m.ChirpPeriodS,
		Amplitude: 1,
	}
	if err := source.Validate(); err != nil {
		return fmt.Errorf("meta.json beacon parameters: %w", err)
	}
	if m.MicSeparation <= 0 {
		return fmt.Errorf("meta.json missing micSeparationM")
	}
	var sink obs.Sink
	var reg *obs.Registry
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONLSink(f)
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "replay: trace write:", err)
			}
		}()
		sink = jsonl
	}
	if *metrics {
		reg = obs.NewRegistry()
	}
	cfg := core.DefaultConfig(source, bundle.Recording.Fs, m.MicSeparation)
	cfg.Obs = obs.New(sink, reg)
	loc, err := core.NewLocalizer(cfg)
	if err != nil {
		return err
	}
	finish := func() {
		if *trace != "" {
			fmt.Printf("trace written to %s\n", *trace)
		}
		if *metrics {
			fmt.Print("--- metrics ---\n", reg.Snapshot().String())
		}
	}

	fmt.Printf("session: %s, %.1f s audio at %.0f Hz, %d IMU samples\n",
		m.PhoneName, float64(len(bundle.Recording.Mic1))/bundle.Recording.Fs,
		bundle.Recording.Fs, bundle.IMU.Len())

	if *threeD {
		res, err := loc.Locate3D(bundle.Recording, bundle.IMU)
		if err != nil {
			return err
		}
		fmt.Printf("3D fix: projected distance %.3f m (L1 %.3f, L2 %.3f, H %.3f)\n",
			res.ProjectedDist, res.L1, res.L2, res.H)
		for _, d := range res.Diagnostics {
			fmt.Printf("  %v\n", d)
		}
		report(m, res.ProjectedDist)
		finish()
		return nil
	}
	res, err := loc.Locate2D(bundle.Recording, bundle.IMU)
	if err != nil {
		return err
	}
	fmt.Printf("2D fix: distance %.3f m from %d slides (SFO %.1f ppm, %d beacons)\n",
		res.L, len(res.Fixes), res.ASP.SFOPPM, len(res.ASP.Beacons))
	for i, f := range res.Fixes {
		fmt.Printf("  slide %d: L=%.3f m, D'=%.3f m, n=%d\n", i+1, f.L, f.DPrime, f.N)
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("  %v\n", d)
	}
	report(m, res.L)
	finish()
	return nil
}

func report(m sessionio.Meta, got float64) {
	if m.TrueDistanceM > 0 {
		fmt.Printf("ground truth %.3f m -> error %.1f cm\n",
			m.TrueDistanceM, math.Abs(got-m.TrueDistanceM)*100)
	}
}
