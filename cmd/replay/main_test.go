package main

import (
	"path/filepath"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sessionio"
	"hyperear/internal/sim"
)

func TestReplayValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in should error")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("missing bundle should error")
	}
}

func TestReplayLocalizesStoredSession(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a full session")
	}
	// Build a bundle directly (faster than shelling through cmd/record).
	sc := sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          mic.GalaxyS4(),
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 7, Y: 6, Z: 1.2},
		PhoneStart:     geom.Vec3{X: 3, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 18,
		Protocol:       sim.DefaultProtocol(),
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          15,
		Seed:           6,
	}
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "sess")
	err = sessionio.Save(dir, &sessionio.Bundle{
		Recording: s.Recording,
		IMU:       s.IMU,
		Meta: sessionio.Meta{
			PhoneName:     sc.Phone.Name,
			MicSeparation: sc.Phone.MicSeparation,
			SampleRate:    sc.Phone.SampleRate,
			ChirpLowHz:    sc.Source.Low,
			ChirpHighHz:   sc.Source.High,
			ChirpDurS:     sc.Source.Duration,
			ChirpPeriodS:  sc.Source.Period,
			TrueDistanceM: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", dir}); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}

func TestReplayRejectsBrokenMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	err := sessionio.Save(dir, &sessionio.Bundle{
		Recording: &mic.Recording{Fs: 44100, Mic1: []float64{0, 0}, Mic2: []float64{0, 0}},
		IMU: &imu.Trace{
			Fs:      100,
			Accel:   []geom.Vec3{{}},
			Gyro:    []geom.Vec3{{}},
			Gravity: []geom.Vec3{{}},
		},
		Meta: sessionio.Meta{SampleRate: 44100}, // no beacon parameters
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", dir}); err == nil {
		t.Error("missing beacon parameters should error")
	}
}
