// Command record simulates a HyperEar session and saves it to disk as a
// session bundle (audio.wav + imu.csv + meta.json) that cmd/replay — or
// any external tool — can consume. The same layout can be assembled from
// real phone captures.
//
// Usage:
//
//	record -out ./session1 [-dist 5] [-phone s4|note3] [-mode ruler|hand]
//	       [-slides 5] [-3d] [-snr 15] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hyperear"
	"hyperear/internal/imu"
	"hyperear/internal/room"
	"hyperear/internal/sessionio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "record:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "", "output session directory (required)")
	dist := fs.Float64("dist", 5, "speaker distance in meters")
	phoneName := fs.String("phone", "s4", "phone model: s4 or note3")
	mode := fs.String("mode", "ruler", "movement mode: ruler or hand")
	slides := fs.Int("slides", 5, "number of slides")
	threeD := fs.Bool("3d", false, "two-stature 3D protocol")
	snr := fs.Float64("snr", 15, "recorded SNR in dB")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if !(*dist > 0) || math.IsInf(*dist, 0) {
		return fmt.Errorf("-dist must be a positive finite distance, got %v", *dist)
	}
	if math.IsNaN(*snr) || math.IsInf(*snr, 0) {
		return fmt.Errorf("-snr must be finite, got %v", *snr)
	}

	var phone hyperear.Phone
	switch *phoneName {
	case "s4":
		phone = hyperear.GalaxyS4()
	case "note3":
		phone = hyperear.GalaxyNote3()
	default:
		return fmt.Errorf("unknown phone %q", *phoneName)
	}
	protocol := hyperear.DefaultProtocol()
	protocol.Slides = *slides
	switch *mode {
	case "hand":
		protocol.Mode = hyperear.ModeHand
	case "ruler":
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *threeD {
		protocol.StatureChange = 0.45
	}

	beacon := hyperear.DefaultBeacon()
	sc := hyperear.Scenario{
		Env:            hyperear.MeetingRoom(),
		Phone:          phone,
		Source:         beacon,
		SpeakerPos:     hyperear.Vec3{X: 2 + *dist, Y: 6, Z: 1.2},
		PhoneStart:     hyperear.Vec3{X: 2, Y: 6, Z: 1.3},
		SpeakerSkewPPM: 22,
		Protocol:       protocol,
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          *snr,
		Seed:           *seed,
	}
	if *threeD {
		sc.SpeakerPos.Z = 0.5
	}
	session, err := hyperear.Simulate(sc)
	if err != nil {
		return err
	}
	bundle := &sessionio.Bundle{
		Recording: session.Recording,
		IMU:       session.IMU,
		Meta: sessionio.Meta{
			PhoneName:     phone.Name,
			MicSeparation: phone.MicSeparation,
			SampleRate:    phone.SampleRate,
			ChirpLowHz:    beacon.Low,
			ChirpHighHz:   beacon.High,
			ChirpDurS:     beacon.Duration,
			ChirpPeriodS:  beacon.Period,
			TrueDistanceM: *dist,
			Notes:         fmt.Sprintf("simulated: %s, %s mode, seed %d", phone.Name, *mode, *seed),
		},
	}
	if err := sessionio.Save(*out, bundle); err != nil {
		return err
	}
	fmt.Printf("saved session to %s (%.1f s audio, %d IMU samples)\n",
		*out, float64(len(session.Recording.Mic1))/session.Recording.Fs, session.IMU.Len())
	return nil
}
