package main

import (
	"path/filepath"
	"testing"

	"hyperear/internal/sessionio"
)

func TestRecordRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a full session")
	}
	dir := filepath.Join(t.TempDir(), "sess")
	if err := run([]string{"-out", dir, "-dist", "3", "-slides", "2", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	b, err := sessionio.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.PhoneName != "galaxy-s4" || b.Meta.TrueDistanceM != 3 {
		t.Errorf("meta = %+v", b.Meta)
	}
	if len(b.Recording.Mic1) == 0 || b.IMU.Len() == 0 {
		t.Error("empty payload")
	}
}

func TestRecordValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -out should error")
	}
	if err := run([]string{"-out", t.TempDir(), "-phone", "iphone"}); err == nil {
		t.Error("unknown phone should error")
	}
	if err := run([]string{"-out", t.TempDir(), "-mode", "teleport"}); err == nil {
		t.Error("unknown mode should error")
	}
}
