package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStandaloneFindsSeededViolations runs the multichecker over the
// fixture module and checks both rules fire with exit code 1.
func TestStandaloneFindsSeededViolations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "vetmod"), "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, wantSub := range []string{
		"[floatguard] == on floating-point operands",
		"[unitmix] durSamples (samples) + durSec (sec) mixes unit families",
		"[ctxflow] call to Do drops ctx; DoCtx accepts a context",
		"[lockguard] field n is guarded by mu; access without holding c.mu",
		"[lockguard] field Names is guarded by Mu; access without holding r.Mu",
		"[zeroalloc] make allocates on the zeroalloc path",
	} {
		if !strings.Contains(got, wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, got)
		}
	}
	if n := strings.Count(got, "\n"); n != 6 {
		t.Errorf("want exactly 6 findings, got %d:\n%s", n, got)
	}
}

// TestStandaloneCleanTree asserts the repo itself lints clean — the
// same gate `make lint` enforces, kept inside the test suite so plain
// `go test ./...` catches new violations too.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join("..", ".."), "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

func TestVersionHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-V=full"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.HasPrefix(out.String(), "hyperearvet version ") {
		t.Fatalf("handshake reply %q lacks 'hyperearvet version ' prefix", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxflow", "detrand", "floatguard", "lockguard", "obsnil", "poolleak", "unitmix", "zeroalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestGoVetVettool builds the binary and drives it through the real
// `go vet -vettool=` protocol against the fixture module.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "hyperearvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hyperearvet: %v\n%s", err, out)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("testdata", "vetmod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a dirty module\n%s", out)
	}
	for _, wantSub := range []string{
		"[floatguard]", "[unitmix]", "[ctxflow]", "[zeroalloc]",
		// Cross-package: the guard annotation lives in vetmod/state, the
		// access in vetmod — only exported facts can connect them.
		"field Names is guarded by Mu; access without holding r.Mu",
	} {
		if !strings.Contains(string(out), wantSub) {
			t.Errorf("go vet output missing %q:\n%s", wantSub, out)
		}
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
