package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"

	"hyperear/internal/analysis"
)

// SARIF 2.1.0 output (-sarif), shaped for GitHub code scanning's
// upload-sarif action: one run, one rule per analyzer (plus the
// "suppress" pseudo-rule for stale allow annotations), one result per
// finding with a repo-relative %SRCROOT%-based location. Only the
// schema subset code scanning consumes is emitted; the structure is
// held to the spec's required properties by TestSARIFOutput.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name            string      `json:"name"`
	SemanticVersion string      `json:"semanticVersion"`
	Rules           []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func buildSARIF(findings []analysis.Finding, analyzers []*analysis.Analyzer, srcRoot string) sarifLog {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	index["suppress"] = len(rules)
	rules = append(rules, sarifRule{
		ID:               "suppress",
		ShortDescription: sarifText{Text: "hyperearvet:allow suppression that matches no finding; delete or update it"},
	})

	absRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		absRoot = srcRoot
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Rule]
		if !ok {
			// An unregistered rule name would make ruleIndex lie; grow
			// the table instead of guessing.
			idx = len(rules)
			index[f.Rule] = idx
			rules = append(rules, sarifRule{ID: f.Rule, ShortDescription: sarifText{Text: f.Rule}})
		}
		// Positions may carry absolute or root-relative filenames
		// depending on how the loader was invoked; try both bases.
		uri := f.Position.Filename
		if rel, ok := relWithin(absRoot, uri); ok {
			uri = rel
		} else if rel, ok := relWithin(srcRoot, uri); ok {
			uri = rel
		}
		line, col := f.Position.Line, f.Position.Column
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}
	// Findings arrive sorted; keep results deterministic regardless.
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i].Locations[0].PhysicalLocation, results[j].Locations[0].PhysicalLocation
		if a.ArtifactLocation.URI != b.ArtifactLocation.URI {
			return a.ArtifactLocation.URI < b.ArtifactLocation.URI
		}
		return a.Region.StartLine < b.Region.StartLine
	})

	return sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hyperearvet", SemanticVersion: semanticVersion, Rules: rules}},
			Results: results,
		}},
	}
}

// relWithin reports path relative to base when path actually sits
// under base; climbing out via ".." disqualifies it.
func relWithin(base, path string) (string, bool) {
	rel, err := filepath.Rel(base, path)
	if err != nil || rel == "" || rel == ".." ||
		len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return "", false
	}
	return rel, true
}

func writeSARIF(findings []analysis.Finding, analyzers []*analysis.Analyzer, srcRoot string, out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(buildSARIF(findings, analyzers, srcRoot))
}
