package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"hyperear/internal/analysis"
)

// TestSARIFOutput validates the emitted document against the SARIF
// 2.1.0 structural requirements GitHub code scanning enforces: the
// $schema/version pair, a run with a named driver, rule metadata for
// every ruleId, in-range ruleIndex back-references, and %SRCROOT%-based
// relative artifact URIs with 1-based regions. The check decodes into
// an untyped map so a field renamed or dropped from the sarif* structs
// fails here rather than at upload time.
func TestSARIFOutput(t *testing.T) {
	findings := []analysis.Finding{
		{
			Rule:     "lockguard",
			Message:  "field c.n is guarded by mu; access without holding mu",
			Position: token.Position{Filename: filepath.Join("root", "internal", "server", "session.go"), Line: 42, Column: 3},
		},
		{
			Rule:     "suppress",
			Message:  "suppression matches no finding",
			Position: token.Position{Filename: filepath.Join("root", "cmd", "hyperear", "main.go"), Line: 7, Column: 1},
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(findings, all, "root", &buf); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}

	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got := doc["$schema"]; got != sarifSchema {
		t.Errorf("$schema = %v, want %s", got, sarifSchema)
	}
	if got := doc["version"]; got != sarifVersion {
		t.Errorf("version = %v, want %s", got, sarifVersion)
	}

	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "hyperearvet" {
		t.Errorf("driver.name = %v, want hyperearvet", driver["name"])
	}
	if driver["semanticVersion"] != semanticVersion {
		t.Errorf("driver.semanticVersion = %v, want %s", driver["semanticVersion"], semanticVersion)
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(all)+1 {
		t.Fatalf("len(rules) = %d, want %d (all analyzers + suppress)", len(rules), len(all)+1)
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Fatalf("rule %d has no id: %v", i, r)
		}
		desc := rule["shortDescription"].(map[string]any)
		if text, _ := desc["text"].(string); text == "" {
			t.Errorf("rule %s has empty shortDescription.text", id)
		}
		ruleIDs[i] = id
	}

	results, ok := run["results"].([]any)
	if !ok || len(results) != len(findings) {
		t.Fatalf("results = %v, want %d entries", run["results"], len(findings))
	}
	for i, r := range results {
		res := r.(map[string]any)
		ruleID, _ := res["ruleId"].(string)
		idx, okIdx := res["ruleIndex"].(float64)
		if !okIdx || int(idx) < 0 || int(idx) >= len(ruleIDs) {
			t.Fatalf("result %d ruleIndex %v out of range", i, res["ruleIndex"])
		}
		if ruleIDs[int(idx)] != ruleID {
			t.Errorf("result %d: ruleIndex %d points at %s, ruleId says %s", i, int(idx), ruleIDs[int(idx)], ruleID)
		}
		if res["level"] != "error" {
			t.Errorf("result %d level = %v, want error", i, res["level"])
		}
		msg := res["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("result %d has empty message.text", i)
		}
		locs := res["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		uri, _ := art["uri"].(string)
		if strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") || strings.HasPrefix(uri, "root/") {
			t.Errorf("result %d uri %q not srcroot-relative slash form", i, uri)
		}
		if art["uriBaseId"] != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %v, want %%SRCROOT%%", i, art["uriBaseId"])
		}
		region := phys["region"].(map[string]any)
		if line := region["startLine"].(float64); line < 1 {
			t.Errorf("result %d startLine = %v, want >= 1", i, line)
		}
		if col := region["startColumn"].(float64); col < 1 {
			t.Errorf("result %d startColumn = %v, want >= 1", i, col)
		}
	}
}

// TestSARIFEmpty checks a clean run still yields a well-formed log —
// upload-sarif rejects files with no runs entry.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(nil, all, ".", &buf); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var doc sarifLog
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	if doc.Runs[0].Results == nil {
		t.Error("results is null; upload-sarif wants an empty array")
	}
}
