package vetmod

import (
	"context"
	"sync"

	"vetmod/state"
)

// DoCtx is the context-accepting variant of Do.
func DoCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Do is the legacy entry point.
func Do(n int) int { return n }

// DropsCtx has a ctx parameter but calls the ctx-less variant: ctxflow.
func DropsCtx(ctx context.Context, n int) int {
	return Do(n) // finding: drops ctx
}

// Counter seeds a same-package lockguard violation.
type Counter struct {
	mu sync.Mutex
	// n counts bumps.
	//
	// guarded by mu
	n int
}

// Bump increments without holding mu: lockguard.
func (c *Counter) Bump() {
	c.n++ // finding: unguarded write
}

// Grow allocates on a declared zero-alloc path: zeroalloc.
//
//hyperearvet:zeroalloc
func Grow(n int) []int {
	return make([]int, n) // finding: make on zeroalloc path
}

// ReadNames touches state.Registry.Names without its mutex; the guard
// annotation is only visible through exported lockguard facts.
func ReadNames(r *state.Registry) []string {
	return r.Names // finding: cross-package unguarded read
}
