// Package vetmod is a fixture module with one deliberate violation per
// quick-to-trigger rule, driven by hyperearvet's own end-to-end test.
package vetmod

// FloatEq trips floatguard.
func FloatEq(x, y float64) bool { return x == y }

// MixUnits trips unitmix.
func MixUnits(durSamples, durSec float64) float64 { return durSamples + durSec }

// Clean is fine and must produce no findings.
func Clean(n int) int { return n * 2 }
