// Package state seeds a cross-package lockguard fixture: the guarded
// annotation lives here, the violating access lives in the parent
// package, so a finding proves facts flow between compilation units.
package state

import "sync"

// Registry is a tiny shared name table.
type Registry struct {
	Mu sync.Mutex
	// Names is the registered name list.
	//
	// guarded by Mu
	Names []string
}
