// Command hyperearvet is the repo's domain-specific vet: a
// multichecker of five analyzers guarding invariants go vet cannot see
// (see DESIGN.md "Static analysis").
//
//	poolleak   pooled scratch must not escape its borrowing function
//	obsnil     obs handles only via the nil-safe wrapper API
//	unitmix    no samples/seconds/Hz/meters arithmetic without conversion
//	floatguard no float ==/!= outside epsilon helpers; NaN/Inf rejected at ingestion
//	detrand    simulation packages use injected seeded randomness only
//
// Standalone (what `make lint` runs):
//
//	hyperearvet ./...
//
// It also speaks the go vet driver protocol, so after `go build -o
// $GOBIN/hyperearvet ./cmd/hyperearvet` it can run as
//
//	go vet -vettool=$(which hyperearvet) ./...
//
// Findings are suppressed by an inline annotation on the offending
// line or the line above, justification mandatory:
//
//	//hyperearvet:allow <rule> <justification>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"hyperear/internal/analysis"
	"hyperear/internal/analysis/detrand"
	"hyperear/internal/analysis/floatguard"
	"hyperear/internal/analysis/obsnil"
	"hyperear/internal/analysis/poolleak"
	"hyperear/internal/analysis/unitmix"
)

var all = []*analysis.Analyzer{
	detrand.Analyzer,
	floatguard.Analyzer,
	obsnil.Analyzer,
	poolleak.Analyzer,
	unitmix.Analyzer,
}

const version = "hyperearvet version v1.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hyperearvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vFlag := fs.String("V", "", "print version and exit (go vet driver handshake)")
	flagsDump := fs.Bool("flags", false, "print the tool's flag definitions as JSON (go vet driver handshake)")
	tests := fs.Bool("tests", true, "also lint _test.go files")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "module directory to analyze from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		// `go vet -vettool` probes the tool with -V=full and caches on
		// the reply before handing it package configs.
		fmt.Fprintln(stdout, version)
		return 0
	}
	if *flagsDump {
		// The driver also asks which analyzer flags the tool exposes;
		// none are forwarded, so reply with an empty set.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], stderr)
	}
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, *dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "hyperearvet: warning: %s: %v\n", p.PkgPath, terr)
		}
	}
	findings, err := analysis.Run(fset, pkgs, all)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	return report(findings, *jsonOut, stdout)
}

func report(findings []analysis.Finding, asJSON bool, out io.Writer) int {
	if asJSON {
		type jf struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		var js []jf
		for _, f := range findings {
			js = append(js, jf{f.Position.Filename, f.Position.Line, f.Position.Column, f.Rule, f.Message})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.Encode(js)
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON config the go vet driver hands a
// -vettool (the same schema x/tools/go/analysis/unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by cfgPath. The
// driver expects a facts file at VetxOutput (we keep no cross-package
// facts, so it is empty), diagnostics on stderr, and a non-zero exit
// when any are found.
func runVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "hyperearvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "hyperearvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.CheckVetPackage(fset, cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hyperearvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	findings, err := analysis.Run(fset, []*analysis.Package{pkg}, all)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
