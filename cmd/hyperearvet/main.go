// Command hyperearvet is the repo's domain-specific vet: a
// multichecker of eight analyzers guarding invariants go vet cannot
// see (see DESIGN.md "Static analysis").
//
//	poolleak   pooled scratch must not escape its borrowing function
//	obsnil     obs handles only via the nil-safe wrapper API
//	unitmix    no samples/seconds/Hz/meters arithmetic without conversion
//	floatguard no float ==/!= outside epsilon helpers; NaN/Inf rejected at ingestion
//	detrand    simulation packages use injected seeded randomness only
//	ctxflow    ctx threads into *Context/*Ctx call variants; no minted roots in libraries
//	lockguard  `// guarded by mu` fields only touched under that mutex; no lock copies
//	zeroalloc  //hyperearvet:zeroalloc functions contain no allocation sites
//
// Standalone (what `make lint` runs):
//
//	hyperearvet ./...
//
// -sarif renders the findings as SARIF 2.1.0 for CI annotation upload;
// -fixable lists only mechanically fixable findings (stale
// suppressions, malformed or missing guarded-by annotations) as
// file:line lines and always exits 0.
//
// It also speaks the go vet driver protocol, so after `go build -o
// $GOBIN/hyperearvet ./cmd/hyperearvet` it can run as
//
//	go vet -vettool=$(which hyperearvet) ./...
//
// Under that protocol, cross-package annotation facts (guarded fields,
// zeroalloc promises) ride in each package's .vetx file: a package's
// payload carries its own facts plus everything it imported, making
// the flow transitive without driver cooperation.
//
// Findings are suppressed by an inline annotation on the offending
// line or the line above, justification mandatory:
//
//	//hyperearvet:allow <rule> <justification>
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"hyperear/internal/analysis"
	"hyperear/internal/analysis/ctxflow"
	"hyperear/internal/analysis/detrand"
	"hyperear/internal/analysis/floatguard"
	"hyperear/internal/analysis/lockguard"
	"hyperear/internal/analysis/obsnil"
	"hyperear/internal/analysis/poolleak"
	"hyperear/internal/analysis/unitmix"
	"hyperear/internal/analysis/zeroalloc"
)

var all = []*analysis.Analyzer{
	ctxflow.Analyzer,
	detrand.Analyzer,
	floatguard.Analyzer,
	lockguard.Analyzer,
	obsnil.Analyzer,
	poolleak.Analyzer,
	unitmix.Analyzer,
	zeroalloc.Analyzer,
}

// version feeds the go vet -V=full handshake, which keys go's result
// cache; bump it whenever analyzer or fact semantics change so stale
// cached verdicts (and stale .vetx payloads) are invalidated.
const version = "hyperearvet version v1.1.0"

// semanticVersion is the bare form for SARIF output.
const semanticVersion = "1.1.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hyperearvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vFlag := fs.String("V", "", "print version and exit (go vet driver handshake)")
	flagsDump := fs.Bool("flags", false, "print the tool's flag definitions as JSON (go vet driver handshake)")
	tests := fs.Bool("tests", true, "also lint _test.go files")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	fixable := fs.Bool("fixable", false, "list only auto-fixable findings as file:line lines; exit 0")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "module directory to analyze from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		// `go vet -vettool` probes the tool with -V=full and caches on
		// the reply before handing it package configs.
		fmt.Fprintln(stdout, version)
		return 0
	}
	if *flagsDump {
		// The driver also asks which analyzer flags the tool exposes;
		// none are forwarded, so reply with an empty set.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], stderr)
	}
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, *dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "hyperearvet: warning: %s: %v\n", p.PkgPath, terr)
		}
	}
	findings, err := analysis.Run(fset, pkgs, all)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	if *fixable {
		return reportFixable(findings, pkgs, fset, stdout)
	}
	if *sarifOut {
		if err := writeSARIF(findings, all, *dir, stdout); err != nil {
			fmt.Fprintln(stderr, "hyperearvet:", err)
			return 2
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	return report(findings, *jsonOut, stdout)
}

// reportFixable prints the mechanically fixable subset — stale
// suppressions, malformed guarded-by annotations — plus advisory
// lines for structs that have a mutex but annotate nothing with it,
// as file:line lines suitable for piping. Always exits 0: this is a
// worklist, not a gate.
func reportFixable(findings []analysis.Finding, pkgs []*analysis.Package, fset *token.FileSet, out io.Writer) int {
	for _, f := range findings {
		switch {
		case f.Rule == "suppress":
			fmt.Fprintf(out, "%s:%d: delete: %s\n", f.Position.Filename, f.Position.Line, f.Message)
		case f.Rule == "lockguard" && strings.HasPrefix(f.Message, "guarded-by annotation names"):
			fmt.Fprintf(out, "%s:%d: fix: %s\n", f.Position.Filename, f.Position.Line, f.Message)
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				var mutex string
				plain, guarded := 0, 0
				for _, field := range st.Fields.List {
					text := ""
					if field.Doc != nil {
						text += field.Doc.Text()
					}
					if field.Comment != nil {
						text += field.Comment.Text()
					}
					if strings.Contains(text, "guarded by ") {
						guarded++
						continue
					}
					isMu := false
					for _, name := range field.Names {
						if obj, ok := pkg.TypesInfo.Defs[name].(*types.Var); ok && isMutexVar(obj.Type()) {
							mutex = name.Name
							isMu = true
						}
					}
					if !isMu && len(field.Names) > 0 {
						plain++
					}
				}
				if mutex != "" && guarded == 0 && plain > 0 {
					pos := fset.Position(ts.Pos())
					fmt.Fprintf(out, "%s:%d: annotate: struct %s has mutex field %s but no `// guarded by %s` annotations\n",
						pos.Filename, pos.Line, ts.Name.Name, mutex, mutex)
				}
				return true
			})
		}
	}
	return 0
}

func isMutexVar(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func report(findings []analysis.Finding, asJSON bool, out io.Writer) int {
	if asJSON {
		type jf struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		var js []jf
		for _, f := range findings {
			js = append(js, jf{f.Position.Filename, f.Position.Line, f.Position.Column, f.Rule, f.Message})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.Encode(js)
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON config the go vet driver hands a
// -vettool (the same schema x/tools/go/analysis/unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// factMarkers are the annotation substrings whose presence makes a
// package worth type-checking in VetxOnly mode; dependency packages
// without them (almost all of the stdlib) export no facts, so their
// vetx payload is just the pass-through of what they imported.
var factMarkers = [][]byte{
	[]byte("guarded by "),
	[]byte("hyperearvet:zeroalloc"),
}

func hasFactMarkers(goFiles []string) bool {
	for _, name := range goFiles {
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		for _, m := range factMarkers {
			if bytes.Contains(data, m) {
				return true
			}
		}
	}
	return false
}

// runVetTool analyzes the single package described by cfgPath,
// following the go vet driver protocol: dependency facts arrive via
// PackageVetx, this package's accumulated facts (its own plus the
// imported ones, making flow transitive) are written to VetxOutput,
// diagnostics go to stderr, and the exit code is non-zero when any
// are found.
func runVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "hyperearvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	store := analysis.FactStore{}
	for path, vetxFile := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // no facts from that dep; analysis degrades, not fails
		}
		if err := store.MergeEncoded(payload); err != nil {
			fmt.Fprintf(stderr, "hyperearvet: warning: facts of %s: %v\n", path, err)
		}
	}
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		payload, err := store.Encode()
		if err != nil {
			fmt.Fprintln(stderr, "hyperearvet:", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintln(stderr, "hyperearvet:", err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	if cfg.VetxOnly {
		// Dependency-only visit: contribute facts, report nothing.
		// Type-check only when an annotation marker is present; errors
		// here (cgo-heavy stdlib corners) just mean no facts.
		if hasFactMarkers(cfg.GoFiles) {
			if pkg, err := analysis.CheckVetPackage(fset, cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile); err == nil {
				analysis.CollectFacts(fset, []*analysis.Package{pkg}, all, store)
			}
		}
		return writeVetx()
	}

	pkg, err := analysis.CheckVetPackage(fset, cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if rc := writeVetx(); rc != 0 {
			return rc
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hyperearvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	findings, err := analysis.RunWithFacts(fset, []*analysis.Package{pkg}, all, store)
	if err != nil {
		fmt.Fprintln(stderr, "hyperearvet:", err)
		return 2
	}
	if rc := writeVetx(); rc != 0 {
		return rc
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
