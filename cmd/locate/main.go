// Command locate runs a single simulated HyperEar localization and prints
// the result — the "hello world" of the library.
//
// Usage:
//
//	locate [-dist D] [-phone s4|note3] [-mode ruler|hand] [-noise regime]
//	       [-3d] [-seed S] [-trace out.jsonl] [-metrics]
//
// Example:
//
//	locate -dist 7 -phone s4 -mode hand -noise mall-busy -3d
//
// With -trace the pipeline writes one JSON line per stage span
// (asp/msp/pde/ttl/locate2d) to the given file; with -metrics it prints
// the reason-coded counter and histogram snapshot after the run. See
// DESIGN.md "Observability" for how to read both.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hyperear"
	"hyperear/internal/imu"
	"hyperear/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ContinueOnError)
	dist := fs.Float64("dist", 5, "speaker distance in meters")
	phoneName := fs.String("phone", "s4", "phone model: s4 or note3")
	mode := fs.String("mode", "ruler", "movement mode: ruler or hand")
	noise := fs.String("noise", "room-quiet", "noise regime: room-quiet, room-chatting, mall-offpeak, mall-busy, none")
	threeD := fs.Bool("3d", false, "run the two-stature 3D protocol")
	seed := fs.Int64("seed", 1, "random seed")
	trace := fs.String("trace", "", "write a JSONL stage-span trace to this file")
	metrics := fs.Bool("metrics", false, "print the metrics snapshot (reason-coded counters, stage timings) after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*dist > 0) || math.IsInf(*dist, 0) {
		return fmt.Errorf("-dist must be a positive finite distance, got %v", *dist)
	}

	var phone hyperear.Phone
	switch *phoneName {
	case "s4":
		phone = hyperear.GalaxyS4()
	case "note3":
		phone = hyperear.GalaxyNote3()
	default:
		return fmt.Errorf("unknown phone %q", *phoneName)
	}

	protocol := hyperear.DefaultProtocol()
	if *mode == "hand" {
		protocol.Mode = hyperear.ModeHand
	} else if *mode != "ruler" {
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *threeD {
		protocol.Slides = 10
		protocol.StatureChange = 0.45
	}

	sc := hyperear.Scenario{
		Env:            hyperear.MeetingRoom(),
		Phone:          phone,
		Source:         hyperear.DefaultBeacon(),
		SpeakerPos:     hyperear.Vec3{X: 2 + *dist, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20,
		PhoneStart:     hyperear.Vec3{X: 2, Y: 6, Z: 1.2},
		Protocol:       protocol,
		IMU:            imu.DefaultConfig(),
		Seed:           *seed,
	}
	if *threeD {
		sc.SpeakerPos.Z = 0.5
	}
	regimes := map[string]hyperear.NoiseRegime{
		"room-quiet":    hyperear.NoiseQuietRoom,
		"room-chatting": hyperear.NoiseChatting,
		"mall-offpeak":  hyperear.NoiseMallOffPeak,
		"mall-busy":     hyperear.NoiseMallBusy,
	}
	if *noise != "none" {
		r, ok := regimes[*noise]
		if !ok {
			return fmt.Errorf("unknown noise regime %q", *noise)
		}
		sc.Noise = r.Source()
		sc.SNRdB = r.SNRdB()
		if r == hyperear.NoiseMallOffPeak || r == hyperear.NoiseMallBusy {
			sc.Env = hyperear.MallCorridor()
		}
	}

	// Observability wiring: a JSONL sink when tracing, a registry when
	// metrics are requested. A nil hook (neither flag) costs nothing.
	var sink obs.Sink
	var reg *obs.Registry
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONLSink(f)
		defer func() {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "locate: trace write:", err)
			}
		}()
		sink = jsonl
	}
	if *metrics {
		reg = obs.NewRegistry()
	}
	cfg := hyperear.DefaultConfigFor(phone, sc.Source)
	cfg.Obs = obs.New(sink, reg)

	fmt.Printf("simulating: %s, %s mode, %s noise, speaker %.1f m away...\n",
		phone.Name, *mode, *noise, *dist)
	session, err := hyperear.Simulate(sc)
	if err != nil {
		return err
	}
	loc, err := hyperear.NewLocalizerConfig(cfg)
	if err != nil {
		return err
	}
	if *threeD {
		fix, err := loc.Locate3D(session)
		if err != nil {
			return err
		}
		fmt.Printf("3D fix: projected distance %.3f m (L1 %.3f, L2 %.3f, H %.3f, %d slides)\n",
			fix.Distance, fix.L1, fix.L2, fix.H, fix.Slides)
		fmt.Printf("estimated position: %v\n", fix.World)
		fmt.Printf("true position:      %v\n", sc.SpeakerPos.XY())
		fmt.Printf("error: %.1f cm\n", hyperear.Error2D(fix.World, session)*100)
		printDiagnostics(fix.Diagnostics)
		printObs(*trace, *metrics, reg)
		return nil
	}
	fix, err := loc.Locate2D(session)
	if err != nil {
		return err
	}
	fmt.Printf("2D fix: distance %.3f m (%d/%d movements usable)\n", fix.Distance, fix.Slides, fix.Movements)
	fmt.Printf("estimated position: %v\n", fix.World)
	fmt.Printf("true position:      %v\n", sc.SpeakerPos.XY())
	fmt.Printf("error: %.1f cm\n", hyperear.Error2D(fix.World, session)*100)
	printDiagnostics(fix.Diagnostics)
	printObs(*trace, *metrics, reg)
	return nil
}

// printDiagnostics lists the reason-coded per-movement rejections.
func printDiagnostics(diags []hyperear.SlideError) {
	for _, d := range diags {
		fmt.Printf("  %v\n", d)
	}
}

// printObs reports where the trace went and renders the metrics
// snapshot.
func printObs(trace string, metrics bool, reg *obs.Registry) {
	if trace != "" {
		fmt.Printf("trace written to %s\n", trace)
	}
	if metrics {
		fmt.Print("--- metrics ---\n", reg.Snapshot().String())
	}
}
