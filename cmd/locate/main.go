// Command locate runs a single simulated HyperEar localization and prints
// the result — the "hello world" of the library.
//
// Usage:
//
//	locate [-dist D] [-phone s4|note3] [-mode ruler|hand] [-noise regime]
//	       [-3d] [-seed S]
//
// Example:
//
//	locate -dist 7 -phone s4 -mode hand -noise mall-busy -3d
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperear"
	"hyperear/internal/imu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ContinueOnError)
	dist := fs.Float64("dist", 5, "speaker distance in meters")
	phoneName := fs.String("phone", "s4", "phone model: s4 or note3")
	mode := fs.String("mode", "ruler", "movement mode: ruler or hand")
	noise := fs.String("noise", "room-quiet", "noise regime: room-quiet, room-chatting, mall-offpeak, mall-busy, none")
	threeD := fs.Bool("3d", false, "run the two-stature 3D protocol")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var phone hyperear.Phone
	switch *phoneName {
	case "s4":
		phone = hyperear.GalaxyS4()
	case "note3":
		phone = hyperear.GalaxyNote3()
	default:
		return fmt.Errorf("unknown phone %q", *phoneName)
	}

	protocol := hyperear.DefaultProtocol()
	if *mode == "hand" {
		protocol.Mode = hyperear.ModeHand
	} else if *mode != "ruler" {
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *threeD {
		protocol.Slides = 10
		protocol.StatureChange = 0.45
	}

	sc := hyperear.Scenario{
		Env:            hyperear.MeetingRoom(),
		Phone:          phone,
		Source:         hyperear.DefaultBeacon(),
		SpeakerPos:     hyperear.Vec3{X: 2 + *dist, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20,
		PhoneStart:     hyperear.Vec3{X: 2, Y: 6, Z: 1.2},
		Protocol:       protocol,
		IMU:            imu.DefaultConfig(),
		Seed:           *seed,
	}
	if *threeD {
		sc.SpeakerPos.Z = 0.5
	}
	regimes := map[string]hyperear.NoiseRegime{
		"room-quiet":    hyperear.NoiseQuietRoom,
		"room-chatting": hyperear.NoiseChatting,
		"mall-offpeak":  hyperear.NoiseMallOffPeak,
		"mall-busy":     hyperear.NoiseMallBusy,
	}
	if *noise != "none" {
		r, ok := regimes[*noise]
		if !ok {
			return fmt.Errorf("unknown noise regime %q", *noise)
		}
		sc.Noise = r.Source()
		sc.SNRdB = r.SNRdB()
		if r == hyperear.NoiseMallOffPeak || r == hyperear.NoiseMallBusy {
			sc.Env = hyperear.MallCorridor()
		}
	}

	fmt.Printf("simulating: %s, %s mode, %s noise, speaker %.1f m away...\n",
		phone.Name, *mode, *noise, *dist)
	session, err := hyperear.Simulate(sc)
	if err != nil {
		return err
	}
	loc, err := hyperear.NewLocalizer(phone, sc.Source)
	if err != nil {
		return err
	}
	if *threeD {
		fix, err := loc.Locate3D(session)
		if err != nil {
			return err
		}
		fmt.Printf("3D fix: projected distance %.3f m (L1 %.3f, L2 %.3f, H %.3f, %d slides)\n",
			fix.Distance, fix.L1, fix.L2, fix.H, fix.Slides)
		fmt.Printf("estimated position: %v\n", fix.World)
		fmt.Printf("true position:      %v\n", sc.SpeakerPos.XY())
		fmt.Printf("error: %.1f cm\n", hyperear.Error2D(fix.World, session)*100)
		return nil
	}
	fix, err := loc.Locate2D(session)
	if err != nil {
		return err
	}
	fmt.Printf("2D fix: distance %.3f m (%d slides)\n", fix.Distance, fix.Slides)
	fmt.Printf("estimated position: %v\n", fix.World)
	fmt.Printf("true position:      %v\n", sc.SpeakerPos.XY())
	fmt.Printf("error: %.1f cm\n", hyperear.Error2D(fix.World, session)*100)
	return nil
}
