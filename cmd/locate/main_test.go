package main

import "testing"

func TestLocateValidation(t *testing.T) {
	if err := run([]string{"-phone", "pixel"}); err == nil {
		t.Error("unknown phone should error")
	}
	if err := run([]string{"-mode", "fly"}); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-noise", "thunder"}); err == nil {
		t.Error("unknown noise should error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestLocate2DSession(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a full session")
	}
	if err := run([]string{"-dist", "3", "-seed", "2", "-noise", "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestLocate3DSession(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a full session")
	}
	if err := run([]string{"-dist", "3", "-seed", "2", "-3d"}); err != nil {
		t.Fatal(err)
	}
}
