// Package hyperear's benchmark harness: one benchmark per reproduced
// figure (run the tables with `go test -bench Fig -benchtime 1x`) plus
// ablation and micro benchmarks. Each figure benchmark executes the same
// experiment.RunFigNN the CLI uses, at a reduced trial count, and reports
// the headline error statistics as custom metrics (mean-cm, p90-cm of the
// figure's most adverse condition) so regressions in reproduction quality
// are visible in benchmark output, not just speed.
package hyperear

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"hyperear/internal/core"
	"hyperear/internal/dsp"
	"hyperear/internal/experiment"
	"hyperear/internal/imu"
	"hyperear/internal/obs"
	"hyperear/internal/room"
)

// benchOpt keeps figure benchmarks bounded; raise trials via the CLI for
// paper-scale runs.
func benchOpt() experiment.Options {
	return experiment.Options{Trials: 3, Seed: 9}
}

// reportFigure re-renders a figure's headline condition as benchmark
// metrics.
func reportFigure(b *testing.B, fig experiment.Figure) {
	b.Helper()
	for _, c := range fig.Conditions {
		if len(c.Errors) == 0 {
			continue
		}
		s := c.Summary()
		label := strings.NewReplacer(" ", "_", "\t", "_").Replace(c.Label)
		b.ReportMetric(s.Mean*100, "mean-cm/"+label)
	}
	if testing.Verbose() {
		b.Log("\n" + fig.String())
	}
}

func BenchmarkFig03NaiveAmbiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig3(benchOpt()))
	}
}

func BenchmarkFig04HyperbolaDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig4(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("fig4 incomplete")
		}
	}
}

func BenchmarkFig07DirectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig7(benchOpt())
		if len(fig.Conditions) < 2 {
			b.Fatalf("fig7 incomplete: %v", fig.Notes)
		}
	}
}

func BenchmarkFig08Segmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig8(benchOpt())
		if len(fig.Conditions) != 1 {
			b.Fatal("fig8 incomplete")
		}
	}
}

func BenchmarkFig09DriftCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig9(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("fig9 incomplete")
		}
	}
}

func BenchmarkFig14SlideLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig14(benchOpt()))
	}
}

func BenchmarkFig15DistanceS4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig15(benchOpt()))
	}
}

func BenchmarkFig16DistanceNote3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig16(benchOpt()))
	}
}

func BenchmarkFig17ThreeDS4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig17(benchOpt()))
	}
}

func BenchmarkFig18ThreeDNote3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig18(benchOpt()))
	}
}

func BenchmarkFig19NoiseRegimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig19(benchOpt()))
	}
}

func BenchmarkAblationSFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationSFO(benchOpt()))
	}
}

func BenchmarkAblationDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationDrift(benchOpt()))
	}
}

func BenchmarkAblationDirection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationDirection(benchOpt()))
	}
}

func BenchmarkAblationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationAggregation(benchOpt()))
	}
}

func BenchmarkDirectionComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunDirectionComparison(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("comparison incomplete")
		}
	}
}

func BenchmarkFull3DComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFull3DComparison(benchOpt()))
	}
}

// benchScenario is the standard 5-slide session the pipeline benchmarks
// share.
func benchScenario() Scenario {
	return Scenario{
		Env:            MeetingRoom(),
		Phone:          GalaxyS4(),
		Source:         DefaultBeacon(),
		SpeakerPos:     Vec3{X: 9, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20,
		PhoneStart:     Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:       DefaultProtocol(),
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          15,
		Seed:           12,
	}
}

// benchScenario12 is the multi-slide variant for the serial-vs-parallel
// comparison: twelve slides give the PDE fan-out real work per worker,
// and the longer session keeps the two ASP channel correlations — the
// dominant cost — big enough that splitting them across cores shows up
// in wall-clock. (The original 5-slide session pinned the fan-out to
// effectively serial scheduling noise; see the Serial/Parallel
// benchmarks below.)
func benchScenario12() Scenario {
	sc := benchScenario()
	sc.Protocol.Slides = 12
	return sc
}

// benchLocate2D runs the end-to-end Locate2D benchmark with the given
// worker-pool bound (1 = fully serial, 0 = GOMAXPROCS).
func benchLocate2D(b *testing.B, parallelism int) {
	benchLocate2DScenario(b, benchScenario(), parallelism)
}

func benchLocate2DScenario(b *testing.B, sc Scenario, parallelism int) {
	b.Helper()
	session, err := Simulate(sc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
	cfg.Parallelism = parallelism
	loc, err := NewLocalizerConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Untimed warm-up: pay the FFT plan caches and scratch-pool growth
	// outside the measurement so allocs/op reflects steady state and the
	// bench-compare alloc gate isn't at the mercy of b.N.
	if _, err := loc.Locate2D(session); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Locate2D(session); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineLocate2D measures the end-to-end pipeline cost on one
// pre-rendered 5-slide session (the per-localization latency a phone
// implementation would care about), at the default parallelism.
func BenchmarkPipelineLocate2D(b *testing.B) { benchLocate2D(b, 0) }

// BenchmarkPipelineLocate2DSerial pins the pipeline to one worker on the
// twelve-slide session. Compare against BenchmarkPipelineLocate2DParallel:
// on ≥2 cores the two-channel ASP fan-out alone should approach 2× (the
// matched-filter FFTs dominate), with the PDE fan-out adding more.
//
// On a GOMAXPROCS==1 machine the two benchmarks are legitimately equal:
// parallelFor resolves `workers ≤ 0` to GOMAXPROCS and `workers == 1`
// runs inline, so both settings take the identical serial path — the
// "serial==parallel anomaly" of earlier bench files was this, not a
// broken fan-out. TestParallelFasterThanSerial asserts the separation
// wherever GOMAXPROCS > 1.
func BenchmarkPipelineLocate2DSerial(b *testing.B) {
	benchLocate2DScenario(b, benchScenario12(), 1)
}

// BenchmarkPipelineLocate2DParallel uses the full worker pool
// (GOMAXPROCS) on the same twelve-slide session as Serial.
func BenchmarkPipelineLocate2DParallel(b *testing.B) {
	benchLocate2DScenario(b, benchScenario12(), 0)
}

// BenchmarkPipelineLocate2DObserved runs the same session with a live
// obs hook (in-memory sink + registry). Compare against
// BenchmarkPipelineLocate2D (nil hook) for the enabled-path overhead;
// the disabled-path overhead itself is pinned at 0 B/op by
// internal/obs.BenchmarkDisabledSpan. The benchmark fails if the
// instrumented pipeline stops emitting spans or slide tallies, so a
// bench-smoke run catches observability plumbing rot.
func BenchmarkPipelineLocate2DObserved(b *testing.B) {
	sc := benchScenario()
	session, err := Simulate(sc)
	if err != nil {
		b.Fatal(err)
	}
	sink := &obs.MemSink{}
	reg := obs.NewRegistry()
	cfg := core.DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
	cfg.Obs = obs.New(sink, reg)
	loc, err := NewLocalizerConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Untimed warm-up so allocs/op reflects steady state (see
	// benchLocate2DScenario). Its movements still land in the registry
	// tallies, so seed the counter with them.
	var movements int
	warm, err := loc.Locate2D(session)
	if err != nil {
		b.Fatal(err)
	}
	movements += warm.Movements
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fix, err := loc.Locate2D(session)
		if err != nil {
			b.Fatal(err)
		}
		movements += fix.Movements
	}
	b.StopTimer()
	if len(sink.Events()) == 0 {
		b.Fatal("instrumented pipeline emitted no spans")
	}
	snap := reg.Snapshot()
	accepted := snap.Counters[core.MSlideAccepted]
	rejected := snap.SumPrefix(core.MSlideRejectedPrefix)
	if accepted+rejected == 0 {
		b.Fatal("instrumented pipeline recorded no slide tallies")
	}
	if got, want := accepted+rejected, uint64(movements); got != want {
		b.Fatalf("slide tallies = %d, want %d movements", got, want)
	}
}

// noPlanFFT is a textbook recursive Cooley-Tukey that recomputes twiddles
// and allocates half-size scratch at every level — what the DSP layer did
// before plans, kept here as the benchmark baseline.
func noPlanFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fe := noPlanFFT(even)
	fo := noPlanFFT(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		t := complex(math.Cos(ang), math.Sin(ang)) * fo[k]
		out[k] = fe[k] + t
		out[k+n/2] = fe[k] - t
	}
	return out
}

// noPlanCrossCorrelate is the pre-plan matched filter: per-call FFTs of
// both operands with no caching, no pooling, no template reuse.
func noPlanCrossCorrelate(x, ref []float64) []float64 {
	n := dsp.NextPow2(len(x) + len(ref) - 1)
	fx := make([]complex128, n)
	fr := make([]complex128, n)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	for i, v := range ref {
		fr[i] = complex(v, 0)
	}
	X := noPlanFFT(fx)
	R := noPlanFFT(fr)
	for i := range X {
		X[i] *= cmplx.Conj(R[i])
	}
	// Inverse via conjugation.
	for i := range X {
		X[i] = cmplx.Conj(X[i])
	}
	Y := noPlanFFT(X)
	out := make([]float64, len(x))
	for i := range out {
		out[i] = real(cmplx.Conj(Y[i])) / float64(n)
	}
	return out
}

// benchCorrelateInput builds the matched-filter workload the detector
// runs per channel: one second of audio against the 40 ms template.
func benchCorrelateInput() (x, ref []float64) {
	x = make([]float64, 44100)
	ref = make([]float64, 1764)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.127)
	}
	for i := range ref {
		ref[i] = math.Cos(float64(i) * 0.211)
	}
	return x, ref
}

// BenchmarkCrossCorrelateNoPlan is the no-plan baseline for the plan
// benchmarks below (and BenchmarkCrossCorrelatePlanInto /
// BenchmarkCorrelatorCrossCorrelate in internal/dsp).
func BenchmarkCrossCorrelateNoPlan(b *testing.B) {
	x, ref := benchCorrelateInput()
	// Sanity-pin the baseline against the production path once.
	want := dsp.CrossCorrelate(x, ref)
	got := noPlanCrossCorrelate(x, ref)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			b.Fatalf("no-plan baseline diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noPlanCrossCorrelate(x, ref)
	}
}

// BenchmarkCrossCorrelatePlan is the plan-cached, scratch-pooled path on
// the same workload; with a reused destination it runs allocation-free in
// steady state (see -benchmem, and TestPlanPathZeroAllocs in
// internal/dsp). Since the real-input fast path landed this runs entirely
// on packed half-size transforms — compare against
// BenchmarkCrossCorrelateComplexFFT for the real-vs-complex speedup on the
// identical workload.
func BenchmarkCrossCorrelatePlan(b *testing.B) {
	x, ref := benchCorrelateInput()
	dst := dsp.CrossCorrelateInto(nil, x, ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dsp.CrossCorrelateInto(dst, x, ref)
	}
}

// complexCrossCorrelate is the previous production matched filter: widen
// both real operands to complex128, run full-size plan-cached transforms,
// multiply by the conjugate, and invert. Buffers are caller-reused, so the
// comparison against the real-input path isolates the transform and
// memory-traffic win (half-size FFTs, half the bytes) rather than
// allocator noise.
func complexCrossCorrelate(dst []float64, fx, fr []complex128, x, ref []float64) {
	n := len(fx)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	for i := len(x); i < n; i++ {
		fx[i] = 0
	}
	for i, v := range ref {
		fr[i] = complex(v, 0)
	}
	for i := len(ref); i < n; i++ {
		fr[i] = 0
	}
	if err := dsp.FFT(fx); err != nil {
		panic(err)
	}
	if err := dsp.FFT(fr); err != nil {
		panic(err)
	}
	for i, c := range fr {
		fx[i] *= complex(real(c), -imag(c))
	}
	if err := dsp.IFFT(fx); err != nil {
		panic(err)
	}
	for i := range dst {
		dst[i] = real(fx[i])
	}
}

// BenchmarkCrossCorrelateComplexFFT is the complex-transform baseline
// paired with BenchmarkCrossCorrelatePlan: the same detector-sized
// workload through full-size complex FFTs. The real-input path must beat
// it by ≥1.8× (see DESIGN.md "Performance architecture").
func BenchmarkCrossCorrelateComplexFFT(b *testing.B) {
	x, ref := benchCorrelateInput()
	n := dsp.NextPow2(len(x) + len(ref) - 1)
	fx := make([]complex128, n)
	fr := make([]complex128, n)
	dst := make([]float64, len(x))
	// Sanity-pin the baseline against the production path once.
	complexCrossCorrelate(dst, fx, fr, x, ref)
	want := dsp.CrossCorrelate(x, ref)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-6 {
			b.Fatalf("complex baseline diverges at %d: %v vs %v", i, dst[i], want[i])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		complexCrossCorrelate(dst, fx, fr, x, ref)
	}
}

// BenchmarkSimulateSession measures the simulator's rendering cost for a
// standard session (audio synthesis dominates).
func BenchmarkSimulateSession(b *testing.B) {
	sc := Scenario{
		Env:        MeetingRoom(),
		Phone:      GalaxyS4(),
		Source:     DefaultBeacon(),
		SpeakerPos: Vec3{X: 9, Y: 6, Z: 1.2},
		PhoneStart: Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:   DefaultProtocol(),
		IMU:        imu.DefaultConfig(),
		Seed:       12,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunBaselineComparison(benchOpt()))
	}
}
