// Package hyperear's benchmark harness: one benchmark per reproduced
// figure (run the tables with `go test -bench Fig -benchtime 1x`) plus
// ablation and micro benchmarks. Each figure benchmark executes the same
// experiment.RunFigNN the CLI uses, at a reduced trial count, and reports
// the headline error statistics as custom metrics (mean-cm, p90-cm of the
// figure's most adverse condition) so regressions in reproduction quality
// are visible in benchmark output, not just speed.
package hyperear

import (
	"strings"
	"testing"

	"hyperear/internal/experiment"
	"hyperear/internal/imu"
	"hyperear/internal/room"
)

// benchOpt keeps figure benchmarks bounded; raise trials via the CLI for
// paper-scale runs.
func benchOpt() experiment.Options {
	return experiment.Options{Trials: 3, Seed: 9}
}

// reportFigure re-renders a figure's headline condition as benchmark
// metrics.
func reportFigure(b *testing.B, fig experiment.Figure) {
	b.Helper()
	for _, c := range fig.Conditions {
		if len(c.Errors) == 0 {
			continue
		}
		s := c.Summary()
		label := strings.NewReplacer(" ", "_", "\t", "_").Replace(c.Label)
		b.ReportMetric(s.Mean*100, "mean-cm/"+label)
	}
	if testing.Verbose() {
		b.Log("\n" + fig.String())
	}
}

func BenchmarkFig03NaiveAmbiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig3(benchOpt()))
	}
}

func BenchmarkFig04HyperbolaDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig4(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("fig4 incomplete")
		}
	}
}

func BenchmarkFig07DirectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig7(benchOpt())
		if len(fig.Conditions) < 2 {
			b.Fatalf("fig7 incomplete: %v", fig.Notes)
		}
	}
}

func BenchmarkFig08Segmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig8(benchOpt())
		if len(fig.Conditions) != 1 {
			b.Fatal("fig8 incomplete")
		}
	}
}

func BenchmarkFig09DriftCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunFig9(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("fig9 incomplete")
		}
	}
}

func BenchmarkFig14SlideLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig14(benchOpt()))
	}
}

func BenchmarkFig15DistanceS4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig15(benchOpt()))
	}
}

func BenchmarkFig16DistanceNote3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig16(benchOpt()))
	}
}

func BenchmarkFig17ThreeDS4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig17(benchOpt()))
	}
}

func BenchmarkFig18ThreeDNote3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig18(benchOpt()))
	}
}

func BenchmarkFig19NoiseRegimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFig19(benchOpt()))
	}
}

func BenchmarkAblationSFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationSFO(benchOpt()))
	}
}

func BenchmarkAblationDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationDrift(benchOpt()))
	}
}

func BenchmarkAblationDirection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationDirection(benchOpt()))
	}
}

func BenchmarkAblationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunAblationAggregation(benchOpt()))
	}
}

func BenchmarkDirectionComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.RunDirectionComparison(benchOpt())
		if len(fig.Conditions) != 2 {
			b.Fatal("comparison incomplete")
		}
	}
}

func BenchmarkFull3DComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunFull3DComparison(benchOpt()))
	}
}

// BenchmarkPipelineLocate2D measures the end-to-end pipeline cost on one
// pre-rendered 5-slide session (the per-localization latency a phone
// implementation would care about).
func BenchmarkPipelineLocate2D(b *testing.B) {
	sc := Scenario{
		Env:            MeetingRoom(),
		Phone:          GalaxyS4(),
		Source:         DefaultBeacon(),
		SpeakerPos:     Vec3{X: 9, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20,
		PhoneStart:     Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:       DefaultProtocol(),
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          15,
		Seed:           12,
	}
	session, err := Simulate(sc)
	if err != nil {
		b.Fatal(err)
	}
	loc, err := NewLocalizer(sc.Phone, sc.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Locate2D(session); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSession measures the simulator's rendering cost for a
// standard session (audio synthesis dominates).
func BenchmarkSimulateSession(b *testing.B) {
	sc := Scenario{
		Env:        MeetingRoom(),
		Phone:      GalaxyS4(),
		Source:     DefaultBeacon(),
		SpeakerPos: Vec3{X: 9, Y: 6, Z: 1.2},
		PhoneStart: Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:   DefaultProtocol(),
		IMU:        imu.DefaultConfig(),
		Seed:       12,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFigure(b, experiment.RunBaselineComparison(benchOpt()))
	}
}
