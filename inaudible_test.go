package hyperear

import (
	"testing"

	"hyperear/internal/imu"
	"hyperear/internal/room"
)

// TestInaudibleBeaconEndToEnd runs the paper's future-work configuration
// through the full pipeline: an 18-21.5 kHz chirp captured at 48 kHz
// through a microphone with 8 dB of high-frequency roll-off, localized
// with the response-calibrated matched filter.
func TestInaudibleBeaconEndToEnd(t *testing.T) {
	phone := GalaxyS4().HiResVariant()
	beacon := InaudibleBeacon()
	sc := Scenario{
		Env:            MeetingRoom(),
		Phone:          phone,
		Source:         beacon,
		SpeakerPos:     Vec3{X: 9, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 20,
		PhoneStart:     Vec3{X: 5, Y: 6, Z: 1.2},
		Protocol:       DefaultProtocol(),
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          15,
		Seed:           31,
	}
	s, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(phone, beacon)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := loc.Locate2D(s)
	if err != nil {
		t.Fatal(err)
	}
	if fix.Slides < 3 {
		t.Errorf("slides = %d, want ≥3", fix.Slides)
	}
	// The near-ultrasonic beacon has less bandwidth and eats an ~8 dB
	// roll-off, so allow a wider envelope than the audible beacon's.
	if e := Error2D(fix.World, s); e > 1.0 {
		t.Errorf("inaudible 2D error at 4 m = %.2f m, want < 1.0 m", e)
	}
}

// TestInaudibleVsAudibleAccuracy documents the expected ordering: the
// audible beacon, with its wider fractional bandwidth and no roll-off
// penalty, should localize at least as well as the inaudible one on the
// same geometry and seed.
func TestInaudibleVsAudibleAccuracy(t *testing.T) {
	run := func(phone Phone, beacon Beacon) float64 {
		sc := Scenario{
			Env:            MeetingRoom(),
			Phone:          phone,
			Source:         beacon,
			SpeakerPos:     Vec3{X: 9, Y: 6, Z: 1.2},
			SpeakerSkewPPM: 20,
			PhoneStart:     Vec3{X: 5, Y: 6, Z: 1.2},
			Protocol:       DefaultProtocol(),
			IMU:            imu.DefaultConfig(),
			Noise:          room.WhiteNoise{},
			SNRdB:          15,
			Seed:           32,
		}
		s, err := Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		loc, err := NewLocalizer(phone, beacon)
		if err != nil {
			t.Fatal(err)
		}
		fix, err := loc.Locate2D(s)
		if err != nil {
			t.Fatalf("%s: %v", phone.Name, err)
		}
		return Error2D(fix.World, s)
	}
	audible := run(GalaxyS4(), DefaultBeacon())
	inaudible := run(GalaxyS4().HiResVariant(), InaudibleBeacon())
	t.Logf("audible error %.1f cm, inaudible error %.1f cm", audible*100, inaudible*100)
	if audible > 0.4 {
		t.Errorf("audible error %.2f m unexpectedly large", audible)
	}
	if inaudible > 1.0 {
		t.Errorf("inaudible error %.2f m unexpectedly large", inaudible)
	}
}
