// Package motion models how the phone moves through the air during a
// HyperEar session: minimum-jerk sliding strokes (the natural profile of a
// human point-to-point arm movement), holds, stature changes, rotation
// sweeps for direction finding, and the hand tremor + rotation jitter that
// distinguish the paper's "in hand" experiments from its "slide ruler"
// experiments.
//
// All trajectories are analytic: position, velocity, acceleration,
// orientation, and angular velocity are exact closed-form functions of
// time. The microphone renderer integrates the acoustic field along the
// exact mic paths, and the IMU simulator samples the exact kinematics, so
// any disagreement downstream is attributable to sensor/channel noise, not
// to numerical differentiation.
package motion

import (
	"hyperear/internal/geom"
)

// Pose is the phone's full kinematic state at one instant. Orientation
// maps body coordinates to world coordinates. The phone body frame follows
// the paper's convention (Fig. 6): x to the phone's right, y along the
// phone's long axis (the mic axis: Mic1 at +y, Mic2 at -y), z out of the
// screen.
type Pose struct {
	Pos    geom.Vec3 // world position of the phone center (m)
	Vel    geom.Vec3 // world velocity (m/s)
	Acc    geom.Vec3 // world acceleration (m/s²)
	Orient geom.Quat // body→world rotation
	AngVel geom.Vec3 // body-frame angular velocity (rad/s)
}

// Trajectory yields the phone pose over a finite time span [0, Duration].
type Trajectory interface {
	Pose(t float64) Pose
	Duration() float64
}

// MinJerkS returns the minimum-jerk position profile s(τ) ∈ [0,1] for
// normalized time τ ∈ [0,1]: s = 10τ³ - 15τ⁴ + 6τ⁵.
func MinJerkS(tau float64) float64 {
	tau = geom.Clamp(tau, 0, 1)
	return tau * tau * tau * (10 + tau*(-15+6*tau))
}

// MinJerkV returns ds/dτ of the minimum-jerk profile.
func MinJerkV(tau float64) float64 {
	if tau <= 0 || tau >= 1 {
		return 0
	}
	return tau * tau * (30 + tau*(-60+30*tau))
}

// MinJerkA returns d²s/dτ² of the minimum-jerk profile.
func MinJerkA(tau float64) float64 {
	if tau <= 0 || tau >= 1 {
		return 0
	}
	return tau * (60 + tau*(-180+120*tau))
}

// hold keeps the phone stationary at a fixed pose.
type hold struct {
	pos    geom.Vec3
	orient geom.Quat
	dur    float64
}

func (h hold) Duration() float64 { return h.dur }

func (h hold) Pose(float64) Pose {
	return Pose{Pos: h.pos, Orient: h.orient}
}

// slide translates the phone by dist along a fixed world direction with a
// minimum-jerk profile, keeping orientation constant.
type slide struct {
	start  geom.Vec3
	dir    geom.Vec3 // unit
	dist   float64
	orient geom.Quat
	dur    float64
}

func (s slide) Duration() float64 { return s.dur }

func (s slide) Pose(t float64) Pose {
	tau := geom.Clamp(t/s.dur, 0, 1)
	p := s.start.Add(s.dir.Scale(s.dist * MinJerkS(tau)))
	v := s.dir.Scale(s.dist * MinJerkV(tau) / s.dur)
	a := s.dir.Scale(s.dist * MinJerkA(tau) / (s.dur * s.dur))
	return Pose{Pos: p, Vel: v, Acc: a, Orient: s.orient}
}

// rotZ rotates the phone about the world z-axis from yaw0 to yaw1 at a
// constant rate, keeping position fixed.
type rotZ struct {
	pos        geom.Vec3
	yaw0, yaw1 float64
	dur        float64
}

func (r rotZ) Duration() float64 { return r.dur }

func (r rotZ) Pose(t float64) Pose {
	tau := geom.Clamp(t/r.dur, 0, 1)
	yaw := r.yaw0 + (r.yaw1-r.yaw0)*tau
	rate := 0.0
	if t >= 0 && t <= r.dur {
		rate = (r.yaw1 - r.yaw0) / r.dur
	}
	return Pose{
		Pos:    r.pos,
		Orient: geom.QuatAxisAngle(geom.Vec3{Z: 1}, yaw),
		// Body z stays aligned with world z for a flat-held phone, so the
		// body-frame angular velocity is the yaw rate about z.
		AngVel: geom.Vec3{Z: rate},
	}
}

// composite chains trajectories end to end.
type composite struct {
	parts  []Trajectory
	starts []float64
	total  float64
}

// Compose concatenates trajectories; each part's local time starts where
// the previous ended.
func Compose(parts ...Trajectory) Trajectory {
	c := &composite{parts: parts}
	t := 0.0
	for _, p := range parts {
		c.starts = append(c.starts, t)
		t += p.Duration()
	}
	c.total = t
	return c
}

func (c *composite) Duration() float64 { return c.total }

func (c *composite) Pose(t float64) Pose {
	if len(c.parts) == 0 {
		return Pose{Orient: geom.QuatIdentity()}
	}
	if t <= 0 {
		return c.parts[0].Pose(0)
	}
	if t >= c.total {
		last := c.parts[len(c.parts)-1]
		return last.Pose(last.Duration())
	}
	// Binary search would be overkill; sessions have a handful of parts.
	for i := len(c.parts) - 1; i >= 0; i-- {
		if t >= c.starts[i] {
			return c.parts[i].Pose(t - c.starts[i])
		}
	}
	return c.parts[0].Pose(0)
}
