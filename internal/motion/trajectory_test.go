package motion

import (
	"math"
	"testing"
	"testing/quick"

	"hyperear/internal/geom"
)

func TestMinJerkBoundaryConditions(t *testing.T) {
	if MinJerkS(0) != 0 || MinJerkS(1) != 1 {
		t.Errorf("s(0)=%v s(1)=%v, want 0 and 1", MinJerkS(0), MinJerkS(1))
	}
	if MinJerkV(0) != 0 || MinJerkV(1) != 0 {
		t.Errorf("v(0)=%v v(1)=%v, want 0", MinJerkV(0), MinJerkV(1))
	}
	if MinJerkA(0) != 0 || MinJerkA(1) != 0 {
		t.Errorf("a(0)=%v a(1)=%v, want 0", MinJerkA(0), MinJerkA(1))
	}
	// Clamping outside [0,1].
	if MinJerkS(-1) != 0 || MinJerkS(2) != 1 {
		t.Error("MinJerkS should clamp")
	}
}

func TestMinJerkDerivativesConsistent(t *testing.T) {
	// Numerical derivative of s must match v; of v must match a.
	const h = 1e-6
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.77, 0.9} {
		numV := (MinJerkS(tau+h) - MinJerkS(tau-h)) / (2 * h)
		if math.Abs(numV-MinJerkV(tau)) > 1e-6 {
			t.Errorf("v(%v): numeric %v vs analytic %v", tau, numV, MinJerkV(tau))
		}
		numA := (MinJerkV(tau+h) - MinJerkV(tau-h)) / (2 * h)
		if math.Abs(numA-MinJerkA(tau)) > 1e-5 {
			t.Errorf("a(%v): numeric %v vs analytic %v", tau, numA, MinJerkA(tau))
		}
	}
}

func TestMinJerkMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1))
		b := math.Abs(math.Mod(bRaw, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return MinJerkS(a) <= MinJerkS(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidePhaseKinematics(t *testing.T) {
	b := NewBuilder(geom.Vec3{X: 1, Y: 2, Z: 1}, 0)
	traj, err := b.Slide(0.5, 1.0).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Start and end at rest; displacement along body +y = world +y.
	p0 := traj.Pose(0)
	p1 := traj.Pose(traj.Duration())
	if p0.Vel.Norm() > 1e-12 || p1.Vel.Norm() > 1e-12 {
		t.Errorf("slide should start/end at rest: %v, %v", p0.Vel, p1.Vel)
	}
	if d := p1.Pos.Sub(p0.Pos); math.Abs(d.Y-0.5) > 1e-12 || math.Abs(d.X) > 1e-12 {
		t.Errorf("displacement = %v, want (0, 0.5, 0)", d)
	}
	// Midpoint should move at peak speed 1.875·d/T.
	pm := traj.Pose(0.5)
	if math.Abs(pm.Vel.Y-1.875*0.5) > 1e-9 {
		t.Errorf("peak velocity = %v, want %v", pm.Vel.Y, 1.875*0.5)
	}
}

func TestSlideVelocityIsDerivativeOfPosition(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, geom.Radians(30))
	traj, err := b.Slide(0.6, 0.9).Build()
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for _, tt := range []float64{0.1, 0.33, 0.5, 0.8} {
		num := traj.Pose(tt + h).Pos.Sub(traj.Pose(tt - h).Pos).Scale(1 / (2 * h))
		ana := traj.Pose(tt).Vel
		if num.Sub(ana).Norm() > 1e-5 {
			t.Errorf("t=%v: numeric vel %v vs analytic %v", tt, num, ana)
		}
		numA := traj.Pose(tt + h).Vel.Sub(traj.Pose(tt - h).Vel).Scale(1 / (2 * h))
		anaA := traj.Pose(tt).Acc
		if numA.Sub(anaA).Norm() > 1e-4 {
			t.Errorf("t=%v: numeric acc %v vs analytic %v", tt, numA, anaA)
		}
	}
}

func TestNegativeSlide(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, 0)
	traj, err := b.Slide(-0.4, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	end := traj.Pose(traj.Duration()).Pos
	if math.Abs(end.Y+0.4) > 1e-12 {
		t.Errorf("backward slide end = %v, want y=-0.4", end)
	}
}

func TestHoldPhase(t *testing.T) {
	b := NewBuilder(geom.Vec3{X: 3}, 0.5)
	traj, err := b.Hold(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	p := traj.Pose(1)
	if p.Pos != (geom.Vec3{X: 3}) || p.Vel.Norm() != 0 || p.Acc.Norm() != 0 {
		t.Errorf("hold pose = %+v", p)
	}
}

func TestRotateToSweep(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, 0)
	traj, err := b.RotateTo(math.Pi/2, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Body +y at t=0 is world +y; at the end it is world -x.
	start := traj.Pose(0).Orient.Apply(geom.Vec3{Y: 1})
	end := traj.Pose(2).Orient.Apply(geom.Vec3{Y: 1})
	if start.Sub(geom.Vec3{Y: 1}).Norm() > 1e-9 {
		t.Errorf("start body-y = %v", start)
	}
	if end.Sub(geom.Vec3{X: -1}).Norm() > 1e-9 {
		t.Errorf("end body-y = %v, want -x", end)
	}
	if w := traj.Pose(1).AngVel.Z; math.Abs(w-math.Pi/4) > 1e-9 {
		t.Errorf("yaw rate = %v, want π/4", w)
	}
}

func TestComposeContinuity(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, 0)
	traj, err := b.Hold(0.5).
		Slide(0.5, 1).
		Hold(0.3).
		Slide(-0.5, 1).
		ChangeHeight(0.4, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := traj.Duration(), 3.8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("duration = %v, want %v", got, want)
	}
	// Sample densely: position must be continuous (no jumps > vmax·dt).
	prev := traj.Pose(0).Pos
	const dt = 1e-3
	for tt := dt; tt <= traj.Duration(); tt += dt {
		cur := traj.Pose(tt).Pos
		if cur.Sub(prev).Norm() > 2e-3 { // max speed ≈ 0.94 m/s
			t.Fatalf("discontinuity at t=%v: %v -> %v", tt, prev, cur)
		}
		prev = cur
	}
	// Net displacement: slides cancel, height +0.4.
	end := traj.Pose(traj.Duration()).Pos
	if math.Abs(end.X) > 1e-9 || math.Abs(end.Y) > 1e-9 || math.Abs(end.Z-0.4) > 1e-9 {
		t.Errorf("end position = %v, want (0,0,0.4)", end)
	}
}

func TestComposeClampsOutOfRange(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, 0)
	traj, err := b.Slide(0.5, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := traj.Pose(-5).Pos; got != traj.Pose(0).Pos {
		t.Errorf("t<0 should clamp to start, got %v", got)
	}
	if got := traj.Pose(99).Pos; got != traj.Pose(1).Pos {
		t.Errorf("t>end should clamp to end, got %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(geom.Vec3{}, 0).Build(); err == nil {
		t.Error("empty session should error")
	}
	if _, err := NewBuilder(geom.Vec3{}, 0).Hold(-1).Build(); err == nil {
		t.Error("negative hold should error")
	}
	if _, err := NewBuilder(geom.Vec3{}, 0).Slide(0.5, 0).Build(); err == nil {
		t.Error("zero-duration slide should error")
	}
	// Error sticks: later valid phases don't clear it.
	if _, err := NewBuilder(geom.Vec3{}, 0).Hold(-1).Hold(1).Build(); err == nil {
		t.Error("error should persist")
	}
}

func TestBuilderYawAffectsSlideDirection(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, math.Pi/2) // body +y points along world -x
	traj, err := b.Slide(1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	end := traj.Pose(1).Pos
	if math.Abs(end.X+1) > 1e-9 || math.Abs(end.Y) > 1e-9 {
		t.Errorf("yawed slide end = %v, want (-1,0,0)", end)
	}
}
