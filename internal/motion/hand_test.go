package motion

import (
	"math"
	"math/rand"
	"testing"

	"hyperear/internal/geom"
)

func TestNoTremorIsIdentity(t *testing.T) {
	b := NewBuilder(geom.Vec3{}, 0)
	base, err := b.Slide(0.5, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	shaky := &Shaky{Base: base, Tremor: NoTremor()}
	for _, tt := range []float64{0, 0.25, 0.5, 1} {
		a := base.Pose(tt)
		bb := shaky.Pose(tt)
		if a.Pos.Sub(bb.Pos).Norm() > 1e-12 || a.Vel.Sub(bb.Vel).Norm() > 1e-12 {
			t.Errorf("t=%v: NoTremor changed the pose", tt)
		}
	}
}

func TestTremorPerturbationScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTremor(rng, 0.003, 5)
	b := NewBuilder(geom.Vec3{}, 0)
	base, err := b.Hold(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	shaky := &Shaky{Base: base, Tremor: tr}
	var maxOff float64
	for tt := 0.0; tt < 2; tt += 0.005 {
		off := shaky.Pose(tt).Pos.Norm()
		maxOff = math.Max(maxOff, off)
	}
	if maxOff == 0 {
		t.Fatal("tremor produced no perturbation")
	}
	if maxOff > 0.03 {
		t.Errorf("tremor peak offset %v m too large for 3 mm amplitude", maxOff)
	}
}

func TestTremorDerivativesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewTremor(rng, 0.004, 8)
	b := NewBuilder(geom.Vec3{}, 0)
	base, err := b.Hold(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	shaky := &Shaky{Base: base, Tremor: tr}
	const h = 1e-6
	for _, tt := range []float64{0.2, 0.7, 1.4} {
		num := shaky.Pose(tt + h).Pos.Sub(shaky.Pose(tt - h).Pos).Scale(1 / (2 * h))
		ana := shaky.Pose(tt).Vel
		if num.Sub(ana).Norm() > 1e-4 {
			t.Errorf("t=%v: numeric vel %v vs analytic %v", tt, num, ana)
		}
		numA := shaky.Pose(tt + h).Vel.Sub(shaky.Pose(tt - h).Vel).Scale(1 / (2 * h))
		anaA := shaky.Pose(tt).Acc
		if numA.Sub(anaA).Norm() > 1e-2 {
			t.Errorf("t=%v: numeric acc %v vs analytic %v", tt, numA, anaA)
		}
	}
}

func TestTremorRotationWobble(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTremor(rng, 0, 10)
	b := NewBuilder(geom.Vec3{}, 0)
	base, err := b.Hold(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	shaky := &Shaky{Base: base, Tremor: tr}
	// Body +y direction should wobble around world +y but never flip.
	var maxDev float64
	for tt := 0.0; tt < 2; tt += 0.01 {
		y := shaky.Pose(tt).Orient.Apply(geom.Vec3{Y: 1})
		dev := math.Acos(geom.Clamp(y.Dot(geom.Vec3{Y: 1}), -1, 1))
		maxDev = math.Max(maxDev, dev)
	}
	if maxDev == 0 {
		t.Fatal("no rotational wobble")
	}
	if maxDev > geom.Radians(40) {
		t.Errorf("wobble %v deg too large for 10 deg amplitude", geom.Degrees(maxDev))
	}
	if tr.MaxRotation() == 0 {
		t.Error("MaxRotation should be positive")
	}
	if NoTremor().MaxRotation() != 0 {
		t.Error("NoTremor MaxRotation should be 0")
	}
}

func TestTremorDeterministicPerSeed(t *testing.T) {
	a := NewTremor(rand.New(rand.NewSource(9)), 0.003, 5)
	b := NewTremor(rand.New(rand.NewSource(9)), 0.003, 5)
	pa, _, _, ra, _ := a.offset(0.5)
	pb, _, _, rb, _ := b.offset(0.5)
	if pa != pb || ra != rb {
		t.Error("tremor must be deterministic for equal seeds")
	}
}

func TestNilTremorOffset(t *testing.T) {
	var tr *Tremor
	p, v, a, r, rr := tr.offset(1)
	if p.Norm() != 0 || v.Norm() != 0 || a.Norm() != 0 || r != 0 || rr != 0 {
		t.Error("nil tremor must be a no-op")
	}
	if tr.MaxRotation() != 0 {
		t.Error("nil tremor MaxRotation must be 0")
	}
}
