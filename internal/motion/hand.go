package motion

import (
	"math"
	"math/rand"

	"hyperear/internal/geom"
)

// Tremor is the smooth, band-limited perturbation of an unsupported human
// hand: a sum of random low-frequency harmonics per position axis plus a
// z-axis rotation wobble. A Tremor with zero amplitudes is a no-op and
// models the paper's slide-ruler experiments.
type Tremor struct {
	pos [3][]harmonic
	rot []harmonic
}

type harmonic struct {
	amp, freq, phase float64
}

// NewTremor draws a random tremor realization: posAmp is the positional
// wobble scale per axis in meters at 1 Hz, rotAmpDeg the z-rotation wobble
// scale in degrees at 1 Hz. Physiological hand tremor concentrates in
// 1-12 Hz with displacement falling off roughly as 1/f², which keeps the
// tremor *acceleration* bounded (a few tenths of m/s² for millimeter-scale
// posAmp) — large enough to perturb TDoAs, small enough that the paper's
// 0.2 (m/s²)² segmentation threshold still separates slides from rest.
func NewTremor(rng *rand.Rand, posAmp, rotAmpDeg float64) *Tremor {
	tr := &Tremor{}
	const nHarm = 4
	draw := func(amp float64) []harmonic {
		hs := make([]harmonic, nHarm)
		for i := range hs {
			f := 1 + 11*rng.Float64()
			hs[i] = harmonic{
				amp:   amp * (0.5 + rng.Float64()) * 2 / nHarm / (f * f),
				freq:  f,
				phase: rng.Float64() * 2 * math.Pi,
			}
		}
		return hs
	}
	for a := 0; a < 3; a++ {
		tr.pos[a] = draw(posAmp)
	}
	tr.rot = draw(geom.Radians(rotAmpDeg))
	return tr
}

// NoTremor returns the zero perturbation (slide-ruler mode).
func NoTremor() *Tremor { return &Tremor{} }

func evalHarmonics(hs []harmonic, t float64) (val, vel, acc float64) {
	for _, h := range hs {
		w := 2 * math.Pi * h.freq
		s, c := math.Sincos(w*t + h.phase)
		val += h.amp * s
		vel += h.amp * w * c
		acc -= h.amp * w * w * s
	}
	return val, vel, acc
}

// offset returns the positional perturbation and its derivatives plus the
// z-rotation perturbation (angle, rate) at time t.
func (tr *Tremor) offset(t float64) (pos, vel, acc geom.Vec3, rot, rotRate float64) {
	if tr == nil {
		return
	}
	var p, v, a [3]float64
	for axis := 0; axis < 3; axis++ {
		p[axis], v[axis], a[axis] = evalHarmonics(tr.pos[axis], t)
	}
	rot, rotRate, _ = evalHarmonics3(tr.rot, t)
	return geom.Vec3{X: p[0], Y: p[1], Z: p[2]},
		geom.Vec3{X: v[0], Y: v[1], Z: v[2]},
		geom.Vec3{X: a[0], Y: a[1], Z: a[2]},
		rot, rotRate
}

func evalHarmonics3(hs []harmonic, t float64) (val, vel, acc float64) {
	return evalHarmonics(hs, t)
}

// MaxRotation returns the worst-case magnitude of the rotation wobble in
// radians (sum of harmonic amplitudes), used by slide-quality gating tests.
func (tr *Tremor) MaxRotation() float64 {
	if tr == nil {
		return 0
	}
	var s float64
	for _, h := range tr.rot {
		s += math.Abs(h.amp)
	}
	return s
}

// Shaky wraps a base trajectory with a tremor perturbation. Position
// offsets are applied in the world frame; the rotation wobble composes a
// small z-axis rotation onto the base orientation.
type Shaky struct {
	Base   Trajectory
	Tremor *Tremor
}

// Duration implements Trajectory.
func (s *Shaky) Duration() float64 { return s.Base.Duration() }

// Pose implements Trajectory.
func (s *Shaky) Pose(t float64) Pose {
	p := s.Base.Pose(t)
	dp, dv, da, rot, rotRate := s.Tremor.offset(t)
	p.Pos = p.Pos.Add(dp)
	p.Vel = p.Vel.Add(dv)
	p.Acc = p.Acc.Add(da)
	p.Orient = geom.QuatAxisAngle(geom.Vec3{Z: 1}, rot).Mul(p.Orient).Normalize()
	p.AngVel = p.AngVel.Add(geom.Vec3{Z: rotRate})
	return p
}
