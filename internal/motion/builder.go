package motion

import (
	"fmt"

	"hyperear/internal/geom"
)

// Builder assembles a session trajectory phase by phase, tracking the
// phone's running position and yaw so phases join continuously. The phone
// is held flat (screen up); yaw is the rotation of the body frame about
// the world z-axis, with yaw 0 aligning body axes to world axes.
type Builder struct {
	parts []Trajectory
	pos   geom.Vec3
	yaw   float64
	err   error
}

// NewBuilder starts a session with the phone at start with the given yaw
// (radians).
func NewBuilder(start geom.Vec3, yaw float64) *Builder {
	return &Builder{pos: start, yaw: yaw}
}

func (b *Builder) orient() geom.Quat {
	return geom.QuatAxisAngle(geom.Vec3{Z: 1}, b.yaw)
}

// BodyY returns the world direction of the phone's +y (mic/slide) axis at
// the current yaw.
func (b *Builder) BodyY() geom.Vec3 {
	return b.orient().Apply(geom.Vec3{Y: 1})
}

// Hold keeps the phone still for dur seconds.
func (b *Builder) Hold(dur float64) *Builder {
	if b.check(dur > 0, "hold duration %v", dur) {
		b.parts = append(b.parts, hold{pos: b.pos, orient: b.orient(), dur: dur})
	}
	return b
}

// Slide moves the phone dist meters along its body +y axis (negative dist
// slides backward) over dur seconds with a minimum-jerk profile.
func (b *Builder) Slide(dist, dur float64) *Builder {
	dir := b.BodyY()
	if dist < 0 {
		dir = dir.Scale(-1)
		dist = -dist
	}
	return b.SlideWorld(dir, dist, dur)
}

// SlideWorld moves the phone dist meters along the given world direction
// over dur seconds, orientation unchanged.
func (b *Builder) SlideWorld(dir geom.Vec3, dist, dur float64) *Builder {
	if !b.check(dur > 0 && dist >= 0 && dir.Norm() > 0, "slide dist %v dur %v", dist, dur) {
		return b
	}
	dir = dir.Normalize()
	b.parts = append(b.parts, slide{
		start: b.pos, dir: dir, dist: dist, orient: b.orient(), dur: dur,
	})
	b.pos = b.pos.Add(dir.Scale(dist))
	return b
}

// ChangeHeight moves the phone vertically by dh meters over dur seconds
// (the stature change of the paper's 3D protocol, Fig. 11).
func (b *Builder) ChangeHeight(dh, dur float64) *Builder {
	if dh >= 0 {
		return b.SlideWorld(geom.Vec3{Z: 1}, dh, dur)
	}
	return b.SlideWorld(geom.Vec3{Z: -1}, -dh, dur)
}

// RotateTo yaws the phone about the world z-axis to the target yaw
// (radians) over dur seconds, position fixed — the rolling operation of
// the SDF stage.
func (b *Builder) RotateTo(yaw, dur float64) *Builder {
	if b.check(dur > 0, "rotate duration %v", dur) {
		b.parts = append(b.parts, rotZ{pos: b.pos, yaw0: b.yaw, yaw1: yaw, dur: dur})
		b.yaw = yaw
	}
	return b
}

// Pos returns the phone position after the phases added so far.
func (b *Builder) Pos() geom.Vec3 { return b.pos }

// Yaw returns the phone yaw after the phases added so far.
func (b *Builder) Yaw() float64 { return b.yaw }

// Build returns the assembled trajectory, or an error if any phase was
// invalid.
func (b *Builder) Build() (Trajectory, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.parts) == 0 {
		return nil, fmt.Errorf("motion: empty session")
	}
	return Compose(b.parts...), nil
}

func (b *Builder) check(ok bool, format string, args ...any) bool {
	if !ok && b.err == nil {
		b.err = fmt.Errorf("motion: invalid phase: "+format, args...)
	}
	return ok && b.err == nil
}
