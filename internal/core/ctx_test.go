package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"hyperear/internal/sim"
)

// ctxSession lazily renders one small session shared by the cancellation
// tests (rendering dominates test time; the pipeline itself is fast).
var ctxSession = sync.OnceValues(func() (*sim.Session, error) {
	sc := ruler2DScenario(4, 7)
	sc.Protocol.Slides = 2
	return sim.Run(sc)
})

func ctxLocalizer(t *testing.T) (*Localizer, *sim.Session) {
	t.Helper()
	s, err := ctxSession()
	if err != nil {
		t.Fatal(err)
	}
	sc := ruler2DScenario(4, 7)
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	return loc, s
}

func TestLocate2DContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.Locate2DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}
}

func TestLocate2DContextDeadline(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	if _, err := loc.Locate2DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestLocate2DContextBackground(t *testing.T) {
	loc, s := ctxLocalizer(t)
	res, err := loc.Locate2DContext(context.Background(), s.Recording, s.IMU)
	if err != nil {
		t.Fatalf("background context should behave like Locate2D: %v", err)
	}
	plain, err := loc.Locate2D(s.Recording, s.IMU)
	if err != nil {
		t.Fatal(err)
	}
	// Same localizer, same session, deterministic pipeline: the two runs
	// must agree bit-for-bit, so an exact compare is the right assertion.
	if res.L != plain.L || len(res.Fixes) != len(plain.Fixes) {
		t.Fatalf("context and plain results diverge: L %v vs %v, fixes %d vs %d",
			res.L, plain.L, len(res.Fixes), len(plain.Fixes))
	}
}

func TestASPProcessContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.asp.ProcessContext(ctx, s.Recording); !errors.Is(err, context.Canceled) {
		t.Fatalf("ASP with pre-canceled context: got %v, want context.Canceled", err)
	}
}

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls, so cancellation deterministically lands in
// the middle of a detection pass rather than before it starts.
type countdownCtx struct {
	context.Context
	calls, after int64
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestASPProcessContextCancelMidRecording: the two-level channel×block
// schedule checks ctx between overlap-save blocks, so a context canceled
// only after the detection pass has started still aborts the stage — and
// the per-block checks actually happen (the Err call count exceeds the
// handful of stage-boundary checks by at least the block count).
func TestASPProcessContextCancelMidRecording(t *testing.T) {
	loc, s := ctxLocalizer(t)

	// A never-canceling counter proves detection polls the context per
	// block: one full pass must consult Err far more often than the ~4
	// stage-boundary checks the pre-segmented pipeline made.
	counting := &countdownCtx{Context: context.Background(), after: 1 << 62}
	if _, err := loc.asp.ProcessContext(counting, s.Recording); err != nil {
		t.Fatal(err)
	}
	if counting.calls < 8 {
		t.Fatalf("ProcessContext consulted ctx.Err only %d times; want per-block checks", counting.calls)
	}

	// Cancel mid-pass: the entry checks pass, then the countdown expires
	// between blocks and the stage must surface context.Canceled.
	mid := &countdownCtx{Context: context.Background(), after: 3}
	if _, err := loc.asp.ProcessContext(mid, s.Recording); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-recording cancel: got %v, want context.Canceled", err)
	}
	if mid.calls <= mid.after {
		t.Fatalf("countdown never expired (%d calls); cancel did not land mid-pass", mid.calls)
	}
}

func TestLocateFull3DContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.LocateFull3DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.Canceled) {
		t.Fatalf("full3D with pre-canceled context: got %v, want context.Canceled", err)
	}
}
