package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"hyperear/internal/sim"
)

// ctxSession lazily renders one small session shared by the cancellation
// tests (rendering dominates test time; the pipeline itself is fast).
var ctxSession = sync.OnceValues(func() (*sim.Session, error) {
	sc := ruler2DScenario(4, 7)
	sc.Protocol.Slides = 2
	return sim.Run(sc)
})

func ctxLocalizer(t *testing.T) (*Localizer, *sim.Session) {
	t.Helper()
	s, err := ctxSession()
	if err != nil {
		t.Fatal(err)
	}
	sc := ruler2DScenario(4, 7)
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	return loc, s
}

func TestLocate2DContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.Locate2DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}
}

func TestLocate2DContextDeadline(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	if _, err := loc.Locate2DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestLocate2DContextBackground(t *testing.T) {
	loc, s := ctxLocalizer(t)
	res, err := loc.Locate2DContext(context.Background(), s.Recording, s.IMU)
	if err != nil {
		t.Fatalf("background context should behave like Locate2D: %v", err)
	}
	plain, err := loc.Locate2D(s.Recording, s.IMU)
	if err != nil {
		t.Fatal(err)
	}
	// Same localizer, same session, deterministic pipeline: the two runs
	// must agree bit-for-bit, so an exact compare is the right assertion.
	if res.L != plain.L || len(res.Fixes) != len(plain.Fixes) {
		t.Fatalf("context and plain results diverge: L %v vs %v, fixes %d vs %d",
			res.L, plain.L, len(res.Fixes), len(plain.Fixes))
	}
}

func TestASPProcessContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.asp.ProcessContext(ctx, s.Recording); !errors.Is(err, context.Canceled) {
		t.Fatalf("ASP with pre-canceled context: got %v, want context.Canceled", err)
	}
}

func TestLocateFull3DContextCanceled(t *testing.T) {
	loc, s := ctxLocalizer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.LocateFull3DContext(ctx, s.Recording, s.IMU); !errors.Is(err, context.Canceled) {
		t.Fatalf("full3D with pre-canceled context: got %v, want context.Canceled", err)
	}
}
