package core

import (
	"math"
	"testing"

	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/motion"
)

func TestMSPConfigValidate(t *testing.T) {
	if err := DefaultMSPConfig().Validate(); err != nil {
		t.Errorf("default: %v", err)
	}
	cases := []func(*MSPConfig){
		func(c *MSPConfig) { c.SMAWindow = 0 },
		func(c *MSPConfig) { c.PowerWindow = 0 },
		func(c *MSPConfig) { c.PowerThreshold = 0 },
		func(c *MSPConfig) { c.QuietSamples = 0 },
	}
	for i, mut := range cases {
		c := DefaultMSPConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSlidingMean(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := slidingMean(x, 2)
	want := []float64{1.5, 2.5, 3.5, 4} // tail truncates
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("slidingMean[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSegmentSyntheticBursts(t *testing.T) {
	// Power: quiet, burst, quiet, burst, quiet.
	p := make([]float64, 100)
	for i := 20; i < 40; i++ {
		p[i] = 1
	}
	for i := 60; i < 75; i++ {
		p[i] = 1
	}
	segs := segment(p, 0.5, 5)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].Start != 20 || segs[0].End < 40 || segs[0].End > 46 {
		t.Errorf("segment 0 = %+v", segs[0])
	}
	if segs[1].Start != 60 || segs[1].End < 75 || segs[1].End > 81 {
		t.Errorf("segment 1 = %+v", segs[1])
	}
}

func TestSegmentOpenEnded(t *testing.T) {
	// Movement running to the end of the trace must still close.
	p := make([]float64, 50)
	for i := 30; i < 50; i++ {
		p[i] = 1
	}
	segs := segment(p, 0.5, 8)
	if len(segs) != 1 || segs[0].Start != 30 || segs[0].End != 50 {
		t.Errorf("segments = %+v", segs)
	}
}

func TestSegmentBriefDipDoesNotSplit(t *testing.T) {
	// A dip shorter than quiet must not split the movement.
	p := make([]float64, 60)
	for i := 10; i < 50; i++ {
		p[i] = 1
	}
	p[30], p[31] = 0, 0 // 2-sample dip < quiet=8
	segs := segment(p, 0.5, 8)
	if len(segs) != 1 {
		t.Errorf("segments = %+v, want 1", segs)
	}
}

func TestSegmentLen(t *testing.T) {
	if (Segment{Start: 3, End: 10}).Len() != 7 {
		t.Error("Segment.Len wrong")
	}
}

// TestPreprocessIMUFindsSlides reproduces the Figure 8 behavior: a session
// of back-and-forth slides segments into exactly that many movements.
func TestPreprocessIMUFindsSlides(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(1).
		Slide(0.55, 1).
		Hold(0.6).
		Slide(-0.55, 1).
		Hold(0.6).
		Slide(0.55, 1).
		Hold(1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := imu.DefaultConfig()
	cfg.Seed = 21
	tr, err := imu.Sample(traj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msp, err := PreprocessIMU(tr, DefaultMSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(msp.Segments) != 3 {
		t.Fatalf("segments = %d, want 3 (got %+v)", len(msp.Segments), msp.Segments)
	}
	// Segment times must bracket the true slide times (1-2, 2.6-3.6, 4.2-5.2 s).
	wantStarts := []float64{1, 2.6, 4.2}
	for i, seg := range msp.Segments {
		start := float64(seg.Start) / msp.Fs
		end := float64(seg.End) / msp.Fs
		if math.Abs(start-wantStarts[i]) > 0.25 {
			t.Errorf("segment %d starts at %v, want ≈%v", i, start, wantStarts[i])
		}
		if end-start < 0.5 || end-start > 1.6 {
			t.Errorf("segment %d spans %v s, want ≈1 s", i, end-start)
		}
	}
}

func TestPreprocessIMUEmptyTrace(t *testing.T) {
	if _, err := PreprocessIMU(nil, DefaultMSPConfig()); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := PreprocessIMU(&imu.Trace{Fs: 100}, DefaultMSPConfig()); err == nil {
		t.Error("empty trace should error")
	}
}

func TestPreprocessIMUStationaryHasNoSegments(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Hold(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := imu.DefaultConfig()
	cfg.Seed = 22
	tr, err := imu.Sample(traj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msp, err := PreprocessIMU(tr, DefaultMSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(msp.Segments) != 0 {
		t.Errorf("stationary trace segmented into %+v", msp.Segments)
	}
}
