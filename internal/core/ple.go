package core

import (
	"fmt"
	"math"
)

// ProjectDistance implements the paper's eq. (7): given the slant
// perpendicular distances l1 and l2 measured from two slide lines that are
// vertically separated by h (the stature change), it returns the projected
// horizontal distance L* = l1·sin β with
//
//	β = arccos((h² + l1² - l2²) / (2·h·l1)).
//
// β is the angle at the upper vertex of the triangle formed by the two
// slide lines and the speaker (Fig. 11). The inputs must describe a
// realizable triangle; otherwise an error is returned.
func ProjectDistance(l1, l2, h float64) (float64, error) {
	if l1 <= 0 || l2 <= 0 {
		return 0, fmt.Errorf("core: non-positive slant distances l1=%v l2=%v", l1, l2)
	}
	if h == 0 {
		return 0, fmt.Errorf("core: zero stature change")
	}
	h = math.Abs(h)
	cosBeta := (h*h + l1*l1 - l2*l2) / (2 * h * l1)
	if cosBeta < -1 || cosBeta > 1 {
		return 0, fmt.Errorf("core: degenerate stature triangle (cos β = %v)", cosBeta)
	}
	beta := math.Acos(cosBeta)
	return l1 * math.Sin(beta), nil
}

// ProjectDistanceClamped is the regularized projection the pipeline uses.
// Eq. (7) infers the speaker's vertical offset z1 below the first slide
// line from (L1, L2, H); because z1 = (H² + L1² - L2²)/(2H), errors in
// L1-L2 are amplified by ≈L/H (17× at 7 m with a 0.4 m stature change),
// and a few centimeters of slant-distance noise can imply a physically
// impossible multi-meter height difference. Indoors the phone-to-object
// height offset is bounded — people hold phones 1.0-1.5 m up and objects
// sit between the floor and head height — so the inferred z1 is clamped
// to ±maxOffset before projecting: L* = sqrt(L1² - z1²). This degrades
// gracefully exactly where eq. (7) is ill-conditioned and is identical to
// it when the data is consistent.
func ProjectDistanceClamped(l1, l2, h, maxOffset float64) (float64, error) {
	if l1 <= 0 || l2 <= 0 {
		return 0, fmt.Errorf("core: non-positive slant distances l1=%v l2=%v", l1, l2)
	}
	if h == 0 {
		return 0, fmt.Errorf("core: zero stature change")
	}
	if maxOffset <= 0 {
		maxOffset = 1.5
	}
	h = math.Abs(h)
	z1 := (h*h + l1*l1 - l2*l2) / (2 * h)
	if z1 > maxOffset {
		z1 = maxOffset
	} else if z1 < -maxOffset {
		z1 = -maxOffset
	}
	if math.Abs(z1) >= l1 {
		z1 = math.Copysign(0.99*l1, z1)
	}
	return math.Sqrt(l1*l1 - z1*z1), nil
}

// aggregate returns the median of xs (the multi-slide aggregation HyperEar
// applies before reporting a location; the median is robust to the
// occasional bad slide that survives gating).
func aggregate(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	insertionSort(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// insertionSort avoids pulling package sort into the hot path for the
// short (≤ ~10 element) per-session slide lists.
func insertionSort(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
