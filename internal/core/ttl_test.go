package core

import (
	"errors"
	"math"
	"testing"

	"hyperear/internal/geom"
)

// syntheticSlideBeacons builds the exact anchor beacons for a slide: the
// speaker sits at body coordinates (x=perp, y=along); the phone rests at
// body-y startY before the slide and startY+dispY after; mic offsets are
// ±d/2. Arrival times are emission + distance/S with beacon period T.
func syntheticSlideBeacons(spk geom.Vec2, startY, dispY, d, s, period float64, n int) (before, after Beacon) {
	dist := func(micY float64) float64 {
		return math.Hypot(spk.X, spk.Y-micY)
	}
	t0 := 1.0 // arbitrary emission time of the "before" beacon
	before = Beacon{
		Seq: 10,
		T1:  t0 + dist(startY+d/2)/s,
		T2:  t0 + dist(startY-d/2)/s,
	}
	endY := startY + dispY
	t1 := t0 + float64(n)*period
	after = Beacon{
		Seq: 10 + n,
		T1:  t1 + dist(endY+d/2)/s,
		T2:  t1 + dist(endY-d/2)/s,
	}
	return before, after
}

func TestTTLConfigValidate(t *testing.T) {
	if err := DefaultTTLConfig().Validate(); err != nil {
		t.Errorf("default: %v", err)
	}
	cases := []func(*TTLConfig){
		func(c *TTLConfig) { c.MicSeparation = 0 },
		func(c *TTLConfig) { c.SpeedOfSound = 100 },
		func(c *TTLConfig) { c.MaxAnchorGap = 0 },
		func(c *TTLConfig) { c.InitialRange = 0 },
	}
	for i, mut := range cases {
		c := DefaultTTLConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLocalizeSlideExactGeometry(t *testing.T) {
	cfg := DefaultTTLConfig()
	period := 0.2
	cases := []struct {
		name   string
		spk    geom.Vec2
		startY float64
		dispY  float64
	}{
		{"broadside 3m", geom.Vec2{X: 3, Y: 0}, 0, 0.55},
		{"broadside 7m", geom.Vec2{X: 7, Y: 0}, 0, 0.55},
		{"offset along axis", geom.Vec2{X: 5, Y: 0.8}, 0, 0.55},
		{"backward slide", geom.Vec2{X: 4, Y: -0.3}, 0.55, -0.55},
		{"short slide", geom.Vec2{X: 2, Y: 0.1}, 0, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before, after := syntheticSlideBeacons(
				tc.spk, tc.startY, tc.dispY, cfg.MicSeparation, cfg.SpeedOfSound, period, 7)
			fix, err := LocalizeSlide(before, after, period, tc.dispY, tc.startY, 0, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fix.Pos.Sub(tc.spk).Norm(); got > 1e-4 {
				t.Errorf("position = %v, want %v (err %.2f mm)", fix.Pos, tc.spk, got*1000)
			}
			if math.Abs(fix.L-tc.spk.X) > 1e-4 {
				t.Errorf("L = %v, want %v", fix.L, tc.spk.X)
			}
			if fix.N != 7 {
				t.Errorf("N = %d, want 7", fix.N)
			}
		})
	}
}

func TestLocalizeSlideDisplacementErrorPropagates(t *testing.T) {
	// A 2% error in the estimated slide length should move the estimate
	// noticeably but not catastrophically at 5 m.
	cfg := DefaultTTLConfig()
	spk := geom.Vec2{X: 5, Y: 0}
	before, after := syntheticSlideBeacons(spk, 0, 0.55, cfg.MicSeparation, cfg.SpeedOfSound, 0.2, 7)
	fix, err := LocalizeSlide(before, after, 0.2, 0.55*1.02, 0, 0, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	errDist := fix.Pos.Sub(spk).Norm()
	if errDist < 0.005 || errDist > 1.0 {
		t.Errorf("2%% D' error gave %v m position error; expected centimeters-to-decimeters", errDist)
	}
}

func TestLocalizeSlidePeriodErrorPropagates(t *testing.T) {
	// Using the nominal period when the true period is off by 50 ppm
	// introduces n·δT·S ≈ 2.4 cm of distance-difference error at n=7 —
	// exactly the error SFO correction removes.
	cfg := DefaultTTLConfig()
	spk := geom.Vec2{X: 5, Y: 0}
	truePeriod := 0.2 * (1 + 50e-6)
	before, after := syntheticSlideBeacons(spk, 0, 0.55, cfg.MicSeparation, cfg.SpeedOfSound, truePeriod, 7)
	good, err := LocalizeSlide(before, after, truePeriod, 0.55, 0, 0, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	badFix, err := LocalizeSlide(before, after, 0.2, 0.55, 0, 0, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	goodErr := good.Pos.Sub(spk).Norm()
	badErr := badFix.Pos.Sub(spk).Norm()
	if goodErr > badErr/3 {
		t.Errorf("SFO-corrected error %v should be ≪ uncorrected %v", goodErr, badErr)
	}
}

func TestLocalizeSlideRejectsBadInput(t *testing.T) {
	cfg := DefaultTTLConfig()
	b := Beacon{Seq: 5, T1: 1, T2: 1}
	a := Beacon{Seq: 5, T1: 1.2, T2: 1.2}
	if _, err := LocalizeSlide(b, a, 0.2, 0.5, 0, 0, 0, cfg); err == nil {
		t.Error("equal sequence numbers should error")
	}
	a.Seq = 4
	if _, err := LocalizeSlide(b, a, 0.2, 0.5, 0, 0, 0, cfg); err == nil {
		t.Error("reversed beacons should error")
	}
	a.Seq = 6
	if _, err := LocalizeSlide(b, a, 0, 0.5, 0, 0, 0, cfg); err == nil {
		t.Error("zero period should error")
	}
	// Augmented TDoA implying more path change than the slide length.
	a = Beacon{Seq: 6, T1: 1.2 + 0.01, T2: 1.2 + 0.01}
	if _, err := LocalizeSlide(b, a, 0.2, 0.1, 0, 0, 0, cfg); err == nil {
		t.Error("inconsistent TDoA should error")
	}
	bad := cfg
	bad.MicSeparation = 0
	if _, err := LocalizeSlide(b, a, 0.2, 0.5, 0, 0, 0, bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestAnchorBeacons(t *testing.T) {
	beacons := []Beacon{
		{Seq: 0, T1: 0.1}, {Seq: 1, T1: 0.3}, {Seq: 2, T1: 0.5},
		{Seq: 10, T1: 2.1}, {Seq: 11, T1: 2.3},
	}
	before, after, err := anchorBeacons(beacons, 0.6, 2.0, 0.45, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// The before window [0.15, 0.6] holds beacons 1 and 2; averaging folds
	// them onto seq 2 at T1 = mean(0.3+0.2, 0.5) = 0.5. The after window
	// [2.0, 2.45] holds beacons 10 and 11, folded onto seq 11 at 2.3.
	if before.Seq != 2 || after.Seq != 11 {
		t.Errorf("anchors = %d, %d; want 2, 11", before.Seq, after.Seq)
	}
	if math.Abs(before.T1-0.5) > 1e-12 {
		t.Errorf("averaged before.T1 = %v, want 0.5", before.T1)
	}
	if math.Abs(after.T1-2.3) > 1e-12 {
		t.Errorf("averaged after.T1 = %v, want 2.3", after.T1)
	}
	// Gap too large.
	if _, _, err := anchorBeacons(beacons, 1.2, 2.0, 0.45, 0.2); err == nil {
		t.Error("large before-gap should error")
	}
	if !errors.Is(func() error {
		_, _, err := anchorBeacons(beacons, 1.2, 2.0, 0.45, 0.2)
		return err
	}(), ErrNoAnchorBeacon) {
		t.Error("gap error should wrap ErrNoAnchorBeacon")
	}
	// No beacon before/after at all.
	if _, _, err := anchorBeacons(beacons, 0.05, 2.0, 0.45, 0.2); err == nil {
		t.Error("missing before-anchor should error")
	}
	if _, _, err := anchorBeacons(beacons, 0.6, 5.0, 0.45, 0.2); err == nil {
		t.Error("missing after-anchor should error")
	}
}
