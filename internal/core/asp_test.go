package core

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
)

func TestASPConfigValidate(t *testing.T) {
	if err := DefaultASPConfig().Validate(); err != nil {
		t.Errorf("default: %v", err)
	}
	cases := []func(*ASPConfig){
		func(c *ASPConfig) { c.BandMarginHz = -1 },
		func(c *ASPConfig) { c.FilterTaps = 5 },
		func(c *ASPConfig) { c.CalibDuration = -1 },
		func(c *ASPConfig) { c.MaxPairSkew = 0 },
	}
	for i, mut := range cases {
		c := DefaultASPConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewASPRejectsBadInput(t *testing.T) {
	if _, err := NewASP(chirp.Params{}, 44100, DefaultASPConfig()); err == nil {
		t.Error("invalid source should error")
	}
	bad := DefaultASPConfig()
	bad.FilterTaps = 1
	if _, err := NewASP(chirp.Default(), 44100, bad); err == nil {
		t.Error("invalid config should error")
	}
}

func renderStatic(t *testing.T, phone mic.Phone, skewPPM float64, dur float64, noise room.NoiseSource, snr float64) *mic.Recording {
	t.Helper()
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Hold(dur).Build()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env:            room.FreeField(),
		Source:         chirp.Default(),
		SourcePos:      geom.Vec3{X: 4, Y: 1},
		SpeakerSkewPPM: skewPPM,
		Phone:          phone,
		Traj:           traj,
		Noise:          noise,
		SNRdB:          snr,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestASPProcessPairsBeacons(t *testing.T) {
	phone := mic.GalaxyS4()
	rec := renderStatic(t, phone, 0, 2.0, nil, 0)
	asp, err := NewASP(chirp.Default(), phone.SampleRate, DefaultASPConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := asp.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beacons) < 8 {
		t.Fatalf("beacons = %d, want ≥8 in 2 s", len(res.Beacons))
	}
	// Sequence numbers must be consecutive for a clean recording.
	for i := 1; i < len(res.Beacons); i++ {
		if res.Beacons[i].Seq != res.Beacons[i-1].Seq+1 {
			t.Errorf("non-consecutive beacon seq %d -> %d",
				res.Beacons[i-1].Seq, res.Beacons[i].Seq)
		}
	}
	// TDoA must match the static geometry for every beacon.
	c := room.FreeField().SpeedOfSound()
	m1 := geom.Vec3{Y: phone.MicSeparation / 2}
	m2 := geom.Vec3{Y: -phone.MicSeparation / 2}
	spk := geom.Vec3{X: 4, Y: 1}
	want := (spk.Dist(m1) - spk.Dist(m2)) / c
	for i, b := range res.Beacons {
		if math.Abs(b.TDoA()-want) > 10e-6 {
			t.Errorf("beacon %d TDoA = %v, want %v", i, b.TDoA(), want)
		}
	}
}

func TestASPEstimatesSFO(t *testing.T) {
	phone := mic.GalaxyS4()
	phone.SFOPPM = 0
	for _, skew := range []float64{0, 40, -60} {
		rec := renderStatic(t, phone, skew, 4.0, nil, 0)
		asp, err := NewASP(chirp.Default(), phone.SampleRate, DefaultASPConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := asp.Process(rec)
		if err != nil {
			t.Fatal(err)
		}
		// Speaker running fast (positive skew) compresses the received
		// period: SFO estimate ≈ -skew.
		if math.Abs(res.SFOPPM+skew) > 5 {
			t.Errorf("skew %v ppm: estimated SFO = %v ppm, want ≈%v", skew, res.SFOPPM, -skew)
		}
		if res.CalibBeacons < 3 {
			t.Errorf("calibration used %d beacons", res.CalibBeacons)
		}
	}
}

func TestASPDisableSFOCorrection(t *testing.T) {
	phone := mic.GalaxyS4()
	cfg := DefaultASPConfig()
	cfg.DisableSFOCorrection = true
	rec := renderStatic(t, phone, 80, 3.0, nil, 0)
	asp, err := NewASP(chirp.Default(), phone.SampleRate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := asp.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodEff != chirp.Default().Period {
		t.Errorf("period = %v, want nominal", res.PeriodEff)
	}
	if res.SFOPPM != 0 {
		t.Errorf("SFO = %v, want 0 when disabled", res.SFOPPM)
	}
}

func TestASPUnderNoise(t *testing.T) {
	phone := mic.GalaxyS4()
	rec := renderStatic(t, phone, 0, 2.0, room.MusicNoise{}, 6)
	asp, err := NewASP(chirp.Default(), phone.SampleRate, DefaultASPConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := asp.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beacons) < 6 {
		t.Errorf("beacons = %d at 6 dB SNR, want ≥6", len(res.Beacons))
	}
}

func TestASPEmptyRecording(t *testing.T) {
	asp, err := NewASP(chirp.Default(), 44100, DefaultASPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asp.Process(nil); err == nil {
		t.Error("nil recording should error")
	}
	if _, err := asp.Process(&mic.Recording{}); err == nil {
		t.Error("empty recording should error")
	}
	// Silence: no beacons on either channel.
	silent := &mic.Recording{
		Fs:   44100,
		Mic1: make([]float64, 44100),
		Mic2: make([]float64, 44100),
	}
	if _, err := asp.Process(silent); err == nil {
		t.Error("silent recording should error")
	}
}

func TestOLSSlope(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, ok := olsSlope(x, y)
	if !ok || math.Abs(slope-2) > 1e-12 {
		t.Errorf("slope = %v ok=%v, want 2", slope, ok)
	}
	// Degenerate: all x equal.
	if _, ok := olsSlope([]float64{1, 1}, []float64{0, 1}); ok {
		t.Error("degenerate fit should fail")
	}
}
