package core

import (
	"math"

	"hyperear/internal/geom"
)

// DirectionFix is one in-direction event found during a rotation sweep:
// a time at which the inter-mic TDoA crossed zero, meaning the speaker sat
// exactly on the phone's x axis (§IV-B).
type DirectionFix struct {
	// Time is the interpolated zero-crossing time in seconds.
	Time float64
	// Yaw is the phone yaw at that time (radians, from gyro integration).
	Yaw float64
	// BearingWorld is the estimated world bearing of the speaker in
	// radians: equal to Yaw when the speaker is on the body +x side
	// (α = 90°), Yaw+π when on the -x side (α = 270°).
	BearingWorld float64
	// PositiveX reports which crossing this is: true for the speaker on
	// the phone's +x axis.
	PositiveX bool
}

// SDFResult is the output of direction finding.
type SDFResult struct {
	// Fixes are the zero crossings in time order. A full 360° sweep
	// yields two (α = 90° and α = 270°).
	Fixes []DirectionFix
	// TDoAs are the per-beacon inter-mic TDoAs (seconds) the sweep
	// observed, parallel to Beacons — the data behind Figure 7.
	TDoAs []float64
	// Beacons echoes the beacons used.
	Beacons []Beacon
}

// FindDirection scans a rotation-sweep session for in-direction positions.
// yawAt maps a session time to the integrated gyro yaw (radians); yawRate
// is the sweep's sign (+1 counterclockwise, -1 clockwise), used to
// disambiguate the two crossings.
//
// Derivation of the disambiguation: with Mic1 on body +y, a speaker at
// body bearing ψ (from the +x axis, counterclockwise) has
// TDoA ≈ -(D/S)·sin ψ. During a counterclockwise sweep ψ decreases, so at
// the ψ=0 crossing (speaker on +x) the TDoA is increasing through zero,
// and at ψ=π it is decreasing.
func FindDirection(beacons []Beacon, yawAt func(float64) float64, yawRate float64) SDFResult {
	res := SDFResult{Beacons: beacons, TDoAs: make([]float64, len(beacons))}
	for i, b := range beacons {
		res.TDoAs[i] = b.TDoA()
	}
	ccw := yawRate >= 0
	for i := 1; i < len(beacons); i++ {
		a, b := res.TDoAs[i-1], res.TDoAs[i]
		if a == 0 && b == 0 {
			continue
		}
		if (a < 0 && b >= 0) || (a > 0 && b <= 0) {
			// Linear interpolation of the crossing time.
			frac := a / (a - b)
			t := beacons[i-1].T1 + frac*(beacons[i].T1-beacons[i-1].T1)
			rising := b > a
			positiveX := rising == ccw
			yaw := yawAt(t)
			bearing := yaw
			if !positiveX {
				bearing = geom.WrapAngle(yaw + math.Pi)
			}
			res.Fixes = append(res.Fixes, DirectionFix{
				Time:         t,
				Yaw:          yaw,
				BearingWorld: bearing,
				PositiveX:    positiveX,
			})
		}
	}
	return res
}

// TDoAEnvelope returns the theoretical TDoA-vs-α curve of Figure 7 for a
// mic separation d and sound speed s: alphaDeg are the rotation angles
// (degrees, α measured from the body +y axis as in the paper) and tdoas
// the corresponding far-field TDoAs in seconds. The speaker is assumed far
// enough that plane-wave geometry applies.
func TDoAEnvelope(d, s float64, nSamples int) (alphaDeg, tdoas []float64) {
	if nSamples < 2 {
		nSamples = 2
	}
	alphaDeg = make([]float64, nSamples)
	tdoas = make([]float64, nSamples)
	for i := range alphaDeg {
		alpha := 360 * float64(i) / float64(nSamples-1)
		alphaDeg[i] = alpha
		// α is measured from the +y axis; the body bearing from +x is
		// ψ = 90° - α. TDoA = -(D/S)·sin ψ = -(D/S)·cos α.
		tdoas[i] = -d / s * math.Cos(geom.Radians(alpha))
	}
	return alphaDeg, tdoas
}
