package core

import (
	"fmt"
	"math"
)

// The paper assumes line-of-sight between speaker and phone (§IX,
// limitation 2) and defers NLoS handling to future work via user
// mobility. This file implements the detection half: a cheap assessment
// of whether the session's acoustic evidence is consistent with a direct
// path, so an application can tell the user to move rather than report a
// reflected ghost position.

// LoSVerdict classifies a session's line-of-sight quality.
type LoSVerdict int

// Verdicts, from best to worst.
const (
	LoSLikely LoSVerdict = iota + 1
	LoSSuspect
	NLoSLikely
)

// String implements fmt.Stringer.
func (v LoSVerdict) String() string {
	switch v {
	case LoSLikely:
		return "los-likely"
	case LoSSuspect:
		return "los-suspect"
	case NLoSLikely:
		return "nlos-likely"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// LoSAssessment summarizes the evidence.
type LoSAssessment struct {
	// Verdict is the overall call.
	Verdict LoSVerdict
	// Reasons lists the checks that fired.
	Reasons []string
	// MeanSNR is the mean detection SNR across beacons (linear).
	MeanSNR float64
	// DetectionRate is detected beacons / expected beacons.
	DetectionRate float64
	// GeometryViolations counts beacons whose |TDoA| exceeds the physical
	// bound D/S (impossible under a shared direct path: the two channels
	// locked onto different propagation paths).
	GeometryViolations int
	// TDoAJitter is the RMS of consecutive-beacon TDoA changes in
	// seconds. A physical phone moves the inter-mic TDoA smoothly; NLoS
	// arrivals flicker between reflection paths.
	TDoAJitter float64
}

// AssessLoS inspects an ASP result for direct-path consistency. micSep
// and sos give the physical TDoA bound; sessionDur (seconds) sets the
// expected beacon count.
func AssessLoS(res *ASPResult, micSep, sos, sessionDur float64) LoSAssessment {
	a := LoSAssessment{Verdict: LoSLikely}
	if res == nil || len(res.Beacons) == 0 {
		a.Verdict = NLoSLikely
		a.Reasons = append(a.Reasons, "no beacons detected")
		return a
	}
	bound := micSep/sos + 60e-6 // physical bound + a generous slack

	var snrSum float64
	var jitterSS float64
	prevTDoA := math.NaN()
	for _, b := range res.Beacons {
		snrSum += b.SNR
		td := b.TDoA()
		if math.Abs(td) > bound {
			a.GeometryViolations++
		}
		if !math.IsNaN(prevTDoA) {
			d := td - prevTDoA
			jitterSS += d * d
		}
		prevTDoA = td
	}
	n := len(res.Beacons)
	a.MeanSNR = snrSum / float64(n)
	if n > 1 {
		a.TDoAJitter = math.Sqrt(jitterSS / float64(n-1))
	}
	if sessionDur > 0 && res.PeriodEff > 0 {
		expected := sessionDur / res.PeriodEff
		a.DetectionRate = float64(n) / expected
		if a.DetectionRate > 1 {
			a.DetectionRate = 1
		}
	} else {
		a.DetectionRate = 1
	}

	score := 0
	if a.GeometryViolations > n/10 {
		score += 2
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%d/%d beacons exceed the physical TDoA bound", a.GeometryViolations, n))
	}
	if a.DetectionRate < 0.6 {
		score += 2
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"only %.0f%% of expected beacons detected", a.DetectionRate*100))
	} else if a.DetectionRate < 0.85 {
		score++
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%.0f%% of expected beacons detected", a.DetectionRate*100))
	}
	if a.MeanSNR < 8 {
		score++
		a.Reasons = append(a.Reasons, fmt.Sprintf("weak detections (mean SNR %.1f)", a.MeanSNR))
	}
	// Jitter bound: a hand-held phone's inter-mic TDoA moves by at most a
	// few microseconds between beacons (200 ms apart); path flicker is
	// tens of microseconds.
	if a.TDoAJitter > 25e-6 {
		// Heavy flicker is the signature of competing reflection paths
		// and is decisive on its own.
		score += 3
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"TDoA flicker %.1f µs between beacons", a.TDoAJitter*1e6))
	} else if a.TDoAJitter > 12e-6 {
		score++
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"elevated TDoA jitter %.1f µs", a.TDoAJitter*1e6))
	}

	switch {
	case score >= 3:
		a.Verdict = NLoSLikely
	case score >= 1:
		a.Verdict = LoSSuspect
	}
	return a
}
