package core

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 2, 17, 256} {
			var hits = make([]int32, n)
			var calls int32
			parallelFor(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
				atomic.AddInt32(&calls, 1)
			})
			if int(calls) != n {
				t.Fatalf("workers=%d n=%d: %d calls", workers, n, calls)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelForSerialIsOrdered(t *testing.T) {
	var order []int
	parallelFor(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path visited %v", order)
		}
	}
}
