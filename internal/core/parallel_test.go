package core

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 2, 17, 256} {
			var hits = make([]int32, n)
			var calls int32
			parallelFor(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
				atomic.AddInt32(&calls, 1)
			})
			if int(calls) != n {
				t.Fatalf("workers=%d n=%d: %d calls", workers, n, calls)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelForSerialIsOrdered(t *testing.T) {
	var order []int
	parallelFor(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path visited %v", order)
		}
	}
}

// TestParallelForPanicPropagates pins the bugfix: a panic in fn must
// surface on the calling goroutine in the inline path AND the fan-out
// path. Before the fix, a worker-goroutine panic killed the process with
// a bare trace that no recover() could intercept.
func TestParallelForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			parallelFor(8, workers, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestParallelForPanicDrainsWorkers checks the re-panic happens only
// after every worker has exited: no fn call may still be running (or
// start later) once parallelFor has returned control via panic.
func TestParallelForPanicDrainsWorkers(t *testing.T) {
	var running int32
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
		if n := atomic.LoadInt32(&running); n != 0 {
			t.Fatalf("%d workers still running after re-panic", n)
		}
	}()
	parallelFor(64, 4, func(i int) {
		atomic.AddInt32(&running, 1)
		defer atomic.AddInt32(&running, -1)
		if i%7 == 0 {
			panic(i)
		}
	})
}

// TestParallelForWorkersIdentity checks worker ids stay within
// [0, effectiveWorkers) and that per-worker accumulation covers all
// indices exactly once — the contract per-worker scratch relies on.
func TestParallelForWorkersIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		n := 100
		eff := effectiveWorkers(n, workers)
		sums := make([]int64, eff)
		parallelForWorkers(n, workers, func(worker, i int) {
			if worker < 0 || worker >= eff {
				t.Errorf("worker id %d outside [0,%d)", worker, eff)
				return
			}
			atomic.AddInt64(&sums[worker], int64(i)+1)
		})
		var total int64
		for _, s := range sums {
			total += s
		}
		if want := int64(n * (n + 1) / 2); total != want {
			t.Fatalf("workers=%d: index sum %d, want %d", workers, total, want)
		}
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(10, 4); got != 4 {
		t.Fatalf("effectiveWorkers(10,4) = %d", got)
	}
	if got := effectiveWorkers(3, 8); got != 3 {
		t.Fatalf("clamp: effectiveWorkers(3,8) = %d", got)
	}
	if got := effectiveWorkers(100, 0); got < 1 {
		t.Fatalf("default: effectiveWorkers(100,0) = %d", got)
	}
}
