package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// runScenario renders a scenario and runs Locate2D, returning the world
// position error and the session for inspection.
func locate2DScenario(t *testing.T, sc sim.Scenario) (float64, *Result2D, *sim.Session) {
	t.Helper()
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.Locate2D(s.Recording, s.IMU)
	if err != nil {
		t.Fatal(err)
	}
	// Convert the body-frame estimate to world coordinates with the true
	// start pose (the phone defines its own map origin).
	est := bodyToWorld(res.Pos, sc.PhoneStart, s.TrueYaw-geom.Radians(sc.Protocol.YawErrDeg))
	errDist := est.Sub(sc.SpeakerPos.XY()).Norm()
	return errDist, res, s
}

// bodyToWorld maps a start-body-frame 2D estimate to world XY. The body
// frame the localizer reports in has x toward the speaker (believed
// broadside direction) and y along the slide axis; believedYaw is the yaw
// the system believes it holds (true yaw minus the unknown residual
// direction-finding error).
func bodyToWorld(p geom.Vec2, start geom.Vec3, believedYaw float64) geom.Vec2 {
	dir := p.Rotate(believedYaw)
	return start.XY().Add(dir)
}

func ruler2DScenario(dist float64, seed int64) sim.Scenario {
	phone := mic.GalaxyS4()
	return sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          phone,
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 8, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 25,
		PhoneStart:     geom.Vec3{X: 8 - dist, Y: 6, Z: 1.2},
		Protocol: sim.Protocol{
			SlideDist: 0.55,
			SlideDur:  1.0,
			HoldDur:   0.45,
			Slides:    5,
			Mode:      sim.ModeRuler,
		},
		IMU:   imu.DefaultConfig(),
		Noise: room.WhiteNoise{},
		SNRdB: 18,
		Seed:  seed,
	}
}

func TestNewLocalizerValidation(t *testing.T) {
	cfg := DefaultConfig(chirp.Default(), 44100, 0.1366)
	if _, err := NewLocalizer(cfg); err != nil {
		t.Fatalf("valid config: %v", err)
	}
	cfg.MicSeparation = 0
	if _, err := NewLocalizer(cfg); err == nil {
		t.Error("zero separation should error")
	}
	cfg = DefaultConfig(chirp.Params{}, 44100, 0.1366)
	if _, err := NewLocalizer(cfg); err == nil {
		t.Error("invalid source should error")
	}
}

// TestNewLocalizerRejectsBadSampleRate is the regression test for the
// missing SampleRate validation: zero and negative rates previously
// surfaced as a cryptic band-pass design error, and a NaN rate was
// accepted outright (every ordered comparison on NaN is false, so it
// sailed past the downstream `fs < 2.2·High` and filter-edge checks) and
// produced NaN timestamps at runtime. All must now fail construction with
// an error that names the sample rate.
func TestNewLocalizerRejectsBadSampleRate(t *testing.T) {
	for _, fs := range []float64{0, -44100, math.NaN(), math.Inf(1)} {
		cfg := DefaultConfig(chirp.Default(), fs, 0.1366)
		_, err := NewLocalizer(cfg)
		if err == nil {
			t.Errorf("SampleRate=%v: construction succeeded, want error", fs)
			continue
		}
		if !strings.Contains(err.Error(), "sample rate") {
			t.Errorf("SampleRate=%v: error %q does not name the sample rate", fs, err)
		}
	}
}

// TestNewLocalizerSpeedOfSoundValidation is the regression test for the
// `== 0`-only defaulting bug: negative, NaN, and Inf speeds flowed
// straight into every TDoA→distance conversion. Zero still selects the
// default, any other non-finite/non-positive value must fail
// construction with an error naming the speed of sound.
func TestNewLocalizerSpeedOfSoundValidation(t *testing.T) {
	cases := []struct {
		speed float64
		ok    bool
	}{
		{0, true}, // defaulted to geom.SpeedOfSound
		{346.0, true},
		{-343, false},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(chirp.Default(), 44100, 0.1366)
		cfg.SpeedOfSound = tc.speed
		loc, err := NewLocalizer(cfg)
		if tc.ok {
			if err != nil {
				t.Errorf("SpeedOfSound=%v: construction failed: %v", tc.speed, err)
			} else if tc.speed == 0 && loc.cfg.SpeedOfSound != geom.SpeedOfSound {
				t.Errorf("SpeedOfSound=0 defaulted to %v, want %v", loc.cfg.SpeedOfSound, geom.SpeedOfSound)
			} else if tc.speed != 0 && loc.cfg.SpeedOfSound != tc.speed {
				t.Errorf("SpeedOfSound=%v overwritten to %v", tc.speed, loc.cfg.SpeedOfSound)
			}
			continue
		}
		if err == nil {
			t.Errorf("SpeedOfSound=%v: construction succeeded, want error", tc.speed)
			continue
		}
		if !strings.Contains(err.Error(), "speed of sound") {
			t.Errorf("SpeedOfSound=%v: error %q does not name the speed of sound", tc.speed, err)
		}
	}
}

// TestLocalizerSerialMatchesParallel: the Parallelism knob must not change
// results, only scheduling.
func TestLocalizerSerialMatchesParallel(t *testing.T) {
	sc := ruler2DScenario(4, 107)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) *Result2D {
		cfg := DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
		cfg.Parallelism = par
		loc, err := NewLocalizer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loc.Locate2D(s.Recording, s.IMU)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(0)
	if serial.Pos != parallel.Pos || serial.L != parallel.L {
		t.Errorf("serial (%v, L=%v) vs parallel (%v, L=%v)",
			serial.Pos, serial.L, parallel.Pos, parallel.L)
	}
	if len(serial.Fixes) != len(parallel.Fixes) || len(serial.Movements) != len(parallel.Movements) {
		t.Errorf("serial %d fixes/%d movements vs parallel %d/%d",
			len(serial.Fixes), len(serial.Movements), len(parallel.Fixes), len(parallel.Movements))
	}
}

// TestLocate2DRulerAccuracy is the headline end-to-end check: a 5-slide
// ruler session at 5 m must localize to within a few tens of centimeters
// (the paper reports ≈10 cm mean at 5 m on the ruler; we allow a generous
// envelope for a single seeded trial).
func TestLocate2DRulerAccuracy(t *testing.T) {
	errDist, res, _ := locate2DScenario(t, ruler2DScenario(5, 101))
	if len(res.Fixes) < 3 {
		t.Fatalf("fixes = %d, want ≥3 of 5 slides", len(res.Fixes))
	}
	if errDist > 0.40 {
		t.Errorf("2D error at 5 m = %.3f m, want < 0.40 m (L=%v)", errDist, res.L)
	}
	// The perpendicular distance estimate must be close to 5 m.
	if math.Abs(res.L-5) > 0.40 {
		t.Errorf("L = %v, want ≈5", res.L)
	}
}

func TestLocate2DNearRange(t *testing.T) {
	errDist, _, _ := locate2DScenario(t, ruler2DScenario(2, 102))
	if errDist > 0.15 {
		t.Errorf("2D error at 2 m = %.3f m, want < 0.15 m", errDist)
	}
}

// TestLocate2DSFOCorrectionMatters is the SFO ablation: with a 25 ppm
// speaker skew, disabling SFO correction should typically worsen the
// error. Averaged over seeds to be robust.
func TestLocate2DSFOCorrectionMatters(t *testing.T) {
	var with, without float64
	seeds := []int64{11, 12, 13}
	for _, seed := range seeds {
		sc := ruler2DScenario(5, seed)
		sc.SpeakerSkewPPM = 60
		s, err := sim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		run := func(disable bool) float64 {
			cfg := DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
			cfg.ASP.DisableSFOCorrection = disable
			loc, err := NewLocalizer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := loc.Locate2D(s.Recording, s.IMU)
			if err != nil {
				t.Fatal(err)
			}
			est := bodyToWorld(res.Pos, sc.PhoneStart, s.TrueYaw)
			return est.Sub(sc.SpeakerPos.XY()).Norm()
		}
		with += run(false)
		without += run(true)
	}
	if with >= without {
		t.Errorf("SFO correction should reduce mean error: with=%.3f without=%.3f",
			with/float64(len(seeds)), without/float64(len(seeds)))
	}
}

func TestLocate2DShortSlidesRejectedByGate(t *testing.T) {
	sc := ruler2DScenario(5, 103)
	sc.Protocol.SlideDist = 0.25
	sc.Protocol.SlideDur = 0.6
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Locate2D(s.Recording, s.IMU); !errors.Is(err, ErrNoUsableSlides) {
		t.Errorf("25 cm slides should be gated out, got %v", err)
	}
	// With the gate disabled the session localizes (less accurately).
	cfg := DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
	cfg.PDE.MinSlideDist = 0
	loc, err = NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Locate2D(s.Recording, s.IMU); err != nil {
		t.Errorf("ungated short slides should localize: %v", err)
	}
}

// TestLocate3DTwoStature runs the full 3D protocol: 4 slides at one
// stature, a 0.5 m stature change, 4 slides at the second stature.
func TestLocate3DTwoStature(t *testing.T) {
	phone := mic.GalaxyS4()
	sc := sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          phone,
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 9, Y: 6, Z: 0.5}, // speaker on a low tripod
		SpeakerSkewPPM: 25,
		PhoneStart:     geom.Vec3{X: 4, Y: 6, Z: 1.3},
		Protocol: sim.Protocol{
			SlideDist:     0.55,
			SlideDur:      1.0,
			HoldDur:       0.45,
			Slides:        8,
			Mode:          sim.ModeRuler,
			StatureChange: -0.5,
		},
		IMU:   imu.DefaultConfig(),
		Noise: room.WhiteNoise{},
		SNRdB: 18,
		Seed:  104,
	}
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(sc.Source, phone.SampleRate, phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.Locate3D(s.Recording, s.IMU)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H+0.5) > 0.06 {
		t.Errorf("H = %v, want ≈-0.5", res.H)
	}
	trueProj := sc.SpeakerPos.Sub(sc.PhoneStart).XY().Norm()
	if math.Abs(res.ProjectedDist-trueProj) > 0.5 {
		t.Errorf("projected distance = %v, want ≈%v (L1=%v L2=%v)",
			res.ProjectedDist, trueProj, res.L1, res.L2)
	}
	if len(res.Fixes[0]) == 0 || len(res.Fixes[1]) == 0 {
		t.Errorf("fixes per stature = %d/%d", len(res.Fixes[0]), len(res.Fixes[1]))
	}
}

func TestLocate3DWithoutStatureChangeFails(t *testing.T) {
	sc := ruler2DScenario(5, 105)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Locate3D(s.Recording, s.IMU); err == nil {
		t.Error("3D without a stature change should error")
	}
}

// TestLocate2DDriftCorrectionAblation: disabling the eq. (4) correction
// should typically worsen accuracy with a biased IMU.
func TestLocate2DDriftCorrectionAblation(t *testing.T) {
	var with, without float64
	for _, seed := range []int64{21, 22, 23} {
		sc := ruler2DScenario(5, seed)
		sc.IMU.AccelBiasStd = 0.08
		s, err := sim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		run := func(disable bool) float64 {
			cfg := DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation)
			cfg.DisableDriftCorrection = disable
			cfg.PDE.MinSlideDist = 0 // drift may push estimates below the gate
			loc, err := NewLocalizer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := loc.Locate2D(s.Recording, s.IMU)
			if err != nil {
				return 3.0 // count a failed session as a large error
			}
			est := bodyToWorld(res.Pos, sc.PhoneStart, s.TrueYaw)
			return est.Sub(sc.SpeakerPos.XY()).Norm()
		}
		with += run(false)
		without += run(true)
	}
	if with >= without {
		t.Errorf("drift correction should reduce mean error: with=%.3f without=%.3f",
			with/3, without/3)
	}
}

func TestLocate2DHandMode(t *testing.T) {
	sc := ruler2DScenario(5, 106)
	sc.Protocol.Mode = sim.ModeHand
	errDist, res, _ := locate2DScenario(t, sc)
	if len(res.Fixes) == 0 {
		t.Fatal("no fixes in hand mode")
	}
	if errDist > 0.8 {
		t.Errorf("hand-mode 2D error at 5 m = %.3f m, want < 0.8 m", errDist)
	}
}
