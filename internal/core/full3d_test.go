package core

import (
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

func TestSolveFull3DExact(t *testing.T) {
	// Synthetic observations from a known speaker position.
	spk := geom.Vec3{X: 5, Y: 0.3, Z: -0.6}
	mk := func(before, after geom.Vec3) SlideObservation {
		return SlideObservation{
			Before: before,
			After:  after,
			DeltaD: spk.Dist(after) - spk.Dist(before),
		}
	}
	obs := []SlideObservation{
		mk(geom.Vec3{Y: 0.07}, geom.Vec3{Y: 0.62}),
		mk(geom.Vec3{Y: -0.07}, geom.Vec3{Y: 0.48}),
		mk(geom.Vec3{Y: 0.07}, geom.Vec3{Y: 0.07, Z: 0.45}),
		mk(geom.Vec3{Y: -0.07}, geom.Vec3{Y: -0.07, Z: 0.45}),
	}
	got, err := SolveFull3D(obs, geom.Vec3{X: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(spk) > 1e-5 {
		t.Errorf("solution = %v, want %v (err %.2f mm)", got, spk, got.Dist(spk)*1000)
	}
}

func TestSolveFull3DUnderdetermined(t *testing.T) {
	if _, err := SolveFull3D(nil, geom.Vec3{}); err == nil {
		t.Error("no observations should error")
	}
	obs := []SlideObservation{
		{Before: geom.Vec3{}, After: geom.Vec3{Y: 0.5}},
		{Before: geom.Vec3{}, After: geom.Vec3{Y: 0.5}},
	}
	if _, err := SolveFull3D(obs, geom.Vec3{X: 3}); err == nil {
		t.Error("two observations should error")
	}
}

func TestSolve3(t *testing.T) {
	a := [3][3]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	x, ok := solve3(a, [3]float64{2, 6, 12})
	if !ok || x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Errorf("solve3 = %v ok=%v", x, ok)
	}
	singular := [3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}
	if _, ok := solve3(singular, [3]float64{1, 2, 3}); ok {
		t.Error("singular system should fail")
	}
}

// TestLocateFull3DEndToEnd renders a mixed-direction session (horizontal
// + vertical slides) and recovers the speaker's complete 3D position in
// the start body frame.
func TestLocateFull3DEndToEnd(t *testing.T) {
	phone := mic.GalaxyS4()
	src := chirp.Default()
	env := room.MeetingRoom()
	start := geom.Vec3{X: 4, Y: 6, Z: 1.4}
	spk := geom.Vec3{X: 9, Y: 6.4, Z: 0.6}
	yaw := sim.BroadsideYaw(start, spk)

	traj, err := motion.NewBuilder(start, yaw).
		Hold(3). // SFO calibration
		Slide(0.55, 1).Hold(0.5).
		Slide(-0.55, 1).Hold(0.5).
		Slide(0.55, 1).Hold(0.5).
		ChangeHeight(-0.5, 1).Hold(0.5).
		ChangeHeight(0.5, 1).Hold(0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env: env, Source: src, SourcePos: spk,
		SpeakerSkewPPM: 20,
		Phone:          phone, Traj: traj,
		Noise: room.WhiteNoise{}, SNRdB: 18, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = 42
	trace, err := imu.Sample(traj, imuCfg)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(src, phone.SampleRate, phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.LocateFull3D(rec, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Expected body-frame position: rotate the world offset by -yaw.
	world := spk.Sub(start)
	wantXY := world.XY().Rotate(-yaw)
	want := geom.Vec3{X: wantXY.X, Y: wantXY.Y, Z: world.Z}
	if errDist := res.Pos.Dist(want); errDist > 0.6 {
		t.Errorf("full-3D estimate %v, want %v (err %.2f m, rms %.3f)",
			res.Pos, want, errDist, res.RMSResidual)
	}
	// The vertical coordinate is the novel output: it must have the
	// right sign and rough magnitude (speaker 0.8 m below the phone).
	if res.Pos.Z > -0.3 || res.Pos.Z < -1.4 {
		t.Errorf("vertical estimate %.2f m, want ≈-0.8 m", res.Pos.Z)
	}
	if res.Observations < 8 {
		t.Errorf("observations = %d, want ≥8", res.Observations)
	}
}

// TestLocateFull3DNeedsDiversity: a horizontal-only session must be
// rejected as underdetermined rather than silently producing a bad z.
func TestLocateFull3DNeedsDiversity(t *testing.T) {
	sc := sim.Scenario{
		Env:        room.MeetingRoom(),
		Phone:      mic.GalaxyS4(),
		Source:     chirp.Default(),
		SpeakerPos: geom.Vec3{X: 8, Y: 6, Z: 1.2},
		PhoneStart: geom.Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:   sim.DefaultProtocol(),
		IMU:        imu.DefaultConfig(),
		Seed:       43,
	}
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.LocateFull3D(s.Recording, s.IMU); err == nil {
		t.Error("horizontal-only session should be underdetermined")
	}
}
