package core

import (
	"math"
	"testing"

	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/motion"
)

// TestIntegrateYawDevRemovesBias: with a pure constant gyro bias and no
// real rotation, the detrended yaw deviation must stay near zero.
func TestIntegrateYawDevRemovesBias(t *testing.T) {
	fs := 100.0
	n := 1500
	gyro := make([]float64, n)
	for i := range gyro {
		gyro[i] = 0.02 // rad/s bias
	}
	dev := integrateYawDev(gyro, fs, nil)
	for i, v := range dev {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("dev[%d] = %v, want 0 (bias fully removed)", i, v)
		}
	}
}

// TestIntegrateYawDevPreservesTransientRotation: a rotation burst inside a
// movement segment must survive detrending (only stationary samples feed
// the fit).
func TestIntegrateYawDevPreservesTransientRotation(t *testing.T) {
	fs := 100.0
	n := 1000
	gyro := make([]float64, n)
	// Rotate +0.3 rad between samples 400-500, rotate back 500-600.
	for i := 400; i < 500; i++ {
		gyro[i] = 0.3
	}
	for i := 500; i < 600; i++ {
		gyro[i] = -0.3
	}
	segs := []Segment{{Start: 395, End: 605}}
	dev := integrateYawDev(gyro, fs, segs)
	// Mid-movement yaw ≈ +0.3 rad; endpoints ≈ 0.
	if math.Abs(dev[500]-0.3) > 0.02 {
		t.Errorf("dev[500] = %v, want ≈0.3", dev[500])
	}
	if math.Abs(dev[900]) > 0.02 {
		t.Errorf("dev[900] = %v, want ≈0", dev[900])
	}
}

// TestIntegrateYawDevShortTraceFallsBack: with too few stationary samples
// the raw integral is returned.
func TestIntegrateYawDevShortTraceFallsBack(t *testing.T) {
	gyro := []float64{0.1, 0.1, 0.1}
	dev := integrateYawDev(gyro, 100, []Segment{{Start: 0, End: 3}})
	if dev[0] != 0 || dev[2] <= 0 {
		t.Errorf("fallback dev = %v", dev)
	}
}

func TestMeanYawDev(t *testing.T) {
	m := &MSPResult{Fs: 100, YawDev: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	// Window [0.02, 0.05] covers samples 2..5 (inclusive endpoints).
	got := m.meanYawDev(0.02, 0.05)
	if math.Abs(got-3.5) > 1e-12 {
		t.Errorf("meanYawDev = %v, want 3.5", got)
	}
	// Degenerate windows clamp.
	if got := m.meanYawDev(5, 6); got != 9 {
		t.Errorf("past-end window = %v, want 9 (last sample)", got)
	}
	if got := m.meanYawDev(-1, -0.5); got != 0 {
		t.Errorf("pre-start window = %v, want 0", got)
	}
}

// TestRotationCorrectionExact: anchors observed with the phone yawed by a
// small angle are corrected back to the unrotated geometry. Build
// synthetic beacons with mic positions rotated by phi and verify that
// passing phi as the yaw deviation recovers the true speaker location.
func TestRotationCorrectionExact(t *testing.T) {
	cfg := DefaultTTLConfig()
	d := cfg.MicSeparation
	s := cfg.SpeedOfSound
	period := 0.2
	spk := geom.Vec2{X: 5, Y: 0}
	phi := geom.Radians(3) // 3° of wobble at the "after" anchor
	dispY := 0.55

	// Before anchor: unrotated. After anchor: mic axis rotated by phi
	// about the phone center at y = dispY (2D: x = perpendicular axis).
	micPos := func(centerY, off, rot float64) geom.Vec2 {
		// Mic offset 'off' along body y, rotated by rot.
		return geom.Vec2{X: -off * math.Sin(rot), Y: centerY + off*math.Cos(rot)}
	}
	t0 := 1.0
	before := Beacon{
		Seq: 0,
		T1:  t0 + spk.Dist(micPos(0, d/2, 0))/s,
		T2:  t0 + spk.Dist(micPos(0, -d/2, 0))/s,
	}
	n := 7
	t1 := t0 + float64(n)*period
	after := Beacon{
		Seq: n,
		T1:  t1 + spk.Dist(micPos(dispY, d/2, phi))/s,
		T2:  t1 + spk.Dist(micPos(dispY, -d/2, phi))/s,
	}

	// Without correction the 3° wobble is catastrophic at 5 m.
	uncorr, errU := LocalizeSlide(before, after, period, dispY, 0, 0, 0, cfg)
	// With the correction the estimate must be close to the truth.
	corr, errC := LocalizeSlide(before, after, period, dispY, 0, 0, phi, cfg)
	if errC != nil {
		t.Fatalf("corrected localization failed: %v", errC)
	}
	corrErr := corr.Pos.Sub(spk).Norm()
	if corrErr > 0.25 {
		t.Errorf("corrected error = %.3f m, want < 0.25 m", corrErr)
	}
	if errU == nil {
		uncorrErr := uncorr.Pos.Sub(spk).Norm()
		if uncorrErr < 4*corrErr {
			t.Errorf("correction should help ≥4x: corrected %.3f vs uncorrected %.3f",
				corrErr, uncorrErr)
		}
	}
}

// TestYawDevEndToEnd: a session whose tremor is purely rotational should
// localize far better with the gyro correction in the loop than a naive
// run that ignores rotation. We approximate the comparison by running the
// standard pipeline (correction always on) and asserting a tight bound
// that would be impossible without it (3° of wobble ≈ 20 µs ≈ multi-meter
// error at 5 m).
func TestYawDevEndToEnd(t *testing.T) {
	// Base trajectory: calib hold, slide, hold — wrapped in a rotation-only
	// tremor.
	b := motion.NewBuilder(geom.Vec3{X: 0, Y: 0, Z: 0}, 0)
	base, err := b.Hold(3).Slide(0.55, 1).Hold(0.6).Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	// The full-session test lives in pipeline_test.go (hand mode); here we
	// simply assert the MSP wiring exposes YawDev for a real trace.
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Hold(3).Slide(0.55, 1).Hold(0.6).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := imu.DefaultConfig()
	cfg.Seed = 5
	tr, err := imu.Sample(traj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msp, err := PreprocessIMU(tr, DefaultMSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(msp.YawDev) != tr.Len() {
		t.Fatalf("YawDev length %d, want %d", len(msp.YawDev), tr.Len())
	}
	// A ruler session has no real rotation: the detrended yaw deviation
	// should stay within gyro-noise bounds (well under 1°).
	for i, v := range msp.YawDev {
		if math.Abs(v) > geom.Radians(1) {
			t.Fatalf("YawDev[%d] = %v rad on a rotation-free session", i, v)
		}
	}
}

func TestProjectDistanceClamped(t *testing.T) {
	// Consistent triangle: identical to eq. (7).
	lStar, z1, z2 := 5.0, 0.7, 0.3
	l1 := math.Hypot(lStar, z1)
	l2 := math.Hypot(lStar, z2)
	got, err := ProjectDistanceClamped(l1, l2, z1-z2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-lStar) > 1e-9 {
		t.Errorf("consistent case = %v, want %v", got, lStar)
	}
	// Inconsistent L1/L2 implying a 4 m height offset: clamped.
	got, err = ProjectDistanceClamped(7.0, 7.5, 0.4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(49 - 1.5*1.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("clamped case = %v, want %v", got, want)
	}
	// Degenerate inputs still error.
	if _, err := ProjectDistanceClamped(0, 1, 0.4, 1.5); err == nil {
		t.Error("zero l1 should error")
	}
	if _, err := ProjectDistanceClamped(1, 1, 0, 1.5); err == nil {
		t.Error("zero h should error")
	}
	// Clamp beyond l1: offset capped below l1 to keep L* real.
	got, err = ProjectDistanceClamped(1.0, 3.0, 0.4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || math.IsNaN(got) {
		t.Errorf("capped case = %v, want positive", got)
	}
	// Zero maxOffset selects the default.
	if _, err := ProjectDistanceClamped(7, 7.1, 0.4, 0); err != nil {
		t.Errorf("default maxOffset: %v", err)
	}
}
