package core

import "sync"

// Scratch holds the reusable working buffers for one pipeline run — the
// per-call `make([]float64, n)` sites of MSP (axis extraction, smoothing,
// power, yaw integration) and PDE (per-segment velocity series) extended
// upward from the chirp.DetectScratch pattern. Locate2D/3D/Full3DContext
// borrow one from a package pool for the duration of the call, so a warm
// Localizer's steady state allocates result structs only.
//
// Ownership rules:
//
//   - A Scratch belongs to exactly one pipeline run at a time. The MSPResult
//     produced inside that run aliases the scratch buffers and must not
//     outlive it; the public Result2D/3D/Full3D types deliberately carry no
//     MSPResult so nothing scratch-backed escapes.
//   - PDE scratch is per worker (s.pde[w]), sized by effectiveWorkers before
//     the fan-out, so concurrent EstimateMovement calls never share buffers.
//   - The pool hands out values with whatever capacity their previous
//     session grew them to; every user resizes with growF64/growBool before
//     reading.
type Scratch struct {
	msp mspScratch
	pde []pdeScratch
}

// mspScratch backs one PreprocessIMU pass. res is the MSPResult header
// returned to the caller; its slices point into the buffers below.
type mspScratch struct {
	raw        []float64 // axis-extraction staging, reused for x/y/z in turn
	ax, ay, az []float64
	gyroZ      []float64
	combined   []float64
	power      []float64
	yawRaw     []float64
	moving     []bool
	yawDev     []float64
	segs       []Segment
	res        MSPResult
}

// pdeScratch backs one worker's EstimateMovement calls.
type pdeScratch struct {
	vy, vz []float64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// getScratch borrows a pipeline Scratch from the package pool. The caller
// must return it with putScratch when the run's results no longer alias
// it; the poolleak analyzer guards escapes at every borrow site.
//
//hyperearvet:pooled
func getScratch() *Scratch { return scratchPool.Get().(*Scratch) }

func putScratch(s *Scratch) { scratchPool.Put(s) }

// growPDE ensures at least n per-worker PDE scratch slots exist,
// preserving the buffers already grown in existing slots.
func (s *Scratch) growPDE(n int) {
	for len(s.pde) < n {
		s.pde = append(s.pde, pdeScratch{})
	}
}

// growF64 returns a length-n float64 slice, reusing buf's storage when it
// is large enough. Contents are unspecified.
//
//hyperearvet:zeroalloc
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growBool is growF64 for bool slices.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
