package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperear/internal/geom"
)

// Property tests on the pipeline's mathematical invariants, via
// testing/quick where the input space is simple and seeded loops where
// structured inputs are needed.

// TestLocalizeSlideSelfConsistencyProperty: for random geometries, exact
// beacon timestamps must triangulate back to the speaker (mm-level).
func TestLocalizeSlideSelfConsistencyProperty(t *testing.T) {
	cfg := DefaultTTLConfig()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		spk := geom.Vec2{
			X: 0.8 + 7*rng.Float64(),
			Y: -1 + 2*rng.Float64(),
		}
		startY := -0.3 + 0.6*rng.Float64()
		dispY := 0.3 + 0.4*rng.Float64()
		if rng.Intn(2) == 0 {
			dispY = -dispY
		}
		n := 5 + rng.Intn(6)
		before, after := syntheticSlideBeacons(spk, startY, dispY,
			cfg.MicSeparation, cfg.SpeedOfSound, 0.2, n)
		fix, err := LocalizeSlide(before, after, 0.2, dispY, startY, 0, 0, cfg)
		if err != nil {
			t.Fatalf("case %d (spk %v): %v", i, spk, err)
		}
		if d := fix.Pos.Sub(spk).Norm(); d > 2e-3 {
			t.Fatalf("case %d: error %.2f mm (spk %v, got %v)", i, d*1000, spk, fix.Pos)
		}
	}
}

// TestCorrectVelocityInvariantProperty: for any acceleration series, the
// corrected terminal velocity is exactly zero — that is the definition of
// the eq. (4) anchor.
func TestCorrectVelocityInvariantProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			a = append(a, math.Mod(v, 10))
		}
		if len(a) < 2 {
			return true
		}
		vel, _ := CorrectVelocity(a, 100)
		return math.Abs(vel[len(vel)-1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSegmentationCoverageProperty: segments never overlap, are ordered,
// and lie within the trace.
func TestSegmentationCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 50; trial++ {
		n := 200 + rng.Intn(800)
		power := make([]float64, n)
		for i := range power {
			if rng.Float64() < 0.2 {
				power[i] = rng.Float64() * 2
			}
		}
		segs := segment(power, 0.5, 5)
		prevEnd := -1
		for _, s := range segs {
			if s.Start < 0 || s.End > n || s.Start >= s.End {
				t.Fatalf("trial %d: malformed segment %+v", trial, s)
			}
			if s.Start < prevEnd {
				t.Fatalf("trial %d: overlapping segments", trial)
			}
			prevEnd = s.End
		}
	}
}

// TestProjectDistanceBoundProperty: the projected distance never exceeds
// the slant distance L1 (projection shortens).
func TestProjectDistanceBoundProperty(t *testing.T) {
	f := func(rawL, rawZ, rawH float64) bool {
		lStar := 0.5 + math.Abs(math.Mod(rawL, 8))
		z1 := math.Mod(rawZ, 1.2)
		h := 0.2 + math.Abs(math.Mod(rawH, 0.6))
		if math.IsNaN(lStar) || math.IsNaN(z1) || math.IsNaN(h) {
			return true
		}
		l1 := math.Hypot(lStar, z1)
		l2 := math.Hypot(lStar, z1-h)
		got, err := ProjectDistance(l1, l2, h)
		if err != nil {
			return true
		}
		return got <= l1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSolveFull3DMirrorSymmetryProperty: observations with mics confined
// to the x=0 plane admit the mirrored solution; the solver must return
// whichever lies inside the trust region of the guess, and folding it
// onto positive x must reproduce the speaker for random geometries.
func TestSolveFull3DMirrorSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		spk := geom.Vec3{
			X: 1.5 + 4*rng.Float64(),
			Y: -0.8 + 1.6*rng.Float64(),
			Z: -1 + 2*rng.Float64(),
		}
		mk := func(b, a geom.Vec3) SlideObservation {
			return SlideObservation{Before: b, After: a, DeltaD: spk.Dist(a) - spk.Dist(b)}
		}
		dy := 0.4 + 0.3*rng.Float64()
		dz := 0.3 + 0.3*rng.Float64()
		obs := []SlideObservation{
			mk(geom.Vec3{Y: 0.07}, geom.Vec3{Y: 0.07 + dy}),
			mk(geom.Vec3{Y: -0.07}, geom.Vec3{Y: -0.07 + dy}),
			mk(geom.Vec3{Y: 0.07}, geom.Vec3{Y: 0.07, Z: dz}),
			mk(geom.Vec3{Y: -0.07}, geom.Vec3{Y: -0.07, Z: dz}),
		}
		guess := geom.Vec3{X: spk.X + (rng.Float64() - 0.5), Y: 0, Z: 0}
		got, err := SolveFull3D(obs, guess)
		if err != nil {
			t.Fatalf("trial %d (spk %v): %v", trial, spk, err)
		}
		if got.X < 0 {
			got.X = -got.X
		}
		if d := got.Dist(spk); d > 1e-3 {
			t.Fatalf("trial %d: error %.2f mm (spk %v, got %v)", trial, d*1000, spk, got)
		}
	}
}
