package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// effectiveWorkers resolves a requested worker count against the item
// count: workers ≤ 0 selects GOMAXPROCS, and the pool never exceeds n
// (extra goroutines would only spin on the index counter).
func effectiveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// splitParallelism divides a total worker budget across the two-level
// channel×block schedule used by ASP detection: up to two channel workers
// (one per microphone), with the remaining budget multiplied into
// per-channel block workers for the segmented matched filter. total ≤ 0
// means GOMAXPROCS. The product chanWorkers·blockWorkers never exceeds
// the budget (rounding down), so a configured Parallelism stays an upper
// bound on concurrently running goroutines.
func splitParallelism(total int) (chanWorkers, blockWorkers int) {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if total <= 1 {
		return 1, 1
	}
	chanWorkers = 2
	blockWorkers = total / chanWorkers
	return chanWorkers, blockWorkers
}

// parallelFor runs fn(i) for every i in [0, n) on a bounded worker pool.
// workers ≤ 0 selects GOMAXPROCS; workers == 1 (or n == 1) runs inline on
// the calling goroutine with no synchronization, which keeps the serial
// path allocation- and overhead-free for benchmark comparison. Indices are
// handed out by an atomic counter, so uneven per-item cost (short vs. long
// slides) load-balances instead of striding.
//
// A panic in fn surfaces on the calling goroutine in both the inline and
// the fan-out path: workers recover, the first panic value wins, and it is
// re-raised after all workers drain. Without this, a worker panic killed
// the whole process with a bare goroutine trace that no caller could
// recover from, while the same panic under workers==1 unwound normally.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForWorkers(n, workers, func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with the worker's own identity passed
// to fn as its first argument: fn(worker, i) with worker in
// [0, effectiveWorkers(n, workers)). Stages that keep per-worker scratch
// (ASP detection buffers, PDE velocity buffers) index it by the worker id
// instead of locking or allocating per item.
func parallelForWorkers(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = effectiveWorkers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked {
						panicked = true
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
