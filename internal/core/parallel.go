package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) on a bounded worker pool.
// workers ≤ 0 selects GOMAXPROCS; workers == 1 (or n == 1) runs inline on
// the calling goroutine with no synchronization, which keeps the serial
// path allocation- and overhead-free for benchmark comparison. Indices are
// handed out by an atomic counter, so uneven per-item cost (short vs. long
// slides) load-balances instead of striding.
func parallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
