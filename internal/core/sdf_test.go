package core

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

func TestTDoAEnvelopeShape(t *testing.T) {
	d, s := 0.1366, 343.0
	alpha, tdoa := TDoAEnvelope(d, s, 361)
	if len(alpha) != 361 {
		t.Fatalf("samples = %d", len(alpha))
	}
	// α = 0: speaker on +y (Mic1 side) → negative TDoA of magnitude D/S.
	if math.Abs(tdoa[0]+d/s) > 1e-12 {
		t.Errorf("TDoA(0°) = %v, want %v", tdoa[0], -d/s)
	}
	// Zeros at 90° and 270°.
	if math.Abs(tdoa[90]) > 1e-12 || math.Abs(tdoa[270]) > 1e-12 {
		t.Errorf("TDoA(90°)=%v TDoA(270°)=%v, want 0", tdoa[90], tdoa[270])
	}
	// Max at 180°.
	if math.Abs(tdoa[180]-d/s) > 1e-12 {
		t.Errorf("TDoA(180°) = %v, want %v", tdoa[180], d/s)
	}
	// Envelope bounded by ±D/S everywhere.
	for i, v := range tdoa {
		if math.Abs(v) > d/s+1e-12 {
			t.Fatalf("TDoA[%d] = %v exceeds D/S", i, v)
		}
	}
}

func TestFindDirectionSynthetic(t *testing.T) {
	// Build beacons along a CCW sweep: yaw(t) = t (rad/s), speaker at
	// world bearing 0.8 rad. TDoA = -(D/S)·sin(ψ), ψ = bearing - yaw.
	d, s := 0.1366, 343.0
	bearing := 0.8
	var beacons []Beacon
	for k := 0; k < 32; k++ {
		tt := float64(k) * 0.2
		psi := bearing - tt
		tdoa := -d / s * math.Sin(psi)
		beacons = append(beacons, Beacon{Seq: k, T1: tt + tdoa, T2: tt})
	}
	res := FindDirection(beacons, func(tt float64) float64 { return tt }, +1)
	if len(res.Fixes) < 1 {
		t.Fatal("no fixes found")
	}
	// The first crossing in a 0→6.2 rad sweep with bearing 0.8 is ψ=0 at
	// yaw=0.8 (positive-x side).
	f := res.Fixes[0]
	if !f.PositiveX {
		t.Error("first crossing should be the +x (ψ=0) one")
	}
	if math.Abs(geom.WrapAngle(f.BearingWorld-bearing)) > 0.05 {
		t.Errorf("bearing = %v, want %v", f.BearingWorld, bearing)
	}
	// The second crossing (ψ=π at yaw≈0.8+π) must map to the same bearing.
	if len(res.Fixes) >= 2 {
		f2 := res.Fixes[1]
		if f2.PositiveX {
			t.Error("second crossing should be the -x one")
		}
		if math.Abs(geom.WrapAngle(f2.BearingWorld-bearing)) > 0.05 {
			t.Errorf("second bearing = %v, want %v", f2.BearingWorld, bearing)
		}
	}
}

func TestFindDirectionClockwise(t *testing.T) {
	// Mirror the synthetic sweep: yaw decreases.
	d, s := 0.1366, 343.0
	bearing := -0.4
	var beacons []Beacon
	for k := 0; k < 32; k++ {
		tt := float64(k) * 0.2
		yaw := -tt
		psi := bearing - yaw
		tdoa := -d / s * math.Sin(psi)
		beacons = append(beacons, Beacon{Seq: k, T1: tt + tdoa, T2: tt})
	}
	res := FindDirection(beacons, func(tt float64) float64 { return -tt }, -1)
	if len(res.Fixes) == 0 {
		t.Fatal("no fixes")
	}
	f := res.Fixes[0]
	if math.Abs(geom.WrapAngle(f.BearingWorld-bearing)) > 0.05 {
		t.Errorf("bearing = %v, want %v (positiveX=%v)", f.BearingWorld, bearing, f.PositiveX)
	}
}

func TestFindDirectionNoCrossing(t *testing.T) {
	beacons := []Beacon{
		{Seq: 0, T1: 0.001, T2: 0},
		{Seq: 1, T1: 0.201, T2: 0.2},
	}
	res := FindDirection(beacons, func(float64) float64 { return 0 }, 1)
	if len(res.Fixes) != 0 {
		t.Errorf("fixes = %+v, want none", res.Fixes)
	}
	if len(res.TDoAs) != 2 {
		t.Errorf("TDoAs = %d, want 2", len(res.TDoAs))
	}
}

// TestFindDirectionEndToEnd runs a full simulated rotation sweep — the
// Figure 7 experiment — and checks SDF recovers the speaker bearing.
func TestFindDirectionEndToEnd(t *testing.T) {
	phone := mic.GalaxyS4()
	src := chirp.Default()
	phonePos := geom.Vec3{X: 5, Y: 5, Z: 1.2}
	spk := geom.Vec3{X: 9, Y: 7, Z: 1.2}
	trueBearing := sim.BroadsideYaw(phonePos, spk)

	traj, err := sim.RotationSweep(phonePos, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env:       room.MeetingRoom(),
		Source:    src,
		SourcePos: spk,
		Phone:     phone,
		Traj:      traj,
		Noise:     room.WhiteNoise{},
		SNRdB:     15,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = 6
	trace, err := imu.Sample(traj, imuCfg)
	if err != nil {
		t.Fatal(err)
	}
	asp, err := NewASP(src, phone.SampleRate, DefaultASPConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := asp.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	yaws := imu.IntegrateYaw(trace, 0)
	yawAt := func(tt float64) float64 {
		i := int(tt * trace.Fs)
		if i < 0 {
			i = 0
		}
		if i >= len(yaws) {
			i = len(yaws) - 1
		}
		return yaws[i]
	}
	sdf := FindDirection(res.Beacons, yawAt, +1)
	if len(sdf.Fixes) < 2 {
		t.Fatalf("fixes = %d, want ≥2 over a full turn", len(sdf.Fixes))
	}
	best := math.Inf(1)
	for _, f := range sdf.Fixes {
		if d := math.Abs(geom.WrapAngle(f.BearingWorld - trueBearing)); d < best {
			best = d
		}
	}
	if geom.Degrees(best) > 5 {
		t.Errorf("best bearing error = %.1f°, want < 5°", geom.Degrees(best))
	}
}
