package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/dsp"
	"hyperear/internal/mic"
	"hyperear/internal/obs"
)

// ASPConfig holds the acoustic-preprocessing parameters.
type ASPConfig struct {
	// BandMarginHz widens the band-pass edges around the chirp band.
	BandMarginHz float64
	// FilterTaps is the FIR length of the band-pass.
	FilterTaps int
	// CalibDuration is the initial stationary window (seconds) used to
	// estimate the received beacon period, and hence the speaker↔phone
	// sampling-frequency offset. The protocol's opening hold (which in
	// practice is the tail of the direction-finding phase, when the phone
	// is already still) provides it.
	CalibDuration float64
	// MaxPairSkew is the maximum inter-mic arrival skew (seconds) for two
	// detections to be treated as the same beacon; it only needs to exceed
	// D/S ≈ 0.5 ms.
	MaxPairSkew float64
	// DisableSFOCorrection turns off period estimation (ablation); the
	// nominal period is used instead.
	DisableSFOCorrection bool
	// TemplateGain, when non-nil, shapes the matched-filter template by
	// the microphone's frequency response (see chirp.ReferenceShaped) —
	// the per-device calibration that keeps near-ultrasonic beacon timing
	// unbiased through a rolled-off capsule. Nil uses the flat template.
	TemplateGain func(freqHz float64) float64
	// Parallelism bounds the workers for the per-channel filter+detect
	// fan-out: 0 uses GOMAXPROCS, 1 runs the two channels serially.
	Parallelism int
	// BatchWindow, when positive with MaxBatch >= 2, coalesces concurrent
	// matched-filter correlations (across channels and across sessions
	// sharing this stage) into strided shared-plan FFT batches: a caller
	// waits up to BatchWindow for companions at the same transform size
	// (see dsp.BatchCorrelator). Zero or negative disables batching.
	BatchWindow time.Duration
	// MaxBatch caps the lanes fused into one batch; a filling batch
	// flushes immediately without waiting out the window.
	MaxBatch int
	// Obs receives the "asp" stage span and detection/pairing counters;
	// nil disables. NewLocalizer propagates Config.Obs here.
	Obs *obs.Obs
}

// DefaultASPConfig returns sensible defaults for the paper's beacon.
func DefaultASPConfig() ASPConfig {
	return ASPConfig{
		BandMarginHz:  200,
		FilterTaps:    301,
		CalibDuration: 3.0,
		MaxPairSkew:   0.002,
	}
}

// Validate reports configuration errors.
func (c ASPConfig) Validate() error {
	switch {
	case c.BandMarginHz < 0:
		return fmt.Errorf("core: negative band margin %v", c.BandMarginHz)
	case c.FilterTaps < 31:
		return fmt.Errorf("core: band-pass taps %d too few", c.FilterTaps)
	case c.CalibDuration < 0:
		return fmt.Errorf("core: negative calibration duration %v", c.CalibDuration)
	case c.MaxPairSkew <= 0:
		return fmt.Errorf("core: non-positive pair skew %v", c.MaxPairSkew)
	}
	return nil
}

// Beacon is one chirp beacon observed on both microphones.
type Beacon struct {
	// Seq is the beacon sequence number relative to the first detected
	// beacon (assigned by rounding against the nominal period).
	Seq int
	// T1 and T2 are the arrival timestamps at Mic1 and Mic2 in seconds
	// (recording timebase), sub-sample interpolated.
	T1, T2 float64
	// SNR is the weaker of the two channels' detection SNRs.
	SNR float64
}

// TDoA returns the inter-microphone time difference t1 - t2 (the §IV-A
// measurement).
func (b Beacon) TDoA() float64 { return b.T1 - b.T2 }

// ASPResult is the acoustic preprocessing output.
type ASPResult struct {
	// Beacons are the paired detections in time order.
	Beacons []Beacon
	// PeriodEff is the estimated received beacon period in recording
	// time (equals the nominal period when SFO correction is disabled or
	// under-determined).
	PeriodEff float64
	// SFOPPM is the estimated total clock skew in parts per million:
	// (PeriodEff/Period - 1)·1e6.
	SFOPPM float64
	// CalibBeacons is how many beacons informed the period estimate.
	CalibBeacons int
}

// ASP is the acoustic signal preprocessing stage.
type ASP struct {
	cfg    ASPConfig
	source chirp.Params
	fs     float64
	det    *chirp.Detector
	// scratch pools per-worker detection working sets (correlation,
	// envelope, candidate buffers) so the per-channel fan-out — run once
	// per experiment trial — reuses its big buffers instead of
	// reallocating second-long float slices every call. A pool (rather
	// than per-channel fields) keeps Process safe to call concurrently.
	scratch sync.Pool
}

// NewASP builds the stage for a beacon waveform and sampling rate.
func NewASP(source chirp.Params, fs float64, cfg ASPConfig) (*ASP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := source.Validate(); err != nil {
		return nil, err
	}
	lo := source.Low - cfg.BandMarginHz
	if lo < 50 {
		lo = 50
	}
	hi := source.High + cfg.BandMarginHz
	if hi >= fs/2 {
		hi = fs/2 - 1
	}
	bp, err := dsp.NewBandPass(lo, hi, fs, cfg.FilterTaps)
	if err != nil {
		return nil, fmt.Errorf("core: ASP band-pass: %w", err)
	}
	// The band-pass is folded into the matched-filter template
	// (ref ⊛ h) rather than applied to each second-long recording: the
	// correlation outputs are identical up to the filter's constant group
	// delay (which the detector adds back), and the per-call FFT
	// convolution over the full recording — the pipeline's largest
	// allocation — disappears.
	det, err := chirp.NewDetectorFiltered(source, fs, cfg.TemplateGain, bp.Taps())
	if err != nil {
		return nil, fmt.Errorf("core: ASP detector: %w", err)
	}
	if cfg.BatchWindow > 0 && cfg.MaxBatch >= 2 {
		det.EnableBatch(cfg.BatchWindow, cfg.MaxBatch)
	}
	a := &ASP{cfg: cfg, source: source, fs: fs, det: det}
	a.scratch.New = func() any { return new(chirp.DetectScratch) }
	return a, nil
}

// BatchStats reports how many strided FFT batches the stage's detector
// has run and how many correlation lanes they carried (zeros when
// batching is disabled).
func (a *ASP) BatchStats() (batches, lanes uint64) { return a.det.BatchStats() }

// Process filters both channels, detects and pairs beacons, and estimates
// the received beacon period from the calibration window.
func (a *ASP) Process(rec *mic.Recording) (*ASPResult, error) {
	return a.ProcessContext(context.Background(), rec)
}

// ProcessContext is Process with cancellation: the per-channel
// filter+detect fan-out — the pipeline's dominant CPU cost — is skipped
// for channels not yet started when ctx is done, and the stage returns
// ctx's error instead of pairing partial results.
func (a *ASP) ProcessContext(ctx context.Context, rec *mic.Recording) (*ASPResult, error) {
	sp := a.cfg.Obs.SpanCtx(ctx, "asp")
	defer sp.End()
	if rec == nil || len(rec.Mic1) == 0 || len(rec.Mic2) == 0 {
		sp.AttrStr("error", "empty recording")
		return nil, fmt.Errorf("core: empty recording")
	}
	// The two channels are independent and the detector is stateless
	// after construction (the template spectrum cache is lock-protected),
	// so detection fans out on a two-level channel×block schedule: up to
	// two channel workers, each running the segmented matched filter with
	// its share of the configured parallelism as block workers. A single
	// locate therefore uses all of Parallelism even though there are only
	// two channels — the old 2-wide fan-out left the rest of the machine
	// idle. The band-pass lives inside the matched-filter template (see
	// NewASP), so detection runs on the raw channels directly. Block
	// workers only schedule work; the block layout (and hence the result)
	// is fixed by the recording length alone.
	chans := [2][]float64{rec.Mic1, rec.Mic2}
	var dets [2][]chirp.Detection
	var detErrs [2]error
	chanWorkers, blockWorkers := splitParallelism(a.cfg.Parallelism)
	parallelFor(2, chanWorkers, func(i int) {
		if ctx.Err() != nil {
			return
		}
		sc := a.scratch.Get().(*chirp.DetectScratch)
		dets[i], detErrs[i] = a.det.DetectIntoCtx(ctx, nil, chans[i], sc, blockWorkers)
		a.scratch.Put(sc)
	})
	if err := ctxErr(ctx); err != nil {
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	for _, err := range detErrs {
		if err != nil {
			sp.AttrStr("error", err.Error())
			return nil, err
		}
	}
	d1, d2 := dets[0], dets[1]
	a.cfg.Obs.Add(MASPDetections, uint64(len(d1)+len(d2)))
	sp.AttrInt("detections_mic1", len(d1))
	sp.AttrInt("detections_mic2", len(d2))
	pairs := chirp.PairBeacons(d1, d2, a.cfg.MaxPairSkew)
	if len(pairs) == 0 {
		sp.AttrStr("error", "no beacons on both channels")
		return nil, fmt.Errorf("core: no beacons detected on both channels")
	}

	beacons := make([]Beacon, 0, len(pairs))
	t0 := pairs[0][0].Time
	for _, p := range pairs {
		seq := int(math.Round((p[0].Time - t0) / a.source.Period))
		snr := math.Min(p[0].SNR, p[1].SNR)
		beacons = append(beacons, Beacon{Seq: seq, T1: p[0].Time, T2: p[1].Time, SNR: snr})
	}

	res := &ASPResult{
		Beacons:   beacons,
		PeriodEff: a.source.Period,
	}
	if !a.cfg.DisableSFOCorrection {
		res.PeriodEff, res.CalibBeacons = a.estimatePeriod(beacons)
	}
	res.SFOPPM = (res.PeriodEff/a.source.Period - 1) * 1e6
	a.cfg.Obs.Add(MBeaconsPaired, uint64(len(beacons)))
	a.cfg.Obs.Add(MBeaconsCalib, uint64(res.CalibBeacons))
	sp.AttrInt("beacons", len(beacons))
	sp.Attr("sfo_ppm", res.SFOPPM)
	return res, nil
}

// estimatePeriod fits arrival time against sequence number by least
// squares over the beacons inside the stationary calibration window. With
// fewer than three calibration beacons the nominal period is returned.
func (a *ASP) estimatePeriod(beacons []Beacon) (float64, int) {
	var xs, ys []float64
	limit := beacons[0].T1 + a.cfg.CalibDuration
	for _, b := range beacons {
		if b.T1 > limit {
			break
		}
		xs = append(xs, float64(b.Seq))
		ys = append(ys, b.T1)
	}
	if len(xs) < 3 {
		return a.source.Period, len(xs)
	}
	slope, ok := olsSlope(xs, ys)
	if !ok || math.Abs(slope/a.source.Period-1) > 0.001 {
		// A >1000 ppm estimate means the fit latched onto something other
		// than clock skew; fall back to nominal.
		return a.source.Period, len(xs)
	}
	return slope, len(xs)
}

// olsSlope returns the ordinary-least-squares slope of y against x.
func olsSlope(x, y []float64) (float64, bool) {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}
