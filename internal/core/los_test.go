package core

import (
	"strings"
	"testing"

	"hyperear/internal/sim"
)

func TestLoSVerdictString(t *testing.T) {
	if LoSLikely.String() != "los-likely" || LoSSuspect.String() != "los-suspect" ||
		NLoSLikely.String() != "nlos-likely" {
		t.Error("verdict strings wrong")
	}
	if LoSVerdict(9).String() != "verdict(9)" {
		t.Error("unknown verdict string wrong")
	}
}

func TestAssessLoSEmpty(t *testing.T) {
	a := AssessLoS(nil, 0.1366, 343, 10)
	if a.Verdict != NLoSLikely {
		t.Errorf("nil result verdict = %v, want nlos", a.Verdict)
	}
	a = AssessLoS(&ASPResult{}, 0.1366, 343, 10)
	if a.Verdict != NLoSLikely {
		t.Errorf("empty result verdict = %v", a.Verdict)
	}
}

func TestAssessLoSSyntheticClean(t *testing.T) {
	res := &ASPResult{PeriodEff: 0.2}
	for k := 0; k < 50; k++ {
		res.Beacons = append(res.Beacons, Beacon{
			Seq: k, T1: float64(k) * 0.2, T2: float64(k)*0.2 - 0.0001, SNR: 40,
		})
	}
	a := AssessLoS(res, 0.1366, 343, 10)
	if a.Verdict != LoSLikely {
		t.Errorf("clean verdict = %v (%v)", a.Verdict, a.Reasons)
	}
	if a.GeometryViolations != 0 || a.TDoAJitter > 1e-9 {
		t.Errorf("clean metrics: %+v", a)
	}
}

func TestAssessLoSGeometryViolations(t *testing.T) {
	res := &ASPResult{PeriodEff: 0.2}
	for k := 0; k < 50; k++ {
		// TDoA of 1 ms >> D/S ≈ 0.4 ms: channels locked on different paths.
		res.Beacons = append(res.Beacons, Beacon{
			Seq: k, T1: float64(k) * 0.2, T2: float64(k)*0.2 - 0.001, SNR: 40,
		})
	}
	a := AssessLoS(res, 0.1366, 343, 10)
	if a.GeometryViolations != 50 {
		t.Errorf("violations = %d, want 50", a.GeometryViolations)
	}
	if a.Verdict == LoSLikely {
		t.Errorf("verdict = %v despite violations", a.Verdict)
	}
}

func TestAssessLoSFlicker(t *testing.T) {
	res := &ASPResult{PeriodEff: 0.2}
	for k := 0; k < 50; k++ {
		td := 0.0001
		if k%2 == 0 {
			td = 0.0002 // 100 µs flicker between reflection paths
		}
		res.Beacons = append(res.Beacons, Beacon{
			Seq: k, T1: float64(k) * 0.2, T2: float64(k)*0.2 - td, SNR: 40,
		})
	}
	a := AssessLoS(res, 0.1366, 343, 10)
	if a.TDoAJitter < 50e-6 {
		t.Errorf("jitter = %v, want ≈100 µs", a.TDoAJitter)
	}
	if a.Verdict != NLoSLikely {
		t.Errorf("flickering verdict = %v (%v)", a.Verdict, a.Reasons)
	}
}

func TestAssessLoSMissedBeacons(t *testing.T) {
	res := &ASPResult{PeriodEff: 0.2}
	// Only 20 of the ~50 expected beacons in a 10 s session.
	for k := 0; k < 20; k++ {
		res.Beacons = append(res.Beacons, Beacon{
			Seq: k * 2, T1: float64(k) * 0.4, T2: float64(k)*0.4 - 0.0001, SNR: 40,
		})
	}
	a := AssessLoS(res, 0.1366, 343, 10)
	if a.DetectionRate > 0.5 {
		t.Errorf("detection rate = %v, want ≈0.4", a.DetectionRate)
	}
	if a.Verdict == LoSLikely {
		t.Errorf("verdict = %v despite missing beacons", a.Verdict)
	}
	found := false
	for _, r := range a.Reasons {
		if strings.Contains(r, "expected beacons") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons missing detection-rate note: %v", a.Reasons)
	}
}

// TestAssessLoSEndToEnd: a clean simulated session assesses as LoS; the
// same session with the direct path crushed and a strong late echo
// assesses worse.
func TestAssessLoSEndToEnd(t *testing.T) {
	sc := failureScenario(601)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	loc := localizerFor(t, sc)
	dur := float64(len(s.Recording.Mic1)) / s.Recording.Fs

	clean, err := loc.asp.Process(s.Recording)
	if err != nil {
		t.Fatal(err)
	}
	cleanA := AssessLoS(clean, sc.Phone.MicSeparation, 343, dur)
	if cleanA.Verdict != LoSLikely {
		t.Errorf("clean session verdict = %v (%v)", cleanA.Verdict, cleanA.Reasons)
	}

	// Occlude: crush the direct path and add an uncorrelated-delay echo
	// per channel (different reflection geometries at each mic).
	fs := int(s.Recording.Fs)
	d1 := int(0.004 * float64(fs))
	d2 := int(0.0062 * float64(fs))
	occlude := func(ch []float64, delay int) {
		orig := make([]float64, len(ch))
		copy(orig, ch)
		for i := range ch {
			ch[i] *= 0.04
			if i >= delay {
				ch[i] += 0.45 * orig[i-delay]
			}
		}
	}
	occlude(s.Recording.Mic1, d1)
	occlude(s.Recording.Mic2, d2)
	nlos, err := loc.asp.Process(s.Recording)
	if err != nil {
		// Total detection failure is the strongest NLoS signal of all.
		return
	}
	nlosA := AssessLoS(nlos, sc.Phone.MicSeparation, 343, dur)
	if nlosA.Verdict == LoSLikely {
		t.Errorf("occluded session verdict = %v (%+v)", nlosA.Verdict, nlosA)
	}
}
