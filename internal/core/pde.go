package core

import (
	"fmt"
	"math"

	"hyperear/internal/obs"
)

// PDEConfig holds the displacement-estimation parameters.
type PDEConfig struct {
	// EdgePad extends each segment by this many samples on both sides so
	// the zero-velocity anchors sit in the truly-at-rest region.
	EdgePad int
	// MinSlideDist is the minimum estimated slide length in meters a
	// slide must reach to be used for localization (paper: slides with an
	// estimated distance over 50 cm are auto-selected, §VII-B). Zero
	// disables the gate (used by the short-slide experiments).
	MinSlideDist float64
	// MaxZRotationRad is the maximum z-axis rotation during a slide for
	// it to be used (paper: 20°). Zero disables the gate.
	MaxZRotationRad float64
	// Obs receives the movement-classification counters and the
	// drift-slope magnitude histogram; nil disables. EstimateMovement
	// runs concurrently under the pipeline's worker pool, so everything
	// it emits is atomic. NewLocalizer propagates Config.Obs here.
	Obs *obs.Obs
}

// DefaultPDEConfig returns the paper's gates: slides over 50 cm with less
// than 20° of z rotation.
func DefaultPDEConfig() PDEConfig {
	return PDEConfig{
		EdgePad:         3,
		MinSlideDist:    0.50,
		MaxZRotationRad: 20 * math.Pi / 180,
	}
}

// MovementKind classifies a segmented movement.
type MovementKind int

// Movement kinds: slides move along the body y axis, stature changes along
// z; anything ambiguous is rejected.
const (
	KindSlide MovementKind = iota + 1
	KindStature
	KindRejected
)

// String implements fmt.Stringer.
func (k MovementKind) String() string {
	switch k {
	case KindSlide:
		return "slide"
	case KindStature:
		return "stature"
	case KindRejected:
		return "rejected"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// SlideEstimate is the PDE output for one segmented movement.
type SlideEstimate struct {
	// Segment is the (padded) sample range in the IMU trace.
	Segment Segment
	// Kind classifies the movement.
	Kind MovementKind
	// RejectReason explains a KindRejected classification in prose.
	RejectReason string
	// RejectCode is the machine-readable reason code behind RejectReason
	// (the Reason* constants), carried into Diagnostics and the rejected-
	// slide counters.
	RejectCode string
	// StartTime and EndTime are the movement bounds in seconds.
	StartTime, EndTime float64
	// DispY is the signed displacement along body y in meters (the D' of
	// eq. 5/6 with its sign).
	DispY float64
	// DispZ is the signed vertical displacement (the H of eq. 7 for
	// stature movements).
	DispZ float64
	// PeakVel is the peak |velocity| along the dominant axis in m/s.
	PeakVel float64
	// ZRotation is the net z-axis rotation during the movement in
	// radians (from integrating the gyro).
	ZRotation float64
	// DriftSlope is the estimated accumulative-error slope err_a of
	// eq. (4) on the dominant axis in m/s² — reported for diagnostics and
	// the Fig. 9 reproduction.
	DriftSlope float64
}

// CorrectVelocity implements the paper's §V-B drift removal: integrate the
// acceleration to a velocity series, then subtract the linear error model
// anchored on zero true velocity at both ends (eq. 4). It returns the
// corrected velocity series and the estimated error slope err_a.
func CorrectVelocity(accel []float64, fs float64) (vel []float64, slope float64) {
	return correctVelocityInto(nil, accel, fs)
}

// correctVelocityInto is CorrectVelocity writing into dst (grown/reused
// as needed) and returning it — the per-segment buffer reuse the PDE
// fan-out's per-worker scratch relies on.
//
//hyperearvet:zeroalloc
func correctVelocityInto(dst, accel []float64, fs float64) (vel []float64, slope float64) {
	vel = growF64(dst, len(accel))
	dt := 1 / fs
	var v float64
	for i, a := range accel {
		v += a * dt
		vel[i] = v
	}
	if len(vel) < 2 {
		return vel, 0
	}
	// err_a = v(t2) / (t2 - t1); v*(t) = v(t) - err_a·(t - t1).
	span := float64(len(vel)-1) * dt
	slope = vel[len(vel)-1] / span
	for i := range vel {
		vel[i] -= slope * float64(i) * dt
	}
	return vel, slope
}

// IntegrateDisplacement integrates a velocity series to the net
// displacement in meters.
func IntegrateDisplacement(vel []float64, fs float64) float64 {
	var d float64
	dt := 1 / fs
	for _, v := range vel {
		d += v * dt
	}
	return d
}

// EstimateMovement runs PDE on one segment of preprocessed motion data:
// drift-corrected integration on the y and z axes, movement
// classification, and quality gating.
func EstimateMovement(m *MSPResult, seg Segment, cfg PDEConfig) SlideEstimate {
	return estimateMovement(m, seg, cfg, &pdeScratch{})
}

// estimateMovement is EstimateMovement with a caller-owned scratch slot;
// the pipeline fan-out hands each worker its own so the per-segment
// velocity buffers are reused instead of reallocated.
func estimateMovement(m *MSPResult, seg Segment, cfg PDEConfig, ps *pdeScratch) SlideEstimate {
	s := pad(seg, cfg.EdgePad, len(m.AccelY))
	ay := m.AccelY[s.Start:s.End]
	az := m.AccelZ[s.Start:s.End]

	vy, slopeY := correctVelocityInto(ps.vy, ay, m.Fs)
	vz, _ := correctVelocityInto(ps.vz, az, m.Fs)
	ps.vy, ps.vz = vy, vz
	dy := IntegrateDisplacement(vy, m.Fs)
	dz := IntegrateDisplacement(vz, m.Fs)

	var zrot float64
	dt := 1 / m.Fs
	for _, w := range m.GyroZ[s.Start:s.End] {
		zrot += w * dt
	}

	est := SlideEstimate{
		Segment:    s,
		StartTime:  float64(s.Start) / m.Fs,
		EndTime:    float64(s.End) / m.Fs,
		DispY:      dy,
		DispZ:      dz,
		ZRotation:  zrot,
		DriftSlope: slopeY,
	}
	cfg.Obs.Observe(MDriftSlope, math.Abs(slopeY))
	ady, adz := math.Abs(dy), math.Abs(dz)
	switch {
	case ady >= 2*adz && ady > 0.02:
		est.Kind = KindSlide
		est.PeakVel = peakAbs(vy)
	case adz >= 2*ady && adz > 0.02:
		est.Kind = KindStature
		est.PeakVel = peakAbs(vz)
	default:
		est.Kind = KindRejected
		est.RejectReason = fmt.Sprintf("ambiguous axis (|dy|=%.3f |dz|=%.3f)", ady, adz)
		est.RejectCode = ReasonPDEAmbiguous
	}

	if est.Kind == KindSlide {
		if cfg.MinSlideDist > 0 && ady < cfg.MinSlideDist {
			est.Kind = KindRejected
			est.RejectReason = fmt.Sprintf("slide %.2f m below minimum %.2f m", ady, cfg.MinSlideDist)
			est.RejectCode = ReasonPDEShort
		} else if cfg.MaxZRotationRad > 0 && math.Abs(zrot) > cfg.MaxZRotationRad {
			est.Kind = KindRejected
			est.RejectReason = fmt.Sprintf("z rotation %.1f° exceeds gate", zrot*180/math.Pi)
			est.RejectCode = ReasonPDERotation
		}
	}
	switch est.Kind {
	case KindSlide:
		cfg.Obs.Inc(MMovementSlide)
	case KindStature:
		cfg.Obs.Inc(MMovementStature)
	default:
		cfg.Obs.Inc(MMovementRejected)
	}
	return est
}

func pad(s Segment, p, n int) Segment {
	s.Start -= p
	s.End += p
	if s.Start < 0 {
		s.Start = 0
	}
	if s.End > n {
		s.End = n
	}
	return s
}

func peakAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
