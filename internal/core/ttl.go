package core

import (
	"errors"
	"fmt"
	"math"

	"hyperear/internal/geom"
)

// ErrNoAnchorBeacon is returned when no beacon falls inside a slide's rest
// window, so the slide cannot be used for augmented TDoA.
var ErrNoAnchorBeacon = errors.New("core: no anchor beacon near slide endpoint")

// TTLConfig holds the 2D localization parameters.
type TTLConfig struct {
	// MicSeparation is the phone's D in meters.
	MicSeparation float64
	// SpeedOfSound in m/s.
	SpeedOfSound float64
	// MaxAnchorGap is the maximum time (seconds) between a slide endpoint
	// and its anchor beacon; the phone must still be at rest when the
	// anchor beacon arrives, so this should stay below the protocol's
	// hold duration.
	MaxAnchorGap float64
	// InitialRange seeds the hyperbola solver's guess (meters).
	InitialRange float64
}

// DefaultTTLConfig returns defaults for the Galaxy S4.
func DefaultTTLConfig() TTLConfig {
	return TTLConfig{
		MicSeparation: 0.1366,
		SpeedOfSound:  geom.SpeedOfSound,
		MaxAnchorGap:  0.45,
		InitialRange:  3,
	}
}

// Validate reports configuration errors.
func (c TTLConfig) Validate() error {
	switch {
	case c.MicSeparation <= 0:
		return fmt.Errorf("core: mic separation %v <= 0", c.MicSeparation)
	case c.SpeedOfSound < 300 || c.SpeedOfSound > 400:
		return fmt.Errorf("core: sound speed %v outside [300,400]", c.SpeedOfSound)
	case c.MaxAnchorGap <= 0:
		return fmt.Errorf("core: anchor gap %v <= 0", c.MaxAnchorGap)
	case c.InitialRange <= 0:
		return fmt.Errorf("core: initial range %v <= 0", c.InitialRange)
	}
	return nil
}

// SlideFix is the 2D localization obtained from one slide. Coordinates are
// in the phone's start body frame: x toward the speaker side (the SDF
// in-direction axis), y along the slide/mic axis.
type SlideFix struct {
	// Pos is the estimated speaker position in the start body frame
	// (x = perpendicular distance from the slide line, y = along-axis).
	Pos geom.Vec2
	// L is the perpendicular distance from the slide line to the speaker
	// (the quantity of Fig. 10); in 3D sessions this is a slant distance.
	L float64
	// DPrime is the slide length used (meters, absolute).
	DPrime float64
	// N is the number of beacon periods spanned by the slide.
	N int
	// Aug1 and Aug2 are the augmented TDoAs (seconds) measured at Mic1
	// and Mic2.
	Aug1, Aug2 float64
	// CenterY is the body-frame y coordinate of the midpoint of Mic1's
	// two positions, for diagnostics.
	CenterY float64
}

// LocalizeSlide computes the augmented-TDoA fix for one slide.
//
// Inputs: the anchor beacons before and after the slide, the effective
// beacon period, the slide's signed body-y displacement dispY (from PDE),
// the phone's rest body-y coordinate startY before the slide (from dead
// reckoning over previous slides), and the gyro-estimated yaw deviations
// of the phone at the two anchor positions (radians, relative to the
// session-start orientation). The slide moves Mic1 from y = startY+D/2 to
// y = startY+dispY+D/2, and Mic2 likewise D lower.
//
// Rotation error correction (the Fig. 5 "Augmented TDoA with Rotation
// Error Corrected" path): a yaw deviation φ at an anchor swings Mic1 by
// -(D/2)·φ and Mic2 by +(D/2)·φ along the in-direction (body x) axis, so
// the arrival time at Mic1 is late by (D/2)·φ/S and at Mic2 early by the
// same amount. This matters because at the in-direction orientation the
// inter-mic TDoA has its *maximum* sensitivity to yaw — 1° of hand wobble
// is ≈7 µs of TDoA, which would otherwise swamp the ~0.2 mm differential
// path signal that carries range at 7 m.
//
// The returned fix solves the paper's eq. (5) and (6): one hyperbola per
// mic, with foci at that mic's two rest positions and distance difference
// S·Δt', where Δt' = t_after - t_before - n·T.
func LocalizeSlide(before, after Beacon, periodEff, dispY, startY, yawDevBefore, yawDevAfter float64, cfg TTLConfig) (SlideFix, error) {
	if err := cfg.Validate(); err != nil {
		return SlideFix{}, err
	}
	if periodEff <= 0 {
		return SlideFix{}, fmt.Errorf("core: non-positive period %v", periodEff)
	}
	n := after.Seq - before.Seq
	if n <= 0 {
		return SlideFix{}, fmt.Errorf("core: anchor beacons out of order (Δseq=%d)", n)
	}
	rot := cfg.MicSeparation / 2 / cfg.SpeedOfSound
	t1b := before.T1 - rot*yawDevBefore
	t2b := before.T2 + rot*yawDevBefore
	t1a := after.T1 - rot*yawDevAfter
	t2a := after.T2 + rot*yawDevAfter
	aug1 := t1a - t1b - float64(n)*periodEff
	aug2 := t2a - t2b - float64(n)*periodEff

	d := cfg.MicSeparation
	endY := startY + dispY
	// Rest positions of each mic along the body y axis.
	m1a, m1b := startY+d/2, endY+d/2
	m2a, m2b := startY-d/2, endY-d/2

	// Body-frame 2D: points are (x, y) with x the perpendicular axis.
	// geom.Hyperbola works on (X, Y); map body (x,y) -> (Y:=y on the
	// focus axis, X:=x off-axis) by putting foci on the hyperbola's
	// X axis. Simpler: use foci ON the geom X axis with coordinate = body
	// y, and the geom Y axis = body x. We solve in that swapped frame and
	// swap back.
	h1 := geom.Hyperbola{
		F1:    geom.Vec2{X: m1b},
		F2:    geom.Vec2{X: m1a},
		Delta: aug1 * cfg.SpeedOfSound,
	}
	h2 := geom.Hyperbola{
		F1:    geom.Vec2{X: m2b},
		F2:    geom.Vec2{X: m2a},
		Delta: aug2 * cfg.SpeedOfSound,
	}
	if !h1.Valid() || !h2.Valid() {
		return SlideFix{}, fmt.Errorf("core: augmented TDoA exceeds slide length (Δd1=%.4f Δd2=%.4f D'=%.4f): %w",
			h1.Delta, h2.Delta, dispY, geom.ErrNoIntersection)
	}
	guess := geom.Vec2{X: (m1a + m1b) / 2, Y: cfg.InitialRange}
	sol, err := geom.IntersectHyperbolas(h1, h2, guess)
	if err != nil {
		return SlideFix{}, fmt.Errorf("core: triangulation: %w", err)
	}
	// The mirrored branch (negative perpendicular coordinate) is the same
	// physical solution; SDF fixed the side, so fold onto positive x.
	perp := math.Abs(sol.Y)
	fix := SlideFix{
		Pos:     geom.Vec2{X: perp, Y: sol.X},
		L:       perp,
		DPrime:  math.Abs(dispY),
		N:       n,
		Aug1:    aug1,
		Aug2:    aug2,
		CenterY: (m1a + m1b) / 2,
	}
	return fix, nil
}

// anchorBeacons builds the two anchor observations for a slide: a virtual
// beacon averaged over every beacon in the rest window before the slide
// ([start-maxGap, start]) and one averaged over the window after
// ([end, end+maxGap]). The phone is at rest in both windows, so after
// removing the known beacon-period ramp the timestamps are repeated
// measurements of the same geometry: averaging k of them cuts the
// matched-filter timing noise by √k, which matters because the range
// information at 7 m lives in ~0.2 mm of differential path length.
func anchorBeacons(beacons []Beacon, start, end, maxGap, periodEff float64) (before, after Beacon, err error) {
	winBefore := collectWindow(beacons, start-maxGap, start)
	winAfter := collectWindow(beacons, end, end+maxGap)
	if len(winBefore) == 0 || len(winAfter) == 0 {
		return Beacon{}, Beacon{}, fmt.Errorf("%w (rest windows hold %d/%d beacons)",
			ErrNoAnchorBeacon, len(winBefore), len(winAfter))
	}
	return averageWindow(winBefore, periodEff), averageWindow(winAfter, periodEff), nil
}

// collectWindow returns beacons with T1 in [lo, hi].
func collectWindow(beacons []Beacon, lo, hi float64) []Beacon {
	var out []Beacon
	for _, b := range beacons {
		if b.T1 >= lo && b.T1 <= hi {
			out = append(out, b)
		}
	}
	return out
}

// averageWindow folds a rest window onto its last beacon: timestamps are
// shifted by the known period ramp and averaged, giving a virtual beacon
// at the last sequence number with √k-reduced timing noise.
func averageWindow(win []Beacon, periodEff float64) Beacon {
	ref := win[len(win)-1]
	var t1, t2, snr float64
	for _, b := range win {
		shift := float64(ref.Seq-b.Seq) * periodEff
		t1 += b.T1 + shift
		t2 += b.T2 + shift
		snr += b.SNR
	}
	k := float64(len(win))
	return Beacon{Seq: ref.Seq, T1: t1 / k, T2: t2 / k, SNR: snr / k}
}
