package core

// Metric names the pipeline emits into its obs.Registry. The span
// duration histograms ("span.asp", "span.msp", "span.pde", "span.ttl",
// "span.locate2d", "span.locate3d") are named by the obs package from
// the stage names below. The full taxonomy is documented in DESIGN.md
// ("Observability").
const (
	// MASPDetections counts raw matched-filter detections across both
	// microphone channels.
	MASPDetections = "asp.detections"
	// MBeaconsPaired counts detections paired into two-channel beacons.
	MBeaconsPaired = "asp.beacons.paired"
	// MBeaconsCalib counts beacons that informed the SFO period estimate.
	MBeaconsCalib = "asp.beacons.calib"
	// MSegments counts MSP movement segments.
	MSegments = "msp.segments"
	// MMovementSlide/Stature/Rejected tally PDE movement classifications.
	MMovementSlide    = "pde.movement.slide"
	MMovementStature  = "pde.movement.stature"
	MMovementRejected = "pde.movement.rejected"
	// MDriftSlope is the histogram of |err_a| drift-correction slopes
	// (m/s², eq. 4) over slide-axis integrations.
	MDriftSlope = "pde.drift_slope_abs"
	// MSlideAccepted counts movements that produced a localization fix.
	MSlideAccepted = "pipeline.slide.accepted"
	// MSlideRejectedPrefix + reason code counts movements that produced
	// no fix; summing MSlideAccepted and every MSlideRejectedPrefix
	// counter reconstructs len(Result2D.Movements) across the session.
	MSlideRejectedPrefix = "pipeline.slide.rejected."
)

// Reason codes attached to SlideError.Reason and appended to
// MSlideRejectedPrefix counters. Stable identifiers: traces, metrics,
// and wrapped ErrNoUsableSlides messages all use them.
const (
	// ReasonPDEAmbiguous: neither axis dominated the displacement.
	ReasonPDEAmbiguous = "pde_ambiguous_axis"
	// ReasonPDEShort: the slide was below PDEConfig.MinSlideDist.
	ReasonPDEShort = "pde_short_slide"
	// ReasonPDERotation: z rotation exceeded PDEConfig.MaxZRotationRad.
	ReasonPDERotation = "pde_excess_rotation"
	// ReasonStature: the movement was a vertical stature change, not a
	// slide (expected in 3D sessions; consumed by the projection, not
	// triangulated).
	ReasonStature = "stature"
	// ReasonNoAnchor: no beacon inside a rest window next to the slide.
	ReasonNoAnchor = "no_anchor"
	// ReasonTriangulation: the hyperbola intersection failed.
	ReasonTriangulation = "triangulation_failed"
)
