package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
)

// This file implements the paper's §I remark that HyperEar "can be easily
// extended for 3D localization": instead of the two-stature projection
// (eq. 7), every slide — horizontal or vertical — contributes one
// augmented-TDoA observation per microphone, each constraining the
// speaker to a hyperboloid of revolution around that mic's two rest
// positions. Slides along two non-parallel directions make the
// intersection a point, recovered by damped Gauss-Newton over all
// observations jointly.

// ErrFull3DUnderdetermined is returned when the session lacks movement
// diversity (all slides parallel) or has too few usable observations.
var ErrFull3DUnderdetermined = errors.New("core: full-3D session underdetermined")

// SlideObservation is one microphone's augmented TDoA across one
// movement, with the mic's rest positions in the start body frame.
type SlideObservation struct {
	// Before and After are the mic positions at the two anchors (m).
	Before, After geom.Vec3
	// DeltaD is the measured path-length change |p-After| - |p-Before|
	// in meters (S·Δt').
	DeltaD float64
}

// residual returns the observation residual at candidate position p.
func (o SlideObservation) residual(p geom.Vec3) float64 {
	return p.Dist(o.After) - p.Dist(o.Before) - o.DeltaD
}

// gradient returns ∂residual/∂p.
func (o SlideObservation) gradient(p geom.Vec3) geom.Vec3 {
	return p.Sub(o.After).Normalize().Sub(p.Sub(o.Before).Normalize())
}

// trustRadius bounds how far SolveFull3D may move from its seed (meters).
const trustRadius = 3.0

// SolveFull3D finds the speaker position minimizing the squared residuals
// of all observations by damped Gauss-Newton from guess, confined to a
// trust region of trustRadius around the guess. It needs at least three
// observations with non-degenerate geometry and a guess within
// trustRadius of the answer.
func SolveFull3D(obs []SlideObservation, guess geom.Vec3) (geom.Vec3, error) {
	if len(obs) < 3 {
		return geom.Vec3{}, fmt.Errorf("%w: %d observations", ErrFull3DUnderdetermined, len(obs))
	}
	p := guess
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		// Normal equations: (JᵀJ) δ = -Jᵀr.
		var jtj [3][3]float64
		var jtr [3]float64
		var cost float64
		for _, o := range obs {
			r := o.residual(p)
			g := o.gradient(p)
			cost += r * r
			row := [3]float64{g.X, g.Y, g.Z}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					jtj[i][j] += row[i] * row[j]
				}
				jtr[i] += row[i] * r
			}
		}
		// Levenberg damping keeps the step sane far from the optimum.
		lambda := 1e-9 + 1e-3*cost
		for i := 0; i < 3; i++ {
			jtj[i][i] += lambda
		}
		dx, ok := solve3(jtj, [3]float64{-jtr[0], -jtr[1], -jtr[2]})
		if !ok {
			return geom.Vec3{}, fmt.Errorf("%w: singular normal equations", ErrFull3DUnderdetermined)
		}
		step := geom.Vec3{X: dx[0], Y: dx[1], Z: dx[2]}
		// Limit step length for stability.
		if n := step.Norm(); n > 2 {
			step = step.Scale(2 / n)
		}
		p = p.Add(step)
		// Trust region: weakly conditioned sessions (nearly parallel
		// hyperboloids) have cost valleys running toward far-field ghosts
		// that fit the noisy observations slightly *better* than the true
		// position, so the iterate is confined to a ball around the seed
		// (which comes from the ambiguity-free 2D stage). The projection
		// is a hard constraint, not a prior — exact data inside the ball
		// is solved without bias.
		if off := p.Sub(guess); off.Norm() > trustRadius {
			p = guess.Add(off.Scale(trustRadius / off.Norm()))
		}
		p.Z = geom.Clamp(p.Z, -3, 3)
		if step.Norm() < 1e-9 {
			break
		}
	}
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.Z) {
		return geom.Vec3{}, fmt.Errorf("%w: diverged", ErrFull3DUnderdetermined)
	}
	// A solution pinned to the trust boundary means the data preferred a
	// far ghost: the session lacks the geometric diversity to resolve 3D.
	if p.Sub(guess).Norm() > trustRadius-1e-6 {
		return geom.Vec3{}, fmt.Errorf("%w: solution pinned to trust boundary", ErrFull3DUnderdetermined)
	}
	return p, nil
}

// solve3 solves a 3x3 linear system by Cramer's rule.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	det := det3(a)
	if math.Abs(det) < 1e-18 {
		return [3]float64{}, false
	}
	var out [3]float64
	for col := 0; col < 3; col++ {
		m := a
		for row := 0; row < 3; row++ {
			m[row][col] = b[row]
		}
		out[col] = det3(m) / det
	}
	return out, true
}

func det3(a [3][3]float64) float64 {
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// ResultFull3D is the output of the full-3D extension.
type ResultFull3D struct {
	// Pos is the speaker estimate in the start body frame (x toward the
	// speaker per SDF, y the horizontal slide axis, z up).
	Pos geom.Vec3
	// Observations is the number of augmented-TDoA constraints fused.
	Observations int
	// RMSResidual is the root-mean-square residual at the solution (m),
	// a goodness-of-fit indicator.
	RMSResidual float64
	// Movements echoes the PDE estimates.
	Movements []SlideEstimate
	// ASP echoes the acoustic preprocessing result.
	ASP *ASPResult
}

// LocateFull3D runs the full-3D extension on a session whose protocol
// mixes horizontal (body-y) and vertical slides. Unlike Locate3D, no
// two-stature projection is involved: the speaker's complete relative 3D
// position falls out of the joint solve.
func (l *Localizer) LocateFull3D(rec *mic.Recording, tr *imu.Trace) (*ResultFull3D, error) {
	return l.LocateFull3DContext(context.Background(), rec, tr)
}

// LocateFull3DContext is LocateFull3D with cancellation (see
// Locate2DContext).
func (l *Localizer) LocateFull3DContext(ctx context.Context, rec *mic.Recording, tr *imu.Trace) (*ResultFull3D, error) {
	sp := l.cfg.Obs.SpanCtx(ctx, "full3d")
	defer sp.End()
	scr := getScratch()
	defer putScratch(scr)
	aspRes, msp, ests, err := l.analyzeSession(ctx, rec, tr, scr)
	if err != nil {
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	d := l.cfg.MicSeparation
	gap := l.cfg.TTL.MaxAnchorGap
	rot := d / 2 / l.cfg.SpeedOfSound

	var obs []SlideObservation
	sawVertical, sawHorizontal := false, false
	y, z := 0.0, 0.0
	for _, est := range ests {
		var moveY, moveZ float64
		switch est.Kind {
		case KindSlide:
			moveY = est.DispY
		case KindStature:
			moveZ = est.DispZ
		default:
			y += est.DispY
			z += est.DispZ
			continue
		}
		before, after, aerr := anchorBeacons(aspRes.Beacons, est.StartTime, est.EndTime, gap, aspRes.PeriodEff)
		if aerr != nil {
			y += moveY
			z += moveZ
			continue
		}
		yawB := msp.meanYawDev(est.StartTime-gap, est.StartTime)
		yawA := msp.meanYawDev(est.EndTime, est.EndTime+gap)
		n := after.Seq - before.Seq
		if n <= 0 {
			y += moveY
			z += moveZ
			continue
		}
		// Rotation-corrected per-mic augmented TDoAs (same correction as
		// LocalizeSlide).
		aug1 := (after.T1 - rot*yawA) - (before.T1 - rot*yawB) - float64(n)*aspRes.PeriodEff
		aug2 := (after.T2 + rot*yawA) - (before.T2 + rot*yawB) - float64(n)*aspRes.PeriodEff

		m1b := geom.Vec3{Y: y + d/2, Z: z}
		m2b := geom.Vec3{Y: y - d/2, Z: z}
		m1a := geom.Vec3{Y: y + moveY + d/2, Z: z + moveZ}
		m2a := geom.Vec3{Y: y + moveY - d/2, Z: z + moveZ}
		obs = append(obs,
			SlideObservation{Before: m1b, After: m1a, DeltaD: aug1 * l.cfg.SpeedOfSound},
			SlideObservation{Before: m2b, After: m2a, DeltaD: aug2 * l.cfg.SpeedOfSound},
		)
		if est.Kind == KindSlide {
			sawHorizontal = true
		} else {
			sawVertical = true
		}
		y += moveY
		z += moveZ
	}
	if !sawHorizontal || !sawVertical {
		return nil, fmt.Errorf("%w: need both horizontal and vertical slides (got h=%v v=%v)",
			ErrFull3DUnderdetermined, sawHorizontal, sawVertical)
	}
	// Seed the solver from the per-slide 2D fixes: far-field ghosts along
	// the hyperboloid asymptotes fit the observations almost as well as
	// the true position, so Gauss-Newton must start inside the true
	// basin. The 2D stage is immune to that ambiguity (it intersects the
	// branches directly).
	guess := geom.Vec3{X: l.cfg.TTL.InitialRange}
	if fixes, _, serr := l.localizeSlides(ctx, aspRes, msp, ests); serr == nil && len(fixes) > 0 {
		ls := make([]float64, len(fixes))
		ys := make([]float64, len(fixes))
		for i, f := range fixes {
			ls[i] = f.L
			ys[i] = f.Pos.Y
		}
		guess = geom.Vec3{X: aggregate(ls), Y: aggregate(ys)}
	}
	pos, err := SolveFull3D(obs, guess)
	if err != nil {
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	sp.AttrInt("observations", len(obs))
	// Fold the mirrored solution (x < 0) onto the SDF side.
	if pos.X < 0 {
		pos.X = -pos.X
	}
	var ss float64
	for _, o := range obs {
		r := o.residual(pos)
		ss += r * r
	}
	rms := math.Sqrt(ss / float64(len(obs)))
	// A fit that cannot explain the observations to within a few
	// centimeters found a ghost (e.g. clamped against the solver box);
	// surface that instead of a silently wrong position.
	if rms > 0.05 {
		return nil, fmt.Errorf("%w: residual %.3f m", ErrFull3DUnderdetermined, rms)
	}
	return &ResultFull3D{
		Pos:          pos,
		Observations: len(obs),
		RMSResidual:  rms,
		Movements:    ests,
		ASP:          aspRes,
	}, nil
}
