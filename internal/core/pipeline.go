package core

import (
	"errors"
	"fmt"
	"math"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
)

// ErrNoUsableSlides is returned when every segmented movement was rejected
// by the PDE quality gates or failed triangulation.
var ErrNoUsableSlides = errors.New("core: no usable slides in session")

// Config configures a Localizer.
type Config struct {
	// Source is the beacon waveform the speaker plays.
	Source chirp.Params
	// SampleRate is the recording rate in Hz.
	SampleRate float64
	// MicSeparation is the phone's inter-mic distance D in meters.
	MicSeparation float64
	// SpeedOfSound in m/s.
	SpeedOfSound float64
	// ASP, MSP, PDE, TTL configure the individual stages; zero values are
	// replaced by defaults.
	ASP ASPConfig
	MSP MSPConfig
	PDE PDEConfig
	TTL TTLConfig
	// DisableDriftCorrection integrates raw velocity without the eq. (4)
	// linear model (ablation).
	DisableDriftCorrection bool
	// MaxVerticalOffset bounds the phone-to-speaker height difference the
	// 3D projection will infer (meters); 0 selects the 1.5 m default. See
	// ProjectDistanceClamped.
	MaxVerticalOffset float64
	// Parallelism bounds the worker goroutines used for the pipeline's
	// independent stages (the two microphone channels in ASP and the
	// per-slide movement estimates). 0 uses GOMAXPROCS; 1 forces a fully
	// serial pipeline (useful for benchmarking and deterministic
	// profiling).
	Parallelism int
}

// DefaultConfig returns a configuration for the given phone geometry.
func DefaultConfig(source chirp.Params, sampleRate, micSeparation float64) Config {
	ttl := DefaultTTLConfig()
	ttl.MicSeparation = micSeparation
	return Config{
		Source:        source,
		SampleRate:    sampleRate,
		MicSeparation: micSeparation,
		SpeedOfSound:  geom.SpeedOfSound,
		ASP:           DefaultASPConfig(),
		MSP:           DefaultMSPConfig(),
		PDE:           DefaultPDEConfig(),
		TTL:           ttl,
	}
}

// Localizer runs the full HyperEar pipeline on recorded sessions.
type Localizer struct {
	cfg Config
	asp *ASP
}

// NewLocalizer validates the configuration and prepares the stages.
func NewLocalizer(cfg Config) (*Localizer, error) {
	// The !(x > 0) form also rejects NaN, which every ordered comparison
	// reports false for — a plain `<= 0` check would wave NaN through and
	// let it poison the band-pass design and all downstream timestamps.
	if !(cfg.SampleRate > 0) || math.IsInf(cfg.SampleRate, 0) {
		return nil, fmt.Errorf("core: sample rate %v Hz invalid (need a finite rate > 0)", cfg.SampleRate)
	}
	if err := cfg.Source.Validate(); err != nil {
		return nil, fmt.Errorf("core: beacon source: %w", err)
	}
	if cfg.MicSeparation <= 0 {
		return nil, fmt.Errorf("core: mic separation %v <= 0", cfg.MicSeparation)
	}
	if cfg.SpeedOfSound == 0 {
		cfg.SpeedOfSound = geom.SpeedOfSound
	}
	if cfg.MSP == (MSPConfig{}) {
		cfg.MSP = DefaultMSPConfig()
	}
	if cfg.PDE == (PDEConfig{}) {
		cfg.PDE = DefaultPDEConfig()
	}
	if cfg.TTL == (TTLConfig{}) {
		cfg.TTL = DefaultTTLConfig()
	}
	cfg.TTL.MicSeparation = cfg.MicSeparation
	cfg.TTL.SpeedOfSound = cfg.SpeedOfSound
	if cfg.ASP.FilterTaps == 0 {
		gain := cfg.ASP.TemplateGain
		cfg.ASP = DefaultASPConfig()
		cfg.ASP.TemplateGain = gain
	}
	if cfg.ASP.Parallelism == 0 {
		cfg.ASP.Parallelism = cfg.Parallelism
	}
	asp, err := NewASP(cfg.Source, cfg.SampleRate, cfg.ASP)
	if err != nil {
		return nil, err
	}
	if err := cfg.MSP.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.TTL.Validate(); err != nil {
		return nil, err
	}
	return &Localizer{cfg: cfg, asp: asp}, nil
}

// Result2D is the output of a 2D localization session.
type Result2D struct {
	// Pos is the aggregated speaker estimate in the phone's start body
	// frame (x = perpendicular/in-direction axis, y = slide axis).
	Pos geom.Vec2
	// L is the aggregated perpendicular distance from the slide line.
	L float64
	// Fixes are the accepted per-slide fixes.
	Fixes []SlideFix
	// Movements are all PDE movement estimates (including rejected ones),
	// for diagnostics.
	Movements []SlideEstimate
	// ASP echoes the acoustic preprocessing result.
	ASP *ASPResult
}

// Result3D is the output of a two-stature 3D session.
type Result3D struct {
	// ProjectedDist is the estimated horizontal distance to the speaker
	// (the paper's L*).
	ProjectedDist float64
	// ProjectedPos is the estimated speaker position on the floor map in
	// the start body frame.
	ProjectedPos geom.Vec2
	// L1 and L2 are the aggregated slant distances at the two statures.
	L1, L2 float64
	// H is the estimated stature change.
	H float64
	// Beta is the eq. (7) angle in radians.
	Beta float64
	// Lower holds the per-stature slide fixes: Lower[0] before the
	// stature change, Lower[1] after.
	Fixes [2][]SlideFix
	// Movements are all PDE movement estimates.
	Movements []SlideEstimate
	// ASP echoes the acoustic preprocessing result.
	ASP *ASPResult
}

// Preprocess runs only the acoustic stage on a recording — enough for
// direction finding and LoS assessment without a full localization.
func (l *Localizer) Preprocess(rec *mic.Recording) (*ASPResult, error) {
	return l.asp.Process(rec)
}

// MicSeparation returns the configured inter-mic distance D.
func (l *Localizer) MicSeparation() float64 { return l.cfg.MicSeparation }

// SpeedOfSound returns the configured sound speed.
func (l *Localizer) SpeedOfSound() float64 { return l.cfg.SpeedOfSound }

// analyzeSession runs ASP, MSP, and PDE over one session.
func (l *Localizer) analyzeSession(rec *mic.Recording, tr *imu.Trace) (*ASPResult, *MSPResult, []SlideEstimate, error) {
	aspRes, err := l.asp.Process(rec)
	if err != nil {
		return nil, nil, nil, err
	}
	msp, err := PreprocessIMU(tr, l.cfg.MSP)
	if err != nil {
		return nil, nil, nil, err
	}
	// Movement estimates are independent per segment (EstimateMovement only
	// reads the shared MSPResult), so they fan out over the worker pool;
	// results land at their segment index to keep the output order.
	ests := make([]SlideEstimate, len(msp.Segments))
	parallelFor(len(msp.Segments), l.cfg.Parallelism, func(i int) {
		est := EstimateMovement(msp, msp.Segments[i], l.cfg.PDE)
		if l.cfg.DisableDriftCorrection {
			est = l.reestimateWithoutCorrection(msp, msp.Segments[i], est)
		}
		ests[i] = est
	})
	return aspRes, msp, ests, nil
}

// reestimateWithoutCorrection replaces the drift-corrected displacement by
// a raw double integration (the ablation baseline).
func (l *Localizer) reestimateWithoutCorrection(m *MSPResult, seg Segment, est SlideEstimate) SlideEstimate {
	s := est.Segment
	dt := 1 / m.Fs
	raw := func(a []float64) float64 {
		var v, d float64
		for _, x := range a[s.Start:s.End] {
			v += x * dt
			d += v * dt
		}
		return d
	}
	est.DispY = raw(m.AccelY)
	est.DispZ = raw(m.AccelZ)
	_ = seg
	return est
}

// localizeSlides turns accepted slide movements into fixes, dead-reckoning
// the phone's rest position along the body y axis across slides and
// correcting each anchor's rotation-induced TDoA error from the gyro.
func (l *Localizer) localizeSlides(aspRes *ASPResult, msp *MSPResult, ests []SlideEstimate) ([]SlideFix, []error) {
	var fixes []SlideFix
	var errs []error
	y := 0.0
	gap := l.cfg.TTL.MaxAnchorGap
	for _, est := range ests {
		switch est.Kind {
		case KindSlide:
			before, after, err := anchorBeacons(aspRes.Beacons, est.StartTime, est.EndTime, gap, aspRes.PeriodEff)
			if err != nil {
				errs = append(errs, err)
				y += est.DispY
				continue
			}
			yawB := msp.meanYawDev(est.StartTime-gap, est.StartTime)
			yawA := msp.meanYawDev(est.EndTime, est.EndTime+gap)
			fix, err := LocalizeSlide(before, after, aspRes.PeriodEff, est.DispY, y, yawB, yawA, l.cfg.TTL)
			if err != nil {
				errs = append(errs, err)
			} else {
				fixes = append(fixes, fix)
			}
			y += est.DispY
		case KindStature:
			// Vertical moves do not change the body-y dead reckoning.
		default:
			// Rejected movements still move the phone.
			y += est.DispY
		}
	}
	return fixes, errs
}

// Locate2D runs the pipeline on a single-stature session and returns the
// aggregated 2D fix.
func (l *Localizer) Locate2D(rec *mic.Recording, tr *imu.Trace) (*Result2D, error) {
	aspRes, msp, ests, err := l.analyzeSession(rec, tr)
	if err != nil {
		return nil, err
	}
	fixes, _ := l.localizeSlides(aspRes, msp, ests)
	if len(fixes) == 0 {
		return nil, ErrNoUsableSlides
	}
	ls := make([]float64, len(fixes))
	xs := make([]float64, len(fixes))
	ys := make([]float64, len(fixes))
	for i, f := range fixes {
		ls[i] = f.L
		xs[i] = f.Pos.X
		ys[i] = f.Pos.Y
	}
	return &Result2D{
		Pos:       geom.Vec2{X: aggregate(xs), Y: aggregate(ys)},
		L:         aggregate(ls),
		Fixes:     fixes,
		Movements: ests,
		ASP:       aspRes,
	}, nil
}

// Locate3D runs the pipeline on a two-stature session: slides before the
// stature change give L1, slides after give L2, and the stature movement
// itself gives H; eq. (7) projects the speaker onto the floor.
func (l *Localizer) Locate3D(rec *mic.Recording, tr *imu.Trace) (*Result3D, error) {
	aspRes, msp, ests, err := l.analyzeSession(rec, tr)
	if err != nil {
		return nil, err
	}
	// Find the stature change.
	statureIdx := -1
	var h float64
	for i, est := range ests {
		if est.Kind == KindStature {
			statureIdx = i
			h = est.DispZ
			break
		}
	}
	if statureIdx < 0 {
		return nil, fmt.Errorf("core: no stature change detected in 3D session")
	}

	fixes, _ := l.localizeSlides(aspRes, msp, ests)
	if len(fixes) == 0 {
		return nil, ErrNoUsableSlides
	}
	var parts [2][]SlideFix
	var l1s, l2s, ys1 []float64
	// Fixes are produced in time order; split them by counting how many
	// accepted slides precede the stature movement.
	nBefore := 0
	count := 0
	for i, est := range ests {
		if est.Kind != KindSlide {
			continue
		}
		if _, _, err := anchorBeacons(aspRes.Beacons, est.StartTime, est.EndTime, l.cfg.TTL.MaxAnchorGap, aspRes.PeriodEff); err != nil {
			continue
		}
		count++
		if i < statureIdx {
			nBefore = count
		}
	}
	if nBefore > len(fixes) {
		nBefore = len(fixes)
	}
	parts[0] = fixes[:nBefore]
	parts[1] = fixes[nBefore:]
	if len(parts[0]) == 0 || len(parts[1]) == 0 {
		return nil, fmt.Errorf("core: 3D session needs usable slides on both statures (%d/%d): %w",
			len(parts[0]), len(parts[1]), ErrNoUsableSlides)
	}
	for _, f := range parts[0] {
		l1s = append(l1s, f.L)
		ys1 = append(ys1, f.Pos.Y)
	}
	for _, f := range parts[1] {
		l2s = append(l2s, f.L)
	}
	l1 := aggregate(l1s)
	l2 := aggregate(l2s)

	lStar, err := ProjectDistanceClamped(l1, l2, h, l.cfg.MaxVerticalOffset)
	if err != nil {
		// Degenerate inputs (zero stature change): fall back to treating
		// the slant distance as horizontal.
		lStar = math.Min(l1, l2)
	}
	// Projected position: keep the along-axis estimate from stature 1,
	// scale the perpendicular axis to the projected distance.
	pos := geom.Vec2{X: lStar, Y: aggregate(ys1)}
	return &Result3D{
		ProjectedDist: lStar,
		ProjectedPos:  pos,
		L1:            l1,
		L2:            l2,
		H:             h,
		Beta:          betaOf(l1, l2, h),
		Fixes:         parts,
		Movements:     ests,
		ASP:           aspRes,
	}, nil
}

func betaOf(l1, l2, h float64) float64 {
	h = math.Abs(h)
	if h == 0 || l1 == 0 {
		return math.NaN()
	}
	c := (h*h + l1*l1 - l2*l2) / (2 * h * l1)
	if c < -1 || c > 1 {
		return math.NaN()
	}
	return math.Acos(c)
}
