package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/obs"
)

// ErrNoUsableSlides is returned when every segmented movement was rejected
// by the PDE quality gates or failed triangulation.
var ErrNoUsableSlides = errors.New("core: no usable slides in session")

// ctxErr returns a wrapped cancellation error when ctx is done, nil
// otherwise. The wrap keeps errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) working for callers (a server
// shedding a dead client distinguishes them from pipeline failures).
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("core: pipeline canceled: %w", context.Cause(ctx))
	default:
		return nil
	}
}

// Config configures a Localizer.
type Config struct {
	// Source is the beacon waveform the speaker plays.
	Source chirp.Params
	// SampleRate is the recording rate in Hz.
	SampleRate float64
	// MicSeparation is the phone's inter-mic distance D in meters.
	MicSeparation float64
	// SpeedOfSound in m/s.
	SpeedOfSound float64
	// ASP, MSP, PDE, TTL configure the individual stages; zero values are
	// replaced by defaults.
	ASP ASPConfig
	MSP MSPConfig
	PDE PDEConfig
	TTL TTLConfig
	// DisableDriftCorrection integrates raw velocity without the eq. (4)
	// linear model (ablation).
	DisableDriftCorrection bool
	// MaxVerticalOffset bounds the phone-to-speaker height difference the
	// 3D projection will infer (meters); 0 selects the 1.5 m default. See
	// ProjectDistanceClamped.
	MaxVerticalOffset float64
	// Parallelism bounds the worker goroutines used for the pipeline's
	// independent stages (the two microphone channels in ASP and the
	// per-slide movement estimates). 0 uses GOMAXPROCS; 1 forces a fully
	// serial pipeline (useful for benchmarking and deterministic
	// profiling).
	Parallelism int
	// Obs is the observability hook: stage spans, reason-coded counters,
	// and duration histograms flow through it (see internal/obs and
	// DESIGN.md "Observability"). Nil disables everything at zero cost;
	// it is propagated into the ASP/MSP/PDE stage configs by
	// NewLocalizer.
	Obs *obs.Obs
}

// DefaultConfig returns a configuration for the given phone geometry.
func DefaultConfig(source chirp.Params, sampleRate, micSeparation float64) Config {
	ttl := DefaultTTLConfig()
	ttl.MicSeparation = micSeparation
	return Config{
		Source:        source,
		SampleRate:    sampleRate,
		MicSeparation: micSeparation,
		SpeedOfSound:  geom.SpeedOfSound,
		ASP:           DefaultASPConfig(),
		MSP:           DefaultMSPConfig(),
		PDE:           DefaultPDEConfig(),
		TTL:           ttl,
	}
}

// Localizer runs the full HyperEar pipeline on recorded sessions.
type Localizer struct {
	cfg Config
	asp *ASP
}

// NewLocalizer validates the configuration and prepares the stages.
func NewLocalizer(cfg Config) (*Localizer, error) {
	// The !(x > 0) form also rejects NaN, which every ordered comparison
	// reports false for — a plain `<= 0` check would wave NaN through and
	// let it poison the band-pass design and all downstream timestamps.
	if !(cfg.SampleRate > 0) || math.IsInf(cfg.SampleRate, 0) {
		return nil, fmt.Errorf("core: sample rate %v Hz invalid (need a finite rate > 0)", cfg.SampleRate)
	}
	if err := cfg.Source.Validate(); err != nil {
		return nil, fmt.Errorf("core: beacon source: %w", err)
	}
	if cfg.MicSeparation <= 0 {
		return nil, fmt.Errorf("core: mic separation %v <= 0", cfg.MicSeparation)
	}
	if cfg.SpeedOfSound == 0 {
		cfg.SpeedOfSound = geom.SpeedOfSound
	} else if !(cfg.SpeedOfSound > 0) || math.IsInf(cfg.SpeedOfSound, 0) {
		// Same !(x > 0) form as SampleRate: a negative, NaN, or infinite
		// speed flows straight into every TDoA→distance conversion.
		return nil, fmt.Errorf("core: speed of sound %v m/s invalid (need a finite speed > 0, or 0 for the default)", cfg.SpeedOfSound)
	}
	if cfg.MSP == (MSPConfig{}) {
		cfg.MSP = DefaultMSPConfig()
	}
	if cfg.PDE == (PDEConfig{}) {
		cfg.PDE = DefaultPDEConfig()
	}
	if cfg.TTL == (TTLConfig{}) {
		cfg.TTL = DefaultTTLConfig()
	}
	cfg.TTL.MicSeparation = cfg.MicSeparation
	cfg.TTL.SpeedOfSound = cfg.SpeedOfSound
	if cfg.ASP.FilterTaps == 0 {
		// Replace a zero stage config with the defaults, but carry over
		// the fields callers set independently of the filter design.
		gain := cfg.ASP.TemplateGain
		bw, mb := cfg.ASP.BatchWindow, cfg.ASP.MaxBatch
		cfg.ASP = DefaultASPConfig()
		cfg.ASP.TemplateGain = gain
		cfg.ASP.BatchWindow, cfg.ASP.MaxBatch = bw, mb
	}
	if cfg.ASP.Parallelism == 0 {
		cfg.ASP.Parallelism = cfg.Parallelism
	}
	// One hook drives every stage; set after defaulting so a zero stage
	// config still compares equal to its zero value above.
	cfg.ASP.Obs = cfg.Obs
	cfg.MSP.Obs = cfg.Obs
	cfg.PDE.Obs = cfg.Obs
	asp, err := NewASP(cfg.Source, cfg.SampleRate, cfg.ASP)
	if err != nil {
		return nil, err
	}
	if err := cfg.MSP.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.TTL.Validate(); err != nil {
		return nil, err
	}
	return &Localizer{cfg: cfg, asp: asp}, nil
}

// Result2D is the output of a 2D localization session.
type Result2D struct {
	// Pos is the aggregated speaker estimate in the phone's start body
	// frame (x = perpendicular/in-direction axis, y = slide axis).
	Pos geom.Vec2
	// L is the aggregated perpendicular distance from the slide line.
	L float64
	// Fixes are the accepted per-slide fixes.
	Fixes []SlideFix
	// Movements are all PDE movement estimates (including rejected ones),
	// for diagnostics.
	Movements []SlideEstimate
	// Diagnostics records, reason-coded, every movement that produced no
	// fix (PDE gate rejections, missing anchor beacons, triangulation
	// failures). Every accepted fix plus every Diagnostics entry plus
	// every stature movement accounts for one element of Movements.
	Diagnostics []SlideError
	// ASP echoes the acoustic preprocessing result.
	ASP *ASPResult
}

// Result3D is the output of a two-stature 3D session.
type Result3D struct {
	// ProjectedDist is the estimated horizontal distance to the speaker
	// (the paper's L*).
	ProjectedDist float64
	// ProjectedPos is the estimated speaker position on the floor map in
	// the start body frame.
	ProjectedPos geom.Vec2
	// L1 and L2 are the aggregated slant distances at the two statures.
	L1, L2 float64
	// H is the estimated stature change.
	H float64
	// Beta is the eq. (7) angle in radians.
	Beta float64
	// Lower holds the per-stature slide fixes: Lower[0] before the
	// stature change, Lower[1] after.
	Fixes [2][]SlideFix
	// Movements are all PDE movement estimates.
	Movements []SlideEstimate
	// Diagnostics records, reason-coded, every movement that produced no
	// fix (see Result2D.Diagnostics).
	Diagnostics []SlideError
	// ASP echoes the acoustic preprocessing result.
	ASP *ASPResult
}

// Preprocess runs only the acoustic stage on a recording — enough for
// direction finding and LoS assessment without a full localization.
func (l *Localizer) Preprocess(rec *mic.Recording) (*ASPResult, error) {
	return l.asp.Process(rec)
}

// MicSeparation returns the configured inter-mic distance D.
func (l *Localizer) MicSeparation() float64 { return l.cfg.MicSeparation }

// SpeedOfSound returns the configured sound speed.
func (l *Localizer) SpeedOfSound() float64 { return l.cfg.SpeedOfSound }

// BatchStats reports the acoustic stage's strided-FFT batch counters:
// batches run and correlation lanes carried (zeros when
// ASPConfig.BatchWindow batching is disabled).
func (l *Localizer) BatchStats() (batches, lanes uint64) { return l.asp.BatchStats() }

// analyzeSession runs ASP, MSP, and PDE over one session, working through
// the borrowed Scratch s (the MSPResult it returns aliases s and must not
// outlive the borrow). Cancellation is checked between stages and inside
// the PDE fan-out so an abandoned request (dead client, expired deadline)
// stops burning CPU mid-pipeline instead of completing a result nobody
// will read.
func (l *Localizer) analyzeSession(ctx context.Context, rec *mic.Recording, tr *imu.Trace, s *Scratch) (*ASPResult, *MSPResult, []SlideEstimate, error) {
	aspRes, err := l.asp.ProcessContext(ctx, rec)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	msp, err := preprocessIMU(ctx, tr, l.cfg.MSP, s)
	if err != nil {
		return nil, nil, nil, err
	}
	// Movement estimates are independent per segment (EstimateMovement only
	// reads the shared MSPResult), so they fan out over the worker pool;
	// results land at their segment index to keep the output order, and
	// each worker reuses its own velocity scratch slot. A canceled context
	// turns the remaining iterations into no-ops — the pool drains quickly
	// rather than finishing every estimate.
	sp := l.cfg.Obs.SpanCtx(ctx, "pde")
	s.growPDE(effectiveWorkers(len(msp.Segments), l.cfg.Parallelism))
	ests := make([]SlideEstimate, len(msp.Segments))
	parallelForWorkers(len(msp.Segments), l.cfg.Parallelism, func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		est := estimateMovement(msp, msp.Segments[i], l.cfg.PDE, &s.pde[w])
		if l.cfg.DisableDriftCorrection {
			est = l.reestimateWithoutCorrection(msp, est)
		}
		ests[i] = est
	})
	sp.AttrInt("segments", len(msp.Segments))
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	return aspRes, msp, ests, nil
}

// reestimateWithoutCorrection replaces the drift-corrected displacement by
// a raw double integration (the ablation baseline).
func (l *Localizer) reestimateWithoutCorrection(m *MSPResult, est SlideEstimate) SlideEstimate {
	s := est.Segment
	dt := 1 / m.Fs
	raw := func(a []float64) float64 {
		var v, d float64
		for _, x := range a[s.Start:s.End] {
			v += x * dt
			d += v * dt
		}
		return d
	}
	est.DispY = raw(m.AccelY)
	est.DispZ = raw(m.AccelZ)
	return est
}

// SlideError records, reason-coded, why one segmented movement produced
// no localization fix.
type SlideError struct {
	// Index is the movement's position in Result2D/Result3D.Movements.
	Index int
	// Reason is the machine-readable reason code (the Reason* constants).
	Reason string
	// Err is the underlying error, when one exists (anchor and
	// triangulation failures); nil for PDE gate rejections.
	Err error
}

// Error implements the error interface.
func (e SlideError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("movement %d: %s: %v", e.Index, e.Reason, e.Err)
	}
	return fmt.Sprintf("movement %d: %s", e.Index, e.Reason)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e SlideError) Unwrap() error { return e.Err }

// noUsableSlides wraps ErrNoUsableSlides with the per-reason tally of a
// fully rejected session, so the error itself says why every movement
// was dropped.
func noUsableSlides(nMovements int, diags []SlideError) error {
	if len(diags) == 0 {
		return fmt.Errorf("%w (%d movements, none was a usable slide)", ErrNoUsableSlides, nMovements)
	}
	tally := make(map[string]int)
	for _, d := range diags {
		tally[d.Reason]++
	}
	reasons := make([]string, 0, len(tally))
	for r := range tally {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%d×%s", tally[r], r)
	}
	return fmt.Errorf("%w (%d movements rejected: %s)", ErrNoUsableSlides, nMovements, strings.Join(parts, ", "))
}

// localizeSlides turns accepted slide movements into fixes, dead-reckoning
// the phone's rest position along the body y axis across slides and
// correcting each anchor's rotation-induced TDoA error from the gyro.
// Every movement that yields no fix is recorded as a reason-coded
// SlideError (stature changes excepted — they are not failures, only
// tallied in the metrics), and the per-reason counters it emits account
// for every element of ests exactly once. A canceled context aborts the
// loop between movements with a non-nil error.
func (l *Localizer) localizeSlides(ctx context.Context, aspRes *ASPResult, msp *MSPResult, ests []SlideEstimate) ([]SlideFix, []SlideError, error) {
	o := l.cfg.Obs
	var fixes []SlideFix
	var diags []SlideError
	y := 0.0
	gap := l.cfg.TTL.MaxAnchorGap
	for i, est := range ests {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		switch est.Kind {
		case KindSlide:
			before, after, err := anchorBeacons(aspRes.Beacons, est.StartTime, est.EndTime, gap, aspRes.PeriodEff)
			if err != nil {
				diags = append(diags, SlideError{Index: i, Reason: ReasonNoAnchor, Err: err})
				o.Inc(MSlideRejectedPrefix + ReasonNoAnchor)
				y += est.DispY
				continue
			}
			yawB := msp.meanYawDev(est.StartTime-gap, est.StartTime)
			yawA := msp.meanYawDev(est.EndTime, est.EndTime+gap)
			fix, err := LocalizeSlide(before, after, aspRes.PeriodEff, est.DispY, y, yawB, yawA, l.cfg.TTL)
			if err != nil {
				diags = append(diags, SlideError{Index: i, Reason: ReasonTriangulation, Err: err})
				o.Inc(MSlideRejectedPrefix + ReasonTriangulation)
			} else {
				fixes = append(fixes, fix)
				o.Inc(MSlideAccepted)
			}
			y += est.DispY
		case KindStature:
			// Vertical moves do not change the body-y dead reckoning.
			o.Inc(MSlideRejectedPrefix + ReasonStature)
		default:
			// Rejected movements still move the phone.
			reason := est.RejectCode
			if reason == "" {
				reason = ReasonPDEAmbiguous
			}
			diags = append(diags, SlideError{Index: i, Reason: reason})
			o.Inc(MSlideRejectedPrefix + reason)
			y += est.DispY
		}
	}
	return fixes, diags, nil
}

// Locate2D runs the pipeline on a single-stature session and returns the
// aggregated 2D fix.
func (l *Localizer) Locate2D(rec *mic.Recording, tr *imu.Trace) (*Result2D, error) {
	return l.Locate2DContext(context.Background(), rec, tr)
}

// Locate2DContext is Locate2D with cancellation: when ctx is canceled or
// its deadline passes, the pipeline aborts at the next stage boundary
// (and inside the heavy ASP/PDE fan-outs) and returns an error wrapping
// ctx's cause.
func (l *Localizer) Locate2DContext(ctx context.Context, rec *mic.Recording, tr *imu.Trace) (*Result2D, error) {
	sp := l.cfg.Obs.SpanCtx(ctx, "locate2d")
	defer sp.End()
	scr := getScratch()
	defer putScratch(scr)
	aspRes, msp, ests, err := l.analyzeSession(ctx, rec, tr, scr)
	if err != nil {
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	tsp := l.cfg.Obs.SpanCtx(ctx, "ttl")
	fixes, diags, err := l.localizeSlides(ctx, aspRes, msp, ests)
	if err != nil {
		tsp.End()
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	tsp.AttrInt("movements", len(ests))
	tsp.AttrInt("fixes", len(fixes))
	tsp.AttrInt("rejected", len(diags))
	tsp.End()
	if len(fixes) == 0 {
		err := noUsableSlides(len(ests), diags)
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	ls := make([]float64, len(fixes))
	xs := make([]float64, len(fixes))
	ys := make([]float64, len(fixes))
	for i, f := range fixes {
		ls[i] = f.L
		xs[i] = f.Pos.X
		ys[i] = f.Pos.Y
	}
	sp.AttrInt("fixes", len(fixes))
	sp.Attr("distance_m", aggregate(ls))
	return &Result2D{
		Pos:         geom.Vec2{X: aggregate(xs), Y: aggregate(ys)},
		L:           aggregate(ls),
		Fixes:       fixes,
		Movements:   ests,
		Diagnostics: diags,
		ASP:         aspRes,
	}, nil
}

// Locate3D runs the pipeline on a two-stature session: slides before the
// stature change give L1, slides after give L2, and the stature movement
// itself gives H; eq. (7) projects the speaker onto the floor.
func (l *Localizer) Locate3D(rec *mic.Recording, tr *imu.Trace) (*Result3D, error) {
	return l.Locate3DContext(context.Background(), rec, tr)
}

// Locate3DContext is Locate3D with cancellation (see Locate2DContext).
func (l *Localizer) Locate3DContext(ctx context.Context, rec *mic.Recording, tr *imu.Trace) (*Result3D, error) {
	sp := l.cfg.Obs.SpanCtx(ctx, "locate3d")
	defer sp.End()
	scr := getScratch()
	defer putScratch(scr)
	aspRes, msp, ests, err := l.analyzeSession(ctx, rec, tr, scr)
	if err != nil {
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	// Find the stature change.
	statureIdx := -1
	var h float64
	for i, est := range ests {
		if est.Kind == KindStature {
			statureIdx = i
			h = est.DispZ
			break
		}
	}
	if statureIdx < 0 {
		return nil, fmt.Errorf("core: no stature change detected in 3D session")
	}

	tsp := l.cfg.Obs.SpanCtx(ctx, "ttl")
	fixes, diags, err := l.localizeSlides(ctx, aspRes, msp, ests)
	if err != nil {
		tsp.End()
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	tsp.AttrInt("movements", len(ests))
	tsp.AttrInt("fixes", len(fixes))
	tsp.AttrInt("rejected", len(diags))
	tsp.End()
	if len(fixes) == 0 {
		err := noUsableSlides(len(ests), diags)
		sp.AttrStr("error", err.Error())
		return nil, err
	}
	var parts [2][]SlideFix
	var l1s, l2s, ys1 []float64
	// Fixes are produced in time order; split them by counting how many
	// accepted slides precede the stature movement.
	nBefore := 0
	count := 0
	for i, est := range ests {
		if est.Kind != KindSlide {
			continue
		}
		if _, _, err := anchorBeacons(aspRes.Beacons, est.StartTime, est.EndTime, l.cfg.TTL.MaxAnchorGap, aspRes.PeriodEff); err != nil {
			continue
		}
		count++
		if i < statureIdx {
			nBefore = count
		}
	}
	if nBefore > len(fixes) {
		nBefore = len(fixes)
	}
	parts[0] = fixes[:nBefore]
	parts[1] = fixes[nBefore:]
	if len(parts[0]) == 0 || len(parts[1]) == 0 {
		return nil, fmt.Errorf("core: 3D session needs usable slides on both statures (%d/%d): %w",
			len(parts[0]), len(parts[1]), ErrNoUsableSlides)
	}
	for _, f := range parts[0] {
		l1s = append(l1s, f.L)
		ys1 = append(ys1, f.Pos.Y)
	}
	for _, f := range parts[1] {
		l2s = append(l2s, f.L)
	}
	l1 := aggregate(l1s)
	l2 := aggregate(l2s)

	lStar, err := ProjectDistanceClamped(l1, l2, h, l.cfg.MaxVerticalOffset)
	if err != nil {
		// Degenerate inputs (zero stature change): fall back to treating
		// the slant distance as horizontal.
		lStar = math.Min(l1, l2)
	}
	// Projected position: keep the along-axis estimate from stature 1,
	// scale the perpendicular axis to the projected distance.
	pos := geom.Vec2{X: lStar, Y: aggregate(ys1)}
	sp.AttrInt("fixes", len(fixes))
	sp.Attr("distance_m", lStar)
	return &Result3D{
		ProjectedDist: lStar,
		ProjectedPos:  pos,
		L1:            l1,
		L2:            l2,
		H:             h,
		Beta:          betaOf(l1, l2, h),
		Fixes:         parts,
		Movements:     ests,
		Diagnostics:   diags,
		ASP:           aspRes,
	}, nil
}

func betaOf(l1, l2, h float64) float64 {
	h = math.Abs(h)
	if h == 0 || l1 == 0 {
		return math.NaN()
	}
	c := (h*h + l1*l1 - l2*l2) / (2 * h * l1)
	if c < -1 || c > 1 {
		return math.NaN()
	}
	return math.Acos(c)
}
