package core

import (
	"errors"
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// Failure-injection tests: the pipeline must degrade gracefully — usable
// error values or explicit errors, never panics or silent garbage — when
// the sensor data is damaged in realistic ways.

func failureScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          mic.GalaxyS4(),
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 8, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 25,
		PhoneStart:     geom.Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol:       sim.DefaultProtocol(),
		IMU:            imu.DefaultConfig(),
		Noise:          room.WhiteNoise{},
		SNRdB:          15,
		Seed:           seed,
	}
}

func localizerFor(t *testing.T, sc sim.Scenario) *Localizer {
	t.Helper()
	loc, err := NewLocalizer(DefaultConfig(sc.Source, sc.Phone.SampleRate, sc.Phone.MicSeparation))
	if err != nil {
		t.Fatal(err)
	}
	return loc
}

// TestFailureClippedADC: hard-clip 30% of full scale; the matched filter
// must still find beacons and the session must still localize (clipping
// is a gain-staging accident, not a data loss).
func TestFailureClippedADC(t *testing.T) {
	sc := failureScenario(501)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	clip := func(x []float64) {
		for i, v := range x {
			if v > 0.15 {
				x[i] = 0.15
			} else if v < -0.15 {
				x[i] = -0.15
			}
		}
	}
	clip(s.Recording.Mic1)
	clip(s.Recording.Mic2)
	res, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if err != nil {
		t.Fatalf("clipped session failed outright: %v", err)
	}
	if math.Abs(res.L-4) > 1.0 {
		t.Errorf("clipped-session L = %v, want within 1 m of 4", res.L)
	}
}

// TestFailureMutedGap: a one-second dropout (muted microphone) removes a
// few beacons; slides whose anchors fall in the gap are skipped but the
// rest of the session still produces a fix.
func TestFailureMutedGap(t *testing.T) {
	sc := failureScenario(502)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	fs := int(s.Recording.Fs)
	lo, hi := 4*fs, 5*fs
	for i := lo; i < hi && i < len(s.Recording.Mic1); i++ {
		s.Recording.Mic1[i] = 0
		s.Recording.Mic2[i] = 0
	}
	res, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if err != nil {
		// Losing every usable slide is an acceptable explicit outcome.
		if !errors.Is(err, ErrNoUsableSlides) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		return
	}
	if len(res.Fixes) >= 5 {
		t.Errorf("gap should cost at least one slide, got %d fixes", len(res.Fixes))
	}
	if math.Abs(res.L-4) > 1.0 {
		t.Errorf("gap-session L = %v, want within 1 m of 4", res.L)
	}
}

// TestFailureSilentChannel: one microphone dead. No beacon pairs exist, so
// ASP must return an explicit error.
func TestFailureSilentChannel(t *testing.T) {
	sc := failureScenario(503)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Recording.Mic2 {
		s.Recording.Mic2[i] = 0
	}
	if _, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU); err == nil {
		t.Error("dead channel should produce an explicit error")
	}
}

// TestFailureFrozenIMU: the accelerometer freezes (all zeros after
// gravity). No movements segment, so localization reports no usable
// slides instead of inventing them.
func TestFailureFrozenIMU(t *testing.T) {
	sc := failureScenario(504)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.IMU.Accel {
		s.IMU.Accel[i] = s.IMU.Gravity[i] // linear accel == 0
	}
	_, err = localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if !errors.Is(err, ErrNoUsableSlides) {
		t.Errorf("frozen IMU should yield ErrNoUsableSlides, got %v", err)
	}
}

// TestFailureExtremeSFO: a 2000 ppm speaker clock (broken oscillator) is
// outside the ASP sanity window; the estimator must fall back to the
// nominal period rather than propagate a wild fit, and the session still
// completes (with degraded accuracy).
func TestFailureExtremeSFO(t *testing.T) {
	sc := failureScenario(505)
	sc.SpeakerSkewPPM = 2000
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if err != nil {
		// Complete failure is acceptable for a broken beacon; explicit.
		return
	}
	if res.ASP.PeriodEff != sc.Source.Period {
		// The estimator may legitimately capture a 2000 ppm skew if the
		// fit is stable; either way PeriodEff must stay within 1%.
		if math.Abs(res.ASP.PeriodEff/sc.Source.Period-1) > 0.01 {
			t.Errorf("period estimate %v too far from nominal", res.ASP.PeriodEff)
		}
	}
}

// TestFailureNLoS: the direct path is fully blocked (only reflections
// arrive). The detector still fires on the strongest reflection, but the
// geometry is wrong; the pipeline must not crash and the result, if any,
// is understood to be degraded. We assert only on well-formed behavior.
func TestFailureNLoS(t *testing.T) {
	sc := failureScenario(506)
	// Emulate NLoS by rendering with reflections only: crank reflection
	// order and zero the direct gain via a custom environment where the
	// "direct" is heavily attenuated (occlusion ≈ -25 dB).
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Occlude: subtract a rendered free-field direct-path-only copy at
	// ~94% amplitude. Simpler proxy: attenuate the whole recording and
	// add a delayed copy (a strong late reflection).
	fs := int(s.Recording.Fs)
	delay := int(0.004 * float64(fs)) // +1.4 m path
	for _, ch := range [][]float64{s.Recording.Mic1, s.Recording.Mic2} {
		orig := make([]float64, len(ch))
		copy(orig, ch)
		for i := range ch {
			ch[i] *= 0.06
			if i >= delay {
				ch[i] += 0.5 * orig[i-delay]
			}
		}
	}
	res, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if err != nil {
		return // explicit failure is fine
	}
	if math.IsNaN(res.L) || res.L < 0 {
		t.Errorf("NLoS produced malformed L = %v", res.L)
	}
}

// TestFailureTruncatedIMU: the IMU trace ends early (app lifecycle bug);
// slides past the truncation are lost but behavior stays well-formed.
func TestFailureTruncatedIMU(t *testing.T) {
	sc := failureScenario(507)
	s, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	half := s.IMU.Len() / 2
	s.IMU.Accel = s.IMU.Accel[:half]
	s.IMU.Gyro = s.IMU.Gyro[:half]
	s.IMU.Gravity = s.IMU.Gravity[:half]
	res, err := localizerFor(t, sc).Locate2D(s.Recording, s.IMU)
	if err != nil {
		if !errors.Is(err, ErrNoUsableSlides) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		return
	}
	if len(res.Fixes) >= 5 {
		t.Errorf("truncated IMU should lose slides, got %d fixes", len(res.Fixes))
	}
}
