package core

import (
	"math"
	"testing"

	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/motion"
)

// TestCorrectVelocityExactForConstantBias verifies the paper's central
// PDE claim: a constant accelerometer bias produces a linear velocity
// drift, which the eq. (4) model removes exactly.
func TestCorrectVelocityExactForConstantBias(t *testing.T) {
	fs := 100.0
	n := 101 // 1 s
	bias := 0.08
	// True motion: min-jerk slide of 0.5 m; sampled true acceleration.
	accel := make([]float64, n)
	for i := range accel {
		tau := float64(i) / float64(n-1)
		accel[i] = 0.5*motion.MinJerkA(tau)/(1*1) + bias
	}
	vel, slope := CorrectVelocity(accel, fs)
	// Slope must recover the bias (the only drift source).
	if math.Abs(slope-bias) > 0.01 {
		t.Errorf("drift slope = %v, want ≈%v", slope, bias)
	}
	// Corrected terminal velocity must be ≈0.
	if got := vel[len(vel)-1]; math.Abs(got) > 1e-9 {
		t.Errorf("corrected v(t2) = %v, want 0", got)
	}
	// Displacement must be close to 0.5 m despite the bias.
	if d := IntegrateDisplacement(vel, fs); math.Abs(d-0.5) > 0.02 {
		t.Errorf("displacement = %v, want 0.5", d)
	}
}

func TestCorrectVelocityRawDriftIsWorse(t *testing.T) {
	// Quantifies Fig. 9: without correction the displacement error from a
	// bias is large; with correction it is small.
	fs := 100.0
	n := 101
	bias := 0.1
	accel := make([]float64, n)
	for i := range accel {
		tau := float64(i) / float64(n-1)
		accel[i] = 0.5*motion.MinJerkA(tau) + bias
	}
	var v, rawDisp float64
	for _, a := range accel {
		v += a / fs
		rawDisp += v / fs
	}
	vel, _ := CorrectVelocity(accel, fs)
	corrDisp := IntegrateDisplacement(vel, fs)
	rawErr := math.Abs(rawDisp - 0.5)
	corrErr := math.Abs(corrDisp - 0.5)
	if corrErr > rawErr/3 {
		t.Errorf("correction should cut the bias error ≥3x: raw %v vs corrected %v", rawErr, corrErr)
	}
}

func TestCorrectVelocityShortInput(t *testing.T) {
	vel, slope := CorrectVelocity([]float64{1}, 100)
	if len(vel) != 1 || slope != 0 {
		t.Errorf("short input: vel=%v slope=%v", vel, slope)
	}
	vel, slope = CorrectVelocity(nil, 100)
	if len(vel) != 0 || slope != 0 {
		t.Errorf("empty input: vel=%v slope=%v", vel, slope)
	}
}

func mspForTraj(t *testing.T, traj motion.Trajectory, seed int64) *MSPResult {
	t.Helper()
	cfg := imu.DefaultConfig()
	cfg.Seed = seed
	tr, err := imu.Sample(traj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msp, err := PreprocessIMU(tr, DefaultMSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	return msp
}

func TestEstimateMovementSlide(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.8).Slide(0.55, 1).Hold(0.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	msp := mspForTraj(t, traj, 31)
	if len(msp.Segments) != 1 {
		t.Fatalf("segments = %+v", msp.Segments)
	}
	est := EstimateMovement(msp, msp.Segments[0], DefaultPDEConfig())
	if est.Kind != KindSlide {
		t.Fatalf("kind = %v (%s), want slide", est.Kind, est.RejectReason)
	}
	if math.Abs(est.DispY-0.55) > 0.05 {
		t.Errorf("DispY = %v, want ≈0.55", est.DispY)
	}
	if est.PeakVel < 0.5 || est.PeakVel > 1.6 {
		t.Errorf("PeakVel = %v, want ≈1.03", est.PeakVel)
	}
}

func TestEstimateMovementBackwardSlide(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.8).Slide(-0.55, 1).Hold(0.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	msp := mspForTraj(t, traj, 32)
	est := EstimateMovement(msp, msp.Segments[0], DefaultPDEConfig())
	if est.Kind != KindSlide {
		t.Fatalf("kind = %v, want slide", est.Kind)
	}
	if math.Abs(est.DispY+0.55) > 0.05 {
		t.Errorf("DispY = %v, want ≈-0.55 (sign preserved)", est.DispY)
	}
}

func TestEstimateMovementStature(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.8).ChangeHeight(0.4, 0.8).Hold(0.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	msp := mspForTraj(t, traj, 33)
	if len(msp.Segments) != 1 {
		t.Fatalf("segments = %+v", msp.Segments)
	}
	est := EstimateMovement(msp, msp.Segments[0], DefaultPDEConfig())
	if est.Kind != KindStature {
		t.Fatalf("kind = %v (%s), want stature", est.Kind, est.RejectReason)
	}
	if math.Abs(est.DispZ-0.4) > 0.05 {
		t.Errorf("DispZ = %v, want ≈0.4", est.DispZ)
	}
}

func TestEstimateMovementShortSlideGated(t *testing.T) {
	// Short slides are quicker in practice; a 0.8 s 15 cm stroke would be
	// so gentle that its mid-stroke acceleration dip ends the segment.
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.8).Slide(0.15, 0.45).Hold(0.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	msp := mspForTraj(t, traj, 34)
	if len(msp.Segments) != 1 {
		t.Fatalf("segments = %+v", msp.Segments)
	}
	est := EstimateMovement(msp, msp.Segments[0], DefaultPDEConfig())
	if est.Kind != KindRejected {
		t.Fatalf("15 cm slide should be gated, got %v", est.Kind)
	}
	// With the gate disabled it must pass.
	cfg := DefaultPDEConfig()
	cfg.MinSlideDist = 0
	est = EstimateMovement(msp, msp.Segments[0], cfg)
	if est.Kind != KindSlide {
		t.Fatalf("ungated 15 cm slide = %v (%s)", est.Kind, est.RejectReason)
	}
}

func TestEstimateMovementRotationGated(t *testing.T) {
	// A slide combined with a 40° yaw change must be rejected by the
	// 20° gate.
	b := motion.NewBuilder(geom.Vec3{}, 0)
	b.Hold(0.8)
	b.Slide(0.55, 1)
	traj1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Append a rotation inside the movement window by composing manually:
	// instead, simulate rotation during slide via a shaky wrapper with a
	// huge rotation tremor.
	_ = traj1
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.8).Slide(0.55, 1).Hold(0.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := imu.IdealConfig()
	tr, err := imu.Sample(traj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a strong gyro signal during the slide (0.8-1.8 s).
	for i := 85; i < 175 && i < tr.Len(); i++ {
		tr.Gyro[i].Z = 0.8 // rad/s → ≈41° over 0.9 s
	}
	msp, err := PreprocessIMU(tr, DefaultMSPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(msp.Segments) != 1 {
		t.Fatalf("segments = %+v", msp.Segments)
	}
	est := EstimateMovement(msp, msp.Segments[0], DefaultPDEConfig())
	if est.Kind != KindRejected {
		t.Fatalf("rotated slide should be rejected, got %v (rot %v rad)", est.Kind, est.ZRotation)
	}
}

func TestMovementKindString(t *testing.T) {
	if KindSlide.String() != "slide" || KindStature.String() != "stature" ||
		KindRejected.String() != "rejected" {
		t.Error("kind strings wrong")
	}
	if MovementKind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestPad(t *testing.T) {
	s := pad(Segment{Start: 2, End: 8}, 3, 9)
	if s.Start != 0 || s.End != 9 {
		t.Errorf("pad = %+v", s)
	}
}
