package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProjectDistanceExact(t *testing.T) {
	// Construct the triangle from known geometry: speaker at horizontal
	// distance L* and vertical offsets z1, z2 from the two slide lines.
	cases := []struct {
		lStar, z1, z2 float64
	}{
		{5, 0.7, 0.3},   // speaker below both statures
		{7, 1.2, 0.8},   //
		{3, -0.2, -0.6}, // speaker above both statures
		{2, 0.5, 0.1},
	}
	for _, c := range cases {
		h := c.z1 - c.z2 // stature change
		l1 := math.Hypot(c.lStar, c.z1)
		l2 := math.Hypot(c.lStar, c.z2)
		got, err := ProjectDistance(l1, l2, h)
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		if math.Abs(got-c.lStar) > 1e-9 {
			t.Errorf("L* = %v, want %v (case %+v)", got, c.lStar, c)
		}
	}
}

func TestProjectDistancePropertyRandomGeometry(t *testing.T) {
	f := func(rawL, rawZ1, rawH float64) bool {
		lStar := 1 + math.Abs(math.Mod(rawL, 8))
		z1 := math.Mod(rawZ1, 1.2)
		h := 0.3 + math.Abs(math.Mod(rawH, 0.8))
		if math.IsNaN(lStar) || math.IsNaN(z1) || math.IsNaN(h) {
			return true
		}
		z2 := z1 - h
		l1 := math.Hypot(lStar, z1)
		l2 := math.Hypot(lStar, z2)
		got, err := ProjectDistance(l1, l2, h)
		if err != nil {
			return false
		}
		return math.Abs(got-lStar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectDistanceErrors(t *testing.T) {
	if _, err := ProjectDistance(0, 1, 0.5); err == nil {
		t.Error("zero l1 should error")
	}
	if _, err := ProjectDistance(1, 0, 0.5); err == nil {
		t.Error("zero l2 should error")
	}
	if _, err := ProjectDistance(1, 1, 0); err == nil {
		t.Error("zero stature change should error")
	}
	// Triangle inequality violation: l2 > l1 + h.
	if _, err := ProjectDistance(1, 5, 0.5); err == nil {
		t.Error("impossible triangle should error")
	}
}

func TestProjectDistanceNegativeH(t *testing.T) {
	// The sign of the stature change must not matter.
	lStar := 5.0
	z1, z2 := 0.7, 0.3
	l1 := math.Hypot(lStar, z1)
	l2 := math.Hypot(lStar, z2)
	up, err := ProjectDistance(l1, l2, z1-z2)
	if err != nil {
		t.Fatal(err)
	}
	down, err := ProjectDistance(l1, l2, -(z1 - z2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-down) > 1e-12 {
		t.Errorf("sign of H changed the result: %v vs %v", up, down)
	}
}

func TestAggregate(t *testing.T) {
	if got := aggregate([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := aggregate([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := aggregate([]float64{7}); got != 7 {
		t.Errorf("single = %v, want 7", got)
	}
	if !math.IsNaN(aggregate(nil)) {
		t.Error("empty aggregate should be NaN")
	}
	// Median is robust to one wild outlier.
	if got := aggregate([]float64{5.0, 5.1, 4.9, 5.05, 50}); math.Abs(got-5.05) > 1e-12 {
		t.Errorf("outlier median = %v, want 5.05", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	aggregate(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("aggregate mutated its input")
	}
}

func TestBetaOf(t *testing.T) {
	// Right triangle: l1 = hypotenuse of (L*, h), l2 = L* → β < π/2.
	lStar, h := 4.0, 0.5
	l1 := math.Hypot(lStar, h)
	beta := betaOf(l1, lStar, h)
	want := math.Acos(h / l1)
	if math.Abs(beta-want) > 1e-9 {
		t.Errorf("beta = %v, want %v", beta, want)
	}
	if !math.IsNaN(betaOf(1, 1, 0)) {
		t.Error("zero h should give NaN")
	}
	if !math.IsNaN(betaOf(1, 5, 0.5)) {
		t.Error("impossible triangle should give NaN")
	}
}
