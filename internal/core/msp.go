// Package core implements HyperEar's six-stage pipeline (paper Fig. 5):
//
//   - ASP, acoustic signal preprocessing: band-pass filtering, matched-filter
//     chirp detection with sub-sample interpolation, and sampling-frequency
//     offset (SFO) estimation/correction.
//   - SDF, speaker direction finding: per-beacon TDoA tracking during a
//     rotation sweep and in-direction (zero-crossing) detection.
//   - MSP, motion signal preprocessing: gravity removal, moving-average
//     smoothing, and power-based movement segmentation.
//   - PDE, phone displacement estimation: velocity integration with the
//     zero-velocity-endpoint linear drift correction (eq. 4) and slide
//     quality gating.
//   - TTL, 2D TDoA localization: augmented TDoAs across each slide (eq. 5,
//     6) triangulated by hyperbola intersection.
//   - PLE, projected location estimation: the two-stature 3D protocol
//     (eq. 7) that projects the speaker onto the floor map.
//
// The Localizer in pipeline.go chains all stages end to end.
package core

import (
	"fmt"

	"hyperear/internal/dsp"
	"hyperear/internal/imu"
	"hyperear/internal/obs"
)

// MSPConfig holds the motion-preprocessing parameters. The defaults are
// the paper's empirical choices (§V-A).
type MSPConfig struct {
	// SMAWindow is the moving-average length in samples (paper: n = 4,
	// giving a ≈15 Hz cutoff at 100 Hz sampling).
	SMAWindow int
	// PowerWindow is the sliding window W of eq. (3) in samples
	// (paper: 4 samples = 40 ms).
	PowerWindow int
	// PowerThreshold is the movement-start power level in (m/s²)²
	// (paper: 0.2).
	PowerThreshold float64
	// QuietSamples is the number m of consecutive sub-threshold samples
	// that ends a movement (paper: m = 8).
	QuietSamples int
	// Obs receives the "msp" stage span and the segment counter; nil
	// disables. NewLocalizer propagates Config.Obs here.
	Obs *obs.Obs
}

// DefaultMSPConfig returns the paper's parameters.
func DefaultMSPConfig() MSPConfig {
	return MSPConfig{SMAWindow: 4, PowerWindow: 4, PowerThreshold: 0.2, QuietSamples: 8}
}

// Validate reports configuration errors.
func (c MSPConfig) Validate() error {
	switch {
	case c.SMAWindow < 1:
		return fmt.Errorf("core: SMA window %d < 1", c.SMAWindow)
	case c.PowerWindow < 1:
		return fmt.Errorf("core: power window %d < 1", c.PowerWindow)
	case c.PowerThreshold <= 0:
		return fmt.Errorf("core: power threshold %v <= 0", c.PowerThreshold)
	case c.QuietSamples < 1:
		return fmt.Errorf("core: quiet samples %d < 1", c.QuietSamples)
	}
	return nil
}

// Segment is a half-open sample range [Start, End) of one movement in an
// IMU trace.
type Segment struct {
	Start, End int
}

// Len returns the segment length in samples.
func (s Segment) Len() int { return s.End - s.Start }

// MSPResult is the preprocessed motion data.
type MSPResult struct {
	// Fs is the IMU sampling rate.
	Fs float64
	// AccelY is the smoothed, gravity-free body-y acceleration (the slide
	// axis).
	AccelY []float64
	// AccelZ is the smoothed, gravity-free body-z acceleration (vertical,
	// used for stature changes).
	AccelZ []float64
	// AccelX is the smoothed, gravity-free body-x acceleration.
	AccelX []float64
	// GyroZ is the raw z-axis angular rate (for slide rotation gating).
	GyroZ []float64
	// YawDev is the integrated z-gyro yaw deviation from the session
	// start in radians, with the gyro's zero-rate bias estimated from the
	// initial stationary period and removed. TTL uses it to correct the
	// rotation-induced TDoA error at each anchor position (the
	// "Augmented TDoA with Rotation Error Corrected" input of Fig. 5).
	YawDev []float64
	// Power is the eq. (3) power series of AccelY+AccelZ combined (both
	// slide and stature movements must segment).
	Power []float64
	// Segments are the detected movements, in time order.
	Segments []Segment
}

// PreprocessIMU runs gravity removal, smoothing, and movement segmentation
// on an IMU trace.
func PreprocessIMU(tr *imu.Trace, cfg MSPConfig) (*MSPResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := cfg.Obs.Span("msp")
	defer sp.End()
	if tr == nil || tr.Len() == 0 {
		sp.AttrStr("error", "empty IMU trace")
		return nil, fmt.Errorf("core: empty IMU trace")
	}
	lin := tr.LinearAccel()
	ax := dsp.MovingAverage(imu.Axis(lin, 0), cfg.SMAWindow)
	ay := dsp.MovingAverage(imu.Axis(lin, 1), cfg.SMAWindow)
	az := dsp.MovingAverage(imu.Axis(lin, 2), cfg.SMAWindow)

	// Movement power over the combined in-plane + vertical axes so both
	// slides and stature changes are segmented.
	combined := make([]float64, len(ay))
	for i := range combined {
		combined[i] = ay[i]*ay[i] + az[i]*az[i]
	}
	power := slidingMean(combined, cfg.PowerWindow)
	segs := segment(power, cfg.PowerThreshold, cfg.QuietSamples)
	gyroZ := imu.Axis(tr.Gyro, 2)
	cfg.Obs.Add(MSegments, uint64(len(segs)))
	sp.AttrInt("samples", tr.Len())
	sp.AttrInt("segments", len(segs))

	return &MSPResult{
		Fs:       tr.Fs,
		AccelX:   ax,
		AccelY:   ay,
		AccelZ:   az,
		GyroZ:    gyroZ,
		YawDev:   integrateYawDev(gyroZ, tr.Fs, segs),
		Power:    power,
		Segments: segs,
	}, nil
}

// integrateYawDev integrates the z-gyro to a yaw deviation series after
// removing the gyro's zero-rate bias. The bias is estimated by fitting a
// linear trend to the raw integrated yaw over every *stationary* sample
// (outside the movement segments): hand tremor contributes bounded,
// zero-mean yaw at those samples while the bias grows linearly, so a fit
// spanning the whole session separates them far better than averaging one
// short window. Only the before/after *difference* of the result within a
// slide enters the TDoA correction, so the intercept is irrelevant.
//
// The assumption is zero net commanded rotation — true for slide sessions
// (the user holds the in-direction orientation). Rotation sweeps violate
// it, but the SDF path integrates raw gyro itself and never reads YawDev.
func integrateYawDev(gyroZ []float64, fs float64, segs []Segment) []float64 {
	n := len(gyroZ)
	raw := make([]float64, n)
	yaw := 0.0
	dt := 1 / fs
	for i, w := range gyroZ {
		raw[i] = yaw
		yaw += w * dt
	}
	// Stationary mask: outside segments, with a small guard band.
	const guard = 5
	moving := make([]bool, n)
	for _, s := range segs {
		for i := s.Start - guard; i < s.End+guard; i++ {
			if i >= 0 && i < n {
				moving[i] = true
			}
		}
	}
	var sx, sy, sxx, sxy, cnt float64
	for i := 0; i < n; i++ {
		if moving[i] {
			continue
		}
		x := float64(i) * dt
		sx += x
		sy += raw[i]
		sxx += x * x
		sxy += x * raw[i]
		cnt++
	}
	out := make([]float64, n)
	den := cnt*sxx - sx*sx
	if cnt < 10 || den == 0 {
		copy(out, raw)
		return out
	}
	slope := (cnt*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / cnt
	for i := range out {
		out[i] = raw[i] - intercept - slope*float64(i)*dt
	}
	return out
}

// meanYawDev averages the yaw deviation over the time window [lo, hi]
// seconds (clamped to the trace).
func (m *MSPResult) meanYawDev(lo, hi float64) float64 {
	i0 := int(lo * m.Fs)
	i1 := int(hi*m.Fs) + 1
	if i0 < 0 {
		i0 = 0
	}
	if i1 > len(m.YawDev) {
		i1 = len(m.YawDev)
	}
	if i0 >= i1 {
		if i0 >= len(m.YawDev) {
			i0 = len(m.YawDev) - 1
		}
		if i0 < 0 {
			return 0
		}
		return m.YawDev[i0]
	}
	var s float64
	for _, v := range m.YawDev[i0:i1] {
		s += v
	}
	return s / float64(i1-i0)
}

// slidingMean is the forward-looking window mean of eq. (3):
// P(t) = (1/W)·Σ_{n=t..t+W-1} x[n], truncated at the tail.
func slidingMean(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	var sum float64
	// Initialize with the first window.
	for i := 0; i < w && i < len(x); i++ {
		sum += x[i]
	}
	for t := range x {
		n := w
		if t+w > len(x) {
			n = len(x) - t
		}
		out[t] = sum / float64(n)
		// Slide: drop x[t], add x[t+w].
		sum -= x[t]
		if t+w < len(x) {
			sum += x[t+w]
		}
	}
	return out
}

// segment finds movements: a movement starts when power exceeds thresh and
// ends after quiet consecutive sub-threshold samples (§V-A-2).
func segment(power []float64, thresh float64, quiet int) []Segment {
	var segs []Segment
	inMove := false
	start := 0
	below := 0
	for i, p := range power {
		if !inMove {
			if p > thresh {
				inMove = true
				start = i
				below = 0
			}
			continue
		}
		if p <= thresh {
			below++
			if below >= quiet {
				segs = append(segs, Segment{Start: start, End: i - quiet + 1})
				inMove = false
			}
		} else {
			below = 0
		}
	}
	if inMove {
		segs = append(segs, Segment{Start: start, End: len(power)})
	}
	return segs
}
