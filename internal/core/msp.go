// Package core implements HyperEar's six-stage pipeline (paper Fig. 5):
//
//   - ASP, acoustic signal preprocessing: band-pass filtering, matched-filter
//     chirp detection with sub-sample interpolation, and sampling-frequency
//     offset (SFO) estimation/correction.
//   - SDF, speaker direction finding: per-beacon TDoA tracking during a
//     rotation sweep and in-direction (zero-crossing) detection.
//   - MSP, motion signal preprocessing: gravity removal, moving-average
//     smoothing, and power-based movement segmentation.
//   - PDE, phone displacement estimation: velocity integration with the
//     zero-velocity-endpoint linear drift correction (eq. 4) and slide
//     quality gating.
//   - TTL, 2D TDoA localization: augmented TDoAs across each slide (eq. 5,
//     6) triangulated by hyperbola intersection.
//   - PLE, projected location estimation: the two-stature 3D protocol
//     (eq. 7) that projects the speaker onto the floor map.
//
// The Localizer in pipeline.go chains all stages end to end.
package core

import (
	"context"
	"fmt"

	"hyperear/internal/dsp"
	"hyperear/internal/imu"
	"hyperear/internal/obs"
)

// MSPConfig holds the motion-preprocessing parameters. The defaults are
// the paper's empirical choices (§V-A).
type MSPConfig struct {
	// SMAWindow is the moving-average length in samples (paper: n = 4,
	// giving a ≈15 Hz cutoff at 100 Hz sampling).
	SMAWindow int
	// PowerWindow is the sliding window W of eq. (3) in samples
	// (paper: 4 samples = 40 ms).
	PowerWindow int
	// PowerThreshold is the movement-start power level in (m/s²)²
	// (paper: 0.2).
	PowerThreshold float64
	// QuietSamples is the number m of consecutive sub-threshold samples
	// that ends a movement (paper: m = 8).
	QuietSamples int
	// Obs receives the "msp" stage span and the segment counter; nil
	// disables. NewLocalizer propagates Config.Obs here.
	Obs *obs.Obs
}

// DefaultMSPConfig returns the paper's parameters.
func DefaultMSPConfig() MSPConfig {
	return MSPConfig{SMAWindow: 4, PowerWindow: 4, PowerThreshold: 0.2, QuietSamples: 8}
}

// Validate reports configuration errors.
func (c MSPConfig) Validate() error {
	switch {
	case c.SMAWindow < 1:
		return fmt.Errorf("core: SMA window %d < 1", c.SMAWindow)
	case c.PowerWindow < 1:
		return fmt.Errorf("core: power window %d < 1", c.PowerWindow)
	case c.PowerThreshold <= 0:
		return fmt.Errorf("core: power threshold %v <= 0", c.PowerThreshold)
	case c.QuietSamples < 1:
		return fmt.Errorf("core: quiet samples %d < 1", c.QuietSamples)
	}
	return nil
}

// Segment is a half-open sample range [Start, End) of one movement in an
// IMU trace.
type Segment struct {
	Start, End int
}

// Len returns the segment length in samples.
func (s Segment) Len() int { return s.End - s.Start }

// MSPResult is the preprocessed motion data.
type MSPResult struct {
	// Fs is the IMU sampling rate.
	Fs float64
	// AccelY is the smoothed, gravity-free body-y acceleration (the slide
	// axis).
	AccelY []float64
	// AccelZ is the smoothed, gravity-free body-z acceleration (vertical,
	// used for stature changes).
	AccelZ []float64
	// AccelX is the smoothed, gravity-free body-x acceleration.
	AccelX []float64
	// GyroZ is the raw z-axis angular rate (for slide rotation gating).
	GyroZ []float64
	// YawDev is the integrated z-gyro yaw deviation from the session
	// start in radians, with the gyro's zero-rate bias estimated from the
	// initial stationary period and removed. TTL uses it to correct the
	// rotation-induced TDoA error at each anchor position (the
	// "Augmented TDoA with Rotation Error Corrected" input of Fig. 5).
	YawDev []float64
	// Power is the eq. (3) power series of AccelY+AccelZ combined (both
	// slide and stature movements must segment).
	Power []float64
	// Segments are the detected movements, in time order.
	Segments []Segment
}

// PreprocessIMU runs gravity removal, smoothing, and movement segmentation
// on an IMU trace.
func PreprocessIMU(tr *imu.Trace, cfg MSPConfig) (*MSPResult, error) {
	// A fresh Scratch makes the result own its buffers, exactly as the
	// old per-call makes did; the pipeline passes a pooled one instead.
	return preprocessIMU(context.Background(), tr, cfg, new(Scratch))
}

// preprocessIMU is PreprocessIMU writing through s, with the request
// context (trace identity only — segmentation is not cancellable, it is
// far too cheap to interrupt). The returned MSPResult aliases s's
// buffers and is valid only until s is reused or returned to the pool.
func preprocessIMU(ctx context.Context, tr *imu.Trace, cfg MSPConfig, s *Scratch) (*MSPResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := cfg.Obs.SpanCtx(ctx, "msp")
	defer sp.End()
	if tr == nil || tr.Len() == 0 {
		sp.AttrStr("error", "empty IMU trace")
		return nil, fmt.Errorf("core: empty IMU trace")
	}
	n := tr.Len()
	m := &s.msp
	m.raw = growF64(m.raw, n)
	m.ax = growF64(m.ax, n)
	m.ay = growF64(m.ay, n)
	m.az = growF64(m.az, n)
	m.gyroZ = growF64(m.gyroZ, n)
	m.combined = growF64(m.combined, n)
	m.power = growF64(m.power, n)

	// Gravity removal + axis extraction straight into scratch: the
	// tr.LinearAccel()/imu.Axis chain this replaces allocated four
	// n-length slices per call.
	for i := range tr.Accel {
		m.raw[i] = tr.Accel[i].X - tr.Gravity[i].X
	}
	dsp.MovingAverageInto(m.ax, m.raw, cfg.SMAWindow)
	for i := range tr.Accel {
		m.raw[i] = tr.Accel[i].Y - tr.Gravity[i].Y
	}
	dsp.MovingAverageInto(m.ay, m.raw, cfg.SMAWindow)
	for i := range tr.Accel {
		m.raw[i] = tr.Accel[i].Z - tr.Gravity[i].Z
	}
	dsp.MovingAverageInto(m.az, m.raw, cfg.SMAWindow)
	for i := range tr.Gyro {
		m.gyroZ[i] = tr.Gyro[i].Z
	}

	// Movement power over the combined in-plane + vertical axes so both
	// slides and stature changes are segmented.
	for i := range m.combined {
		m.combined[i] = m.ay[i]*m.ay[i] + m.az[i]*m.az[i]
	}
	slidingMeanInto(m.power, m.combined, cfg.PowerWindow)
	m.segs = segmentInto(m.segs[:0], m.power, cfg.PowerThreshold, cfg.QuietSamples)
	cfg.Obs.Add(MSegments, uint64(len(m.segs)))
	sp.AttrInt("samples", n)
	sp.AttrInt("segments", len(m.segs))

	m.yawRaw = growF64(m.yawRaw, n)
	m.moving = growBool(m.moving, n)
	m.yawDev = growF64(m.yawDev, n)
	integrateYawDevInto(m.yawDev, m.yawRaw, m.moving, m.gyroZ, tr.Fs, m.segs)

	m.res = MSPResult{
		Fs:       tr.Fs,
		AccelX:   m.ax,
		AccelY:   m.ay,
		AccelZ:   m.az,
		GyroZ:    m.gyroZ,
		YawDev:   m.yawDev,
		Power:    m.power,
		Segments: m.segs,
	}
	return &m.res, nil
}

// integrateYawDev integrates the z-gyro to a yaw deviation series after
// removing the gyro's zero-rate bias. The bias is estimated by fitting a
// linear trend to the raw integrated yaw over every *stationary* sample
// (outside the movement segments): hand tremor contributes bounded,
// zero-mean yaw at those samples while the bias grows linearly, so a fit
// spanning the whole session separates them far better than averaging one
// short window. Only the before/after *difference* of the result within a
// slide enters the TDoA correction, so the intercept is irrelevant.
//
// The assumption is zero net commanded rotation — true for slide sessions
// (the user holds the in-direction orientation). Rotation sweeps violate
// it, but the SDF path integrates raw gyro itself and never reads YawDev.
func integrateYawDev(gyroZ []float64, fs float64, segs []Segment) []float64 {
	n := len(gyroZ)
	out := make([]float64, n)
	integrateYawDevInto(out, make([]float64, n), make([]bool, n), gyroZ, fs, segs)
	return out
}

// integrateYawDevInto is integrateYawDev writing into out, with raw and
// moving as caller-provided staging (all three len(gyroZ)).
//
//hyperearvet:zeroalloc
func integrateYawDevInto(out, raw []float64, moving []bool, gyroZ []float64, fs float64, segs []Segment) {
	n := len(gyroZ)
	yaw := 0.0
	dt := 1 / fs
	for i, w := range gyroZ {
		raw[i] = yaw
		yaw += w * dt
	}
	// Stationary mask: outside segments, with a small guard band.
	const guard = 5
	for i := range moving {
		moving[i] = false
	}
	for _, s := range segs {
		for i := s.Start - guard; i < s.End+guard; i++ {
			if i >= 0 && i < n {
				moving[i] = true
			}
		}
	}
	var sx, sy, sxx, sxy, cnt float64
	for i := 0; i < n; i++ {
		if moving[i] {
			continue
		}
		x := float64(i) * dt
		sx += x
		sy += raw[i]
		sxx += x * x
		sxy += x * raw[i]
		cnt++
	}
	den := cnt*sxx - sx*sx
	if cnt < 10 || den == 0 {
		copy(out, raw)
		return
	}
	slope := (cnt*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / cnt
	for i := range out {
		out[i] = raw[i] - intercept - slope*float64(i)*dt
	}
}

// meanYawDev averages the yaw deviation over the time window [lo, hi]
// seconds (clamped to the trace).
func (m *MSPResult) meanYawDev(lo, hi float64) float64 {
	i0 := int(lo * m.Fs)
	i1 := int(hi*m.Fs) + 1
	if i0 < 0 {
		i0 = 0
	}
	if i1 > len(m.YawDev) {
		i1 = len(m.YawDev)
	}
	if i0 >= i1 {
		if i0 >= len(m.YawDev) {
			i0 = len(m.YawDev) - 1
		}
		if i0 < 0 {
			return 0
		}
		return m.YawDev[i0]
	}
	var s float64
	for _, v := range m.YawDev[i0:i1] {
		s += v
	}
	return s / float64(i1-i0)
}

// slidingMean is the forward-looking window mean of eq. (3):
// P(t) = (1/W)·Σ_{n=t..t+W-1} x[n], truncated at the tail.
func slidingMean(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	slidingMeanInto(out, x, w)
	return out
}

// slidingMeanInto is slidingMean writing into out (len(x)); out must not
// alias x.
//
//hyperearvet:zeroalloc
func slidingMeanInto(out, x []float64, w int) {
	var sum float64
	// Initialize with the first window.
	for i := 0; i < w && i < len(x); i++ {
		sum += x[i]
	}
	for t := range x {
		n := w
		if t+w > len(x) {
			n = len(x) - t
		}
		out[t] = sum / float64(n)
		// Slide: drop x[t], add x[t+w].
		sum -= x[t]
		if t+w < len(x) {
			sum += x[t+w]
		}
	}
}

// segment finds movements: a movement starts when power exceeds thresh and
// ends after quiet consecutive sub-threshold samples (§V-A-2).
func segment(power []float64, thresh float64, quiet int) []Segment {
	return segmentInto(nil, power, thresh, quiet)
}

// segmentInto is segment appending to segs (pass segs[:0] to reuse).
//
//hyperearvet:zeroalloc
func segmentInto(segs []Segment, power []float64, thresh float64, quiet int) []Segment {
	inMove := false
	start := 0
	below := 0
	for i, p := range power {
		if !inMove {
			if p > thresh {
				inMove = true
				start = i
				below = 0
			}
			continue
		}
		if p <= thresh {
			below++
			if below >= quiet {
				segs = append(segs, Segment{Start: start, End: i - quiet + 1})
				inMove = false
			}
		} else {
			below = 0
		}
	}
	if inMove {
		segs = append(segs, Segment{Start: start, End: len(power)})
	}
	return segs
}
