package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDistinguishableHyperbolasPaperNumbers checks the Section II-C claims:
// 35 hyperbolas for the Galaxy S4 (D = 13.66 cm) at 44.1 kHz, and roughly 40
// for a 15.5 cm baseline.
func TestDistinguishableHyperbolasPaperNumbers(t *testing.T) {
	if got := DistinguishableHyperbolas(0.1366, 44100, SpeedOfSound); got != 35 {
		t.Errorf("N(S4) = %d, want 35", got)
	}
	if got := DistinguishableHyperbolas(0.1512, 44100, SpeedOfSound); got != 38 {
		t.Errorf("N(Note3) = %d, want 38", got)
	}
}

// TestResolutions checks the paper's resolution numbers: TDoA ≈ 0.023 ms and
// Δd ≈ 7.78 mm at 44.1 kHz.
func TestResolutions(t *testing.T) {
	if got := TDoAResolution(44100); math.Abs(got-0.0000227) > 1e-6 {
		t.Errorf("TDoA resolution = %v s, want ≈ 22.7 µs", got)
	}
	if got := DeltaDResolution(44100, SpeedOfSound); math.Abs(got-0.00778) > 1e-4 {
		t.Errorf("Δd resolution = %v m, want ≈ 7.78 mm", got)
	}
}

func TestHyperbolaEvalOnLocus(t *testing.T) {
	f1 := Vec2{-0.25, 0}
	f2 := Vec2{0.25, 0}
	p := Vec2{0.8, 1.7}
	h := Hyperbola{F1: f1, F2: f2, Delta: p.Dist(f1) - p.Dist(f2)}
	if got := h.Eval(p); math.Abs(got) > eps {
		t.Errorf("Eval on locus = %v, want 0", got)
	}
}

func TestHyperbolaValid(t *testing.T) {
	h := Hyperbola{F1: Vec2{-0.1, 0}, F2: Vec2{0.1, 0}, Delta: 0.15}
	if !h.Valid() {
		t.Error("Delta < focal distance should be valid")
	}
	h.Delta = 0.25
	if h.Valid() {
		t.Error("Delta > focal distance should be invalid")
	}
}

func TestIntersectHyperbolasExact(t *testing.T) {
	// Construct two hyperbolas through a known point and verify recovery.
	target := Vec2{1.5, 4.2}
	h1 := Hyperbola{F1: Vec2{-0.3, 0}, F2: Vec2{0.3, 0}}
	h1.Delta = target.Dist(h1.F1) - target.Dist(h1.F2)
	h2 := Hyperbola{F1: Vec2{0.1, 0}, F2: Vec2{0.7, 0}}
	h2.Delta = target.Dist(h2.F1) - target.Dist(h2.F2)

	got, err := IntersectHyperbolas(h1, h2, Vec2{1, 3})
	if err != nil {
		t.Fatalf("IntersectHyperbolas: %v", err)
	}
	if got.Dist(target) > 1e-6 {
		t.Errorf("intersection = %v, want %v", got, target)
	}
}

func TestIntersectHyperbolasBadGuessStillConverges(t *testing.T) {
	target := Vec2{0.9, 6.5}
	h1 := Hyperbola{F1: Vec2{-0.3, 0}, F2: Vec2{0.3, 0}}
	h1.Delta = target.Dist(h1.F1) - target.Dist(h1.F2)
	h2 := Hyperbola{F1: Vec2{0.05, 0}, F2: Vec2{0.65, 0}}
	h2.Delta = target.Dist(h2.F1) - target.Dist(h2.F2)

	// A guess far from the solution exercises the grid fallback.
	got, err := IntersectHyperbolas(h1, h2, Vec2{-15, -22})
	if err != nil {
		t.Fatalf("IntersectHyperbolas: %v", err)
	}
	if got.Dist(target) > 1e-5 {
		t.Errorf("intersection = %v, want %v", got, target)
	}
}

func TestIntersectHyperbolasInvalid(t *testing.T) {
	h1 := Hyperbola{F1: Vec2{-0.1, 0}, F2: Vec2{0.1, 0}, Delta: 0.5}
	h2 := Hyperbola{F1: Vec2{0, 0}, F2: Vec2{0.2, 0}, Delta: 0}
	if _, err := IntersectHyperbolas(h1, h2, Vec2{0, 1}); err == nil {
		t.Error("expected error for invalid branch")
	}
}

// TestIntersectRandomGeometries is a property test: for random speaker
// positions in the upper half-plane and random baseline geometries, exact
// TDoAs must triangulate back to the speaker.
func TestIntersectRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		target := Vec2{rng.Float64()*8 - 4, 0.5 + rng.Float64()*8}
		base := 0.3 + rng.Float64()*0.4 // sliding baseline 0.3-0.7 m
		off := rng.Float64() * 0.15     // mic2 offset (phone width)
		h1 := Hyperbola{F1: Vec2{-base / 2, 0}, F2: Vec2{base / 2, 0}}
		h1.Delta = target.Dist(h1.F1) - target.Dist(h1.F2)
		h2 := Hyperbola{F1: Vec2{-base/2 - off, 0}, F2: Vec2{base/2 - off, 0}}
		h2.Delta = target.Dist(h2.F1) - target.Dist(h2.F2)
		got, err := IntersectHyperbolas(h1, h2, Vec2{0, 2})
		if err != nil {
			t.Fatalf("case %d: %v (target %v)", i, err, target)
		}
		// The mirrored solution (negative y) is also a valid intersection of
		// the branches; accept either since callers fix the half-plane.
		mirror := Vec2{got.X, -got.Y}
		if got.Dist(target) > 1e-4 && mirror.Dist(target) > 1e-4 {
			t.Errorf("case %d: intersection %v, want %v", i, got, target)
		}
	}
}

// TestTDoASignProperty: a source on mic1's side (negative X) is farther from
// mic2, so Δd = d1-d2 < 0... actually nearer mic1 means d1 < d2 so Δd < 0.
func TestTDoASignProperty(t *testing.T) {
	mic1 := Vec2{-0.07, 0}
	mic2 := Vec2{0.07, 0}
	f := func(x, y float64) bool {
		p := Vec2{clampf(x), clampf(y)}
		dd := TDoAAt(p, mic1, mic2)
		switch {
		case p.X < -1e-9:
			return dd < 1e-9
		case p.X > 1e-9:
			return dd > -1e-9
		default:
			return math.Abs(dd) < 1e-9
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRegionWidthGrowsWithRange reproduces the Figure 3 observation: TDoA
// regions expand as the source moves away.
func TestRegionWidthGrowsWithRange(t *testing.T) {
	res := DeltaDResolution(44100, SpeedOfSound)
	d := 0.1366
	w1 := RegionWidthAtRange(d, res, 1, Radians(60))
	w5 := RegionWidthAtRange(d, res, 5, Radians(60))
	if !(w5 > w1) {
		t.Errorf("region width should grow with range: w1=%v w5=%v", w1, w5)
	}
	if w1 <= 0 || math.IsInf(w5, 1) {
		t.Errorf("unexpected widths w1=%v w5=%v", w1, w5)
	}
}

// TestRegionWidthShrinksWithSeparation reproduces the Figure 4(b)
// observation: widening the baseline D→D' increases hyperbola density.
func TestRegionWidthShrinksWithSeparation(t *testing.T) {
	res := DeltaDResolution(44100, SpeedOfSound)
	narrow := RegionWidthAtRange(0.1366, res, 5, Radians(75))
	wide := RegionWidthAtRange(0.55, res, 5, Radians(75))
	if !(wide < narrow) {
		t.Errorf("wider baseline should shrink regions: D=13.66cm→%v, D=55cm→%v", narrow, wide)
	}
}

// TestDensityProfileShape reproduces Figure 4(a): regions are densest
// broadside (≈90°) and sparsest toward the endfire directions.
func TestDensityProfileShape(t *testing.T) {
	res := DeltaDResolution(44100, SpeedOfSound)
	deg, width := DensityProfile(0.1366, res, 3, 35)
	if len(deg) != 35 || len(width) != 35 {
		t.Fatalf("unexpected lengths %d %d", len(deg), len(width))
	}
	mid := width[len(width)/2]
	if !(width[0] > mid) || !(width[len(width)-1] > mid) {
		t.Errorf("expected broadside densest: edge widths %v, %v vs mid %v",
			width[0], width[len(width)-1], mid)
	}
}

func BenchmarkIntersectHyperbolas(b *testing.B) {
	target := Vec2{1.5, 5}
	h1 := Hyperbola{F1: Vec2{-0.3, 0}, F2: Vec2{0.3, 0}}
	h1.Delta = target.Dist(h1.F1) - target.Dist(h1.F2)
	h2 := Hyperbola{F1: Vec2{0.1, 0}, F2: Vec2{0.7, 0}}
	h2.Delta = target.Dist(h2.F1) - target.Dist(h2.F2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := IntersectHyperbolas(h1, h2, Vec2{1, 3}); err != nil {
			b.Fatal(err)
		}
	}
}
