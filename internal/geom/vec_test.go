package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vec3AlmostEq(a, b Vec3, tol float64) bool {
	return a.Sub(b).Norm() <= tol
}

func TestVec2Basics(t *testing.T) {
	a := Vec2{3, 4}
	b := Vec2{-1, 2}
	if got := a.Add(b); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := a.Sub(b); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := a.Norm(); !almostEq(got, 5, eps) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Dot(b); !almostEq(got, 5, eps) {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := a.Dist(b); !almostEq(got, math.Sqrt(16+4), eps) {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVec2Rotate(t *testing.T) {
	v := Vec2{1, 0}
	r := v.Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, eps) || !almostEq(r.Y, 1, eps) {
		t.Errorf("Rotate(π/2) = %v, want (0,1)", r)
	}
	r = v.Rotate(math.Pi)
	if !almostEq(r.X, -1, eps) || !almostEq(r.Y, 0, eps) {
		t.Errorf("Rotate(π) = %v, want (-1,0)", r)
	}
}

func TestVec2NormalizeZero(t *testing.T) {
	z := Vec2{}
	if got := z.Normalize(); got != z {
		t.Errorf("Normalize(0) = %v, want zero", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := x.Cross(y)
	if !vec3AlmostEq(z, Vec3{0, 0, 1}, eps) {
		t.Errorf("x×y = %v, want z", z)
	}
	if !vec3AlmostEq(y.Cross(x), Vec3{0, 0, -1}, eps) {
		t.Errorf("y×x should be -z")
	}
}

func TestVec3CrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampf(ax), clampf(ay), clampf(az)}
		b := Vec3{clampf(bx), clampf(by), clampf(bz)}
		c := a.Cross(b)
		// c must be orthogonal to both a and b.
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 6}
	if got := Lerp(a, b, 0.5); !vec3AlmostEq(got, Vec3{1, 2, 3}, eps) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := Lerp(a, b, 0); !vec3AlmostEq(got, a, eps) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(a, b, 1); !vec3AlmostEq(got, b, eps) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

// clampf maps arbitrary quick-generated floats into a sane range and
// removes NaN/Inf.
func clampf(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Vec2{clampf(ax), clampf(ay)}
		b := Vec2{clampf(bx), clampf(by)}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotatePreservesNormProperty(t *testing.T) {
	f := func(x, y, th float64) bool {
		v := Vec2{clampf(x), clampf(y)}
		r := v.Rotate(clampf(th))
		return almostEq(v.Norm(), r.Norm(), 1e-9*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
