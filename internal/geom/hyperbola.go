package geom

import (
	"errors"
	"fmt"
	"math"
)

// SpeedOfSound is the default sound velocity in m/s used by the paper
// (S = 343 m/s at ~20°C).
const SpeedOfSound = 343.0

// ErrNoIntersection is returned when two hyperbolas do not intersect in the
// requested half plane.
var ErrNoIntersection = errors.New("geom: hyperbolas do not intersect")

// Hyperbola is the locus of points p with |p-F1| - |p-F2| = Delta, i.e. one
// branch of a hyperbola with foci F1 and F2. Delta may be negative; |Delta|
// must not exceed |F1-F2| for the locus to be non-empty.
type Hyperbola struct {
	F1, F2 Vec2
	Delta  float64
}

// Eval returns |p-F1| - |p-F2| - Delta; zero on the locus.
func (h Hyperbola) Eval(p Vec2) float64 {
	return p.Dist(h.F1) - p.Dist(h.F2) - h.Delta
}

// grad returns the gradient of Eval at p. It is undefined exactly at a
// focus; callers should avoid evaluating there.
func (h Hyperbola) grad(p Vec2) Vec2 {
	g1 := p.Sub(h.F1).Normalize()
	g2 := p.Sub(h.F2).Normalize()
	return g1.Sub(g2)
}

// Valid reports whether the branch is geometrically realizable:
// |Delta| <= |F1-F2|.
func (h Hyperbola) Valid() bool {
	return math.Abs(h.Delta) <= h.F1.Dist(h.F2)+1e-12
}

// IntersectHyperbolas finds a common point of two hyperbola branches by
// damped Newton iteration from guess, falling back to a coarse polar grid
// search around the guess when Newton diverges. It returns the intersection
// point or ErrNoIntersection.
func IntersectHyperbolas(h1, h2 Hyperbola, guess Vec2) (Vec2, error) {
	if !h1.Valid() || !h2.Valid() {
		return Vec2{}, fmt.Errorf("geom: invalid hyperbola branch (|Δ| exceeds focal distance): %w", ErrNoIntersection)
	}
	if p, ok := newtonIntersect(h1, h2, guess); ok {
		return p, nil
	}
	// Grid fallback: search a polar grid centered between the foci,
	// spanning generous range, then refine with Newton.
	center := h1.F1.Add(h1.F2).Scale(0.5)
	best := guess
	bestScore := math.Inf(1)
	for _, r := range gridRadii {
		for a := 0; a < 360; a += 2 {
			p := center.Add(Vec2{r, 0}.Rotate(Radians(float64(a))))
			s := math.Abs(h1.Eval(p)) + math.Abs(h2.Eval(p))
			if s < bestScore {
				bestScore = s
				best = p
			}
		}
	}
	if p, ok := newtonIntersect(h1, h2, best); ok {
		return p, nil
	}
	return Vec2{}, ErrNoIntersection
}

var gridRadii = []float64{0.25, 0.5, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20}

// newtonIntersect runs a damped Newton solve of the 2x2 system
// h1.Eval(p)=0, h2.Eval(p)=0.
func newtonIntersect(h1, h2 Hyperbola, p Vec2) (Vec2, bool) {
	const (
		maxIter = 80
		tol     = 1e-10
	)
	for i := 0; i < maxIter; i++ {
		f1 := h1.Eval(p)
		f2 := h2.Eval(p)
		if math.Abs(f1) < tol && math.Abs(f2) < tol {
			return p, true
		}
		g1 := h1.grad(p)
		g2 := h2.grad(p)
		det := g1.X*g2.Y - g1.Y*g2.X
		if math.Abs(det) < 1e-14 {
			return Vec2{}, false
		}
		// Solve J * dp = -f
		dx := (-f1*g2.Y + f2*g1.Y) / det
		dy := (-f2*g1.X + f1*g2.X) / det
		step := Vec2{dx, dy}
		// Damping: halve the step until the residual decreases.
		base := math.Abs(f1) + math.Abs(f2)
		lambda := 1.0
		for k := 0; k < 30; k++ {
			q := p.Add(step.Scale(lambda))
			if math.Abs(h1.Eval(q))+math.Abs(h2.Eval(q)) < base {
				p = q
				break
			}
			lambda /= 2
			if k == 29 {
				return Vec2{}, false
			}
		}
	}
	if math.Abs(h1.Eval(p)) < 1e-6 && math.Abs(h2.Eval(p)) < 1e-6 {
		return p, true
	}
	return Vec2{}, false
}

// TDoAResolution returns the smallest distinguishable time difference in
// seconds at sampling rate fs Hz (≈0.023 ms at 44.1 kHz, Section II-C).
func TDoAResolution(fs float64) float64 { return 1 / fs }

// DeltaDResolution returns the distance-difference resolution S/fs in
// meters (≈7.78 mm at 44.1 kHz and S = 343 m/s).
func DeltaDResolution(fs, s float64) float64 { return s / fs }

// DistinguishableHyperbolas implements eq. (2): N = ⌊2·D·fs/S⌋, the number
// of distinguishable TDoA hyperbolas for mic separation D at sampling rate
// fs and sound speed s.
func DistinguishableHyperbolas(d, fs, s float64) int {
	return int(math.Floor(2 * d * fs / s))
}

// TDoAAt returns the exact (unquantized) distance difference
// |p-mic1| - |p-mic2| in meters for a source at p.
func TDoAAt(p, mic1, mic2 Vec2) float64 {
	return p.Dist(mic1) - p.Dist(mic2)
}

// RegionWidthAtRange returns the spatial width, in meters, of the TDoA
// quantization region containing bearing angle theta (radians, measured from
// the mic axis midpoint) at range r from the midpoint of a mic pair
// separated by d, with distance-difference resolution res = S/fs.
//
// It measures the arc length along the circle of radius r between the two
// adjacent quantization boundaries bracketing theta. This is the "location
// ambiguity" of Figures 3 and 4: regions are narrow broadside (theta≈90°)
// and widen dramatically toward the mic axis and with range.
func RegionWidthAtRange(d, res, r, theta float64) float64 {
	mic1 := Vec2{-d / 2, 0}
	mic2 := Vec2{d / 2, 0}
	at := func(th float64) float64 {
		p := Vec2{r * math.Cos(th), r * math.Sin(th)}
		return TDoAAt(p, mic1, mic2)
	}
	v := at(theta)
	k := math.Floor(v / res)
	lo, hi := k*res, (k+1)*res
	// Walk outward from theta to find the angles where the quantized level
	// changes. Δd is monotone in theta on (0, π): increasing theta moves the
	// point from near mic2's side to mic1's side, so Δd decreases.
	thLo := bisectLevel(at, theta, hi)
	thHi := bisectLevel(at, theta, lo)
	if math.IsNaN(thLo) || math.IsNaN(thHi) {
		return math.Inf(1) // region extends beyond the valid bearing range
	}
	return math.Abs(thHi-thLo) * r
}

// bisectLevel finds th near th0 with f(th)=level by scanning then bisecting.
// Returns NaN if the level is not crossed within (0, π).
func bisectLevel(f func(float64) float64, th0, level float64) float64 {
	const step = 1e-3
	g := func(th float64) float64 { return f(th) - level }
	v0 := g(th0)
	if v0 == 0 {
		return th0
	}
	dir := 1.0
	// f is decreasing in theta on (0, π); pick scan direction by sign.
	if v0 < 0 {
		dir = -1
	}
	a := th0
	for {
		b := a + dir*step
		if b <= 1e-6 || b >= math.Pi-1e-6 {
			return math.NaN()
		}
		if g(a)*g(b) <= 0 {
			// Bisect [min(a,b), max(a,b)].
			lo, hi := math.Min(a, b), math.Max(a, b)
			for i := 0; i < 60; i++ {
				mid := (lo + hi) / 2
				if g(lo)*g(mid) <= 0 {
					hi = mid
				} else {
					lo = mid
				}
			}
			return (lo + hi) / 2
		}
		a = b
	}
}

// DensityProfile samples RegionWidthAtRange across bearings [5°, 175°] and
// returns parallel slices of bearing (degrees) and region width (meters).
// It quantifies Figure 4: the hyperbola distribution is densest broadside.
func DensityProfile(d, res, r float64, nSamples int) (bearingDeg, width []float64) {
	if nSamples < 2 {
		nSamples = 2
	}
	bearingDeg = make([]float64, nSamples)
	width = make([]float64, nSamples)
	for i := 0; i < nSamples; i++ {
		deg := 5 + 170*float64(i)/float64(nSamples-1)
		bearingDeg[i] = deg
		width[i] = RegionWidthAtRange(d, res, r, Radians(deg))
	}
	return bearingDeg, width
}
