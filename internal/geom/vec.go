// Package geom provides the small amount of 2D/3D geometry HyperEar needs:
// vectors, rotations (matrices and quaternions), body/world frame
// transforms, and the TDoA hyperbola utilities used throughout the paper's
// Section II analysis (region counts, region densities).
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2D vector or point in meters.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns |v|.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns |v - w|.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Normalize returns v/|v|. The zero vector is returned unchanged.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counterclockwise by theta radians.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Angle returns atan2(v.Y, v.X) in radians.
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.4f, %.4f)", v.X, v.Y) }

// Vec3 is a 3D vector or point in meters.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalize returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// XY projects v onto the horizontal plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4f, %.4f, %.4f)", v.X, v.Y, v.Z) }

// Lerp linearly interpolates between a and b: a + t*(b-a).
func Lerp(a, b Vec3, t float64) Vec3 { return a.Add(b.Sub(a).Scale(t)) }

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
