package geom

import "math"

// Mat3 is a 3x3 rotation (or general linear) matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Mul returns the matrix product m*n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				r[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return r
}

// Apply returns m*v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Transpose returns mᵀ, which for a rotation matrix is its inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// RotZ returns the rotation about the world z-axis by theta radians
// (counterclockwise looking down the +z axis).
func RotZ(theta float64) Mat3 {
	s, c := math.Sincos(theta)
	return Mat3{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}
}

// RotX returns the rotation about the x-axis by theta radians.
func RotX(theta float64) Mat3 {
	s, c := math.Sincos(theta)
	return Mat3{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}
}

// RotY returns the rotation about the y-axis by theta radians.
func RotY(theta float64) Mat3 {
	s, c := math.Sincos(theta)
	return Mat3{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}
}

// Quat is a unit quaternion w + xi + yj + zk representing a 3D rotation.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatAxisAngle builds the quaternion rotating by angle radians about axis.
// The axis need not be normalized; a zero axis yields the identity.
func QuatAxisAngle(axis Vec3, angle float64) Quat {
	n := axis.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	s, c := math.Sincos(angle / 2)
	u := axis.Scale(1 / n)
	return Quat{W: c, X: s * u.X, Y: s * u.Y, Z: s * u.Z}
}

// Mul returns the composition q*p (apply p first, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion's Euclidean norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit norm. A zero quaternion becomes identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Apply rotates v by q.
func (q Quat) Apply(v Vec3) Vec3 {
	// v' = q (0,v) q*
	u := Vec3{q.X, q.Y, q.Z}
	t := u.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(u.Cross(t))
}

// Mat returns the equivalent rotation matrix.
func (q Quat) Mat() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// WrapAngle wraps an angle in radians to (-π, π].
func WrapAngle(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}
