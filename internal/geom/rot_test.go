package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func mat3AlmostEq(a, b Mat3, tol float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestRotZ(t *testing.T) {
	r := RotZ(math.Pi / 2)
	got := r.Apply(Vec3{1, 0, 0})
	if !vec3AlmostEq(got, Vec3{0, 1, 0}, eps) {
		t.Errorf("RotZ(π/2)·x = %v, want y", got)
	}
}

func TestRotXY(t *testing.T) {
	if got := RotX(math.Pi / 2).Apply(Vec3{0, 1, 0}); !vec3AlmostEq(got, Vec3{0, 0, 1}, eps) {
		t.Errorf("RotX(π/2)·y = %v, want z", got)
	}
	if got := RotY(math.Pi / 2).Apply(Vec3{0, 0, 1}); !vec3AlmostEq(got, Vec3{1, 0, 0}, eps) {
		t.Errorf("RotY(π/2)·z = %v, want x", got)
	}
}

func TestMat3TransposeIsInverse(t *testing.T) {
	r := RotZ(0.7).Mul(RotX(0.3)).Mul(RotY(-1.1))
	id := r.Mul(r.Transpose())
	if !mat3AlmostEq(id, Identity3(), 1e-12) {
		t.Errorf("R·Rᵀ != I: %v", id)
	}
}

func TestQuatMatchesMatrix(t *testing.T) {
	axis := Vec3{1, 2, 3}
	angle := 0.9
	q := QuatAxisAngle(axis, angle)
	v := Vec3{0.3, -0.4, 1.2}
	byQuat := q.Apply(v)
	byMat := q.Mat().Apply(v)
	if !vec3AlmostEq(byQuat, byMat, 1e-12) {
		t.Errorf("quat apply %v != matrix apply %v", byQuat, byMat)
	}
}

func TestQuatComposition(t *testing.T) {
	q1 := QuatAxisAngle(Vec3{0, 0, 1}, 0.5)
	q2 := QuatAxisAngle(Vec3{1, 0, 0}, -0.8)
	v := Vec3{1, 1, 1}
	composed := q2.Mul(q1).Apply(v)
	sequential := q2.Apply(q1.Apply(v))
	if !vec3AlmostEq(composed, sequential, 1e-12) {
		t.Errorf("composition mismatch: %v vs %v", composed, sequential)
	}
}

func TestQuatConjIsInverse(t *testing.T) {
	q := QuatAxisAngle(Vec3{2, -1, 0.5}, 1.3)
	v := Vec3{0.1, 0.2, 0.3}
	back := q.Conj().Apply(q.Apply(v))
	if !vec3AlmostEq(back, v, 1e-12) {
		t.Errorf("q*·q·v = %v, want %v", back, v)
	}
}

func TestQuatZeroAxisIsIdentity(t *testing.T) {
	q := QuatAxisAngle(Vec3{}, 1.0)
	if q != QuatIdentity() {
		t.Errorf("zero axis = %v, want identity", q)
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	var q Quat
	if got := q.Normalize(); got != QuatIdentity() {
		t.Errorf("Normalize(zero quat) = %v, want identity", got)
	}
}

func TestQuatRotationPreservesNormProperty(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float64) bool {
		q := QuatAxisAngle(Vec3{clampf(ax), clampf(ay), clampf(az)}, clampf(angle))
		v := Vec3{clampf(vx), clampf(vy), clampf(vz)}
		return math.Abs(q.Apply(v).Norm()-v.Norm()) < 1e-7*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatRoundTripProperty(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float64) bool {
		q := QuatAxisAngle(Vec3{clampf(ax), clampf(ay), clampf(az)}, clampf(angle))
		v := Vec3{clampf(vx), clampf(vy), clampf(vz)}
		back := q.Conj().Apply(q.Apply(v))
		return vec3AlmostEq(back, v, 1e-7*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreesRadians(t *testing.T) {
	if !almostEq(Degrees(math.Pi), 180, eps) {
		t.Error("Degrees(π) != 180")
	}
	if !almostEq(Radians(90), math.Pi/2, eps) {
		t.Error("Radians(90) != π/2")
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want, eps) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
