// Package sim assembles full HyperEar sessions: it builds the user-motion
// protocol (slides on one or two statures, rotation sweeps), renders what
// the phone's two microphones record in the chosen room, samples the IMU
// along the exact same trajectory, and keeps the ground truth needed to
// score the pipeline. All randomness is derived from a single seed.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
)

// Mode selects how the phone is moved.
type Mode int

// Movement modes: the paper evaluates both a level slide ruler (Figs.
// 14-16) and free-hand operation (Figs. 17-19).
const (
	// ModeRuler mounts the phone on a level slide ruler: no tremor, no
	// rotation jitter, exact slide direction.
	ModeRuler Mode = iota + 1
	// ModeHand is free-hand operation: millimeter-scale tremor, a few
	// degrees of rotation wobble, and imperfect slide lengths.
	ModeHand
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeRuler:
		return "ruler"
	case ModeHand:
		return "hand"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Protocol describes the user-motion script of one session.
type Protocol struct {
	// SlideDist is the commanded slide length in meters.
	SlideDist float64
	// SlideDur is the duration of one slide in seconds.
	SlideDur float64
	// HoldDur is the pause before/after each slide in seconds (the phone
	// must be at rest at both ends for the PDE zero-velocity anchors).
	HoldDur float64
	// CalibHold is the stationary period at session start in seconds —
	// physically the tail of the direction-finding phase, during which
	// the ASP stage estimates the sampling-frequency offset from the
	// received beacon period. Zero selects the 3 s default.
	CalibHold float64
	// Slides is the number of slides (alternating forward/backward).
	Slides int
	// Mode selects ruler or hand operation.
	Mode Mode
	// YawErrDeg is the residual direction-finding error: the phone's
	// slide axis is rotated this many degrees away from the ideal
	// broadside orientation. The SDF experiments sweep this.
	YawErrDeg float64
	// StatureChange, when nonzero, inserts a vertical move of this many
	// meters after the first half of the slides (the paper's two-stature
	// 3D protocol, Fig. 11). Use an even Slides count with it.
	StatureChange float64
}

// DefaultProtocol returns the paper's standard operating point: 55 cm
// slides (the 50-60 cm bucket that HyperEar auto-selects, §VII-B), one
// second per slide, five slides.
func DefaultProtocol() Protocol {
	return Protocol{
		SlideDist: 0.55,
		SlideDur:  1.0,
		HoldDur:   0.45,
		CalibHold: 3.0,
		Slides:    5,
		Mode:      ModeRuler,
	}
}

// Validate reports protocol errors.
func (p Protocol) Validate() error {
	switch {
	case p.SlideDist <= 0 || p.SlideDist > 2:
		return fmt.Errorf("sim: slide distance %v m implausible", p.SlideDist)
	case p.SlideDur <= 0.1:
		return fmt.Errorf("sim: slide duration %v s too short", p.SlideDur)
	case p.HoldDur <= 0.1:
		return fmt.Errorf("sim: hold duration %v s too short", p.HoldDur)
	case p.CalibHold < 0:
		return fmt.Errorf("sim: negative calibration hold %v s", p.CalibHold)
	case p.Slides < 1 || p.Slides > 50:
		return fmt.Errorf("sim: %d slides outside [1,50]", p.Slides)
	case p.Mode != ModeRuler && p.Mode != ModeHand:
		return fmt.Errorf("sim: unknown mode %d", p.Mode)
	}
	return nil
}

// Scenario is a complete experiment configuration.
type Scenario struct {
	// Env is the acoustic environment.
	Env room.Environment
	// Phone is the handset.
	Phone mic.Phone
	// Source is the beacon waveform.
	Source chirp.Params
	// SpeakerPos is the speaker's world position.
	SpeakerPos geom.Vec3
	// SpeakerSkewPPM is the speaker clock error.
	SpeakerSkewPPM float64
	// PhoneStart is the phone center's world position at session start.
	PhoneStart geom.Vec3
	// Protocol is the motion script.
	Protocol Protocol
	// IMU is the inertial sensor error model.
	IMU imu.Config
	// Noise is the background noise source (nil for silence).
	Noise room.NoiseSource
	// SNRdB is the target recorded SNR when Noise is set.
	SNRdB float64
	// Seed derives every random draw in the session.
	Seed int64
}

// Session is a rendered scenario: the sensor data the pipeline consumes
// plus ground truth for scoring.
type Session struct {
	// Recording is the stereo microphone capture.
	Recording *mic.Recording
	// IMU is the inertial trace.
	IMU *imu.Trace
	// Traj is the ground-truth trajectory (world frame).
	Traj motion.Trajectory
	// Scenario echoes the configuration.
	Scenario Scenario
	// TrueYaw is the phone yaw actually used (ideal broadside yaw plus
	// the protocol's YawErrDeg).
	TrueYaw float64
	// TrueProjectedDist is the ground-truth horizontal distance from the
	// phone start to the speaker (the quantity Figures 14-19 score).
	TrueProjectedDist float64
}

// BroadsideYaw returns the phone yaw that puts the speaker exactly on the
// body +x axis (the "in-direction position" of §IV-B) for a phone at
// phonePos: body +x must point at the speaker's horizontal bearing.
func BroadsideYaw(phonePos, speakerPos geom.Vec3) float64 {
	d := speakerPos.Sub(phonePos)
	return math.Atan2(d.Y, d.X)
}

// Run renders the scenario into a Session.
func Run(sc Scenario) (*Session, error) {
	if err := sc.Protocol.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	traj, yaw, err := buildTrajectory(sc, rng)
	if err != nil {
		return nil, err
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env:            sc.Env,
		Source:         sc.Source,
		SourcePos:      sc.SpeakerPos,
		SpeakerSkewPPM: sc.SpeakerSkewPPM,
		Phone:          sc.Phone,
		Traj:           traj,
		Noise:          sc.Noise,
		SNRdB:          sc.SNRdB,
		Seed:           rng.Int63(),
	})
	if err != nil {
		return nil, err
	}
	imuCfg := sc.IMU
	if imuCfg.SampleRate == 0 {
		imuCfg = imu.DefaultConfig()
	}
	imuCfg.Seed = rng.Int63()
	trace, err := imu.Sample(traj, imuCfg)
	if err != nil {
		return nil, err
	}
	return &Session{
		Recording:         rec,
		IMU:               trace,
		Traj:              traj,
		Scenario:          sc,
		TrueYaw:           yaw,
		TrueProjectedDist: sc.SpeakerPos.Sub(sc.PhoneStart).XY().Norm(),
	}, nil
}

// buildTrajectory constructs the session motion from the protocol.
func buildTrajectory(sc Scenario, rng *rand.Rand) (motion.Trajectory, float64, error) {
	p := sc.Protocol
	yaw := BroadsideYaw(sc.PhoneStart, sc.SpeakerPos) + geom.Radians(p.YawErrDeg)

	calib := p.CalibHold
	if calib == 0 {
		calib = 3.0
	}
	b := motion.NewBuilder(sc.PhoneStart, yaw)
	b.Hold(calib)
	dir := 1.0
	half := p.Slides / 2
	for i := 0; i < p.Slides; i++ {
		dist := p.SlideDist
		dur := p.SlideDur
		if p.Mode == ModeHand {
			// Free-hand slides vary a few percent in length and timing.
			dist *= 1 + 0.04*rng.NormFloat64()
			dur *= 1 + 0.06*rng.NormFloat64()
			if dur < 0.3 {
				dur = 0.3
			}
		}
		b.Slide(dir*dist, dur)
		b.Hold(p.HoldDur)
		dir = -dir
		if p.StatureChange != 0 && half > 0 && i == half-1 {
			b.ChangeHeight(p.StatureChange, 0.8)
			b.Hold(p.HoldDur)
		}
	}
	base, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	if p.Mode == ModeHand {
		return &motion.Shaky{
			Base:   base,
			Tremor: motion.NewTremor(rng, 0.0025, 4),
		}, yaw, nil
	}
	return base, yaw, nil
}

// RotationSweep builds a Scenario-compatible trajectory in which the phone
// holds still and rotates one full turn about its z-axis over dur seconds
// — the SDF direction-finding sweep of Figures 6 and 7. It is exposed for
// experiments that bypass the slide protocol.
func RotationSweep(start geom.Vec3, dur float64) (motion.Trajectory, error) {
	traj, err := motion.NewBuilder(start, 0).
		Hold(0.2).
		RotateTo(2*math.Pi, dur).
		Hold(0.2).
		Build()
	if err != nil {
		return nil, err
	}
	return traj, nil
}
