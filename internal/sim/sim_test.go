package sim

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
)

func baseScenario() Scenario {
	return Scenario{
		Env:        room.MeetingRoom(),
		Phone:      mic.GalaxyS4(),
		Source:     chirp.Default(),
		SpeakerPos: geom.Vec3{X: 10, Y: 6, Z: 1.2},
		PhoneStart: geom.Vec3{X: 5, Y: 6, Z: 1.2},
		Protocol:   DefaultProtocol(),
		IMU:        imu.DefaultConfig(),
		Seed:       1,
	}
}

func TestProtocolValidate(t *testing.T) {
	if err := DefaultProtocol().Validate(); err != nil {
		t.Errorf("default protocol: %v", err)
	}
	cases := []func(*Protocol){
		func(p *Protocol) { p.SlideDist = 0 },
		func(p *Protocol) { p.SlideDist = 5 },
		func(p *Protocol) { p.SlideDur = 0.05 },
		func(p *Protocol) { p.HoldDur = 0 },
		func(p *Protocol) { p.Slides = 0 },
		func(p *Protocol) { p.Slides = 100 },
		func(p *Protocol) { p.Mode = 0 },
	}
	for i, mut := range cases {
		p := DefaultProtocol()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeRuler.String() != "ruler" || ModeHand.String() != "hand" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestBroadsideYaw(t *testing.T) {
	// Speaker due +x of the phone: body +x must point along world +x,
	// so yaw = 0.
	yaw := BroadsideYaw(geom.Vec3{}, geom.Vec3{X: 5})
	if math.Abs(yaw) > 1e-12 {
		t.Errorf("yaw = %v, want 0", yaw)
	}
	// Speaker due +y: yaw = π/2.
	yaw = BroadsideYaw(geom.Vec3{}, geom.Vec3{Y: 5})
	if math.Abs(yaw-math.Pi/2) > 1e-12 {
		t.Errorf("yaw = %v, want π/2", yaw)
	}
}

func TestRunProducesConsistentSession(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Slides = 2
	s, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recording == nil || s.IMU == nil || s.Traj == nil {
		t.Fatal("incomplete session")
	}
	wantDur := s.Traj.Duration()
	gotAudio := float64(len(s.Recording.Mic1)) / s.Recording.Fs
	if math.Abs(gotAudio-wantDur) > 0.01 {
		t.Errorf("audio %v s vs trajectory %v s", gotAudio, wantDur)
	}
	gotIMU := float64(s.IMU.Len()-1) / s.IMU.Fs
	if math.Abs(gotIMU-wantDur) > 0.02 {
		t.Errorf("imu %v s vs trajectory %v s", gotIMU, wantDur)
	}
	if want := 5.0; math.Abs(s.TrueProjectedDist-want) > 1e-12 {
		t.Errorf("TrueProjectedDist = %v, want %v", s.TrueProjectedDist, want)
	}
}

func TestRunSlideAxisIsBroadside(t *testing.T) {
	// In ruler mode with no yaw error, the slide axis must be exactly
	// perpendicular to the speaker bearing.
	sc := baseScenario()
	sc.Protocol.Slides = 1
	s, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Find displacement over the slide (between the holds).
	p0 := s.Traj.Pose(sc.Protocol.CalibHold).Pos
	p1 := s.Traj.Pose(sc.Protocol.CalibHold + sc.Protocol.SlideDur).Pos
	slideDir := p1.Sub(p0).Normalize()
	bearing := sc.SpeakerPos.Sub(sc.PhoneStart).Normalize()
	if dot := math.Abs(slideDir.Dot(bearing)); dot > 1e-9 {
		t.Errorf("slide axis not broadside: |dot| = %v", dot)
	}
	if math.Abs(p1.Dist(p0)-sc.Protocol.SlideDist) > 1e-9 {
		t.Errorf("ruler slide length = %v, want %v", p1.Dist(p0), sc.Protocol.SlideDist)
	}
}

func TestRunYawError(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Slides = 1
	sc.Protocol.YawErrDeg = 30
	s, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s.Traj.Pose(sc.Protocol.CalibHold).Pos
	p1 := s.Traj.Pose(sc.Protocol.CalibHold + sc.Protocol.SlideDur).Pos
	slideDir := p1.Sub(p0).Normalize()
	bearing := sc.SpeakerPos.Sub(sc.PhoneStart).Normalize()
	angle := math.Acos(geom.Clamp(math.Abs(slideDir.Dot(bearing)), -1, 1))
	// Perpendicular minus 30° of yaw error = 60° between slide and bearing.
	if math.Abs(geom.Degrees(angle)-60) > 1 {
		t.Errorf("slide-bearing angle = %v°, want 60°", geom.Degrees(angle))
	}
}

func TestRunHandModeVariesSlides(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Mode = ModeHand
	sc.Protocol.Slides = 4
	s, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-mode slide lengths should differ from the commanded value.
	p := sc.Protocol
	t0 := p.CalibHold
	identical := true
	for i := 0; i < p.Slides; i++ {
		// Approximate phase boundaries: hand mode perturbs durations, so
		// just check the total path isn't exactly the ruler path.
		pos := s.Traj.Pose(t0 + float64(i)*(p.SlideDur+p.HoldDur)).Pos
		ruler := sc.PhoneStart
		if pos.Dist(ruler) > 1e-6 {
			identical = false
		}
	}
	if identical {
		t.Error("hand mode produced an exact ruler trajectory")
	}
}

func TestRunStatureChange(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Slides = 4
	sc.Protocol.StatureChange = 0.4
	s, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	z0 := s.Traj.Pose(0).Pos.Z
	z1 := s.Traj.Pose(s.Traj.Duration()).Pos.Z
	if math.Abs(z1-z0-0.4) > 1e-9 {
		t.Errorf("stature change = %v, want 0.4", z1-z0)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Slides = 1
	sc.Protocol.Mode = ModeHand
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Recording.Mic1 {
		if a.Recording.Mic1[i] != b.Recording.Mic1[i] {
			t.Fatal("audio must be deterministic per seed")
		}
	}
	for i := range a.IMU.Accel {
		if a.IMU.Accel[i] != b.IMU.Accel[i] {
			t.Fatal("IMU must be deterministic per seed")
		}
	}
}

func TestRunInvalidProtocol(t *testing.T) {
	sc := baseScenario()
	sc.Protocol.Slides = 0
	if _, err := Run(sc); err == nil {
		t.Error("invalid protocol should error")
	}
}

func TestRotationSweep(t *testing.T) {
	traj, err := RotationSweep(geom.Vec3{X: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(traj.Duration()-4.4) > 1e-9 {
		t.Errorf("duration = %v, want 4.4", traj.Duration())
	}
	// Mid-sweep the phone must have rotated half a turn.
	mid := traj.Pose(0.2 + 2).Orient.Apply(geom.Vec3{X: 1})
	if mid.Sub(geom.Vec3{X: -1}).Norm() > 1e-6 {
		t.Errorf("half-turn body x = %v, want -x", mid)
	}
}
