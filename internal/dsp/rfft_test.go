package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRealPlanForRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-2, 0, 1, 3, 6, 100} {
		if _, err := RealPlanFor(n); err == nil {
			t.Errorf("RealPlanFor(%d) should error", n)
		}
	}
}

func TestRealPlanForCachesBySize(t *testing.T) {
	a, err := RealPlanFor(512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RealPlanFor(512)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("RealPlanFor(512) returned distinct plans for the same size")
	}
	if a.Size() != 512 || a.SpectrumLen() != 257 {
		t.Errorf("Size()=%d SpectrumLen()=%d, want 512/257", a.Size(), a.SpectrumLen())
	}
}

// TestRealPlanForwardMatchesComplexPlan is the differential test pinning
// the packed real path against the complex Plan on random vectors for
// every size 2..8192, with explicit checks of the DC and Nyquist bins
// (which must come out purely real).
func TestRealPlanForwardMatchesComplexPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 2; n <= 8192; n <<= 1 {
		rp, err := RealPlanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Reference: widen to complex and run the full-size plan.
		want := make([]complex128, n)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		planFor(n).Forward(want)

		got := make([]complex128, rp.SpectrumLen())
		rp.ForwardReal(got, x)
		tol := 1e-9 * math.Sqrt(float64(n))
		for k := 0; k <= n/2; k++ {
			if d := cAbs(got[k] - want[k]); d > tol {
				t.Fatalf("n=%d bin %d: real path %v vs complex %v (Δ %g)", n, k, got[k], want[k], d)
			}
		}
		if imag(got[0]) != 0 {
			t.Errorf("n=%d: DC bin has imaginary part %g", n, imag(got[0]))
		}
		if imag(got[n/2]) != 0 {
			t.Errorf("n=%d: Nyquist bin has imaginary part %g", n, imag(got[n/2]))
		}
	}
}

// TestRealPlanRoundTrip: ForwardReal→InverseReal must reproduce the input
// for every size 2..8192, including implicitly zero-padded (short) inputs
// and truncated outputs.
func TestRealPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 2; n <= 8192; n <<= 1 {
		rp := realPlanFor(n)
		for _, inLen := range []int{n, n / 2, n - 1, 1} {
			if inLen < 1 {
				continue
			}
			x := make([]float64, inLen)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			spec := make([]complex128, rp.SpectrumLen())
			rp.ForwardReal(spec, x)
			got := make([]float64, n)
			rp.InverseReal(got, spec)
			for i := 0; i < n; i++ {
				want := 0.0
				if i < inLen {
					want = x[i]
				}
				if d := math.Abs(got[i] - want); d > 1e-10 {
					t.Fatalf("n=%d inLen=%d: round trip error %g at %d", n, inLen, d, i)
				}
			}
			// Truncated output: only the requested prefix is written.
			short := make([]float64, inLen)
			spec2 := make([]complex128, rp.SpectrumLen())
			rp.ForwardReal(spec2, x)
			rp.InverseReal(short, spec2)
			for i := range short {
				if d := math.Abs(short[i] - x[i]); d > 1e-10 {
					t.Fatalf("n=%d inLen=%d: truncated inverse error %g at %d", n, inLen, d, i)
				}
			}
		}
	}
}

// TestRealPlanImpulseSpectra pins a handful of analytically known
// transforms: an impulse (flat spectrum), a DC signal (everything in bin
// 0), and a Nyquist-rate alternation (everything in the last bin).
func TestRealPlanImpulseSpectra(t *testing.T) {
	const n = 64
	rp := realPlanFor(n)
	spec := make([]complex128, rp.SpectrumLen())

	impulse := make([]float64, n)
	impulse[0] = 1
	rp.ForwardReal(spec, impulse)
	for k, v := range spec {
		if cAbs(v-1) > 1e-12 {
			t.Errorf("impulse bin %d = %v, want 1", k, v)
		}
	}

	dc := make([]float64, n)
	for i := range dc {
		dc[i] = 2.5
	}
	rp.ForwardReal(spec, dc)
	if cAbs(spec[0]-complex(2.5*n, 0)) > 1e-9 {
		t.Errorf("DC bin = %v, want %v", spec[0], 2.5*n)
	}
	for k := 1; k < len(spec); k++ {
		if cAbs(spec[k]) > 1e-9 {
			t.Errorf("DC signal leaked %v into bin %d", spec[k], k)
		}
	}

	nyq := make([]float64, n)
	for i := range nyq {
		nyq[i] = 1 - 2*float64(i%2)
	}
	rp.ForwardReal(spec, nyq)
	if cAbs(spec[n/2]-complex(float64(n), 0)) > 1e-9 {
		t.Errorf("Nyquist bin = %v, want %v", spec[n/2], n)
	}
	for k := 0; k < n/2; k++ {
		if cAbs(spec[k]) > 1e-9 {
			t.Errorf("Nyquist signal leaked %v into bin %d", spec[k], k)
		}
	}
}

// TestCorrFFTSizeExactFit: linear correlation needs lx+lr-1 samples, so a
// sum landing one past a power of two must NOT double the transform (the
// old NextPow2(lx+lr) sizing did).
func TestCorrFFTSizeExactFit(t *testing.T) {
	cases := []struct{ lx, lr, want int }{
		{1, 1, 2}, // degenerate: single-sample operands still get a 2-point plan
		{5, 4, 8}, // lx+lr-1 = 8 exactly: must stay at 8, not 16
		{100, 29, 128},
		{44100, 1764, 65536},
		{3, 3, 8}, // lx+lr-1 = 5 rounds up to 8
	}
	for _, c := range cases {
		if got := corrFFTSize(c.lx, c.lr); got != c.want {
			t.Errorf("corrFFTSize(%d, %d) = %d, want %d", c.lx, c.lr, got, c.want)
		}
	}
}

// TestCrossCorrelateExactPow2Boundary exercises the sizes where the old
// over-rounding doubled the FFT, pinning the result against the direct
// O(N·M) reference.
func TestCrossCorrelateExactPow2Boundary(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, l := range [][2]int{{5, 4}, {60, 5}, {1020, 5}, {513, 512}} {
		x := make([]float64, l[0])
		ref := make([]float64, l[1])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		got := CrossCorrelate(x, ref)
		want := CrossCorrelateDirect(x, ref)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("lx=%d lr=%d: mismatch at %d: %v vs %v", l[0], l[1], i, got[i], want[i])
			}
		}
	}
}

// circularCorrelateDirect is the O(N²) reference for the overlap-save
// primitive: dst[i] = Σ_j x̃[(i+j) mod n]·ref[j] with x̃ the zero-padded x.
func circularCorrelateDirect(x, ref []float64, n, outLen int) []float64 {
	xp := make([]float64, n)
	copy(xp, x)
	out := make([]float64, outLen)
	for i := range out {
		var s float64
		for j, r := range ref {
			s += xp[(i+j)%n] * r
		}
		out[i] = s
	}
	return out
}

func TestCorrelateCircularIntoMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ref := make([]float64, 37)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	const n = 128
	step := n - len(ref) + 1
	for _, xLen := range []int{n, n - 1, 50, len(ref)} {
		x := make([]float64, xLen)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := make([]float64, step)
		c.CorrelateCircularInto(dst, x, n)
		want := circularCorrelateDirect(x, ref, n, step)
		for i := range dst {
			if math.Abs(dst[i]-want[i]) > 1e-9 {
				t.Fatalf("xLen=%d: lag %d: %v vs %v", xLen, i, dst[i], want[i])
			}
		}
	}
}

func TestCorrelateCircularIntoRejectsMisuse(t *testing.T) {
	c := NewCorrelator(make([]float64, 16))
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("non-pow2 size", func() {
		c.CorrelateCircularInto(make([]float64, 4), make([]float64, 20), 48)
	})
	expectPanic("input exceeds size", func() {
		c.CorrelateCircularInto(make([]float64, 4), make([]float64, 65), 64)
	})
	expectPanic("output exceeds alias-free step", func() {
		c.CorrelateCircularInto(make([]float64, 64), make([]float64, 64), 64)
	})
	// Empty dst is a no-op, never a panic.
	c.CorrelateCircularInto(nil, make([]float64, 64), 64)
}

// TestGetComplexPrefixClearsTail: white-box check of the pooled scratch
// contract — the region past the caller's written prefix must come back
// zeroed even when the pool hands out a dirty buffer.
func TestGetComplexPrefixClearsTail(t *testing.T) {
	p := getComplex(64)
	for i := range *p {
		(*p)[i] = complex(1, 1)
	}
	putComplex(p)
	q := getComplexPrefix(64, 16)
	for i := 16; i < 64; i++ {
		if (*q)[i] != 0 {
			t.Fatalf("tail element %d = %v, want 0", i, (*q)[i])
		}
	}
	putComplex(q)
}

// TestRealKernelsZeroAllocs extends the steady-state allocation guarantee
// to the real-FFT kernels and the overlap-save primitive.
func TestRealKernelsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	x := make([]float64, 4000)
	ref := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	for i := range ref {
		ref[i] = math.Cos(float64(i) * 0.2)
	}
	c := NewCorrelator(ref)
	dst := make([]float64, 4096)
	spec := make([]complex128, 4096/2+1)
	rp := realPlanFor(4096)
	rp.ForwardReal(spec, x)
	c.CorrelateCircularInto(dst[:4096-len(ref)+1], x, 4096)
	cases := []struct {
		name string
		fn   func()
	}{
		{"ForwardReal", func() { rp.ForwardReal(spec, x) }},
		{"InverseReal", func() { rp.InverseReal(dst[:4000], spec) }},
		{"CorrelateCircularInto", func() { c.CorrelateCircularInto(dst[:4096-len(ref)+1], x, 4096) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(50, tc.fn); allocs > 0.5 {
			t.Errorf("%s: %.2f allocs/run, want 0 in steady state", tc.name, allocs)
		}
	}
}

// rfftBenchSize is the detector-sized transform: NextPow2(44100+1764-1),
// one second of 44.1 kHz audio against the 40 ms template.
const rfftBenchSize = 65536

// BenchmarkFFTForwardComplex is the complex-path baseline for
// BenchmarkFFTForwardReal: one full-size transform of widened real audio.
func BenchmarkFFTForwardComplex(b *testing.B) {
	x := make([]float64, rfftBenchSize)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.127)
	}
	c := make([]complex128, rfftBenchSize)
	p := planFor(rfftBenchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range x {
			c[j] = complex(v, 0)
		}
		p.Forward(c)
	}
}

// BenchmarkFFTForwardReal is the packed real path on the same workload:
// one half-size complex transform plus the split pass.
func BenchmarkFFTForwardReal(b *testing.B) {
	x := make([]float64, rfftBenchSize)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.127)
	}
	rp := realPlanFor(rfftBenchSize)
	spec := make([]complex128, rp.SpectrumLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.ForwardReal(spec, x)
	}
}
