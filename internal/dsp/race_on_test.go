//go:build race

package dsp

// raceEnabled marks binaries built with the race detector, under which
// sync.Pool deliberately drops a fraction of Puts (to shake out reuse
// races), so steady-state zero-allocation assertions cannot hold.
const raceEnabled = true
