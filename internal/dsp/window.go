package dsp

import "math"

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5, 0)
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46, 0)
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 {
	return cosineWindow(n, 0.42, 0.5, 0.08)
}

func hammingWindow(n int) []float64 { return Hamming(n) }

func cosineWindow(n int, a0, a1, a2 float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = a0 - a1*math.Cos(x) + a2*math.Cos(2*x)
	}
	return w
}

// RMS returns the root-mean-square level of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Energy returns Σ x[i]².
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// DB converts a linear amplitude ratio to decibels (20·log10).
func DB(ratio float64) float64 { return 20 * math.Log10(ratio) }

// PowerDB converts a linear power ratio to decibels (10·log10).
func PowerDB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a linear amplitude ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/20) }

// SNRdB computes the signal-to-noise ratio in dB of two waveforms by their
// RMS levels. Returns +Inf if noise is silent.
func SNRdB(signal, noise []float64) float64 {
	ns := RMS(noise)
	if ns == 0 {
		return math.Inf(1)
	}
	return DB(RMS(signal) / ns)
}

// Goertzel evaluates the DFT magnitude of x at a single frequency freq for
// sampling rate fs. Cheaper than a full FFT when only a few bins matter
// (used by tests to probe filter responses on real signals).
func Goertzel(x []float64, freq, fs float64) float64 {
	w := 2 * math.Pi * freq / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Detrend subtracts the mean from x in place and returns x.
func Detrend(x []float64) []float64 {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
	return x
}

// MaxAbs returns the maximum absolute value in x.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
