package dsp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the segmented execution mode of the matched filter and the
// Hilbert envelope: instead of one session-length transform (2^19+ points
// for a 20 s recording — cache-hostile and inherently serial), the input
// is cut into fixed-size overlap-save blocks whose working set stays
// L2-resident, and the blocks fan out across a bounded worker pool. The
// block size is the one the streaming detector has always used
// (NextPow2(segFFTMul·template)), so the Correlator's cached half-spectrum
// template is shared between the batch and streaming paths — they are the
// same kernel, differing only in which lag range they fill.
//
// Accuracy contract: each block computes the exact same circular
// correlation CorrelateCircularInto has always computed; lags only ever
// come from the alias-free prefix, and input past the buffer end is
// implicit zero padding, which equals what a linear (monolithic)
// correlation produces for the trailing template-length of lags. The
// per-lag values differ from the monolithic path only by the rounding of
// a different FFT factorization — within 1e-12 of the peak magnitude,
// pinned by TestSegmentedMatchesMonolithic.

// segFFTMul sizes the fixed overlap-save transform at
// NextPow2(segFFTMul·template) samples. Four template lengths keeps the
// alias-free step (N - template + 1) at ≳3 templates per transform, so
// the per-lag FFT cost is within ~35% of the asymptotic optimum while the
// working set stays small enough for L2 (a 16 K-point block is 256 KB of
// half-spectrum scratch).
const segFFTMul = 4

// SegmentSize returns the fixed overlap-save transform length the
// segmented paths use for this template: NextPow2(segFFTMul·RefLen()).
// StreamDetector uses the same size, so both paths hit the same cached
// template spectrum.
//
//hyperearvet:zeroalloc
func (c *Correlator) SegmentSize() int {
	n := NextPow2(segFFTMul * len(c.ref))
	if n < 2 {
		n = 2
	}
	return n
}

// SegmentStep returns the alias-free lags each segmented block yields:
// SegmentSize() - RefLen() + 1.
//
//hyperearvet:zeroalloc
func (c *Correlator) SegmentStep() int { return c.SegmentSize() - len(c.ref) + 1 }

// SegScratch holds the per-worker spectrum buffers of segmented
// correlation and envelope passes. A zero value is ready to use; after
// the first call at a given size every buffer is warm and the pass
// performs no heap allocations. A SegScratch must not be shared between
// concurrent calls (workers within one call index disjoint buffers).
type SegScratch struct {
	spec [][]complex128
	// lane-fusion working set (strided batch groups): per-worker slice
	// headers for the group's inputs and outputs.
	xs [][][]float64
	ds [][][]float64
	// f holds per-worker real staging buffers (envelope Hilbert output).
	f [][]float64
}

// grow pre-sizes the per-worker slots to the pool width. The parallel
// paths call it before fanning out: growing the outer slices from
// inside concurrent buf/fbuf/lanes calls would race on the slice
// headers, whereas after grow each worker only ever touches its own
// index.
//
//hyperearvet:zeroalloc
func (s *SegScratch) grow(workers int) {
	for len(s.spec) < workers {
		s.spec = append(s.spec, nil)
	}
	for len(s.f) < workers {
		s.f = append(s.f, nil)
	}
	for len(s.xs) < workers {
		s.xs = append(s.xs, nil)
		s.ds = append(s.ds, nil)
	}
}

// buf returns worker w's complex buffer grown to length n.
//
//hyperearvet:zeroalloc
func (s *SegScratch) buf(w, n int) []complex128 {
	for len(s.spec) <= w {
		s.spec = append(s.spec, nil)
	}
	if cap(s.spec[w]) < n {
		s.spec[w] = make([]complex128, n)
	}
	return s.spec[w][:n]
}

// fbuf returns worker w's real buffer grown to length n (the envelope
// blocks' Hilbert-transform staging).
//
//hyperearvet:zeroalloc
func (s *SegScratch) fbuf(w, n int) []float64 {
	for len(s.f) <= w {
		s.f = append(s.f, nil)
	}
	if cap(s.f[w]) < n {
		s.f[w] = make([]float64, n)
	}
	return s.f[w][:n]
}

// lanes returns worker w's lane-header slices grown to length k.
//
//hyperearvet:zeroalloc
func (s *SegScratch) lanes(w, k int) (xs, ds [][]float64) {
	for len(s.xs) <= w {
		s.xs = append(s.xs, nil)
		s.ds = append(s.ds, nil)
	}
	if cap(s.xs[w]) < k {
		s.xs[w] = make([][]float64, k)
		s.ds[w] = make([][]float64, k)
	}
	return s.xs[w][:k], s.ds[w][:k]
}

// segWorkers resolves a requested worker count against the block count
// (same semantics as the core package's effectiveWorkers, which dsp
// cannot import): ≤ 0 selects GOMAXPROCS, and the pool never exceeds the
// number of blocks.
//
//hyperearvet:zeroalloc
func segWorkers(blocks, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// segParallel runs fn(worker, b) for every block b in [0, blocks) on a
// bounded worker pool, checking ctx before each block so cancellation
// lands mid-recording rather than at stage boundaries. workers == 1 (or a
// single block) runs inline with no synchronization — the allocation-free
// serial path. Panics in fn surface on the calling goroutine: workers
// recover, the first panic value wins, and it is re-raised after all
// workers drain (mirroring core's parallelForWorkers).
func segParallel(ctx context.Context, blocks, workers int, fn func(worker, b int)) error {
	if blocks <= 0 {
		return ctx.Err()
	}
	workers = segWorkers(blocks, workers)
	if workers == 1 {
		for b := 0; b < blocks; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, b)
		}
		return nil
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked {
						panicked = true
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= blocks || ctx.Err() != nil {
					return
				}
				fn(worker, b)
			}
		}(w)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return ctx.Err()
}

// CrossCorrelateSegmentedInto computes CrossCorrelate(x, ref) into dst
// like Correlator.CrossCorrelateInto, but as fixed-size overlap-save
// blocks at SegmentSize() fanned across workers (≤ 0 selects GOMAXPROCS;
// 1 runs serial and allocation-free once scratch is warm). A nil scratch
// is allowed and degrades to per-call buffers.
//
//hyperearvet:zeroalloc
func (c *Correlator) CrossCorrelateSegmentedInto(dst, x []float64, s *SegScratch, workers int) []float64 {
	dst, _ = c.CrossCorrelateSegmentedCtx(context.Background(), dst, x, s, workers)
	return dst
}

// CrossCorrelateSegmentedCtx is CrossCorrelateSegmentedInto with
// cancellation: ctx is checked before every block, and on cancellation
// the partial dst plus ctx's error are returned.
//
//hyperearvet:zeroalloc
func (c *Correlator) CrossCorrelateSegmentedCtx(ctx context.Context, dst, x []float64, s *SegScratch, workers int) ([]float64, error) {
	if len(x) == 0 || len(c.ref) == 0 {
		return dst[:0], ctx.Err()
	}
	dst = resizeF64(dst, len(x))
	return dst, c.segmentedRange(ctx, dst, x, 0, s, workers)
}

// CorrelateSegmentedRange fills the matched-filter lags [from, len(dst))
// of x into dst using the same segmented kernel: blocks start at from and
// advance by SegmentStep(), each computing CorrelateCircularInto at
// SegmentSize(). This is the streaming detector's overlap-save extension
// loop — it passes its cached-correlation high-water mark as from and the
// shared kernel fills only the missing lags. len(dst) must not exceed
// len(x).
//
//hyperearvet:zeroalloc
func (c *Correlator) CorrelateSegmentedRange(dst, x []float64, from int, s *SegScratch, workers int) {
	if len(dst) > len(x) {
		panic(fmt.Sprintf("dsp: segmented range output %d exceeds input %d", len(dst), len(x)))
	}
	if from < 0 {
		from = 0
	}
	if err := c.segmentedRange(context.Background(), dst, x, from, s, workers); err != nil {
		panic(err) // unreachable: Background never cancels
	}
}

// segmentedRange is the shared block loop: lags [from, len(dst)) of x,
// one CorrelateCircularInto per block on per-worker scratch.
//
//hyperearvet:zeroalloc
func (c *Correlator) segmentedRange(ctx context.Context, dst, x []float64, from int, s *SegScratch, workers int) error {
	if from >= len(dst) {
		return ctx.Err()
	}
	if len(c.ref) == 0 {
		return ctx.Err()
	}
	n := c.SegmentSize()
	step := n - len(c.ref) + 1
	p := realPlanFor(n)
	spec := c.spectrum(n)
	h := p.SpectrumLen()
	if s == nil {
		//hyperearvet:allow zeroalloc nil scratch is the caller opting out of reuse; the detector passes a warm SegScratch
		s = &SegScratch{}
	}
	blocks := (len(dst) - from + step - 1) / step
	if segWorkers(blocks, workers) == 1 {
		// Inline serial loop: creating the fan-out closure would heap-
		// allocate it (it escapes into goroutines on the parallel path),
		// and this path must stay allocation-free for the detector's
		// steady-state pins.
		fx := s.buf(0, h)
		for b := 0; b < blocks; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			at := from + b*step
			end := at + step
			if end > len(dst) {
				end = len(dst)
			}
			in := at + n
			if in > len(x) {
				in = len(x)
			}
			c.correlateAtWith(dst[at:end], x[at:in], p, spec, fx)
		}
		return nil
	}
	s.grow(segWorkers(blocks, workers))
	//hyperearvet:allow zeroalloc parallel fan-out heap-allocates its block closure once per call; the serial path above stays allocation-free
	return segParallel(ctx, blocks, workers, func(worker, b int) {
		at := from + b*step
		end := at + step
		if end > len(dst) {
			end = len(dst)
		}
		in := at + n
		if in > len(x) {
			in = len(x)
		}
		c.correlateAtWith(dst[at:end], x[at:in], p, spec, s.buf(worker, h))
	})
}

// CorrelateCircularBatchInto is CorrelateCircularInto over k lanes at one
// fixed transform size n, run as a single strided shared-plan pass (see
// batch.go for the layout and the bit-identity contract). Each lane obeys
// the circular constraints independently: len(xs[j]) ≤ n and len(dsts[j])
// ≤ n-RefLen()+1. The segmented lane-fusion path groups consecutive
// overlap-save blocks of one recording into such batches.
//
//hyperearvet:zeroalloc
func (c *Correlator) CorrelateCircularBatchInto(dsts, xs [][]float64, n int) {
	k := len(xs)
	if len(dsts) != k {
		panic(fmt.Sprintf("dsp: circular batch got %d destinations for %d lanes", len(dsts), k))
	}
	if k == 0 || len(c.ref) == 0 {
		return
	}
	if !IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("dsp: circular correlation size %d is not a power of two ≥ 2", n))
	}
	step := n - len(c.ref) + 1
	for j, x := range xs {
		if len(x) > n {
			panic(fmt.Sprintf("dsp: circular correlation input %d exceeds transform size %d", len(x), n))
		}
		if len(dsts[j]) > step {
			panic(fmt.Sprintf("dsp: circular correlation output %d exceeds alias-free step %d (n=%d, ref=%d)",
				len(dsts[j]), step, n, len(c.ref)))
		}
	}
	if k == 1 {
		// A batch of one gains nothing from striding; the plain path is
		// bit-identical (see batch.go) and slightly faster.
		c.correlateAt(dsts[0], xs[0], n)
		return
	}
	p := realPlanFor(n)
	spec := c.spectrum(n)
	h := p.SpectrumLen()
	buf := getComplexPrefix(h*k, h*k)
	p.forwardRealStrided(*buf, xs, k)
	for i, sv := range spec {
		row := (*buf)[i*k : i*k+k]
		for t := range row {
			row[t] *= sv
		}
	}
	p.inverseRealStrided(dsts, *buf, k)
	putComplex(buf)
}

// segmentedGroups is the lane-fused segmented correlation: consecutive
// overlap-save blocks of one recording run as strided groups of up to
// maxLanes lanes (CorrelateCircularBatchInto), groups fanned across
// workers. It reports how many strided passes ran and how many block
// lanes they carried — the BatchCorrelator's coalescing counters.
//
//hyperearvet:zeroalloc
func (c *Correlator) segmentedGroups(ctx context.Context, dst, x []float64, s *SegScratch, workers, maxLanes int) (groups, lanesRun uint64, err error) {
	if len(dst) == 0 || len(c.ref) == 0 {
		return 0, 0, ctx.Err()
	}
	n := c.SegmentSize()
	step := n - len(c.ref) + 1
	if s == nil {
		//hyperearvet:allow zeroalloc nil scratch is the caller opting out of reuse; the batcher passes a warm SegScratch
		s = &SegScratch{}
	}
	sc := s
	blocks := (len(dst) + step - 1) / step
	ngroups := (blocks + maxLanes - 1) / maxLanes
	sc.grow(segWorkers(ngroups, workers))
	//hyperearvet:allow zeroalloc parallel fan-out heap-allocates its group closure once per call, amortized across the whole recording
	err = segParallel(ctx, ngroups, workers, func(worker, g int) {
		first := g * maxLanes
		k := maxLanes
		if first+k > blocks {
			k = blocks - first
		}
		xs, ds := sc.lanes(worker, k)
		for j := 0; j < k; j++ {
			at := (first + j) * step
			end := at + step
			if end > len(dst) {
				end = len(dst)
			}
			in := at + n
			if in > len(x) {
				in = len(x)
			}
			xs[j] = x[at:in]
			ds[j] = dst[at:end]
		}
		c.CorrelateCircularBatchInto(ds, xs, n)
	})
	return uint64(ngroups), uint64(blocks), err
}

// Envelope segmentation. The analytic signal is global (the Hilbert
// kernel has infinite support), so unlike correlation the blocked
// envelope is an approximation: each block is computed from a window with
// envSegMargin samples of real context on each side, and the kernel's
// 1/(π·d) tail beyond that margin is truncated. With a 4096-sample margin
// the relative error at a block seam is ≲1e-4 of the local signal level —
// the same order as the truncation the streaming detector has always
// accepted at its buffer edges — and the detection differential tests pin
// that it never changes which peaks are found.
const (
	// envSegSize is the fixed envelope transform length. 2^15 keeps the
	// complex working set at 512 KB while amortizing the margins to 25%
	// of the block.
	envSegSize = 1 << 15
	// envSegMargin is the real-context margin on each side of a block.
	envSegMargin = 1 << 12
)

// EnvelopeSegmentedInto computes the Hilbert envelope of x into dst like
// EnvelopeInto, but blockwise on fixed envSegSize transforms fanned
// across workers. Inputs short enough for a single monolithic transform
// (≤ envSegSize) take the exact monolithic path.
//
//hyperearvet:zeroalloc
func EnvelopeSegmentedInto(dst, x []float64, s *SegScratch, workers int) []float64 {
	dst, _ = EnvelopeSegmentedCtx(context.Background(), dst, x, s, workers)
	return dst
}

// EnvelopeSegmentedCtx is EnvelopeSegmentedInto with per-block ctx
// checks, returning the partial dst plus ctx's error on cancellation.
//
//hyperearvet:zeroalloc
func EnvelopeSegmentedCtx(ctx context.Context, dst, x []float64, s *SegScratch, workers int) ([]float64, error) {
	if len(x) <= envSegSize {
		if err := ctx.Err(); err != nil {
			return dst[:0], err
		}
		return EnvelopeInto(dst, x), nil
	}
	ne := envSegSize
	outB := ne - 2*envSegMargin
	rp := realPlanFor(ne)
	h := rp.SpectrumLen()
	if s == nil {
		//hyperearvet:allow zeroalloc nil scratch is the caller opting out of reuse; steady-state callers pass a warm SegScratch
		s = &SegScratch{}
	}
	dst = resizeF64(dst, len(x))
	blocks := (len(x) + outB - 1) / outB
	if segWorkers(blocks, workers) == 1 {
		// Inline serial loop — same allocation-free rationale as
		// segmentedRange.
		c := s.buf(0, h)
		hil := s.fbuf(0, ne)
		for b := 0; b < blocks; b++ {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
			envSegBlock(dst, x, b*outB, outB, rp, c, hil)
		}
		return dst, nil
	}
	s.grow(segWorkers(blocks, workers))
	//hyperearvet:allow zeroalloc parallel fan-out heap-allocates its block closure once per call; the serial path above stays allocation-free
	err := segParallel(ctx, blocks, workers, func(worker, b int) {
		envSegBlock(dst, x, b*outB, outB, rp, s.buf(worker, h), s.fbuf(worker, ne))
	})
	return dst, err
}

// envSegBlock computes one envelope output block [start, start+outB) of x
// from a window with envSegMargin samples of real context on each side.
// Unlike EnvelopeInto's full complex analytic-signal inverse, the block
// runs entirely on the packed real path: the Hilbert transform H(x) has
// spectrum -i·sign(f)·X(f), which is Hermitian (H(x) is real), so
// InverseReal reconstructs it with half the butterflies — and the
// in-phase component is just x itself. env = sqrt(x² + H(x)²).
//
//hyperearvet:zeroalloc
func envSegBlock(dst, x []float64, start, outB int, rp *RealPlan, spec []complex128, hil []float64) {
	m := rp.Size() / 2
	stop := start + outB
	if stop > len(x) {
		stop = len(x)
	}
	lo := start - envSegMargin
	if lo < 0 {
		lo = 0
	}
	hi := stop + envSegMargin
	if hi > len(x) {
		hi = len(x)
	}
	rp.ForwardReal(spec, x[lo:hi])
	// Quadrature rotation: X[k] -> -i·X[k] on positive frequencies; DC
	// and Nyquist carry no quadrature component.
	spec[0] = 0
	spec[m] = 0
	for k := 1; k < m; k++ {
		v := spec[k]
		spec[k] = complex(imag(v), -real(v))
	}
	rp.InverseReal(hil[:stop-lo], spec)
	// sqrt(re²+im²) rather than math.Hypot: the samples are bounded by
	// the input's dynamic range (no overflow/underflow regime), and
	// Hypot's scaling branches cost ~5× per sample on this hot loop. The
	// ≤1-ulp difference is far inside the seam-truncation error bound.
	for i := start; i < stop; i++ {
		re, im := x[i], hil[i-lo]
		dst[i] = math.Sqrt(re*re + im*im)
	}
}
