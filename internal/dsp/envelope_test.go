package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnvelopeOfTone(t *testing.T) {
	// The Hilbert envelope of a unit sine is ≈1 everywhere away from the
	// edges.
	fs := 8000.0
	n := 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	env := Envelope(x)
	if len(env) != n {
		t.Fatalf("length %d, want %d", len(env), n)
	}
	for i := 200; i < n-200; i++ {
		if math.Abs(env[i]-1) > 0.02 {
			t.Fatalf("env[%d] = %v, want ≈1", i, env[i])
		}
	}
}

func TestEnvelopeOfModulatedTone(t *testing.T) {
	// AM tone: envelope must recover the modulation, not the carrier.
	fs := 8000.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		am := 1 + 0.5*math.Sin(2*math.Pi*5*ti)
		x[i] = am * math.Sin(2*math.Pi*1000*ti)
	}
	env := Envelope(x)
	for i := 400; i < n-400; i++ {
		ti := float64(i) / fs
		want := 1 + 0.5*math.Sin(2*math.Pi*5*ti)
		if math.Abs(env[i]-want) > 0.05 {
			t.Fatalf("env[%d] = %v, want %v", i, env[i], want)
		}
	}
}

func TestEnvelopeUpperBoundsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Band-limit so the analytic-signal assumption holds.
	bp, err := NewBandPass(1000, 3000, 8000, 101)
	if err != nil {
		t.Fatal(err)
	}
	y := bp.Apply(x)
	env := Envelope(y)
	for i := range y {
		if env[i] < math.Abs(y[i])-1e-6 {
			t.Fatalf("envelope below |signal| at %d: %v < %v", i, env[i], math.Abs(y[i]))
		}
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	if got := Envelope(nil); got != nil {
		t.Errorf("Envelope(nil) = %v, want nil", got)
	}
}

func TestEnvelopePeakAtBurstCenter(t *testing.T) {
	// A windowed high-frequency burst: the envelope peak sits at the
	// window center even though raw samples oscillate.
	fs := 48000.0
	n := 4096
	x := make([]float64, n)
	center := 2000
	width := 300
	for i := center - width; i < center+width; i++ {
		ti := float64(i) / fs
		w := 0.5 * (1 + math.Cos(math.Pi*float64(i-center)/float64(width)))
		x[i] = w * math.Sin(2*math.Pi*20000*ti)
	}
	env := Envelope(x)
	best := 0
	for i := range env {
		if env[i] > env[best] {
			best = i
		}
	}
	if best < center-10 || best > center+10 {
		t.Errorf("envelope peak at %d, want ≈%d", best, center)
	}
}

func BenchmarkEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Envelope(x)
	}
}
