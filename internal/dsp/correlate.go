package dsp

import "math"

// CrossCorrelate computes the valid-and-partial linear cross-correlation
// r[k] = Σ_n x[n+k]·ref[n] for lags k in [0, len(x)-1], using FFT
// convolution. It is the matched-filter operation HyperEar's detector runs
// on each recorded channel: a peak at lag k means a copy of ref starts at
// sample k of x.
//
// Lags where ref extends past the end of x use the available overlap only
// (zero padding), matching the behavior of a streaming correlator.
//
// The FFTs run over cached plans and pooled scratch (see Plan); callers on
// a hot path that can reuse an output buffer should prefer
// CrossCorrelateInto, and callers correlating many signals against one
// fixed template should hold a Correlator.
func CrossCorrelate(x, ref []float64) []float64 {
	if len(x) == 0 || len(ref) == 0 {
		return nil
	}
	return CrossCorrelateInto(make([]float64, len(x)), x, ref)
}

// Envelope returns the magnitude of the analytic signal of x (Hilbert
// envelope), computed by zeroing the negative-frequency half of the
// spectrum. Matched-filter outputs for band-pass signals oscillate at the
// carrier frequency under a smooth envelope; peak-picking the envelope
// avoids locking onto the wrong carrier cycle — essential for
// near-ultrasonic chirps, whose carrier period (≈50 µs at 20 kHz) is far
// larger than the sub-sample timing budget.
func Envelope(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	return EnvelopeInto(make([]float64, len(x)), x)
}

// GCCPhat computes the generalized cross-correlation with phase transform
// (PHAT) between x and ref: like CrossCorrelate, but the cross-spectrum is
// whitened to unit magnitude before inverting, so every frequency votes
// equally on the delay. PHAT is the classical defense against
// reverberation — multipath's spectral comb no longer shapes the peak —
// at the cost of amplifying bands that contain only noise. Bins whose
// cross-spectrum magnitude falls below a floor relative to the strongest
// bin are zeroed instead of whitened (an absolute floor would silently
// discard the whole spectrum of a quiet far-field recording). The returned
// lags match CrossCorrelate's.
func GCCPhat(x, ref []float64) []float64 {
	if len(x) == 0 || len(ref) == 0 {
		return nil
	}
	return GCCPhatInto(make([]float64, len(x)), x, ref)
}

// CrossCorrelateDirect is the O(N·M) reference implementation of
// CrossCorrelate, used in tests to validate the FFT path and in benchmarks
// as the naive baseline.
func CrossCorrelateDirect(x, ref []float64) []float64 {
	if len(x) == 0 || len(ref) == 0 {
		return nil
	}
	out := make([]float64, len(x))
	for k := range out {
		var s float64
		for n := 0; n < len(ref) && k+n < len(x); n++ {
			s += x[k+n] * ref[n]
		}
		out[k] = s
	}
	return out
}

// NormalizedPeak describes a correlation maximum.
type NormalizedPeak struct {
	// Index is the integer sample lag of the maximum.
	Index int
	// Offset is the sub-sample refinement in (-0.5, 0.5); the true peak is
	// at Index+Offset samples.
	Offset float64
	// Value is the correlation value at the (interpolated) peak.
	Value float64
	// PeakToSidelobe is the ratio of the peak to the highest correlation
	// outside an exclusion window around it; large values mean a confident
	// detection.
	PeakToSidelobe float64
}

// FindPeak locates the maximum of r in [lo, hi) (clamped to the slice),
// refines it with parabolic interpolation, and computes a peak-to-sidelobe
// ratio with an exclusion window of excl samples around the peak.
func FindPeak(r []float64, lo, hi, excl int) NormalizedPeak {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r) {
		hi = len(r)
	}
	if lo >= hi {
		return NormalizedPeak{Index: -1}
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if r[i] > r[best] {
			best = i
		}
	}
	off, val := ParabolicInterp(r, best)
	// Sidelobe level outside the exclusion window.
	sidelobe := 0.0
	for i := lo; i < hi; i++ {
		if i >= best-excl && i <= best+excl {
			continue
		}
		if a := math.Abs(r[i]); a > sidelobe {
			sidelobe = a
		}
	}
	psr := math.Inf(1)
	if sidelobe > 0 {
		psr = math.Abs(val) / sidelobe
	}
	return NormalizedPeak{Index: best, Offset: off, Value: val, PeakToSidelobe: psr}
}

// ParabolicInterp fits a parabola through r[i-1], r[i], r[i+1] and returns
// the sub-sample offset of its vertex in (-0.5, 0.5) plus the interpolated
// peak value. At the slice edges it returns offset 0 and r[i].
//
// This is the standard sub-sample TDoA refinement: with 44.1 kHz sampling
// the raw resolution is 7.78 mm of path difference; parabolic interpolation
// recovers a large fraction of the information between samples (paper §III,
// "Interpolation").
//
//hyperearvet:zeroalloc
func ParabolicInterp(r []float64, i int) (offset, value float64) {
	if i <= 0 || i >= len(r)-1 {
		if i < 0 || i >= len(r) {
			return 0, 0
		}
		return 0, r[i]
	}
	a, b, c := r[i-1], r[i], r[i+1]
	den := a - 2*b + c
	if den == 0 {
		return 0, b
	}
	off := 0.5 * (a - c) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	val := b - 0.25*(a-c)*off
	return off, val
}

// CubicInterpValue evaluates a Catmull-Rom cubic through four equally
// spaced samples y0..y3 at fractional position t in [0,1] between y1 and
// y2. Used for waveform resampling at non-integer offsets.
func CubicInterpValue(y0, y1, y2, y3, t float64) float64 {
	a := -0.5*y0 + 1.5*y1 - 1.5*y2 + 0.5*y3
	b := y0 - 2.5*y1 + 2*y2 - 0.5*y3
	c := -0.5*y0 + 0.5*y2
	return ((a*t+b)*t+c)*t + y1
}

// SampleAt returns the signal value at fractional sample position pos using
// Catmull-Rom interpolation, with clamped edge handling.
func SampleAt(x []float64, pos float64) float64 {
	if len(x) == 0 {
		return 0
	}
	i := int(math.Floor(pos))
	t := pos - float64(i)
	at := func(j int) float64 {
		if j < 0 {
			j = 0
		}
		if j >= len(x) {
			j = len(x) - 1
		}
		return x[j]
	}
	return CubicInterpValue(at(i-1), at(i), at(i+1), at(i+2), t)
}
