package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossCorrelateMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 300)
	ref := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	fftR := CrossCorrelate(x, ref)
	dirR := CrossCorrelateDirect(x, ref)
	if len(fftR) != len(dirR) {
		t.Fatalf("length mismatch %d vs %d", len(fftR), len(dirR))
	}
	for i := range fftR {
		if math.Abs(fftR[i]-dirR[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %v vs %v", i, fftR[i], dirR[i])
		}
	}
}

func TestCrossCorrelateEmpty(t *testing.T) {
	if got := CrossCorrelate(nil, []float64{1}); got != nil {
		t.Error("expected nil for empty x")
	}
	if got := CrossCorrelate([]float64{1}, nil); got != nil {
		t.Error("expected nil for empty ref")
	}
}

// TestCorrelationShiftProperty: embedding ref at offset k in noise-free
// zeros yields a correlation maximum exactly at k.
func TestCorrelationShiftProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := make([]float64, 32)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	f := func(kRaw uint16) bool {
		k := int(kRaw) % 400
		x := make([]float64, 512)
		copy(x[k:], ref)
		r := CrossCorrelate(x, ref)
		best := 0
		for i := range r {
			if r[i] > r[best] {
				best = i
			}
		}
		return best == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFindPeak(t *testing.T) {
	r := make([]float64, 100)
	r[40], r[41], r[42] = 0.5, 1.0, 0.5
	p := FindPeak(r, 0, len(r), 5)
	if p.Index != 41 {
		t.Errorf("peak index = %d, want 41", p.Index)
	}
	if math.Abs(p.Offset) > 1e-9 {
		t.Errorf("symmetric peak offset = %v, want 0", p.Offset)
	}
	if !math.IsInf(p.PeakToSidelobe, 1) {
		t.Errorf("no sidelobes: PSR = %v, want +Inf", p.PeakToSidelobe)
	}
}

func TestFindPeakWindowAndSidelobe(t *testing.T) {
	r := make([]float64, 100)
	r[10] = 5 // outside the search window
	r[50] = 2
	r[80] = 1 // sidelobe
	p := FindPeak(r, 30, 100, 3)
	if p.Index != 50 {
		t.Errorf("peak index = %d, want 50", p.Index)
	}
	if math.Abs(p.PeakToSidelobe-2) > 1e-9 {
		t.Errorf("PSR = %v, want 2", p.PeakToSidelobe)
	}
}

func TestFindPeakEmptyWindow(t *testing.T) {
	p := FindPeak([]float64{1, 2, 3}, 5, 2, 1)
	if p.Index != -1 {
		t.Errorf("empty window should return Index=-1, got %d", p.Index)
	}
}

func TestParabolicInterpExactVertex(t *testing.T) {
	// Sample a parabola with vertex at x = 10.3 and verify recovery.
	vertex := 10.3
	r := make([]float64, 21)
	for i := range r {
		d := float64(i) - vertex
		r[i] = 5 - d*d
	}
	off, val := ParabolicInterp(r, 10)
	if math.Abs(off-0.3) > 1e-9 {
		t.Errorf("offset = %v, want 0.3", off)
	}
	if math.Abs(val-5) > 1e-9 {
		t.Errorf("value = %v, want 5", val)
	}
}

func TestParabolicInterpEdges(t *testing.T) {
	r := []float64{3, 2, 1}
	if off, val := ParabolicInterp(r, 0); off != 0 || val != 3 {
		t.Errorf("edge interp = (%v,%v), want (0,3)", off, val)
	}
	if off, val := ParabolicInterp(r, -1); off != 0 || val != 0 {
		t.Errorf("out-of-range interp = (%v,%v), want (0,0)", off, val)
	}
	// Flat triple (den = 0) must not divide by zero.
	if off, val := ParabolicInterp([]float64{1, 1, 1}, 1); off != 0 || val != 1 {
		t.Errorf("flat interp = (%v,%v), want (0,1)", off, val)
	}
}

// TestParabolicInterpSubSampleProperty: for random parabola vertices within
// (-0.5, 0.5) of an integer peak, the recovered offset matches.
func TestParabolicInterpSubSampleProperty(t *testing.T) {
	f := func(raw float64) bool {
		frac := math.Mod(math.Abs(raw), 0.98) - 0.49
		if math.IsNaN(frac) {
			return true
		}
		r := make([]float64, 9)
		for i := range r {
			d := float64(i) - (4 + frac)
			r[i] = 2 - d*d
		}
		off, _ := ParabolicInterp(r, 4)
		return math.Abs(off-frac) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleAt(t *testing.T) {
	// A line is reproduced exactly by Catmull-Rom interpolation.
	x := make([]float64, 20)
	for i := range x {
		x[i] = 2*float64(i) + 1
	}
	for _, pos := range []float64{3, 3.25, 3.5, 10.9, 17.0} {
		want := 2*pos + 1
		if got := SampleAt(x, pos); math.Abs(got-want) > 1e-9 {
			t.Errorf("SampleAt(%v) = %v, want %v", pos, got, want)
		}
	}
	if got := SampleAt(nil, 1); got != 0 {
		t.Errorf("SampleAt(nil) = %v, want 0", got)
	}
}

func TestCubicInterpValueEndpoints(t *testing.T) {
	if got := CubicInterpValue(0, 1, 2, 3, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("t=0: %v, want 1", got)
	}
	if got := CubicInterpValue(0, 1, 2, 3, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("t=1: %v, want 2", got)
	}
}

func BenchmarkCrossCorrelateFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 44100) // one second of audio
	ref := make([]float64, 1764)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CrossCorrelate(x, ref)
	}
}

func BenchmarkCrossCorrelateDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 8192)
	ref := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CrossCorrelateDirect(x, ref)
	}
}
