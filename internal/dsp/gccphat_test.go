package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func chirplet(n int, fs float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / fs
		f := 2000 + 50000*t
		out[i] = math.Sin(2 * math.Pi * f * t)
	}
	return out
}

func TestGCCPhatFindsDelay(t *testing.T) {
	fs := 44100.0
	ref := chirplet(1764, fs)
	x := make([]float64, 8192)
	k := 3000
	copy(x[k:], ref)
	r := GCCPhat(x, ref)
	best := 0
	for i := range r {
		if r[i] > r[best] {
			best = i
		}
	}
	if best != k {
		t.Errorf("PHAT peak at %d, want %d", best, k)
	}
}

func TestGCCPhatSharperThanCorrelationUnderEcho(t *testing.T) {
	// Add a strong echo 30 samples after the direct path: PHAT's
	// whitening should keep the direct peak dominant and narrow.
	fs := 44100.0
	ref := chirplet(1764, fs)
	x := make([]float64, 8192)
	k := 3000
	for i, v := range ref {
		x[k+i] += v
		x[k+30+i] += 0.8 * v
	}
	phat := GCCPhat(x, ref)
	bestP := 0
	for i := range phat {
		if phat[i] > phat[bestP] {
			bestP = i
		}
	}
	if bestP != k {
		t.Errorf("PHAT peak at %d under echo, want %d", bestP, k)
	}
	// Peak sharpness: ratio of the peak to its neighbor 5 samples away
	// should be higher for PHAT than for plain correlation.
	plain := CrossCorrelate(x, ref)
	bestC := 0
	for i := range plain {
		if plain[i] > plain[bestC] {
			bestC = i
		}
	}
	phatRatio := phat[bestP] / math.Abs(phat[bestP+5])
	plainRatio := plain[bestC] / math.Abs(plain[bestC+5])
	if phatRatio < plainRatio {
		t.Errorf("PHAT should sharpen the peak: phat %.1f vs plain %.1f", phatRatio, plainRatio)
	}
}

func TestGCCPhatEmpty(t *testing.T) {
	if got := GCCPhat(nil, []float64{1}); got != nil {
		t.Error("empty x should return nil")
	}
	if got := GCCPhat([]float64{1}, nil); got != nil {
		t.Error("empty ref should return nil")
	}
}

func TestGCCPhatPeakIsBounded(t *testing.T) {
	// After whitening, the correlation values are bounded by 1 (all
	// spectral magnitudes equal 1, IFFT of a unit-modulus spectrum).
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 2048)
	ref := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	r := GCCPhat(x, ref)
	for i, v := range r {
		if math.Abs(v) > 1+1e-9 {
			t.Fatalf("PHAT[%d] = %v exceeds 1", i, v)
		}
	}
}
