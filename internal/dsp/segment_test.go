package dsp

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// maxRelDiff returns the largest |a[i]-b[i]| relative to the peak
// magnitude of b.
func maxRelDiff(a, b []float64) float64 {
	peak := 0.0
	for _, v := range b {
		if m := math.Abs(v); m > peak {
			peak = m
		}
	}
	if peak == 0 {
		peak = 1
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst / peak
}

// TestSegmentedMatchesMonolithic pins the segmented kernel's accuracy
// contract: over random input lengths (including non-pow2 tails shorter
// than one block) and worker counts, every lag agrees with the monolithic
// linear correlation within 1e-12 of the peak — the rounding difference
// of a different FFT factorization, nothing structural.
func TestSegmentedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		refLen := 16 + rng.Intn(1200)
		n := refLen + rng.Intn(60000)
		ref := make([]float64, refLen)
		x := make([]float64, n)
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := NewCorrelator(ref)
		mono := c.CrossCorrelateInto(nil, x)
		workers := 1 + rng.Intn(4)
		var s SegScratch
		seg := c.CrossCorrelateSegmentedInto(nil, x, &s, workers)
		if len(seg) != len(mono) {
			t.Fatalf("trial %d: segmented length %d, monolithic %d", trial, len(seg), len(mono))
		}
		if d := maxRelDiff(seg, mono); d > 1e-12 {
			t.Fatalf("trial %d (ref=%d n=%d workers=%d): segmented deviates %.3e from monolithic",
				trial, refLen, n, workers, d)
		}
	}
}

// TestSegmentedRangeMatchesFull pins that filling lags [from, n) over an
// already-partially-filled destination (the streaming extension pattern)
// produces the same values as a full segmented pass from zero.
func TestSegmentedRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ref := make([]float64, 300)
	x := make([]float64, 20000)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	mono := c.CrossCorrelateInto(nil, x)
	for _, from := range []int{0, 1, 100, c.SegmentStep(), c.SegmentStep() + 7, len(x) - 50} {
		dst := make([]float64, len(x))
		c.CorrelateSegmentedRange(dst, x, from, nil, 1)
		if d := maxRelDiff(dst[from:], mono[from:]); d > 1e-12 {
			t.Fatalf("from=%d: range fill deviates %.3e from monolithic", from, d)
		}
	}
}

// TestEnvelopeSegmentedMatchesMonolithic bounds the blocked envelope's
// truncation error: with a 4096-sample margin the seam error on a
// band-limited signal stays far below the 5×-floor detection threshold's
// discrimination (1e-3 relative here, vs the ≲1e-4 analysis in
// segment.go; the bound is loose to stay hardware-independent).
func TestEnvelopeSegmentedMatchesMonolithic(t *testing.T) {
	n := 3*envSegSize + 12345 // several blocks plus a ragged tail
	x := make([]float64, n)
	for i := range x {
		ti := float64(i)
		x[i] = math.Sin(0.07*ti) * (1 + 0.5*math.Sin(0.0003*ti))
	}
	mono := EnvelopeInto(nil, x)
	seg := EnvelopeSegmentedInto(nil, x, nil, 2)
	if len(seg) != len(mono) {
		t.Fatalf("length %d vs %d", len(seg), len(mono))
	}
	if d := maxRelDiff(seg, mono); d > 1e-3 {
		t.Fatalf("segmented envelope deviates %.3e from monolithic", d)
	}
}

// TestCircularBatchMatchesCircular pins the strided circular batch
// against per-lane CorrelateCircularInto: bit-identical, per the strided
// kernel contract in batch.go.
func TestCircularBatchMatchesCircular(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ref := make([]float64, 257)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	n := c.SegmentSize()
	step := c.SegmentStep()
	for _, k := range []int{1, 2, 3, 4} {
		xs := make([][]float64, k)
		dsts := make([][]float64, k)
		want := make([][]float64, k)
		for j := 0; j < k; j++ {
			ln := n - rng.Intn(n/2) // include short (zero-padded) lanes
			xs[j] = make([]float64, ln)
			for i := range xs[j] {
				xs[j][i] = rng.NormFloat64()
			}
			out := step
			if out > ln {
				out = ln
			}
			dsts[j] = make([]float64, out)
			want[j] = make([]float64, out)
			c.CorrelateCircularInto(want[j], xs[j], n)
		}
		c.CorrelateCircularBatchInto(dsts, xs, n)
		for j := 0; j < k; j++ {
			for i := range dsts[j] {
				if math.Float64bits(dsts[j][i]) != math.Float64bits(want[j][i]) {
					t.Fatalf("k=%d lane %d lag %d: batch %v != circular %v",
						k, j, i, dsts[j][i], want[j][i])
				}
			}
		}
	}
}

// countdownCtx is a deterministic cancellation source: Err() becomes
// non-nil after the given number of calls. It lets tests assert that the
// segmented loops consult ctx per block and stop mid-pass, without timing
// races.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestSegmentedCtxCancelStopsBetweenBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	ref := make([]float64, 400)
	x := make([]float64, 200000)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	blocks := (len(x) + c.SegmentStep() - 1) / c.SegmentStep()
	if blocks < 4 {
		t.Fatalf("want ≥4 blocks for a meaningful cancel point, got %d", blocks)
	}
	ctx := &countdownCtx{Context: context.Background(), after: 2}
	dst, err := c.CrossCorrelateSegmentedCtx(ctx, nil, x, nil, 1)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The serial loop checks ctx before each block: two blocks ran, the
	// rest of dst was never written.
	stop := 2 * c.SegmentStep()
	for i := stop; i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("lag %d written after cancellation (block boundary %d)", i, stop)
		}
	}
	// The envelope loop obeys the same contract.
	ectx := &countdownCtx{Context: context.Background(), after: 1}
	env := make([]float64, 3*envSegSize)
	_, err = EnvelopeSegmentedCtx(ectx, env, x[:3*envSegSize], nil, 1)
	if err != context.Canceled {
		t.Fatalf("envelope: want context.Canceled, got %v", err)
	}
}

// TestSegmentedZeroAlloc pins the warm serial path at zero heap
// allocations — the property the detector's steady-state pins inherit.
func TestSegmentedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	rng := rand.New(rand.NewSource(75))
	ref := make([]float64, 300)
	x := make([]float64, 100000)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	var s SegScratch
	dst := c.CrossCorrelateSegmentedInto(nil, x, &s, 1)
	env := EnvelopeSegmentedInto(nil, x, &s, 1)
	allocs := testing.AllocsPerRun(5, func() {
		dst = c.CrossCorrelateSegmentedInto(dst, x, &s, 1)
		env = EnvelopeSegmentedInto(env, x, &s, 1)
	})
	if allocs != 0 {
		t.Fatalf("warm segmented pass allocates %.1f times per run, want 0", allocs)
	}
}

// benchSession renders a session-length (20 s at 48 kHz) random input and
// a filtered-template-length reference — the shapes the pipeline's
// detection stage actually runs.
func benchSession() (x, ref []float64) {
	rng := rand.New(rand.NewSource(9))
	x = make([]float64, 960000)
	ref = make([]float64, 2700)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	return x, ref
}

func BenchmarkCrossCorrelateSessionMono(b *testing.B) {
	x, ref := benchSession()
	c := NewCorrelator(ref)
	dst := c.CrossCorrelateInto(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CrossCorrelateInto(dst, x)
	}
}

func BenchmarkCrossCorrelateSessionSegmented(b *testing.B) {
	x, ref := benchSession()
	c := NewCorrelator(ref)
	var s SegScratch
	dst := c.CrossCorrelateSegmentedInto(nil, x, &s, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CrossCorrelateSegmentedInto(dst, x, &s, 1)
	}
}

func BenchmarkEnvelopeSessionMono(b *testing.B) {
	x, _ := benchSession()
	dst := EnvelopeInto(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EnvelopeInto(dst, x)
	}
}

func BenchmarkEnvelopeSessionSegmented(b *testing.B) {
	x, _ := benchSession()
	var s SegScratch
	dst := EnvelopeSegmentedInto(nil, x, &s, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EnvelopeSegmentedInto(dst, x, &s, 1)
	}
}
