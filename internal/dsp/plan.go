package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// Plan holds the precomputed tables for one radix-2 FFT size: the
// bit-reversal permutation and the twiddle factors for both transform
// directions. Sharing a Plan across calls removes the per-call sin/cos
// recurrence of the naive kernel (better accuracy and speed) and, combined
// with the package's scratch pools, makes the FFT hot path allocation-free
// in steady state. Plans are immutable after construction and safe for
// concurrent use.
type Plan struct {
	n    int
	rev  []int32      // bit-reversal permutation: rev[i] = bit-reverse of i
	wFwd []complex128 // wFwd[k] = exp(-2πik/n), k in [0, n/2)
	wInv []complex128 // wInv[k] = exp(+2πik/n), k in [0, n/2)
}

// planCache maps transform size -> *Plan. Sizes repeat heavily in a
// localization service (one per template/recording length), so the cache
// stays tiny while every correlation after the first reuses its tables.
var planCache sync.Map

// PlanFor returns the shared FFT plan for size n (a power of two). The
// steady state is one lock-free cache hit; the first call per size pays
// the table build once.
//
//hyperearvet:zeroalloc
func PlanFor(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("dsp: FFT plan size %d is not a power of two", n)
	}
	//hyperearvet:allow zeroalloc sync.Map.Load boxes the int key; sizes repeat so the box is the only steady-state byte
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	//hyperearvet:allow zeroalloc first-use plan build, amortized across every later correlation at this size
	v, _ := planCache.LoadOrStore(n, newPlan(n))
	return v.(*Plan), nil
}

// planFor is PlanFor for callers that have already validated n.
//
//hyperearvet:zeroalloc
func planFor(n int) *Plan {
	p, err := PlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	if n <= 1 {
		return p
	}
	p.rev = make([]int32, n)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 1; i < n; i++ {
		p.rev[i] = p.rev[i>>1]>>1 | int32(i&1)<<(bits-1)
	}
	half := n / 2
	p.wFwd = make([]complex128, half)
	p.wInv = make([]complex128, half)
	for k := 0; k < half; k++ {
		w := cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		p.wFwd[k] = w
		p.wInv[k] = complex(real(w), -imag(w))
	}
	return p
}

// Size returns the transform length the plan was built for.
//
//hyperearvet:zeroalloc
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal
// p.Size().
//
//hyperearvet:zeroalloc
func (p *Plan) Forward(x []complex128) { p.transform(x, p.wFwd) }

// Inverse computes the in-place inverse DFT of x, including the 1/N
// scaling. len(x) must equal p.Size().
//
//hyperearvet:zeroalloc
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, p.wInv)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

// transform is the iterative radix-2 kernel over precomputed tables. The
// twiddle for butterfly k at stage size is w[k·(n/size)].
//
//hyperearvet:zeroalloc
func (p *Plan) transform(x []complex128, w []complex128) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: plan size %d applied to %d samples", n, len(x)))
	}
	if n <= 1 {
		return
	}
	for i, j := range p.rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			wi := 0
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * w[wi]
				x[k] = a + b
				x[k+half] = a - b
				wi += stride
			}
		}
	}
}

// Scratch pools. Buffers are handed out at the requested length (grown as
// needed) and zero-filled beyond the prefix the caller promises to write,
// so callers can rely on zero padding without paying to clear regions they
// overwrite anyway. Returning them keeps the steady state allocation-free.

var complexPool = sync.Pool{New: func() any { s := make([]complex128, 0, 4096); return &s }}

// getComplex transfers ownership of a pooled buffer to its caller, who
// must putComplex it back.
//
//hyperearvet:pooled
//hyperearvet:zeroalloc
func getComplex(n int) *[]complex128 { return getComplexPrefix(n, 0) }

// getComplexPrefix returns a pooled buffer of length n whose elements from
// written onward are zeroed. Callers that overwrite a known prefix [0,
// written) pass it here so only the tail is cleared; written == n skips
// clearing entirely (the real-FFT pack loops write every element).
//
//hyperearvet:pooled
//hyperearvet:zeroalloc
func getComplexPrefix(n, written int) *[]complex128 {
	p := complexPool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
		return p
	}
	*p = (*p)[:n]
	for i := written; i < n; i++ {
		(*p)[i] = 0
	}
	return p
}

//hyperearvet:zeroalloc
func putComplex(p *[]complex128) { complexPool.Put(p) }

// resizeF64 returns dst with length n, reusing its backing array when
// possible.
//
//hyperearvet:zeroalloc
func resizeF64(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// corrFFTSize returns the real-FFT size for a linear correlation or
// convolution of lx- and lr-sample operands: the result spans lx+lr-1
// samples, so that is what must fit without circular wraparound. Rounding
// up from lx+lr instead would double the transform whenever the sum lands
// on an exact power of two.
//
//hyperearvet:zeroalloc
func corrFFTSize(lx, lr int) int {
	n := NextPow2(lx + lr - 1)
	if n < 2 {
		n = 2
	}
	return n
}

// CrossCorrelateInto is CrossCorrelate writing its result into dst
// (grown/reused as needed) and returning it. With a warm plan cache and a
// caller-reused dst it performs zero heap allocations. Both operands are
// real, so the whole round trip runs on the packed half-spectrum path
// (RealPlan): one N/2 complex transform per FFT and half the scratch bytes
// of the complex path.
//
//hyperearvet:zeroalloc
func CrossCorrelateInto(dst, x, ref []float64) []float64 {
	if len(x) == 0 || len(ref) == 0 {
		return dst[:0]
	}
	n := corrFFTSize(len(x), len(ref))
	p := realPlanFor(n)
	h := p.SpectrumLen()
	fx := getComplexPrefix(h, h)
	fr := getComplexPrefix(h, h)
	p.ForwardReal(*fx, x)
	p.ForwardReal(*fr, ref)
	// Correlation: X(f)·conj(R(f)) over the half spectrum.
	for i, c := range *fr {
		(*fx)[i] *= complex(real(c), -imag(c))
	}
	dst = resizeF64(dst, len(x))
	p.InverseReal(dst, *fx)
	putComplex(fx)
	putComplex(fr)
	return dst
}

// phatFloorRel is GCCPhat's whitening floor relative to the peak
// cross-spectrum magnitude. Bins this far below the strongest bin carry no
// usable phase (they are numerically zero-padded or out-of-band) and are
// zeroed rather than amplified to unit magnitude. The floor is relative so
// that uniformly quiet recordings — a far-field beacon at 1e-6 full scale —
// whiten exactly like loud ones.
const phatFloorRel = 1e-9

// GCCPhatInto is GCCPhat writing its result into dst (grown/reused as
// needed) and returning it.
//
//hyperearvet:zeroalloc
func GCCPhatInto(dst, x, ref []float64) []float64 {
	if len(x) == 0 || len(ref) == 0 {
		return dst[:0]
	}
	n := corrFFTSize(len(x), len(ref))
	p := realPlanFor(n)
	h := p.SpectrumLen()
	fx := getComplexPrefix(h, h)
	fr := getComplexPrefix(h, h)
	p.ForwardReal(*fx, x)
	p.ForwardReal(*fr, ref)
	// The cross-spectrum of two real signals is Hermitian, so the peak
	// magnitude over the half spectrum is the peak over the full one.
	maxMag := 0.0
	for i, c := range *fr {
		cs := (*fx)[i] * complex(real(c), -imag(c))
		(*fx)[i] = cs
		if m := math.Hypot(real(cs), imag(cs)); m > maxMag {
			maxMag = m
		}
	}
	floor := phatFloorRel * maxMag
	dst = resizeF64(dst, len(x))
	if maxMag == 0 {
		for i := range dst {
			dst[i] = 0
		}
		putComplex(fx)
		putComplex(fr)
		return dst
	}
	for i, c := range *fx {
		if m := math.Hypot(real(c), imag(c)); m > floor {
			(*fx)[i] = c / complex(m, 0)
		} else {
			(*fx)[i] = 0
		}
	}
	p.InverseReal(dst, *fx)
	putComplex(fx)
	putComplex(fr)
	return dst
}

// EnvelopeInto is Envelope writing its result into dst (grown/reused as
// needed) and returning it.
//
//hyperearvet:zeroalloc
func EnvelopeInto(dst, x []float64) []float64 {
	if len(x) == 0 {
		return dst[:0]
	}
	if len(x) == 1 {
		dst = resizeF64(dst, 1)
		dst[0] = math.Abs(x[0])
		return dst
	}
	n := NextPow2(len(x))
	// The forward transform runs on the packed real path (half the work);
	// the inverse must stay full-size complex because the analytic signal
	// itself is complex. The half spectrum is computed directly into the
	// low bins of the full-size buffer, then expanded in place.
	rp := realPlanFor(n)
	h := rp.SpectrumLen()
	c := getComplexPrefix(n, n)
	rp.ForwardReal((*c)[:h], x)
	// Analytic signal: keep DC and Nyquist, double positive frequencies,
	// zero negatives.
	for i := 1; i < n/2; i++ {
		(*c)[i] *= 2
	}
	for i := n/2 + 1; i < n; i++ {
		(*c)[i] = 0
	}
	planFor(n).Inverse(*c)
	dst = resizeF64(dst, len(x))
	for i := range dst {
		dst[i] = math.Hypot(real((*c)[i]), imag((*c)[i]))
	}
	putComplex(c)
	return dst
}

// Correlator cross-correlates many signals against one fixed reference
// template, caching the template's conjugated half spectrum per transform
// size. This is the matched-filter object a detector holds: signal lengths
// repeat (stream blocks, fixed recording windows), so after warm-up each
// call runs one forward real FFT instead of two, and the cached spectrum
// occupies n/2+1 bins instead of n. Safe for concurrent use.
type Correlator struct {
	ref []float64

	mu   sync.RWMutex
	spec map[int][]complex128 // size -> conj(RFFT(zero-padded ref)), n/2+1 bins
}

// NewCorrelator builds a Correlator for the given reference template. The
// template is copied.
func NewCorrelator(ref []float64) *Correlator {
	r := make([]float64, len(ref))
	copy(r, ref)
	return &Correlator{ref: r, spec: make(map[int][]complex128)}
}

// RefLen returns the template length.
//
//hyperearvet:zeroalloc
func (c *Correlator) RefLen() int { return len(c.ref) }

// spectrum returns the cached conjugated reference half spectrum at real
// transform size n, computing it on first use.
//
//hyperearvet:zeroalloc
func (c *Correlator) spectrum(n int) []complex128 {
	c.mu.RLock()
	s, ok := c.spec[n]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.spec[n]; ok {
		return s
	}
	p := realPlanFor(n)
	//hyperearvet:allow zeroalloc cache-miss spectrum build; every later call at this size returns the cached slice
	s = make([]complex128, p.SpectrumLen())
	p.ForwardReal(s, c.ref)
	for i, v := range s {
		s[i] = complex(real(v), -imag(v))
	}
	c.spec[n] = s
	return s
}

// CrossCorrelateInto computes CrossCorrelate(x, ref) into dst using the
// cached reference spectrum.
//
//hyperearvet:zeroalloc
func (c *Correlator) CrossCorrelateInto(dst, x []float64) []float64 {
	if len(x) == 0 || len(c.ref) == 0 {
		return dst[:0]
	}
	n := corrFFTSize(len(x), len(c.ref))
	dst = resizeF64(dst, len(x))
	c.correlateAt(dst, x, n)
	return dst
}

// correlateAt runs one n-point circular matched-filter pass: the first
// len(dst) lags of IFFT(RFFT(x)·conj(RFFT(ref))) at real transform size n.
// When n ≥ len(x)+RefLen()-1 the circularity never wraps and the output is
// the linear correlation (CrossCorrelateInto); overlap-save callers pick a
// smaller fixed n and read only the alias-free prefix.
//
//hyperearvet:zeroalloc
func (c *Correlator) correlateAt(dst, x []float64, n int) {
	p := realPlanFor(n)
	spec := c.spectrum(n)
	h := p.SpectrumLen()
	fx := getComplexPrefix(h, h)
	c.correlateAtWith(dst, x, p, spec, *fx)
	putComplex(fx)
}

// correlateAtWith is correlateAt on caller-provided scratch: fx is the
// SpectrumLen()-bin working buffer and spec the template half spectrum at
// p's size, so block loops resolve the plan and spectrum once and hand
// each worker its own pinned buffer. The arithmetic is identical to
// correlateAt — the segmented path stays bit-identical to the monolithic
// one at equal transform sizes.
//
//hyperearvet:zeroalloc
func (c *Correlator) correlateAtWith(dst, x []float64, p *RealPlan, spec, fx []complex128) {
	p.ForwardReal(fx, x)
	for i, s := range spec {
		fx[i] *= s
	}
	p.InverseReal(dst, fx)
}

// CorrelateCircularInto computes dst[i] = Σ_j x[i+j]·ref[j] for lags i in
// [0, len(dst)) with one n-point circular correlation (n a power of two,
// len(x) ≤ n). The lags are alias-free only while i+RefLen()-1 stays below
// n, so len(dst) must not exceed n-RefLen()+1 — the overlap-save step. A
// streaming matched filter slides x forward by that step between calls and
// reuses one fixed transform size, so the template spectrum is computed
// exactly once for the whole stream.
//
//hyperearvet:zeroalloc
func (c *Correlator) CorrelateCircularInto(dst, x []float64, n int) {
	if len(dst) == 0 {
		return
	}
	if !IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("dsp: circular correlation size %d is not a power of two ≥ 2", n))
	}
	if len(x) > n {
		panic(fmt.Sprintf("dsp: circular correlation input %d exceeds transform size %d", len(x), n))
	}
	if step := n - len(c.ref) + 1; len(dst) > step {
		panic(fmt.Sprintf("dsp: circular correlation output %d exceeds alias-free step %d (n=%d, ref=%d)",
			len(dst), step, n, len(c.ref)))
	}
	c.correlateAt(dst, x, n)
}

// CrossCorrelate computes CrossCorrelate(x, ref) using the cached
// reference spectrum.
func (c *Correlator) CrossCorrelate(x []float64) []float64 {
	if len(x) == 0 || len(c.ref) == 0 {
		return nil
	}
	return c.CrossCorrelateInto(make([]float64, len(x)), x)
}
