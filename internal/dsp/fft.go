// Package dsp implements the signal-processing primitives HyperEar builds
// on: an iterative radix-2 FFT, FFT-based cross-correlation, windowed-sinc
// FIR filter design, moving-average smoothing, window functions, sub-sample
// peak interpolation, and assorted level/energy utilities. Everything is
// written against the Go standard library only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place forward discrete Fourier transform of x using
// an iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two; otherwise an error is returned and x is unchanged.
func FFT(x []complex128) error {
	if !IsPow2(len(x)) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", len(x))
	}
	fft(x, false)
	return nil
}

// IFFT computes the in-place inverse DFT of x, including the 1/N scaling.
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	if !IsPow2(len(x)) {
		return fmt.Errorf("dsp: IFFT length %d is not a power of two", len(x))
	}
	fft(x, true)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

// fft is the core iterative radix-2 kernel. inverse selects the conjugate
// twiddle direction; scaling is done by the caller.
func fft(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// FFTReal transforms a real signal, zero-padding to the next power of two,
// and returns the complex spectrum (length NextPow2(len(x))).
func FFTReal(x []float64) []complex128 {
	n := NextPow2(len(x))
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fft(c, false)
	return c
}

// Spectrum returns the single-sided magnitude spectrum of x and the
// corresponding frequency axis for sampling rate fs.
func Spectrum(x []float64, fs float64) (freq, mag []float64) {
	c := FFTReal(x)
	n := len(c)
	half := n/2 + 1
	freq = make([]float64, half)
	mag = make([]float64, half)
	for i := 0; i < half; i++ {
		freq[i] = float64(i) * fs / float64(n)
		mag[i] = cmplx.Abs(c[i])
	}
	return freq, mag
}
