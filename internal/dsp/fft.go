// Package dsp implements the signal-processing primitives HyperEar builds
// on: an iterative radix-2 FFT, FFT-based cross-correlation, windowed-sinc
// FIR filter design, moving-average smoothing, window functions, sub-sample
// peak interpolation, and assorted level/energy utilities. Everything is
// written against the Go standard library only.
package dsp

import (
	"fmt"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
//
//hyperearvet:zeroalloc
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
//
//hyperearvet:zeroalloc
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place forward discrete Fourier transform of x using
// an iterative radix-2 Cooley-Tukey algorithm over a cached plan (see
// PlanFor). len(x) must be a power of two; otherwise an error is returned
// and x is unchanged.
func FFT(x []complex128) error {
	p, err := PlanFor(len(x))
	if err != nil {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", len(x))
	}
	p.Forward(x)
	return nil
}

// IFFT computes the in-place inverse DFT of x, including the 1/N scaling.
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	p, err := PlanFor(len(x))
	if err != nil {
		return fmt.Errorf("dsp: IFFT length %d is not a power of two", len(x))
	}
	p.Inverse(x)
	return nil
}

// FFTReal transforms a real signal, zero-padding to the next power of two,
// and returns the complex spectrum (length NextPow2(len(x))). The transform
// runs on the packed real-input path (one N/2 complex FFT, see RealPlan);
// the negative-frequency half is filled in by Hermitian symmetry.
func FFTReal(x []float64) []complex128 {
	n := NextPow2(len(x))
	c := make([]complex128, n)
	if n < 2 {
		if len(x) == 1 {
			c[0] = complex(x[0], 0)
		}
		return c
	}
	p := realPlanFor(n)
	p.ForwardReal(c[:p.SpectrumLen()], x)
	for k := n/2 + 1; k < n; k++ {
		c[k] = complex(real(c[n-k]), -imag(c[n-k]))
	}
	return c
}

// Spectrum returns the single-sided magnitude spectrum of x and the
// corresponding frequency axis for sampling rate fs.
func Spectrum(x []float64, fs float64) (freq, mag []float64) {
	c := FFTReal(x)
	n := len(c)
	half := n/2 + 1
	freq = make([]float64, half)
	mag = make([]float64, half)
	for i := 0; i < half; i++ {
		freq[i] = float64(i) * fs / float64(n)
		mag[i] = cmplx.Abs(c[i])
	}
	return freq, mag
}
