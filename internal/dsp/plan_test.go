package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlanForRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := PlanFor(n); err == nil {
			t.Errorf("PlanFor(%d) should error", n)
		}
	}
}

func TestPlanForCachesBySize(t *testing.T) {
	a, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PlanFor(256) returned distinct plans for the same size")
	}
	if a.Size() != 256 {
		t.Errorf("Size() = %d, want 256", a.Size())
	}
}

func TestPlanRoundTripAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 1024; n <<= 1 {
		p, err := PlanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if d := cAbs(x[i] - orig[i]); d > 1e-10 {
				t.Fatalf("n=%d: round trip error %g at %d", n, d, i)
			}
		}
	}
}

// TestPlanMatchesNaiveDFT pins the plan kernel against a direct O(N²) DFT.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		want[k] = s
	}
	got := make([]complex128, n)
	copy(got, x)
	planFor(n).Forward(got)
	for k := range got {
		if d := cAbs(got[k] - want[k]); d > 1e-9 {
			t.Fatalf("bin %d: plan %v vs DFT %v", k, got[k], want[k])
		}
	}
}

func cAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// TestIntoVariantsMatchAllocating: the Into variants must agree with the
// allocating APIs and reuse a caller-provided buffer.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 777)
	ref := make([]float64, 61)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	var dst []float64
	check := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: mismatch at %d: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
	dst = CrossCorrelateInto(dst, x, ref)
	check("CrossCorrelateInto", dst, CrossCorrelate(x, ref))
	prev := &dst[0]
	dst = GCCPhatInto(dst, x, ref)
	if &dst[0] != prev {
		t.Error("GCCPhatInto reallocated a sufficient buffer")
	}
	check("GCCPhatInto", dst, GCCPhat(x, ref))
	dst = EnvelopeInto(dst, x)
	check("EnvelopeInto", dst, Envelope(x))
}

func TestIntoVariantsEmptyInputs(t *testing.T) {
	dst := make([]float64, 5)
	if got := CrossCorrelateInto(dst, nil, []float64{1}); len(got) != 0 {
		t.Errorf("CrossCorrelateInto empty x: len %d", len(got))
	}
	if got := GCCPhatInto(dst, []float64{1}, nil); len(got) != 0 {
		t.Errorf("GCCPhatInto empty ref: len %d", len(got))
	}
	if got := EnvelopeInto(dst, nil); len(got) != 0 {
		t.Errorf("EnvelopeInto empty: len %d", len(got))
	}
}

// TestCrossCorrelateMatchesDirectRandomLengths is the differential
// property test of the FFT path against the O(N·M) reference across random
// lengths, including tiny and non-power-of-two inputs.
func TestCrossCorrelateMatchesDirectRandomLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lengths := [][2]int{{1, 1}, {1, 7}, {2, 1}, {3, 5}, {17, 17}, {100, 33}}
	for trial := 0; trial < 40; trial++ {
		nx := 1 + rng.Intn(600)
		nr := 1 + rng.Intn(200)
		lengths = append(lengths, [2]int{nx, nr})
	}
	for _, l := range lengths {
		x := make([]float64, l[0])
		ref := make([]float64, l[1])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		fftR := CrossCorrelate(x, ref)
		dirR := CrossCorrelateDirect(x, ref)
		if len(fftR) != len(dirR) {
			t.Fatalf("nx=%d nr=%d: length mismatch %d vs %d", l[0], l[1], len(fftR), len(dirR))
		}
		for i := range fftR {
			if math.Abs(fftR[i]-dirR[i]) > 1e-8 {
				t.Fatalf("nx=%d nr=%d: mismatch at %d: %v vs %v", l[0], l[1], i, fftR[i], dirR[i])
			}
		}
	}
}

// TestGCCPhatQuietSignal: regression for the absolute 1e-12 whitening
// floor, which zeroed the entire spectrum of heavily attenuated far-field
// recordings. The delay estimate must be amplitude-invariant.
func TestGCCPhatQuietSignal(t *testing.T) {
	fs := 44100.0
	ref := chirplet(1764, fs)
	x := make([]float64, 8192)
	k := 3000
	copy(x[k:], ref)
	for _, amp := range []float64{1, 1e-6, 1e-8} {
		xs := make([]float64, len(x))
		rs := make([]float64, len(ref))
		for i := range xs {
			xs[i] = amp * x[i]
		}
		for i := range rs {
			rs[i] = amp * ref[i]
		}
		r := GCCPhat(xs, rs)
		best := 0
		for i := range r {
			if r[i] > r[best] {
				best = i
			}
		}
		if best != k {
			t.Errorf("amp=%g: PHAT peak at %d, want %d", amp, best, k)
		}
		if r[best] <= 0 {
			t.Errorf("amp=%g: PHAT peak value %g, want > 0", amp, r[best])
		}
	}
}

func TestGCCPhatAllZeroInput(t *testing.T) {
	r := GCCPhat(make([]float64, 256), make([]float64, 64))
	for i, v := range r {
		if v != 0 {
			t.Fatalf("all-zero input produced %v at %d", v, i)
		}
	}
}

func TestCorrelatorMatchesCrossCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := make([]float64, 97)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	if c.RefLen() != len(ref) {
		t.Fatalf("RefLen = %d, want %d", c.RefLen(), len(ref))
	}
	// Repeat lengths to exercise the cached-spectrum path.
	for _, n := range []int{500, 123, 500, 4096, 123} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := c.CrossCorrelate(x)
		want := CrossCorrelate(x, ref)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("n=%d: mismatch at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestCorrelatorCopiesTemplate(t *testing.T) {
	ref := []float64{1, 2, 3}
	c := NewCorrelator(ref)
	ref[0] = 99
	x := []float64{0, 1, 2, 3, 0, 0}
	got := c.CrossCorrelate(x)
	want := CrossCorrelate(x, []float64{1, 2, 3})
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("mutating the caller's slice changed the template")
		}
	}
}

// TestPlanPathZeroAllocs: the Into variants with a warm plan cache and a
// reused destination must not allocate (the acceptance criterion for the
// serving hot path).
func TestPlanPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	x := make([]float64, 4000)
	ref := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	for i := range ref {
		ref[i] = math.Cos(float64(i) * 0.2)
	}
	dst := make([]float64, len(x))
	c := NewCorrelator(ref)
	warm := func() {
		dst = CrossCorrelateInto(dst, x, ref)
		dst = GCCPhatInto(dst, x, ref)
		dst = EnvelopeInto(dst, x)
		dst = c.CrossCorrelateInto(dst, x)
	}
	warm()
	cases := []struct {
		name string
		fn   func()
	}{
		{"CrossCorrelateInto", func() { dst = CrossCorrelateInto(dst, x, ref) }},
		{"GCCPhatInto", func() { dst = GCCPhatInto(dst, x, ref) }},
		{"EnvelopeInto", func() { dst = EnvelopeInto(dst, x) }},
		{"Correlator.CrossCorrelateInto", func() { dst = c.CrossCorrelateInto(dst, x) }},
	}
	for _, tc := range cases {
		// A GC between runs may drain the scratch pools; allow a fraction
		// of refills but no per-call allocation.
		if allocs := testing.AllocsPerRun(50, tc.fn); allocs > 0.5 {
			t.Errorf("%s: %.2f allocs/run, want 0 in steady state", tc.name, allocs)
		}
	}
}

func BenchmarkCrossCorrelatePlanInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 44100)
	ref := make([]float64, 1764)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	dst := CrossCorrelateInto(nil, x, ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = CrossCorrelateInto(dst, x, ref)
	}
}

func BenchmarkCorrelatorCrossCorrelate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 44100)
	ref := make([]float64, 1764)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	c := NewCorrelator(ref)
	dst := c.CrossCorrelateInto(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CrossCorrelateInto(dst, x)
	}
}

func BenchmarkEnvelopeInto(b *testing.B) {
	x := make([]float64, 44100)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.3)
	}
	dst := EnvelopeInto(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EnvelopeInto(dst, x)
	}
}
