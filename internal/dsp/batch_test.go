package dsp

import (
	"math"
	"sync"
	"testing"
	"time"
)

// batchTestSignal builds a deterministic pseudo-audio lane that differs
// per seed, long enough to exercise multi-stage transforms.
func batchTestSignal(n int, seed float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		fi := float64(i)
		x[i] = math.Sin(fi*0.137+seed) + 0.25*math.Cos(fi*0.731*seed+1)
	}
	return x
}

func batchTestRef() []float64 {
	ref := make([]float64, 173)
	for i := range ref {
		ref[i] = math.Cos(float64(i) * 0.211)
	}
	return ref
}

// TestBatchCorrelateBitIdentical is the batched-vs-per-request
// differential proof: every lane of a strided batch pass must equal the
// plain CrossCorrelateInto output bit for bit (math.Float64bits
// comparison, not a tolerance). Lanes of different lengths that share a
// transform size are included deliberately.
func TestBatchCorrelateBitIdentical(t *testing.T) {
	ref := batchTestRef()
	c := NewCorrelator(ref)
	// All of these lengths round up to the same FFT size with the 173-tap
	// reference (corrFFTSize ≤ 4096).
	lengths := []int{3000, 3500, 3924, 2990, 3200, 3700, 3001}
	for k := 2; k <= len(lengths); k++ {
		xs := make([][]float64, k)
		for j := 0; j < k; j++ {
			xs[j] = batchTestSignal(lengths[j], float64(j)+1)
		}
		got := c.CrossCorrelateBatchInto(nil, xs)
		for j := 0; j < k; j++ {
			want := c.CrossCorrelateInto(nil, xs[j])
			if len(got[j]) != len(want) {
				t.Fatalf("k=%d lane %d: batch len %d, single len %d", k, j, len(got[j]), len(want))
			}
			for i := range want {
				if math.Float64bits(got[j][i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d lane %d sample %d: batch %v (bits %#x) != single %v (bits %#x)",
						k, j, i, got[j][i], math.Float64bits(got[j][i]),
						want[i], math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestBatchCorrelateReusesDst proves the destination slices are reused
// across calls (no per-call growth once warm).
func TestBatchCorrelateReusesDst(t *testing.T) {
	c := NewCorrelator(batchTestRef())
	xs := [][]float64{batchTestSignal(3000, 1), batchTestSignal(3000, 2)}
	dsts := c.CrossCorrelateBatchInto(nil, xs)
	p0, p1 := &dsts[0][0], &dsts[1][0]
	dsts = c.CrossCorrelateBatchInto(dsts, xs)
	if &dsts[0][0] != p0 || &dsts[1][0] != p1 {
		t.Fatal("batch correlate reallocated warm destinations")
	}
}

// TestBatchCorrelateMismatchedSizesPanics pins the contract that lanes
// must share a transform size.
func TestBatchCorrelateMismatchedSizesPanics(t *testing.T) {
	c := NewCorrelator(batchTestRef())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lane sizes did not panic")
		}
	}()
	c.CrossCorrelateBatchInto(nil, [][]float64{
		batchTestSignal(3000, 1),
		batchTestSignal(30000, 2),
	})
}

// TestBatchCorrelatorCoalesces drives K concurrent callers through a
// BatchCorrelator and checks (a) each caller gets the bit-identical
// unbatched result and (b) at least one multi-lane batch actually formed
// (callers overlap by construction: they all block inside the window).
func TestBatchCorrelatorCoalesces(t *testing.T) {
	c := NewCorrelator(batchTestRef())
	b := NewBatchCorrelator(c, 50*time.Millisecond, 4)
	const k = 4
	xs := make([][]float64, k)
	want := make([][]float64, k)
	for j := range xs {
		xs[j] = batchTestSignal(3000+7*j, float64(j)+1)
		want[j] = c.CrossCorrelateInto(nil, xs[j])
	}
	got := make([][]float64, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			got[j] = b.CrossCorrelateInto(nil, xs[j])
		}(j)
	}
	wg.Wait()
	for j := 0; j < k; j++ {
		if len(got[j]) != len(want[j]) {
			t.Fatalf("lane %d: got %d samples, want %d", j, len(got[j]), len(want[j]))
		}
		for i := range want[j] {
			if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
				t.Fatalf("lane %d sample %d: batched %v != unbatched %v", j, i, got[j][i], want[j][i])
			}
		}
	}
	batches, lanes := b.Batches()
	if batches == 0 || lanes != k {
		t.Fatalf("batcher ran %d batches over %d lanes, want all %d lanes counted", batches, lanes, k)
	}
	// With maxBatch == k and all callers in flight simultaneously, the
	// group should have filled at least once; a fully serial machine may
	// still split groups on timer expiry, so only assert coalescing
	// happened when parallel hardware makes it deterministic.
	if lanes > batches {
		t.Logf("coalesced %d lanes into %d batches", lanes, batches)
	}
}

// TestBatchCorrelatorSingleLaneTimesOut proves a lone caller is released
// by the window timer rather than waiting forever for companions.
func TestBatchCorrelatorSingleLaneTimesOut(t *testing.T) {
	c := NewCorrelator(batchTestRef())
	b := NewBatchCorrelator(c, time.Millisecond, 8)
	x := batchTestSignal(3000, 1)
	done := make(chan []float64, 1)
	go func() { done <- b.CrossCorrelateInto(nil, x) }()
	select {
	case got := <-done:
		want := c.CrossCorrelateInto(nil, x)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("single-lane batch request never completed")
	}
}

// TestBatchCorrelatorDisabled checks the degenerate configurations fall
// through to the synchronous unbatched path.
func TestBatchCorrelatorDisabled(t *testing.T) {
	c := NewCorrelator(batchTestRef())
	x := batchTestSignal(3000, 1)
	want := c.CrossCorrelateInto(nil, x)
	for _, b := range []*BatchCorrelator{
		NewBatchCorrelator(c, 0, 8),
		NewBatchCorrelator(c, time.Millisecond, 1),
	} {
		got := b.CrossCorrelateInto(nil, x)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("disabled batcher diverged at %d", i)
			}
		}
		if batches, _ := b.Batches(); batches != 0 {
			t.Fatalf("disabled batcher ran %d batches", batches)
		}
	}
}

// TestMovingAverageInto pins the Into variant against the allocating one
// and checks warm-destination reuse.
func TestMovingAverageInto(t *testing.T) {
	x := batchTestSignal(257, 3)
	want := MovingAverage(x, 4)
	dst := MovingAverageInto(nil, x, 4)
	for i := range want {
		if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
			t.Fatalf("sample %d: %v != %v", i, dst[i], want[i])
		}
	}
	p := &dst[0]
	dst = MovingAverageInto(dst, x, 4)
	if &dst[0] != p {
		t.Fatal("MovingAverageInto reallocated a warm destination")
	}
}

// BenchmarkCorrelatorBatch4 measures the strided batch pass against four
// sequential unbatched passes on the same lanes (CorrelatorBatchSerial4)
// — the per-transform amortization win, independent of any concurrency.
// The lanes are session-length (FFT size 2^19): that is the regime the
// server batches in, and the one where the shared twiddle/bit-reversal
// walk pays — at cache-resident sizes (≤2^16) striding roughly breaks
// even and the batcher's value is only the coalescing itself.
func BenchmarkCorrelatorBatch4(b *testing.B) {
	c := NewCorrelator(batchTestRef())
	xs := make([][]float64, 4)
	for j := range xs {
		xs[j] = batchTestSignal(400000, float64(j)+1)
	}
	dsts := c.CrossCorrelateBatchInto(nil, xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsts = c.CrossCorrelateBatchInto(dsts, xs)
	}
}

// BenchmarkCorrelatorBatchSerial4 is the unbatched baseline for
// BenchmarkCorrelatorBatch4.
func BenchmarkCorrelatorBatchSerial4(b *testing.B) {
	c := NewCorrelator(batchTestRef())
	xs := make([][]float64, 4)
	dsts := make([][]float64, 4)
	for j := range xs {
		xs[j] = batchTestSignal(400000, float64(j)+1)
		dsts[j] = c.CrossCorrelateInto(nil, xs[j])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range xs {
			dsts[j] = c.CrossCorrelateInto(dsts[j], xs[j])
		}
	}
}
