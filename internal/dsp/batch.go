package dsp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the batched execution mode of the matched filter: K
// concurrent correlations at the same transform size run as ONE strided
// shared-plan FFT pass instead of K independent passes. Element i of
// lane j lives at buf[i*k+j], so each butterfly loads its twiddle factor
// once and applies it to k adjacent complex values — the twiddle loads,
// bit-reversal index walk, and plan-table cache misses amortize across
// the batch, and the lane-major layout turns the butterflies' scattered
// element pairs into contiguous runs.
//
// Bit-identity contract: every arithmetic expression in the strided
// kernels below is copied verbatim from the non-strided Plan.transform /
// RealPlan.ForwardReal / RealPlan.InverseReal. Identical source
// expressions compile to identical instruction sequences (including any
// fused-multiply-add contraction the platform performs), so a batched
// correlation is bit-identical to the per-request path — proven by
// TestBatchCorrelateBitIdentical and relied on by the server's batched
// locate mode.

// transformStrided is Plan.transform over k interleaved transforms:
// element i of transform j at buf[i*k+j], len(buf) == n*k.
//
//hyperearvet:zeroalloc
func (p *Plan) transformStrided(buf []complex128, k int, w []complex128) {
	n := p.n
	if len(buf) != n*k {
		panic(fmt.Sprintf("dsp: strided plan size %d×%d applied to %d values", n, k, len(buf)))
	}
	if n <= 1 || k == 0 {
		return
	}
	for i, j := range p.rev {
		if int(j) > i {
			a := buf[i*k : i*k+k]
			b := buf[int(j)*k : int(j)*k+k]
			for t := range a {
				a[t], b[t] = b[t], a[t]
			}
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			wi := 0
			for q := start; q < start+half; q++ {
				ww := w[wi]
				row := buf[q*k : q*k+k]
				mate := buf[(q+half)*k : (q+half)*k+k]
				for t := range row {
					a := row[t]
					b := mate[t] * ww
					row[t] = a + b
					mate[t] = a - b
				}
				wi += stride
			}
		}
	}
}

// forwardStrided runs the forward DFT over k interleaved transforms.
//
//hyperearvet:zeroalloc
func (p *Plan) forwardStrided(buf []complex128, k int) { p.transformStrided(buf, k, p.wFwd) }

// inverseStrided runs the inverse DFT (with 1/N scaling) over k
// interleaved transforms.
//
//hyperearvet:zeroalloc
func (p *Plan) inverseStrided(buf []complex128, k int) {
	p.transformStrided(buf, k, p.wInv)
	scale := complex(1/float64(p.n), 0)
	for i := range buf {
		buf[i] *= scale
	}
}

// forwardRealStrided is RealPlan.ForwardReal over k lanes: the half
// spectrum of real signal xs[j] lands at spec[i*k+j] for bin i.
// len(spec) == SpectrumLen()*k; each len(xs[j]) may be at most Size().
//
//hyperearvet:zeroalloc
func (p *RealPlan) forwardRealStrided(spec []complex128, xs [][]float64, k int) {
	m := p.n / 2
	if len(spec) != (m+1)*k {
		panic(fmt.Sprintf("dsp: real plan size %d×%d needs %d values, got %d", p.n, k, (m+1)*k, len(spec)))
	}
	for j, x := range xs {
		if len(x) > p.n {
			panic(fmt.Sprintf("dsp: real plan size %d applied to %d samples", p.n, len(x)))
		}
		full := len(x) / 2
		for i := 0; i < full; i++ {
			spec[i*k+j] = complex(x[2*i], x[2*i+1])
		}
		tail := full
		if len(x)%2 == 1 {
			spec[full*k+j] = complex(x[len(x)-1], 0)
			tail++
		}
		for i := tail; i < m; i++ {
			spec[i*k+j] = 0
		}
	}
	p.half.forwardStrided(spec[:m*k], k)

	// Split/merge (same formulas as ForwardReal, lane-major).
	for j := 0; j < k; j++ {
		z0 := spec[j]
		spec[j] = complex(real(z0)+imag(z0), 0)
		spec[m*k+j] = complex(real(z0)-imag(z0), 0)
	}
	for q := 1; q <= m/2; q++ {
		jj := m - q
		wr, wi := real(p.w[q]), imag(p.w[q])
		for j := 0; j < k; j++ {
			a, b := spec[q*k+j], spec[jj*k+j]
			er := 0.5 * (real(a) + real(b))
			ei := 0.5 * (imag(a) - imag(b))
			or := 0.5 * (imag(a) + imag(b))
			oi := 0.5 * (real(b) - real(a))
			tr := wr*or - wi*oi
			ti := wr*oi + wi*or
			spec[q*k+j] = complex(er+tr, ei+ti)
			spec[jj*k+j] = complex(er-tr, ti-ei)
		}
	}
}

// inverseRealStrided is RealPlan.InverseReal over k lanes: lane j's
// leading len(dsts[j]) samples are reconstructed from the interleaved
// half spectra in spec. spec is used as scratch and destroyed.
//
//hyperearvet:zeroalloc
func (p *RealPlan) inverseRealStrided(dsts [][]float64, spec []complex128, k int) {
	m := p.n / 2
	if len(spec) != (m+1)*k {
		panic(fmt.Sprintf("dsp: real plan size %d×%d needs %d values, got %d", p.n, k, (m+1)*k, len(spec)))
	}
	for j := 0; j < k; j++ {
		x0, xm := real(spec[j]), real(spec[m*k+j])
		spec[j] = complex(0.5*(x0+xm), 0.5*(x0-xm))
	}
	for q := 1; q <= m/2; q++ {
		jj := m - q
		wr, wi := real(p.w[q]), imag(p.w[q])
		for j := 0; j < k; j++ {
			a, b := spec[q*k+j], spec[jj*k+j]
			er := 0.5 * (real(a) + real(b))
			ei := 0.5 * (imag(a) - imag(b))
			tr := 0.5 * (real(a) - real(b))
			ti := 0.5 * (imag(a) + imag(b))
			or := wr*tr + wi*ti
			oi := wr*ti - wi*tr
			spec[q*k+j] = complex(er-oi, ei+or)
			spec[jj*k+j] = complex(er+oi, or-ei)
		}
	}
	p.half.inverseStrided(spec[:m*k], k)
	for j, dst := range dsts {
		if len(dst) > p.n {
			panic(fmt.Sprintf("dsp: real plan size %d asked for %d samples", p.n, len(dst)))
		}
		for q := 0; 2*q < len(dst); q++ {
			dst[2*q] = real(spec[q*k+j])
			if 2*q+1 < len(dst) {
				dst[2*q+1] = imag(spec[q*k+j])
			}
		}
	}
}

// CrossCorrelateBatchInto computes CrossCorrelateInto for every lane of
// xs in one strided shared-plan pass. All lanes must resolve to the same
// transform size — corrFFTSize(len(xs[j]), RefLen()) — and be non-empty;
// the BatchCorrelator groups requests by size before calling this.
// dsts[j] is grown/reused like CrossCorrelateInto's dst (a nil dsts
// allocates the slice headers). Results are bit-identical to k
// independent CrossCorrelateInto calls.
//
//hyperearvet:zeroalloc
func (c *Correlator) CrossCorrelateBatchInto(dsts, xs [][]float64) [][]float64 {
	k := len(xs)
	if dsts == nil {
		//hyperearvet:allow zeroalloc nil dsts is the caller opting out of reuse; steady-state callers pass their own headers
		dsts = make([][]float64, k)
	}
	if len(dsts) != k {
		panic(fmt.Sprintf("dsp: batch correlate got %d destinations for %d lanes", len(dsts), k))
	}
	if k == 0 || len(c.ref) == 0 {
		for j := range dsts {
			dsts[j] = dsts[j][:0]
		}
		return dsts
	}
	if k == 1 {
		// A batch of one gains nothing from striding; the plain path is
		// bit-identical (see the file comment) and slightly faster.
		dsts[0] = c.CrossCorrelateInto(dsts[0], xs[0])
		return dsts
	}
	n := corrFFTSize(len(xs[0]), len(c.ref))
	for _, x := range xs[1:] {
		if len(x) == 0 || corrFFTSize(len(x), len(c.ref)) != n {
			panic(fmt.Sprintf("dsp: batch correlate lanes disagree on transform size (%d-sample lane vs size %d)",
				len(x), n))
		}
	}
	if len(xs[0]) == 0 {
		panic("dsp: batch correlate empty lane")
	}
	p := realPlanFor(n)
	spec := c.spectrum(n)
	h := p.SpectrumLen()
	buf := getComplexPrefix(h*k, h*k)
	p.forwardRealStrided(*buf, xs, k)
	for i, s := range spec {
		row := (*buf)[i*k : i*k+k]
		for t := range row {
			row[t] *= s
		}
	}
	for j := range dsts {
		dsts[j] = resizeF64(dsts[j], len(xs[j]))
	}
	p.inverseRealStrided(dsts, *buf, k)
	putComplex(buf)
	return dsts
}

// BatchCorrelator coalesces concurrent CrossCorrelateInto calls against
// one Correlator into strided batch passes. The first caller at a given
// transform size opens a collection window; callers arriving within the
// window (or until the group reaches maxBatch lanes) join it, and the
// whole group runs as one CrossCorrelateBatchInto. Callers block until
// their lane's result is ready, so the API stays the synchronous
// CrossCorrelateInto shape the detector already uses — only the
// execution is shared. Safe for concurrent use; a zero window or a
// maxBatch of 1 degrades to the unbatched path.
//
// The latency cost is bounded by window (a group always flushes when its
// timer fires, even with one lane), so window should be small relative
// to the transform itself — hundreds of microseconds against the tens of
// milliseconds a session-length FFT costs.
type BatchCorrelator struct {
	c        *Correlator
	window   time.Duration
	maxBatch int

	mu     sync.Mutex
	groups map[int]*corrGroup

	batches atomic.Uint64
	lanes   atomic.Uint64
}

// corrBatchReq is one waiting lane: its input, the caller's reusable
// destination, and the channel its (possibly re-grown) result returns on.
type corrBatchReq struct {
	x    []float64
	dst  []float64
	done chan []float64
}

// corrGroup is the set of lanes collected at one transform size.
type corrGroup struct {
	reqs  []*corrBatchReq
	timer *time.Timer
}

// NewBatchCorrelator wraps c with request coalescing. window is how long
// the first lane of a group waits for companions; maxBatch caps the
// group size (values below 2 disable batching).
func NewBatchCorrelator(c *Correlator, window time.Duration, maxBatch int) *BatchCorrelator {
	return &BatchCorrelator{
		c:        c,
		window:   window,
		maxBatch: maxBatch,
		groups:   make(map[int]*corrGroup),
	}
}

// Batches reports how many batch passes ran and how many lanes they
// carried (unbatched fallthrough calls are not counted). lanes/batches
// is the achieved coalescing factor.
func (b *BatchCorrelator) Batches() (batches, lanes uint64) {
	return b.batches.Load(), b.lanes.Load()
}

// CrossCorrelateInto is Correlator.CrossCorrelateInto routed through the
// batcher: the call blocks until its group executes (window expiry or a
// full batch) and returns this lane's correlation. dst is grown/reused
// exactly like the unbatched method's.
func (b *BatchCorrelator) CrossCorrelateInto(dst, x []float64) []float64 {
	if b.window <= 0 || b.maxBatch < 2 || len(x) == 0 || b.c.RefLen() == 0 {
		return b.c.CrossCorrelateInto(dst, x)
	}
	n := corrFFTSize(len(x), b.c.RefLen())
	req := &corrBatchReq{x: x, dst: dst, done: make(chan []float64, 1)}
	b.mu.Lock()
	g := b.groups[n]
	if g == nil {
		g = &corrGroup{}
		b.groups[n] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(n, g) })
	}
	g.reqs = append(g.reqs, req)
	full := len(g.reqs) >= b.maxBatch
	if full {
		delete(b.groups, n)
		g.timer.Stop()
	}
	b.mu.Unlock()
	if full {
		b.run(g)
	}
	return <-req.done
}

// CrossCorrelateSegmentedCtx is the batcher's segmented execution mode.
// The rendezvous window makes no sense per block — a lone session would
// pay it dozens of times per recording — so the lane fusion comes from
// within the call instead: the recording's own consecutive overlap-save
// blocks run as strided groups of up to maxBatch lanes, the same
// shared-plan pass the cross-call path uses (and bit-identical to the
// unfused segmented kernel, per batch.go's strided contract). Groups are
// counted in Batches() with one lane per block carried.
//
//hyperearvet:zeroalloc
func (b *BatchCorrelator) CrossCorrelateSegmentedCtx(ctx context.Context, dst, x []float64, s *SegScratch, workers int) ([]float64, error) {
	if b.maxBatch < 2 || len(x) == 0 || b.c.RefLen() == 0 {
		return b.c.CrossCorrelateSegmentedCtx(ctx, dst, x, s, workers)
	}
	dst = resizeF64(dst, len(x))
	groups, lanes, err := b.c.segmentedGroups(ctx, dst, x, s, workers, b.maxBatch)
	b.batches.Add(groups)
	b.lanes.Add(lanes)
	return dst, err
}

// flush executes a group whose window expired. The map identity check
// makes it a no-op when the group already ran because it filled up (the
// timer and the filling caller race benignly).
func (b *BatchCorrelator) flush(n int, g *corrGroup) {
	b.mu.Lock()
	if b.groups[n] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, n)
	b.mu.Unlock()
	b.run(g)
}

// run executes one collected group on the calling goroutine (the filling
// caller or the timer goroutine) and hands each lane its result.
func (b *BatchCorrelator) run(g *corrGroup) {
	k := len(g.reqs)
	xs := make([][]float64, k)
	dsts := make([][]float64, k)
	for i, r := range g.reqs {
		xs[i] = r.x
		dsts[i] = r.dst
	}
	dsts = b.c.CrossCorrelateBatchInto(dsts, xs)
	b.batches.Add(1)
	b.lanes.Add(uint64(k))
	for i, r := range g.reqs {
		r.done <- dsts[i]
	}
}
