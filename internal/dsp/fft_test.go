package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	x := make([]complex128, 6)
	if err := FFT(x); err == nil {
		t.Error("FFT should reject length 6")
	}
	if err := IFFT(x); err == nil {
		t.Error("IFFT should reject length 6")
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse DFT bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a single cosine cycle concentrates in bins 1 and N-1.
	n := 16
	y := make([]complex128, n)
	for i := range y {
		y[i] = complex(math.Cos(2*math.Pi*float64(i)/float64(n)), 0)
	}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		want := 0.0
		if i == 1 || i == n-1 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("cosine DFT bin %d = %v, want |.|=%v", i, v, want)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 256, 4096} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

// TestFFTLinearityProperty: FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(aRaw, 10)
		b := math.Mod(bRaw, 10)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		n := 64
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			y[i] = complex(rng.NormFloat64(), 0)
			mix[i] = complex(a, 0)*x[i] + complex(b, 0)*y[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := FFT(y); err != nil {
			return false
		}
		if err := FFT(mix); err != nil {
			return false
		}
		for i := range mix {
			want := complex(a, 0)*x[i] + complex(b, 0)*y[i]
			if cmplx.Abs(mix[i]-want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTRealAndSpectrum(t *testing.T) {
	fs := 1000.0
	n := 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 100 * float64(i) / fs)
	}
	freq, mag := Spectrum(x, fs)
	// Find the dominant bin: should be near 100 Hz.
	best := 0
	for i := range mag {
		if mag[i] > mag[best] {
			best = i
		}
	}
	if math.Abs(freq[best]-100) > fs/float64(len(x)) {
		t.Errorf("spectral peak at %v Hz, want ≈100", freq[best])
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	rng := rand.New(rand.NewSource(9))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}
