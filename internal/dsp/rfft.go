package dsp

import (
	"fmt"
	"math"
	"sync"
)

// RealPlan is the real-input fast path of the FFT layer: an N-point
// transform of real samples computed with a single N/2-point complex FFT
// plus an O(N) split/merge pass. Every hot DSP kernel in this package
// (matched filter, GCC-PHAT, Hilbert envelope, FFT convolution) consumes
// real audio, so packing adjacent sample pairs x[2k], x[2k+1] into one
// complex value halves both the transform work and the bytes moved
// through the butterflies.
//
// The spectrum of a real signal is Hermitian (X[N-k] = conj(X[k])), so
// only the half spectrum X[0..N/2] — SpectrumLen() == N/2+1 bins — is
// ever materialized. X[0] (DC) and X[N/2] (Nyquist) are real.
//
// Like Plan, a RealPlan is immutable after construction, cached per size,
// and safe for concurrent use.
type RealPlan struct {
	n    int   // real transform length (power of two, ≥ 2)
	half *Plan // complex plan of size n/2
	// w[k] = exp(-2πik/n) for k in [0, n/4]: the post-FFT merge twiddles.
	// Only the first quadrant is stored; the pair loop walks k and n/2-k
	// together and derives the mirrored twiddle by symmetry.
	w []complex128
}

// realPlanCache maps real transform size -> *RealPlan (same rationale as
// planCache: sizes repeat per template/recording length).
var realPlanCache sync.Map

// RealPlanFor returns the shared real-FFT plan for size n (a power of two,
// at least 2). Like PlanFor, the steady state is one cache hit.
//
//hyperearvet:zeroalloc
func RealPlanFor(n int) (*RealPlan, error) {
	if !IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("dsp: real FFT plan size %d is not a power of two ≥ 2", n)
	}
	//hyperearvet:allow zeroalloc sync.Map.Load boxes the int key; sizes repeat so the box is the only steady-state byte
	if v, ok := realPlanCache.Load(n); ok {
		return v.(*RealPlan), nil
	}
	//hyperearvet:allow zeroalloc first-use plan build, amortized across every later correlation at this size
	v, _ := realPlanCache.LoadOrStore(n, newRealPlan(n))
	return v.(*RealPlan), nil
}

// realPlanFor is RealPlanFor for callers that have already validated n.
//
//hyperearvet:zeroalloc
func realPlanFor(n int) *RealPlan {
	p, err := RealPlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

func newRealPlan(n int) *RealPlan {
	m := n / 2
	p := &RealPlan{n: n, half: planFor(m)}
	p.w = make([]complex128, m/2+1)
	for k := range p.w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// Size returns the real transform length the plan was built for.
//
//hyperearvet:zeroalloc
func (p *RealPlan) Size() int { return p.n }

// SpectrumLen returns the half-spectrum length n/2+1 (bins 0..Nyquist).
//
//hyperearvet:zeroalloc
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// ForwardReal computes the half spectrum of the real signal x into spec.
// len(spec) must be SpectrumLen(); len(x) may be at most Size() — shorter
// inputs are implicitly zero-padded, so callers never materialize a padded
// copy. spec[0] and spec[n/2] come out with zero imaginary parts.
//
//hyperearvet:zeroalloc
func (p *RealPlan) ForwardReal(spec []complex128, x []float64) {
	m := p.n / 2
	if len(spec) != m+1 {
		panic(fmt.Sprintf("dsp: real plan size %d needs a %d-bin spectrum, got %d", p.n, m+1, len(spec)))
	}
	if len(x) > p.n {
		panic(fmt.Sprintf("dsp: real plan size %d applied to %d samples", p.n, len(x)))
	}
	// Pack x[2k] + i·x[2k+1] into spec[0:m]. Full pairs first, then the
	// straddling pair and the zero tail, so every element is written and
	// the buffer needs no pre-clearing.
	full := len(x) / 2
	for k := 0; k < full; k++ {
		spec[k] = complex(x[2*k], x[2*k+1])
	}
	tail := full
	if len(x)%2 == 1 {
		spec[full] = complex(x[len(x)-1], 0)
		tail++
	}
	for k := tail; k < m; k++ {
		spec[k] = 0
	}
	p.half.Forward(spec[:m])

	// Split Z[k] = FFT(z) into the even/odd-sample spectra and merge:
	//   E[k] = (Z[k] + conj(Z[m-k]))/2
	//   O[k] = (Z[k] - conj(Z[m-k]))/(2i)
	//   X[k]   = E[k] + W^k·O[k]
	//   X[m-k] = conj(E[k] - W^k·O[k])      (W = exp(-2πi/n))
	z0 := spec[0]
	spec[0] = complex(real(z0)+imag(z0), 0)
	spec[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; k <= m/2; k++ {
		j := m - k
		a, b := spec[k], spec[j]
		er := 0.5 * (real(a) + real(b))
		ei := 0.5 * (imag(a) - imag(b))
		or := 0.5 * (imag(a) + imag(b))
		oi := 0.5 * (real(b) - real(a))
		wr, wi := real(p.w[k]), imag(p.w[k])
		tr := wr*or - wi*oi
		ti := wr*oi + wi*or
		spec[k] = complex(er+tr, ei+ti)
		spec[j] = complex(er-tr, ti-ei)
	}
}

// InverseReal reconstructs the leading len(dst) samples of the real signal
// whose half spectrum is spec (len SpectrumLen()), including the 1/N
// scaling. len(dst) may be at most Size(); correlation callers only ever
// need the first len(x) lags, so the trailing zero-padding region is never
// written. spec is used as scratch and destroyed.
//
//hyperearvet:zeroalloc
func (p *RealPlan) InverseReal(dst []float64, spec []complex128) {
	m := p.n / 2
	if len(spec) != m+1 {
		panic(fmt.Sprintf("dsp: real plan size %d needs a %d-bin spectrum, got %d", p.n, m+1, len(spec)))
	}
	if len(dst) > p.n {
		panic(fmt.Sprintf("dsp: real plan size %d asked for %d samples", p.n, len(dst)))
	}
	// Merge the half spectrum back into the packed form Z[k] = E[k]+i·O[k]
	// (the exact inverse of the ForwardReal split):
	//   E[k]     = (X[k] + conj(X[m-k]))/2
	//   W^k·O[k] = (X[k] - conj(X[m-k]))/2
	x0, xm := real(spec[0]), real(spec[m])
	spec[0] = complex(0.5*(x0+xm), 0.5*(x0-xm))
	for k := 1; k <= m/2; k++ {
		j := m - k
		a, b := spec[k], spec[j]
		er := 0.5 * (real(a) + real(b))
		ei := 0.5 * (imag(a) - imag(b))
		tr := 0.5 * (real(a) - real(b))
		ti := 0.5 * (imag(a) + imag(b))
		// O[k] = conj(W^k)·(W^k·O[k])
		wr, wi := real(p.w[k]), imag(p.w[k])
		or := wr*tr + wi*ti
		oi := wr*ti - wi*tr
		// Z[k] = E + i·O; Z[m-k] = conj(E) + i·conj(O).
		spec[k] = complex(er-oi, ei+or)
		spec[j] = complex(er+oi, or-ei)
	}
	p.half.Inverse(spec[:m])
	for k := 0; 2*k < len(dst); k++ {
		dst[2*k] = real(spec[k])
		if 2*k+1 < len(dst) {
			dst[2*k+1] = imag(spec[k])
		}
	}
}
