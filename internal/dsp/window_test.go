package dsp

import (
	"math"
	"testing"
)

func TestWindowsEndpointsAndSymmetry(t *testing.T) {
	for name, fn := range map[string]func(int) []float64{
		"hann": Hann, "hamming": Hamming, "blackman": Blackman,
	} {
		w := fn(64)
		if len(w) != 64 {
			t.Errorf("%s: length %d", name, len(w))
		}
		for i := 0; i < len(w)/2; i++ {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Errorf("%s: asymmetric at %d", name, i)
			}
		}
		// Mid value must be the window's maximum region.
		if w[32] < w[0] {
			t.Errorf("%s: not peaked at center", name)
		}
	}
	if got := Hann(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("Hann(1) = %v, want [1]", got)
	}
}

func TestHannZeroEndpoints(t *testing.T) {
	w := Hann(33)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[32]) > 1e-12 {
		t.Errorf("Hann endpoints = %v, %v, want 0", w[0], w[32])
	}
	if math.Abs(w[16]-1) > 1e-12 {
		t.Errorf("Hann center = %v, want 1", w[16])
	}
}

func TestRMSAndEnergy(t *testing.T) {
	x := []float64{3, -4}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if got := Energy(x); got != 25 {
		t.Errorf("Energy = %v, want 25", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v, want 0", got)
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(10) = %v, want 20", got)
	}
	if got := PowerDB(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("PowerDB(10) = %v, want 10", got)
	}
	if got := FromDB(20); math.Abs(got-10) > 1e-12 {
		t.Errorf("FromDB(20) = %v, want 10", got)
	}
	// Round trip.
	for _, v := range []float64{0.1, 1, 3.7, 100} {
		if got := FromDB(DB(v)); math.Abs(got-v) > 1e-9 {
			t.Errorf("FromDB(DB(%v)) = %v", v, got)
		}
	}
}

func TestSNRdB(t *testing.T) {
	sig := []float64{10, -10, 10, -10}
	noise := []float64{1, -1, 1, -1}
	if got := SNRdB(sig, noise); math.Abs(got-20) > 1e-9 {
		t.Errorf("SNRdB = %v, want 20", got)
	}
	if got := SNRdB(sig, []float64{0, 0}); !math.IsInf(got, 1) {
		t.Errorf("SNR with silent noise = %v, want +Inf", got)
	}
}

func TestGoertzelMatchesSpectrum(t *testing.T) {
	fs := 8000.0
	n := 800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	at440 := Goertzel(x, 440, fs)
	at2000 := Goertzel(x, 2000, fs)
	if at440 < 100*at2000 {
		t.Errorf("Goertzel should isolate 440 Hz: %v vs %v", at440, at2000)
	}
}

func TestMeanDetrend(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := Mean(x); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	y := Detrend([]float64{1, 2, 3})
	if math.Abs(Mean(y)) > 1e-12 {
		t.Errorf("Detrend mean = %v, want 0", Mean(y))
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{1, -5, 3}); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v, want 0", got)
	}
}
