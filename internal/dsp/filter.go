package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter defined by its tap coefficients.
type FIR struct {
	taps []float64
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 {
	out := make([]float64, len(f.taps))
	copy(out, f.taps)
	return out
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// GroupDelay returns the filter's group delay in samples ((N-1)/2 for the
// linear-phase designs produced by this package).
func (f *FIR) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// NewLowPass designs a linear-phase low-pass FIR with the windowed-sinc
// method: cutoff in Hz, fs in Hz, ntaps odd (incremented if even). A
// Hamming window shapes the sidelobes.
func NewLowPass(cutoff, fs float64, ntaps int) (*FIR, error) {
	if cutoff <= 0 || cutoff >= fs/2 {
		return nil, fmt.Errorf("dsp: low-pass cutoff %v Hz outside (0, fs/2=%v)", cutoff, fs/2)
	}
	if ntaps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", ntaps)
	}
	if ntaps%2 == 0 {
		ntaps++
	}
	taps := make([]float64, ntaps)
	fc := cutoff / fs // normalized (cycles/sample)
	mid := float64(ntaps-1) / 2
	win := hammingWindow(ntaps)
	var sum float64
	for i := range taps {
		t := float64(i) - mid
		taps[i] = 2 * fc * sinc(2*fc*t) * win[i]
		sum += taps[i]
	}
	// Normalize DC gain to exactly 1.
	for i := range taps {
		taps[i] /= sum
	}
	return &FIR{taps: taps}, nil
}

// NewHighPass designs a linear-phase high-pass FIR by spectral inversion of
// the corresponding low-pass.
func NewHighPass(cutoff, fs float64, ntaps int) (*FIR, error) {
	lp, err := NewLowPass(cutoff, fs, ntaps)
	if err != nil {
		return nil, err
	}
	taps := lp.taps
	for i := range taps {
		taps[i] = -taps[i]
	}
	taps[(len(taps)-1)/2] += 1
	return &FIR{taps: taps}, nil
}

// NewBandPass designs a linear-phase band-pass FIR passing [lo, hi] Hz,
// built as the difference of two low-pass designs. This is the filter
// HyperEar's ASP stage uses to isolate the 2-6.4 kHz chirp band from
// ambient noise (human voice < 2 kHz is rejected entirely, §VII-E).
func NewBandPass(lo, hi, fs float64, ntaps int) (*FIR, error) {
	if lo >= hi {
		return nil, fmt.Errorf("dsp: band-pass lo %v >= hi %v", lo, hi)
	}
	lpHi, err := NewLowPass(hi, fs, ntaps)
	if err != nil {
		return nil, fmt.Errorf("dsp: band-pass upper edge: %w", err)
	}
	lpLo, err := NewLowPass(lo, fs, ntaps)
	if err != nil {
		return nil, fmt.Errorf("dsp: band-pass lower edge: %w", err)
	}
	taps := make([]float64, lpHi.Len())
	for i := range taps {
		taps[i] = lpHi.taps[i] - lpLo.taps[i]
	}
	return &FIR{taps: taps}, nil
}

// Apply filters x and returns a slice of the same length. The output is
// time-aligned with the input by compensating the (N-1)/2-sample group
// delay, so correlation peak positions are preserved. For long inputs the
// convolution runs via FFT overlap; for short inputs it runs directly.
func (f *FIR) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	var full []float64
	if len(x)*len(f.taps) > 1<<18 {
		full = fftConvolve(x, f.taps)
	} else {
		full = directConvolve(x, f.taps)
	}
	delay := (len(f.taps) - 1) / 2
	out := make([]float64, len(x))
	copy(out, full[delay:delay+len(x)])
	return out
}

// Response returns the filter's magnitude response at frequency freq Hz for
// sampling rate fs, evaluated exactly from the tap coefficients.
func (f *FIR) Response(freq, fs float64) float64 {
	w := 2 * math.Pi * freq / fs
	var re, im float64
	for i, t := range f.taps {
		re += t * math.Cos(w*float64(i))
		im -= t * math.Sin(w*float64(i))
	}
	return math.Hypot(re, im)
}

func directConvolve(x, h []float64) []float64 {
	out := make([]float64, len(x)+len(h)-1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for j, hj := range h {
			out[i+j] += xi * hj
		}
	}
	return out
}

func fftConvolve(x, h []float64) []float64 {
	n := corrFFTSize(len(x), len(h))
	p := realPlanFor(n)
	hl := p.SpectrumLen()
	fx := getComplexPrefix(hl, hl)
	fh := getComplexPrefix(hl, hl)
	p.ForwardReal(*fx, x)
	p.ForwardReal(*fh, h)
	for i, v := range *fh {
		(*fx)[i] *= v
	}
	out := make([]float64, len(x)+len(h)-1)
	p.InverseReal(out, *fx)
	putComplex(fx)
	putComplex(fh)
	return out
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// MovingAverage applies the simple moving average (SMA) filter the paper
// uses for inertial noise removal (§V-A-1): y[t] is the unweighted mean of
// the previous n samples x[t-n+1..t]. The first n-1 outputs average the
// available prefix. n=4 at 100 Hz gives the paper's ≈15 Hz -3 dB cutoff.
func MovingAverage(x []float64, n int) []float64 {
	return MovingAverageInto(nil, x, n)
}

// MovingAverageInto is MovingAverage writing into dst (grown/reused as
// needed) and returning it. dst must not alias x: the filter reads
// x[i-n] after position i-n has been written.
//
//hyperearvet:zeroalloc
func MovingAverageInto(dst, x []float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	dst = resizeF64(dst, len(x))
	var sum float64
	for i, v := range x {
		sum += v
		if i >= n {
			sum -= x[i-n]
			dst[i] = sum / float64(n)
		} else {
			dst[i] = sum / float64(i+1)
		}
	}
	return dst
}
