package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestLowPassResponse(t *testing.T) {
	fs := 44100.0
	lp, err := NewLowPass(2000, fs, 201)
	if err != nil {
		t.Fatal(err)
	}
	if g := lp.Response(0, fs); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %v, want 1", g)
	}
	if g := lp.Response(500, fs); g < 0.95 {
		t.Errorf("passband gain @500 Hz = %v, want ≈1", g)
	}
	if g := lp.Response(8000, fs); g > 0.01 {
		t.Errorf("stopband gain @8 kHz = %v, want ≈0", g)
	}
}

func TestLowPassValidation(t *testing.T) {
	if _, err := NewLowPass(0, 44100, 101); err == nil {
		t.Error("cutoff 0 should error")
	}
	if _, err := NewLowPass(30000, 44100, 101); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := NewLowPass(1000, 44100, 1); err == nil {
		t.Error("too few taps should error")
	}
	// Even tap counts are rounded up to odd.
	f, err := NewLowPass(1000, 44100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len()%2 == 0 {
		t.Errorf("tap count %d should be odd", f.Len())
	}
}

func TestHighPassResponse(t *testing.T) {
	fs := 44100.0
	hp, err := NewHighPass(2000, fs, 201)
	if err != nil {
		t.Fatal(err)
	}
	if g := hp.Response(0, fs); g > 1e-6 {
		t.Errorf("DC gain = %v, want 0", g)
	}
	if g := hp.Response(8000, fs); g < 0.95 {
		t.Errorf("passband gain @8 kHz = %v, want ≈1", g)
	}
}

func TestBandPassChirpBand(t *testing.T) {
	// The ASP band-pass: 2-6.4 kHz at 44.1 kHz.
	fs := 44100.0
	bp, err := NewBandPass(2000, 6400, fs, 301)
	if err != nil {
		t.Fatal(err)
	}
	if g := bp.Response(4000, fs); g < 0.95 {
		t.Errorf("mid-band gain @4 kHz = %v, want ≈1", g)
	}
	if g := bp.Response(500, fs); g > 0.02 {
		t.Errorf("voice-band gain @500 Hz = %v, want ≈0 (voice rejection)", g)
	}
	if g := bp.Response(12000, fs); g > 0.02 {
		t.Errorf("gain @12 kHz = %v, want ≈0", g)
	}
}

func TestBandPassValidation(t *testing.T) {
	if _, err := NewBandPass(5000, 2000, 44100, 101); err == nil {
		t.Error("lo >= hi should error")
	}
	if _, err := NewBandPass(-1, 2000, 44100, 101); err == nil {
		t.Error("negative lo should error")
	}
}

func TestApplyRemovesOutOfBandTone(t *testing.T) {
	fs := 44100.0
	bp, err := NewBandPass(2000, 6400, fs, 301)
	if err != nil {
		t.Fatal(err)
	}
	n := 8000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*4000*ti) + math.Sin(2*math.Pi*300*ti)
	}
	y := bp.Apply(x)
	if len(y) != len(x) {
		t.Fatalf("output length %d, want %d", len(y), len(x))
	}
	// Probe the filtered signal (ignore edge transients).
	core := y[1000 : n-1000]
	inBand := Goertzel(core, 4000, fs)
	outBand := Goertzel(core, 300, fs)
	if outBand > 0.02*inBand {
		t.Errorf("300 Hz leakage: in-band %v, out-band %v", inBand, outBand)
	}
}

func TestApplyTimeAlignment(t *testing.T) {
	// The filtered output must stay time-aligned with the input: an
	// in-band burst at sample k must peak near k after filtering.
	fs := 44100.0
	bp, err := NewBandPass(2000, 6400, fs, 201)
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	x := make([]float64, n)
	k := 2000
	for i := 0; i < 200; i++ {
		x[k+i] = math.Sin(2 * math.Pi * 4000 * float64(i) / fs)
	}
	y := bp.Apply(x)
	// Envelope peak of |y| should fall inside the burst.
	best := 0
	for i := range y {
		if math.Abs(y[i]) > math.Abs(y[best]) {
			best = i
		}
	}
	if best < k-50 || best > k+250 {
		t.Errorf("filtered peak at %d, want within burst [%d,%d]", best, k, k+200)
	}
}

func TestApplyFFTPathMatchesDirect(t *testing.T) {
	fs := 44100.0
	bp, err := NewBandPass(2000, 6400, fs, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	direct := directConvolve(x, bp.taps)
	viaFFT := fftConvolve(x, bp.taps)
	for i := range direct {
		if math.Abs(direct[i]-viaFFT[i]) > 1e-9 {
			t.Fatalf("convolve mismatch at %d: %v vs %v", i, direct[i], viaFFT[i])
		}
	}
}

func TestApplyEmpty(t *testing.T) {
	bp, err := NewBandPass(2000, 6400, 44100, 31)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Apply(nil); got != nil {
		t.Error("Apply(nil) should be nil")
	}
}

func TestTapsReturnsCopy(t *testing.T) {
	lp, err := NewLowPass(1000, 44100, 11)
	if err != nil {
		t.Fatal(err)
	}
	taps := lp.Taps()
	taps[0] = 999
	if lp.Taps()[0] == 999 {
		t.Error("Taps() must return a copy")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := MovingAverage(x, 3)
	// Prefix averages the available samples.
	want := []float64{1, 1.5, 2, 3, 4, 5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	// n<1 behaves as identity.
	y1 := MovingAverage(x, 0)
	for i := range x {
		if y1[i] != x[i] {
			t.Errorf("MA(n=0)[%d] = %v, want %v", i, y1[i], x[i])
		}
	}
}

func TestMovingAverageSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 10000
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := MovingAverage(x, 4)
	if ry, rx := RMS(y[4:]), RMS(x[4:]); ry > 0.7*rx {
		t.Errorf("4-sample SMA should reduce white-noise RMS by ≈2x: %v vs %v", ry, rx)
	}
}

func TestGroupDelay(t *testing.T) {
	lp, err := NewLowPass(1000, 44100, 101)
	if err != nil {
		t.Fatal(err)
	}
	if gd := lp.GroupDelay(); gd != 50 {
		t.Errorf("group delay = %v, want 50", gd)
	}
}
