// Package imu simulates the low-end inertial sensors HyperEar reads: a
// 100 Hz accelerometer and gyroscope with white noise, constant bias plus
// slow random-walk, and a gravity ("gravimeter") channel the MSP stage
// uses to cancel gravity. The accelerometer reports specific force in the
// body frame — R_world→body·(a − g) — so a phone at rest reads +9.81 m/s²
// on its z axis, and double-integrating body-y acceleration during a slide
// drifts exactly the way the paper's PDE stage is designed to fix.
package imu

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/geom"
	"hyperear/internal/motion"
)

// Gravity is standard gravity in m/s².
const Gravity = 9.80665

// Config describes the sensor error model.
type Config struct {
	// SampleRate in Hz (both phones sample inertial sensors at 100 Hz).
	SampleRate float64
	// AccelNoiseStd is the accelerometer white-noise standard deviation
	// per axis in m/s².
	AccelNoiseStd float64
	// AccelBiasStd is the standard deviation of the constant per-session
	// accelerometer bias drawn per axis in m/s². This is the term the
	// PDE linear drift correction removes (paper eq. 4 and ref [16]).
	AccelBiasStd float64
	// AccelBiasWalkStd is the per-sample random-walk increment of the
	// bias in m/s² (slow drift within a session).
	AccelBiasWalkStd float64
	// GyroNoiseStd is the gyroscope white-noise std per axis in rad/s.
	GyroNoiseStd float64
	// GyroBiasStd is the constant gyro bias std per axis in rad/s.
	GyroBiasStd float64
	// GravityErrStd is the error std of the gravity estimate per axis in
	// m/s² (the gravimeter fuses slowly, so its output is smooth but
	// slightly wrong).
	GravityErrStd float64
	// Seed drives all random draws.
	Seed int64
}

// DefaultConfig returns an error model representative of the 2013-era
// consumer IMUs in the paper's phones.
func DefaultConfig() Config {
	return Config{
		SampleRate:       100,
		AccelNoiseStd:    0.03,
		AccelBiasStd:     0.05,
		AccelBiasWalkStd: 2e-4,
		GyroNoiseStd:     0.002,
		GyroBiasStd:      0.01,
		GravityErrStd:    0.01,
		Seed:             1,
	}
}

// IdealConfig returns a noiseless sensor (for tests isolating other error
// sources).
func IdealConfig() Config {
	return Config{SampleRate: 100}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SampleRate < 10 || c.SampleRate > 10000 {
		return fmt.Errorf("imu: sample rate %v Hz outside [10, 10000]", c.SampleRate)
	}
	for _, v := range []float64{c.AccelNoiseStd, c.AccelBiasStd, c.AccelBiasWalkStd,
		c.GyroNoiseStd, c.GyroBiasStd, c.GravityErrStd} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("imu: negative or NaN noise parameter")
		}
	}
	return nil
}

// Trace is a sampled IMU session.
type Trace struct {
	// Fs is the sampling rate in Hz.
	Fs float64
	// Accel is the body-frame specific force per sample (gravity
	// included, as the raw Android sensor reports it).
	Accel []geom.Vec3
	// Gyro is the body-frame angular rate per sample.
	Gyro []geom.Vec3
	// Gravity is the gravimeter output per sample: the estimated gravity
	// vector in the body frame, to be subtracted from Accel for linear
	// acceleration.
	Gravity []geom.Vec3
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Accel) }

// LinearAccel returns Accel - Gravity per sample: the gravity-compensated
// body-frame acceleration MSP starts from.
func (t *Trace) LinearAccel() []geom.Vec3 {
	out := make([]geom.Vec3, len(t.Accel))
	for i := range out {
		out[i] = t.Accel[i].Sub(t.Gravity[i])
	}
	return out
}

// Axis extracts one body axis (0=x, 1=y, 2=z) from a vector series.
func Axis(vs []geom.Vec3, axis int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		switch axis {
		case 0:
			out[i] = v.X
		case 1:
			out[i] = v.Y
		default:
			out[i] = v.Z
		}
	}
	return out
}

// Sample simulates the IMU over the whole trajectory.
func Sample(traj motion.Trajectory, cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if traj == nil {
		return nil, fmt.Errorf("imu: nil trajectory")
	}
	n := int(traj.Duration()*cfg.SampleRate) + 1
	rng := rand.New(rand.NewSource(cfg.Seed))

	gauss3 := func(std float64) geom.Vec3 {
		if std == 0 {
			return geom.Vec3{}
		}
		return geom.Vec3{
			X: std * rng.NormFloat64(),
			Y: std * rng.NormFloat64(),
			Z: std * rng.NormFloat64(),
		}
	}

	accelBias := gauss3(cfg.AccelBiasStd)
	gyroBias := gauss3(cfg.GyroBiasStd)
	gravErr := gauss3(cfg.GravityErrStd)
	gWorld := geom.Vec3{Z: -Gravity}

	tr := &Trace{
		Fs:      cfg.SampleRate,
		Accel:   make([]geom.Vec3, n),
		Gyro:    make([]geom.Vec3, n),
		Gravity: make([]geom.Vec3, n),
	}
	for k := 0; k < n; k++ {
		t := float64(k) / cfg.SampleRate
		pose := traj.Pose(t)
		toBody := pose.Orient.Conj()
		// Specific force: f = R^T (a - g).
		f := toBody.Apply(pose.Acc.Sub(gWorld))
		accelBias = accelBias.Add(gauss3(cfg.AccelBiasWalkStd))
		tr.Accel[k] = f.Add(accelBias).Add(gauss3(cfg.AccelNoiseStd))
		tr.Gyro[k] = pose.AngVel.Add(gyroBias).Add(gauss3(cfg.GyroNoiseStd))
		// Gravimeter: true gravity direction in body frame plus a smooth
		// per-session error.
		tr.Gravity[k] = toBody.Apply(gWorld.Scale(-1)).Add(gravErr)
	}
	return tr, nil
}

// IntegrateYaw integrates the z-axis gyro to a yaw angle series (radians),
// starting from yaw0 — how the SDF stage tracks how far the user has
// rolled the phone, and how PDE gates slides on z-rotation.
func IntegrateYaw(tr *Trace, yaw0 float64) []float64 {
	out := make([]float64, tr.Len())
	yaw := yaw0
	dt := 1 / tr.Fs
	for i := range out {
		out[i] = yaw
		yaw += tr.Gyro[i].Z * dt
	}
	return out
}
