package imu

import (
	"math"
	"testing"

	"hyperear/internal/geom"
	"hyperear/internal/motion"
)

func hold(dur float64) motion.Trajectory {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Hold(dur).Build()
	if err != nil {
		panic(err)
	}
	return traj
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	c := DefaultConfig()
	c.SampleRate = 1
	if err := c.Validate(); err == nil {
		t.Error("tiny sample rate should error")
	}
	c = DefaultConfig()
	c.AccelNoiseStd = -1
	if err := c.Validate(); err == nil {
		t.Error("negative noise should error")
	}
}

func TestSampleNilTrajectory(t *testing.T) {
	if _, err := Sample(nil, IdealConfig()); err == nil {
		t.Error("nil trajectory should error")
	}
}

func TestRestingPhoneReadsGravity(t *testing.T) {
	tr, err := Sample(hold(1), IdealConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 101 {
		t.Errorf("samples = %d, want 101", tr.Len())
	}
	for i, a := range tr.Accel {
		if math.Abs(a.Z-Gravity) > 1e-9 || math.Abs(a.X) > 1e-9 || math.Abs(a.Y) > 1e-9 {
			t.Fatalf("sample %d: resting accel = %v, want (0,0,%v)", i, a, Gravity)
		}
	}
	// Linear acceleration must be zero after gravity removal.
	for i, la := range tr.LinearAccel() {
		if la.Norm() > 1e-9 {
			t.Fatalf("sample %d: linear accel = %v, want 0", i, la)
		}
	}
}

func TestSlideAccelerationProfile(t *testing.T) {
	// Slide 0.5 m along body y in 1 s: the ideal accelerometer's y axis
	// must integrate back to 0.5 m.
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Slide(0.5, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(traj, IdealConfig())
	if err != nil {
		t.Fatal(err)
	}
	ay := Axis(tr.LinearAccel(), 1)
	dt := 1 / tr.Fs
	var v, d float64
	for _, a := range ay {
		v += a * dt
		d += v * dt
	}
	if math.Abs(d-0.5) > 0.01 {
		t.Errorf("double-integrated displacement = %v, want 0.5", d)
	}
	if math.Abs(v) > 0.01 {
		t.Errorf("final velocity = %v, want ≈0", v)
	}
}

func TestConstantBiasProducesLinearVelocityDrift(t *testing.T) {
	// With a pure constant bias, integrated velocity error grows linearly
	// in time — the premise of the paper's eq. (4) correction.
	cfg := IdealConfig()
	cfg.AccelBiasStd = 0.05
	cfg.Seed = 5
	tr, err := Sample(hold(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ay := Axis(tr.LinearAccel(), 1)
	dt := 1 / tr.Fs
	v := make([]float64, len(ay))
	acc := 0.0
	for i, a := range ay {
		acc += a * dt
		v[i] = acc
	}
	// Check linearity: v at t and 2t should satisfy v(2t) ≈ 2·v(t).
	q := len(v) / 2
	if v[len(v)-1] == 0 {
		t.Fatal("bias draw produced exactly zero — test setup broken")
	}
	ratio := v[len(v)-1] / v[q]
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("drift ratio v(T)/v(T/2) = %v, want ≈2 (linear drift)", ratio)
	}
}

func TestYawIntegration(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).RotateTo(math.Pi/2, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(traj, IdealConfig())
	if err != nil {
		t.Fatal(err)
	}
	yaw := IntegrateYaw(tr, 0)
	if got := yaw[len(yaw)-1]; math.Abs(got-math.Pi/2) > 0.02 {
		t.Errorf("integrated yaw = %v, want π/2", got)
	}
}

func TestGravimeterTracksTilt(t *testing.T) {
	// With the phone yawed 90°, gravity is still along body z (flat
	// phone), so the gravimeter stays (0,0,g).
	traj, err := motion.NewBuilder(geom.Vec3{}, math.Pi/2).Hold(0.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Sample(traj, IdealConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gravity[10]
	if math.Abs(g.Z-Gravity) > 1e-9 {
		t.Errorf("gravimeter = %v, want z=%v", g, Gravity)
	}
}

func TestNoiseStatistics(t *testing.T) {
	cfg := IdealConfig()
	cfg.AccelNoiseStd = 0.03
	cfg.Seed = 6
	tr, err := Sample(hold(30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ay := Axis(tr.LinearAccel(), 1)
	var s float64
	for _, v := range ay {
		s += v * v
	}
	std := math.Sqrt(s / float64(len(ay)))
	if math.Abs(std-0.03) > 0.005 {
		t.Errorf("accel noise std = %v, want 0.03", std)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	a, err := Sample(hold(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(hold(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Accel {
		if a.Accel[i] != b.Accel[i] || a.Gyro[i] != b.Gyro[i] {
			t.Fatal("IMU sampling must be deterministic per seed")
		}
	}
}

func TestAxisExtraction(t *testing.T) {
	vs := []geom.Vec3{{X: 1, Y: 2, Z: 3}, {X: 4, Y: 5, Z: 6}}
	if got := Axis(vs, 0); got[0] != 1 || got[1] != 4 {
		t.Errorf("Axis x = %v", got)
	}
	if got := Axis(vs, 1); got[0] != 2 || got[1] != 5 {
		t.Errorf("Axis y = %v", got)
	}
	if got := Axis(vs, 2); got[0] != 3 || got[1] != 6 {
		t.Errorf("Axis z = %v", got)
	}
}
