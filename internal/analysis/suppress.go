package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one parsed "//hyperearvet:allow <rule> <justification>"
// comment. It silences findings of the named rule on its own line or on
// the line directly below it (so it can ride at the end of the offending
// line or sit on its own line above it).
type suppression struct {
	pos           token.Pos
	file          string
	line          int
	rule          string
	justification string
	used          bool
}

// collectSuppressions parses every allow directive in the files.
// Malformed directives (no rule, or no justification) are reported as
// findings themselves via report, so a suppression can never silently
// rot into a no-op.
func collectSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*suppression {
	var out []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//"+directivePrefix+"allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rule, just, _ := strings.Cut(strings.TrimSpace(rest), " ")
				just = strings.TrimSpace(just)
				if rule == "" || just == "" {
					report(Diagnostic{
						Pos:     c.Pos(),
						Rule:    "suppress",
						Message: "malformed suppression: want //hyperearvet:allow <rule> <justification>",
					})
					continue
				}
				out = append(out, &suppression{
					pos:           c.Pos(),
					file:          pos.Filename,
					line:          pos.Line,
					rule:          rule,
					justification: just,
				})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by one of the suppressions,
// marking the matching suppression used.
func suppressed(fset *token.FileSet, d Diagnostic, sups []*suppression) bool {
	pos := fset.Position(d.Pos)
	for _, s := range sups {
		if s.rule != d.Rule || s.file != pos.Filename {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			s.used = true
			return true
		}
	}
	return false
}
