package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-suppression diagnostic with its resolved position.
type Finding struct {
	Position token.Position
	Rule     string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Rule, f.Message)
}

// Run applies every analyzer to every package, filters the diagnostics
// through the packages' //hyperearvet:allow suppressions, and reports
// suppressions that matched nothing (rule "suppress") so stale
// annotations cannot accumulate. Unused-suppression checking only
// considers rules that actually ran, letting a single analyzer be
// exercised in isolation (analysistest) without noise.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunWithFacts(fset, pkgs, analyzers, nil)
}

// RunWithFacts is Run with an explicit fact store, for drivers that
// pre-seed cross-package facts (the go vet protocol decodes dependency
// .vetx payloads into the store before analyzing). Runs in two phases:
// every loaded package's Facts hooks first — so `go list -deps` order,
// which interleaves test variants and their dependents unpredictably,
// can never hide an annotation — then every analyzer's Run.
func RunWithFacts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, store FactStore) ([]Finding, error) {
	if store == nil {
		store = FactStore{}
	}
	CollectFacts(fset, pkgs, analyzers, store)

	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		report := func(d Diagnostic) { diags = append(diags, d) }
		sups := collectSuppressions(fset, pkg.Files, report)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				report:    report,
				facts:     store,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range diags {
			if suppressed(fset, d, sups) {
				continue
			}
			findings = append(findings, Finding{Position: fset.Position(d.Pos), Rule: d.Rule, Message: d.Message})
		}
		for _, s := range sups {
			if !s.used && ran[s.rule] {
				findings = append(findings, Finding{
					Position: fset.Position(s.pos),
					Rule:     "suppress",
					Message:  fmt.Sprintf("unused suppression for rule %s", s.rule),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
	// A package and its external _test package share suppression
	// scanning per package, but the same non-test file is never loaded
	// twice (test variants replace plain packages), so duplicates only
	// arise from analyzer bugs; drop them defensively all the same.
	dedup := findings[:0]
	var prev Finding
	for i, f := range findings {
		if i > 0 && f == prev {
			continue
		}
		dedup = append(dedup, f)
		prev = f
	}
	return dedup, nil
}
