package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypeErrors are non-fatal problems from go/types. The tree is
	// expected to compile, so these normally indicate a loader gap;
	// the driver surfaces them as warnings rather than findings.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	Module     *struct{ Path string }
}

// Load enumerates, parses and type-checks the packages matched by
// patterns (e.g. "./...") inside moduleDir. It shells out to
// `go list -export -deps -json`, which both resolves build constraints
// exactly as the toolchain does and compiles fresh export data for
// every dependency, letting go/importer recover full type information
// without a network or golang.org/x/tools.
//
// With includeTests set, test variants replace their plain package (the
// variant's file list is a superset) and external _test packages are
// loaded as their own entries, so *_test.go files are linted too.
func Load(fset *token.FileSet, moduleDir string, includeTests bool, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Name,Export,GoFiles,ImportMap,Standard,ForTest,Module")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var module []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module == nil || strings.HasSuffix(p.ImportPath, ".test") {
			continue // stdlib dep or synthesized test main
		}
		q := p
		module = append(module, &q)
	}

	// A test variant ("pkg [pkg.test]") compiles the plain package's
	// files plus its _test.go files; analyzing both would duplicate
	// every finding in the shared files, so the variant wins.
	hasVariant := map[string]bool{}
	for _, p := range module {
		if p.ForTest != "" && basePath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, p := range module {
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue
		}
		pkg, err := check(fset, p, exports)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckVetPackage type-checks one package from the file lists a go vet
// driver config provides (absolute GoFiles, ImportMap for test-variant
// redirection, PackageFile mapping resolved import paths to export
// data). It is the loading half of the -vettool protocol; Load is the
// standalone equivalent.
func CheckVetPackage(fset *token.FileSet, importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	p := &listPkg{
		ImportPath: importPath,
		GoFiles:    goFiles,
		ImportMap:  importMap,
	}
	pkg, err := check(fset, p, packageFile)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, pkg.TypeErrors[0]
	}
	return pkg, nil
}

// basePath strips go list's " [pkg.test]" display suffix.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// check parses and type-checks one package against the export data of
// its dependencies.
func check(fset *token.FileSet, p *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// The lookup func sees import paths as written in source; the
	// package's ImportMap redirects them to test variants where the
	// build graph demands it (an external _test package importing the
	// package under test gets its test variant's export data).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "gc", lookup),
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
		FakeImportC: true,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, _ := conf.Check(basePath(p.ImportPath), fset, files, info)
	return &Package{
		PkgPath:    basePath(p.ImportPath),
		Dir:        p.Dir,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}, nil
}
