// Package a is outside the deterministic scope: global rand is allowed
// here and detrand must stay silent.
package a

import "math/rand"

func draw() float64 { return rand.Float64() }
