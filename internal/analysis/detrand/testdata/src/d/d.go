// Package d opts into the determinism contract by directive rather
// than by import path.
//
//hyperearvet:deterministic
package d

import "math/rand"

func draw() float64 {
	return rand.Float64() // want `rand.Float64 uses the global math/rand source`
}
