// Package sim stands in for the real simulation package: its import
// path suffix puts it inside detrand's deterministic scope.
package sim

import (
	"math/rand"
	"time"
)

// Scenario carries the seed every random draw must derive from.
type Scenario struct{ Seed int64 }

// ok: the approved pattern — a generator built from the scenario seed.
func seeded(sc Scenario) *rand.Rand {
	return rand.New(rand.NewSource(sc.Seed))
}

// ok: drawing from an injected generator.
func jitter(rng *rand.Rand) float64 {
	return rng.Float64()
}

func globalDraw() float64 {
	return rand.Float64() // want `rand.Float64 uses the global math/rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global math/rand source`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time/process-seeded randomness breaks scenario replay`
}

// suppressed: a documented escape hatch.
func suppressedDraw() float64 {
	//hyperearvet:allow detrand load-shedding jitter outside the replayed physics; never feeds the scenario
	return rand.Float64()
}
