package detrand_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/detrand"
)

func TestDetrandScoped(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "hyperear/internal/sim")
}

func TestDetrandOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "a")
}

func TestDetrandDirectiveOptIn(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "d")
}
