// Package detrand defines an analyzer keeping the simulation packages
// deterministic: experiments must replay bit-for-bit from a scenario
// seed, so internal/sim, internal/room, internal/imu and internal/mic
// (plus any package opting in with a //hyperearvet:deterministic
// comment) may only draw randomness from an injected *rand.Rand.
//
// Inside the deterministic scope the analyzer flags:
//
//   - math/rand (and math/rand/v2) package-level convenience functions
//     (rand.Float64, rand.Intn, rand.Shuffle, ...): they read the
//     global, process-wide source;
//   - rand.Seed: mutates global state;
//   - crypto/rand: never deterministic;
//   - time-seeded sources: time.Now / os.Getpid inside rand.New or
//     rand.NewSource arguments.
//
// Constructing a seeded generator (rand.New(rand.NewSource(seed))) is
// the approved pattern and passes.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "simulation packages draw randomness only from injected, seed-constructed sources",
	Run:  run,
}

// scopeSuffixes are the import-path suffixes of the packages under the
// determinism contract.
var scopeSuffixes = []string{
	"internal/sim",
	"internal/room",
	"internal/imu",
	"internal/mic",
}

// globalFns are math/rand package-level functions that read or mutate
// the shared global source. New/NewSource/NewZipf construct explicit
// sources and are allowed.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		// Resolve which local names refer to the rand packages in this
		// file (imports may be renamed).
		randNames, cryptoPos := randImports(f)
		if cryptoPos != token.NoPos {
			pass.Reportf(cryptoPos, "crypto/rand in a deterministic simulation package; inject a seeded *rand.Rand instead")
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || !randNames[pkgID.Name] {
				return true
			}
			// Confirm the identifier really is the package import, not
			// a shadowing local (e.g. a *rand.Rand named "rand").
			if _, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !isPkg {
				return true
			}
			name := sel.Sel.Name
			if globalFns[name] {
				pass.Reportf(call.Pos(), "%s.%s uses the global math/rand source; inject a seeded *rand.Rand for reproducibility", pkgID.Name, name)
				return true
			}
			if name == "New" || name == "NewSource" || name == "NewPCG" || name == "NewChaCha8" {
				for _, arg := range call.Args {
					if pos := nondeterministicSeed(arg); pos != token.NoPos {
						pass.Reportf(pos, "time/process-seeded randomness breaks scenario replay; derive the seed from the scenario instead")
					}
				}
			}
			return true
		})
	}
	return nil
}

func inScope(pass *analysis.Pass) bool {
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(pass.PkgPath, s) || strings.HasSuffix(pass.PkgPath, s+"_test") {
			return true
		}
	}
	return pass.PkgHasDirective("deterministic")
}

// randImports returns the local names bound to math/rand and
// math/rand/v2 in the file, and the position of a crypto/rand import
// if present (token.NoPos otherwise).
func randImports(f *ast.File) (names map[string]bool, cryptoPos token.Pos) {
	names = map[string]bool{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch path {
		case "math/rand", "math/rand/v2":
			if local == "" {
				local = "rand"
			}
			names[local] = true
		case "crypto/rand":
			cryptoPos = imp.Path.Pos()
		}
	}
	return names, cryptoPos
}

// nondeterministicSeed returns the position of a call to time.Now,
// os.Getpid or similar wall-clock/process state inside the seed
// expression, or token.NoPos.
func nondeterministicSeed(e ast.Expr) token.Pos {
	found := token.NoPos
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		switch pkg.Name + "." + sel.Sel.Name {
		case "time.Now", "os.Getpid", "os.Getppid":
			found = call.Pos()
			return false
		}
		return true
	})
	return found
}
