// Package a exercises the obsnil consumer rules against the obs stub.
package a

import "hyperear/internal/obs"

func wire(sink func(string)) *obs.Obs {
	return obs.New(sink) // ok: the nil-safe constructor
}

func useWrappers(o *obs.Obs) {
	sp := o.Span("stage") // ok: wrapper API
	o.Inc("count")        // ok
	sp.End()              // ok
}

func construct() *obs.Obs {
	return &obs.Obs{} // want `composite literal bypasses the nil-safe constructors`
}

func constructRegistry() *obs.Registry {
	return &obs.Registry{} // want `composite literal bypasses the nil-safe constructors`
}

func allocate() *obs.Obs {
	return new(obs.Obs) // want `new\(obs.Obs\) bypasses the nil-safe constructors`
}

func copyHandle(o *obs.Obs) obs.Obs {
	return *o // want `dereferencing \*obs.Obs copies the handle`
}

func peekField(o *obs.Obs) int {
	return o.Raw // want `direct field access on obs.Obs`
}

// suppressed: a migration shim may construct directly, with the
// justification recorded inline.
func legacyConstruct() *obs.Obs {
	//hyperearvet:allow obsnil migration shim constructs directly until the legacy probe API is deleted
	return &obs.Obs{}
}
