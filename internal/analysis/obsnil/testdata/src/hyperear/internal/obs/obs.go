// Package obs is a reduced stub of the real observability package,
// used both as an import target for the outside-consumer cases and as
// a direct subject for the inside-the-package nil-guard rule.
package obs

// Obs is the nil-safe observability hook. Raw is an exported field the
// real package does not have; it exists so the field-access rule has
// something that compiles from outside.
type Obs struct {
	Raw  int
	sink func(string)
}

// Registry collects counters.
type Registry struct{ n int }

// Span is one in-flight measurement.
type Span struct{ o *Obs }

// New returns nil when there is nothing to observe, keeping callers on
// the free disabled path.
func New(sink func(string)) *Obs {
	if sink == nil {
		return nil
	}
	return &Obs{sink: sink}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Span opens a span; guarded, so fine.
func (o *Obs) Span(stage string) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o}
}

// Inc delegates to a guarded method in a single statement; fine.
func (o *Obs) Inc(name string) { o.Add(name, 1) }

// Add is guarded with a joined condition; fine.
func (o *Obs) Add(name string, n int) {
	if o == nil || o.sink == nil {
		return
	}
	o.sink(name)
}

// End is guarded through the receiver's field; fine.
func (s Span) End() {
	if s.o == nil {
		return
	}
	s.o.sink("end")
}

// Emit reads the receiver before any guard, breaking the nil-safety
// contract every other method upholds.
func (o *Obs) Emit(name string) { // want `exported obs method Obs.Emit must start with a nil-receiver guard`
	o.sink(name)
}

// Flush is deliberately unguarded but annotated.
//
//hyperearvet:allow obsnil Flush is documented panic-on-nil and only reachable from guarded wrappers
func (o *Obs) Flush() {
	o.sink("flush")
}
