// Package obsnil defines an analyzer guarding the observability layer's
// core invariant: a nil *obs.Obs is a valid, zero-cost hook, and every
// consumer must go through the nil-safe wrapper API.
//
// Outside the obs package it flags constructions and accesses that
// bypass the wrappers:
//
//   - composite literals (obs.Obs{}, obs.Span{}, obs.Registry{}) and
//     new(obs.Obs): obs.New normalizes both-nil to nil so the disabled
//     path stays free, and NewRegistry allocates the counter tables;
//     literal construction skips both;
//   - dereferencing or copying an *obs.Obs value (*o): a copy's methods
//     no longer see the nil receiver;
//   - direct field access on Obs, Span or Registry values: fields are
//     an implementation detail of the nil-guarded methods.
//
// Inside the obs package it enforces the discipline that makes the
// wrapper API safe in the first place: every exported method on *Obs or
// Span must begin with a nil-receiver guard, or delegate in a single
// statement to a method that does.
package obsnil

import (
	"go/ast"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsnil",
	Doc:  "obs handles are used only via the nil-safe wrapper API; obs methods keep their nil guards",
	Run:  run,
}

// obsPathSuffix identifies the observability package by import path
// suffix so the analyzer works on both the real tree and testdata.
const obsPathSuffix = "internal/obs"

// guardedTypes are the obs types whose construction and field layout
// are private to the wrapper API.
var guardedTypes = map[string]bool{"Obs": true, "Span": true, "Registry": true}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.PkgPath, obsPathSuffix) {
		return runInside(pass)
	}
	return runOutside(pass)
}

func runOutside(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				if name, ok := guardedObsType(pass.TypesInfo.Types[e].Type); ok {
					pass.Reportf(e.Pos(), "obs.%s composite literal bypasses the nil-safe constructors; use obs.New / obs.NewRegistry / Obs.Span", name)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
					if pass.TypesInfo.Uses[id] == types.Universe.Lookup("new") {
						if name, ok := guardedObsType(pass.TypesInfo.Types[e.Args[0]].Type); ok {
							pass.Reportf(e.Pos(), "new(obs.%s) bypasses the nil-safe constructors; use obs.New / obs.NewRegistry", name)
						}
					}
				}
			case *ast.StarExpr:
				// A unary * on an *obs.Obs value copies the struct out
				// from behind the nil-checked pointer.
				if t := pass.TypesInfo.Types[e.X].Type; t != nil {
					if p, ok := t.(*types.Pointer); ok {
						if name, ok := guardedObsType(p.Elem()); ok && name == "Obs" {
							pass.Reportf(e.Pos(), "dereferencing *obs.Obs copies the handle and defeats nil-receiver safety")
						}
					}
				}
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[e]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if name, ok := guardedObsType(sel.Recv()); ok {
					pass.Reportf(e.Sel.Pos(), "direct field access on obs.%s; use the nil-safe wrapper API", name)
				}
			}
			return true
		})
	}
	return nil
}

// guardedObsType reports whether t (pointers stripped) is one of the
// obs package's guarded named types, returning its name.
func guardedObsType(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), obsPathSuffix) {
		return "", false
	}
	if !guardedTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// runInside checks that every exported method on *Obs or Span starts
// with a nil guard or is a single-statement delegation to the same
// receiver (Inc -> Add). Registry is exempt: it is only reachable
// through already-guarded wrappers and Obs.Registry's documented
// nil return.
func runInside(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recvName, typeName := receiver(fn)
			if typeName != "Obs" && typeName != "Span" {
				continue
			}
			if len(fn.Body.List) == 0 {
				continue
			}
			if hasNilGuard(fn.Body.List[0], recvName) {
				continue
			}
			if len(fn.Body.List) == 1 && delegatesToReceiver(pass, fn.Body.List[0], recvName) {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "exported obs method %s.%s must start with a nil-receiver guard or delegate to a guarded method", typeName, fn.Name.Name)
		}
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// receiver returns the receiver's identifier name and base type name.
func receiver(fn *ast.FuncDecl) (recvName, typeName string) {
	if len(fn.Recv.List) == 0 {
		return "", ""
	}
	field := fn.Recv.List[0]
	if len(field.Names) > 0 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

// hasNilGuard reports whether stmt is `if <recv> == nil ...` or
// `if <recv>.<field> == nil ...` (possibly ||-joined with more
// conditions), the shape every nil-safe obs method opens with.
func hasNilGuard(stmt ast.Stmt, recvName string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	return condMentionsRecvNil(ifs.Cond, recvName)
}

func condMentionsRecvNil(e ast.Expr, recvName string) bool {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op.String() == "||" || e.Op.String() == "&&" {
			return condMentionsRecvNil(e.X, recvName) || condMentionsRecvNil(e.Y, recvName)
		}
		if e.Op.String() != "==" {
			return false
		}
		return isNilIdent(e.Y) && rootIdent(e.X) == recvName || isNilIdent(e.X) && rootIdent(e.Y) == recvName
	case *ast.ParenExpr:
		return condMentionsRecvNil(e.X, recvName)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// rootIdent returns the leftmost identifier of an ident/selector chain.
func rootIdent(e ast.Expr) string {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		default:
			return ""
		}
	}
}

// delegatesToReceiver reports whether stmt is a lone `recv.Method(...)`
// call or `return recv.Method(...)`. It must be a genuine method call
// (types.MethodVal): invoking a func-valued field would dereference a
// nil receiver, which is exactly what the guard rule exists to prevent.
func delegatesToReceiver(pass *analysis.Pass, stmt ast.Stmt, recvName string) bool {
	var call ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	c, ok := ast.Unparen(call).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return false
	}
	return rootIdent(sel.X) == recvName
}
