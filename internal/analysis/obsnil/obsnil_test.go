package obsnil_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/obsnil"
)

func TestObsnilConsumers(t *testing.T) {
	analysistest.Run(t, "testdata", obsnil.Analyzer, "a")
}

func TestObsnilInsideObs(t *testing.T) {
	analysistest.Run(t, "testdata", obsnil.Analyzer, "hyperear/internal/obs")
}
