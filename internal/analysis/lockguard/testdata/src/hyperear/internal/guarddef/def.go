// Package guarddef exports a guarded type so lockguard's cross-package
// fact flow can be exercised from guarduse.
package guarddef

import "sync"

type Registry struct {
	Mu sync.Mutex
	// guarded by Mu
	Names []string
}
