// Package guarduse reads guarddef.Registry through export data; the
// `// guarded by Mu` annotation arrives as a fact, not as syntax.
package guarduse

import "hyperear/internal/guarddef"

func ok(r *guarddef.Registry) int {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return len(r.Names)
}

func bad(r *guarddef.Registry) int {
	return len(r.Names) // want `field Names is guarded by Mu; access without holding r.Mu`
}
