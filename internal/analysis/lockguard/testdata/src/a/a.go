// Package a exercises lockguard's same-package rules: guarded-field
// tracking across branches, defers, goroutines and loops; RLock write
// demotion; double-lock; lock copies; atomic/plain mixing; and the
// Locked-suffix and constructor exemptions.
package a

import (
	"sync"
	"sync/atomic"
)

type table struct {
	mu sync.Mutex
	// guarded by mu
	count int
	data  map[string]int // guarded by mu
	rw    sync.RWMutex
	// guarded by rw
	snapshot []int
	// guarded by missing
	ready bool // want `guarded-by annotation names missing, which is not a mutex field of table`
	_     struct{}
}

func (t *table) good() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count // ok
}

func (t *table) bad() int {
	return t.count // want `field count is guarded by mu; access without holding t.mu`
}

func (t *table) badWrite(k string) {
	t.data[k] = 1 // want `field data is guarded by mu; access without holding t.mu`
}

func (t *table) earlyUnlockBranch(cond bool) {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
		return
	}
	t.count++ // ok: the unlocked branch returned
	t.mu.Unlock()
}

func (t *table) conditionalHold(cond bool) {
	if cond {
		t.mu.Lock()
	}
	t.count++ // want `field count is guarded by mu; access without holding t.mu`
	if cond {
		t.mu.Unlock()
	}
}

func (t *table) loopHold(keys []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		t.data[k]++ // ok: deferred unlock holds to function end
	}
}

func (t *table) rlockWrite() {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.snapshot = nil // want `write to snapshot while t.rw is only read-locked \(RLock\)`
}

func (t *table) rlockRead() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return len(t.snapshot) // ok
}

func (t *table) double() {
	t.mu.Lock()
	t.mu.Lock() // want `t.mu is already held on this path \(double Lock\)`
	t.mu.Unlock()
	t.mu.Unlock()
}

func (t *table) goroutineEscape() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.count++ // want `field count is guarded by mu; access without holding t.mu`
	}()
}

func (t *table) deferredClosure() {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func() {
		t.count = 0 // ok: runs before the earlier-registered Unlock
	}()
	t.count++
}

// touchLocked carries the *Locked caller-holds-the-lock contract.
func (t *table) touchLocked() {
	t.count++ // ok: Locked suffix
}

func (t *table) viaLocked() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked()
}

func newTable() *table {
	t := &table{data: map[string]int{}}
	t.count = 1 // ok: constructor, not yet shared
	return t
}

func (t *table) suppressed() int {
	//hyperearvet:allow lockguard single-goroutine benchmark reader
	return t.count
}

func copyReturn(t *table) table {
	return *t // want `return copies a.table by value, which contains sync.Mutex`
}

func copyAssign(t *table) {
	u := *t // want `assignment copies a.table by value, which contains sync.Mutex`
	_ = u
}

func sink(any interface{}) {}

func copyArg(t *table) {
	sink(*t) // want `call copies a.table by value, which contains sync.Mutex`
}

type stats struct {
	n     int64
	other int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.n, 1) // ok: the sanctioned access
}

func (s *stats) read() int64 {
	return s.n // want `field n is accessed with sync/atomic at .*; plain access races with it`
}

func (s *stats) plainOther() int64 {
	return s.other // ok: never touched atomically
}
