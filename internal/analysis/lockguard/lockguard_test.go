package lockguard_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer,
		"a", "hyperear/internal/guarddef", "hyperear/internal/guarduse")
}
