// Package lockguard enforces the `// guarded by <mu>` annotation on
// struct fields: every read or write of an annotated field must happen
// with the named sibling mutex held in the same function. Lock state
// is tracked along AST paths — Lock/RLock/Unlock/RUnlock calls,
// `defer mu.Unlock()` (held to function end), branch intersection
// across if/switch/select, loop bodies — rather than guessed from
// function names, with two documented exceptions: methods whose name
// ends in "Locked" are callee-side helpers whose contract is "caller
// holds the receiver's mutex", and constructors (New*/new*) build
// objects no other goroutine can see yet.
//
// The analyzer also flags three classic sync mistakes independent of
// annotations: copying a value whose type contains a sync.Mutex or
// sync.RWMutex, re-locking a mutex already held on the same path, and
// mixing sync/atomic access with plain access to one field.
//
// Annotations on exported types travel to other packages as facts
// ("Type.Field" → "mu"), so a dependent package reading a guarded
// field through export data is checked identically.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:  "lockguard",
	Doc:   "fields annotated `// guarded by mu` are only touched with that mutex held; no lock copies, double-locks, or atomic/plain mixing",
	Run:   run,
	Facts: facts,
}

var guardedRe = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// facts exports this package's guarded-field annotations as
// "TypeName.FieldName" → mutex field name.
func facts(pass *analysis.Pass) map[string]string {
	_, out := collectGuards(pass, false)
	return out
}

func run(pass *analysis.Pass) error {
	guards, _ := collectGuards(pass, true)
	c := &checker{
		pass:         pass,
		guards:       guards,
		atomicFields: map[*types.Var]token.Pos{},
		atomicOK:     map[ast.Expr]bool{},
	}
	c.collectAtomicFields()
	for _, file := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fc := &funcChecker{
				c: c,
				// Tests poke fields single-threaded by design; racing
				// test access is the race detector's department. The
				// copy/double-lock/atomic rules still apply there.
				skipGuard: inTest || isConstructor(fn.Name.Name),
				locked:    strings.HasSuffix(fn.Name.Name, "Locked"),
			}
			if fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
				fc.recv = pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
			}
			st := state{}
			fc.stmts(fn.Body.List, st)
		}
	}
	return nil
}

func isConstructor(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// collectGuards parses `// guarded by <mu>` field annotations in this
// package's struct declarations. When report is set, annotations
// naming a sibling that is not a mutex field are diagnosed.
func collectGuards(pass *analysis.Pass, report bool) (map[*types.Var]string, map[string]string) {
	byObj := map[*types.Var]string{}
	flat := map[string]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// First pass: the struct's mutex fields, so annotations can
			// be validated against real siblings.
			mutexes := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isMutexType(obj.Type()) {
						mutexes[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !mutexes[mu] {
					if report {
						pass.Reportf(field.Pos(), "guarded-by annotation names %s, which is not a mutex field of %s", mu, ts.Name.Name)
					}
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						byObj[obj] = mu
						flat[ts.Name.Name+"."+name.Name] = mu
					}
				}
			}
			return true
		})
	}
	return byObj, flat
}

// guardAnnotation extracts the mutex name from a field's doc or
// trailing comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checker holds per-package state.
type checker struct {
	pass   *analysis.Pass
	guards map[*types.Var]string
	// atomicFields maps struct fields touched via sync/atomic free
	// functions to one such call site; atomicOK holds the selector
	// nodes inside those calls (they are the sanctioned accesses).
	atomicFields map[*types.Var]token.Pos
	atomicOK     map[ast.Expr]bool
}

func (c *checker) collectAtomicFields() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			fieldSel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := c.pass.TypesInfo.Selections[fieldSel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, seen := c.atomicFields[v]; !seen {
				c.atomicFields[v] = call.Pos()
			}
			c.atomicOK[fieldSel] = true
			return true
		})
	}
}

// state maps a rendered mutex path ("s.mu") to its held mode:
// true = write (Lock), false = read (RLock).
type state map[string]bool

func clone(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func intersect(a, b state) state {
	out := state{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = va && vb
		}
	}
	return out
}

// funcChecker walks one function body.
type funcChecker struct {
	c         *checker
	recv      types.Object
	locked    bool // name ends in "Locked": receiver mutexes assumed held
	skipGuard bool // _test.go or constructor: guarded-access rule off
}

// stmts runs the list through the tracker, returning the out state and
// whether flow terminated (return/branch on every path).
func (fc *funcChecker) stmts(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var term bool
		st, term = fc.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (fc *funcChecker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.ExprStmt:
		fc.expr(s.X, st, false)
	case *ast.AssignStmt:
		for i, r := range s.Rhs {
			fc.expr(r, st, false)
			// `_ = x` compiles to nothing; only assignments into a
			// real destination copy.
			if len(s.Lhs) == len(s.Rhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
			}
			fc.checkLockCopy(r, "assignment")
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			fc.expr(l, st, true)
		}
	case *ast.IncDecStmt:
		fc.expr(s.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, st, false)
						fc.checkLockCopy(v, "assignment")
					}
				}
			}
		}
	case *ast.DeferStmt:
		if base, op := fc.lockOp(s.Call); base != "" {
			// `defer mu.Unlock()` keeps the mutex held to function end;
			// a deferred Lock is nonsense we leave to code review.
			_ = op
			break
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Deferred closures run before deferred unlocks registered
			// earlier, so the current lock set is the right context.
			fc.stmts(lit.Body.List, clone(st))
		} else {
			fc.expr(s.Call.Fun, st, false)
		}
		for _, a := range s.Call.Args {
			fc.expr(a, st, false)
			fc.checkLockCopy(a, "call")
		}
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A new goroutine starts with no locks held.
			fc.stmts(lit.Body.List, state{})
		} else {
			fc.expr(s.Call.Fun, st, false)
		}
		for _, a := range s.Call.Args {
			fc.expr(a, st, false)
			fc.checkLockCopy(a, "call")
		}
	case *ast.SendStmt:
		fc.expr(s.Chan, st, false)
		fc.expr(s.Value, st, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.expr(r, st, false)
			fc.checkLockCopy(r, "return")
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		return fc.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = fc.stmt(s.Init, st)
		}
		fc.expr(s.Cond, st, false)
		thenOut, thenTerm := fc.stmts(s.Body.List, clone(st))
		if s.Else == nil {
			if thenTerm {
				return st, false
			}
			return intersect(st, thenOut), false
		}
		elseOut, elseTerm := fc.stmt(s.Else, clone(st))
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersect(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = fc.stmt(s.Init, st)
		}
		if s.Cond != nil {
			fc.expr(s.Cond, st, false)
		}
		bodyOut, bodyTerm := fc.stmts(s.Body.List, clone(st))
		if s.Post != nil {
			fc.stmt(s.Post, bodyOut)
		}
		if bodyTerm {
			return st, false
		}
		// The loop may run zero times; only locks held both before and
		// at the end of an iteration survive it.
		return intersect(st, bodyOut), false
	case *ast.RangeStmt:
		fc.expr(s.X, st, false)
		bodyOut, bodyTerm := fc.stmts(s.Body.List, clone(st))
		if bodyTerm {
			return st, false
		}
		return intersect(st, bodyOut), false
	case *ast.SwitchStmt:
		return fc.switchLike(s.Init, s.Tag, s.Body, st)
	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		if s.Init != nil {
			st, _ = fc.stmt(s.Init, st)
		}
		fc.stmt(s.Assign, clone(st))
		return fc.switchLike(nil, tag, s.Body, st)
	case *ast.SelectStmt:
		return fc.switchLike(nil, nil, s.Body, st)
	}
	return st, false
}

// switchLike merges lock state across switch/select clause bodies: the
// out state is the intersection of every non-terminating clause, plus
// the entry state when no default clause guarantees a body ran.
func (fc *funcChecker) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st state) (state, bool) {
	if init != nil {
		st, _ = fc.stmt(init, st)
	}
	if tag != nil {
		fc.expr(tag, st, false)
	}
	outs := []state{}
	hasDefault := false
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				fc.expr(e, st, false)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				fc.stmt(cl.Comm, clone(st))
			}
			stmts = cl.Body
		}
		out, term := fc.stmts(stmts, clone(st))
		if !term {
			allTerm = false
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, st)
		allTerm = false
	}
	if len(outs) == 0 {
		return st, allTerm
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

// expr checks accesses inside e under lock state st. write marks an
// lvalue context (assignment target, ++/--, &-taken operand).
func (fc *funcChecker) expr(e ast.Expr, st state, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		fc.expr(e.X, st, write)
	case *ast.SelectorExpr:
		fc.checkAccess(e, st, write)
		fc.expr(e.X, st, false)
	case *ast.CallExpr:
		if base, op := fc.lockOp(e); base != "" {
			fc.applyLock(e, st, base, op)
		} else {
			fc.expr(e.Fun, st, false)
		}
		for _, a := range e.Args {
			fc.expr(a, st, false)
			fc.checkLockCopy(a, "call")
		}
	case *ast.UnaryExpr:
		fc.expr(e.X, st, e.Op == token.AND || write)
	case *ast.StarExpr:
		fc.expr(e.X, st, write)
	case *ast.BinaryExpr:
		fc.expr(e.X, st, false)
		fc.expr(e.Y, st, false)
	case *ast.IndexExpr:
		fc.expr(e.X, st, write)
		fc.expr(e.Index, st, false)
	case *ast.IndexListExpr:
		fc.expr(e.X, st, write)
		for _, i := range e.Indices {
			fc.expr(i, st, false)
		}
	case *ast.SliceExpr:
		fc.expr(e.X, st, write)
		fc.expr(e.Low, st, false)
		fc.expr(e.High, st, false)
		fc.expr(e.Max, st, false)
	case *ast.TypeAssertExpr:
		fc.expr(e.X, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fc.expr(kv.Value, st, false)
				continue
			}
			fc.expr(el, st, false)
		}
	case *ast.FuncLit:
		// A literal not tied to go/defer may run on any goroutine at
		// any time (pool hooks, parallel fan-out callbacks); check its
		// body with no locks assumed.
		fc.stmts(e.Body.List, state{})
	}
}

// lockOp recognizes mu.Lock/Unlock/RLock/RUnlock calls on sync.Mutex /
// sync.RWMutex values and returns the rendered mutex path and method.
func (fc *funcChecker) lockOp(call *ast.CallExpr) (base, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	f, ok := fc.c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", ""
	}
	key := exprKey(sel.X)
	if key == "" {
		return "", ""
	}
	return key, sel.Sel.Name
}

func (fc *funcChecker) applyLock(call *ast.CallExpr, st state, base, op string) {
	switch op {
	case "Lock", "RLock":
		if _, held := st[base]; held {
			fc.c.pass.Reportf(call.Pos(), "%s is already held on this path (double %s)", base, op)
		}
		st[base] = op == "Lock"
	case "Unlock", "RUnlock":
		delete(st, base)
	}
}

// checkAccess verifies one selector against the guarded-field table.
func (fc *funcChecker) checkAccess(sel *ast.SelectorExpr, st state, write bool) {
	s := fc.c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	// Atomic/plain mixing is checked even where the guarded rule is
	// off: a racing plain read in a constructor is still impossible,
	// so constructors stay exempt.
	if pos, mixed := fc.c.atomicFields[v]; mixed && !fc.c.atomicOK[sel] && !fc.skipGuard {
		p := fc.c.pass.Fset.Position(pos)
		fc.c.pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic at %s:%d; plain access races with it", v.Name(), p.Filename, p.Line)
	}
	mu := fc.guardFor(v, s)
	if mu == "" || fc.skipGuard {
		return
	}
	base := exprKey(sel.X)
	if base == "" {
		return // unkeyable path (index/call result); nothing to match a Lock against
	}
	if fc.locked && fc.recv != nil && rootObj(fc.c.pass.TypesInfo, sel.X) == fc.recv {
		return // *Locked helper: caller holds the receiver's mutexes by contract
	}
	key := base + "." + mu
	mode, held := st[key]
	switch {
	case !held:
		fc.c.pass.Reportf(sel.Pos(), "field %s is guarded by %s; access without holding %s", v.Name(), mu, key)
	case write && !mode:
		fc.c.pass.Reportf(sel.Pos(), "write to %s while %s is only read-locked (RLock)", v.Name(), key)
	}
}

// guardFor resolves a field's guard mutex name from same-package
// syntax or cross-package facts.
func (fc *funcChecker) guardFor(v *types.Var, s *types.Selection) string {
	if mu, ok := fc.c.guards[v]; ok {
		return mu
	}
	if v.Pkg() == nil || v.Pkg() == fc.c.pass.Pkg {
		return ""
	}
	named, ok := types.Unalias(deref(s.Recv())).(*types.Named)
	if !ok {
		return ""
	}
	return fc.c.pass.PackageFacts(v.Pkg().Path())[named.Obj().Name()+"."+v.Name()]
}

// checkLockCopy flags value copies of types that (transitively)
// contain a sync.Mutex or sync.RWMutex.
func (fc *funcChecker) checkLockCopy(e ast.Expr, context string) {
	tv, ok := fc.c.pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return
	}
	// Address-of, pointers, and composite literals construct or refer;
	// only plain value uses copy.
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.FuncLit, *ast.BasicLit, *ast.CallExpr:
		return
	}
	if t := containsMutex(tv.Type, 0); t != "" {
		fc.c.pass.Reportf(e.Pos(), "%s copies %s by value, which contains %s", context, tv.Type, t)
	}
}

// containsMutex reports the mutex type a value of t would copy, or "".
func containsMutex(t types.Type, depth int) string {
	if depth > 4 {
		return ""
	}
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if m := containsMutex(st.Field(i).Type(), depth+1); m != "" {
			return m
		}
	}
	return ""
}

// exprKey renders a selector path ("s.mu", "t.shards") for lock-state
// keys, or "" for unkeyable expressions.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// rootObj resolves the leftmost identifier of a selector chain.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isMutexType(t types.Type) bool {
	t = deref(t)
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
