// Package poolleak defines an analyzer enforcing that pooled scratch
// memory never escapes the call that borrowed it.
//
// The DSP hot path leans on sync.Pool (internal/dsp's complexPool,
// internal/core's DetectScratch pool): a value handed out by Pool.Get —
// or by a helper marked //hyperearvet:pooled, such as getComplexPrefix —
// is only on loan. Returning it to a caller, storing it in a struct
// field, map, slice or global, sending it on a channel, or capturing it
// in a `go` statement lets it outlive the borrow and alias a buffer
// that the pool will hand to a concurrent user.
//
// Functions that deliberately transfer ownership of a pooled value to
// their caller (the pool wrappers themselves) carry the
// //hyperearvet:pooled directive, which both exempts their returns and
// marks their call sites as new borrow points.
package poolleak

import (
	"go/ast"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "pooled scratch (sync.Pool.Get, //hyperearvet:pooled helpers) must not escape the borrowing function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Map function objects declared in this package to their decl so
	// call sites can see the pooled directive.
	pooledFuncs := map[types.Object]bool{}
	decls := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			marked := pass.FuncHasDirective(fn, "pooled")
			decls[fn] = marked
			if marked {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					pooledFuncs[obj] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn, decls[fn], pooledFuncs)
			}
		}
	}
	return nil
}

// checkFunc flags escapes of pooled values within one function body.
// Tracking is flow-insensitive: any local ever assigned from a pooled
// source (or derived from one by deref, slicing or aliasing) is pooled
// for the whole body. That is deliberately conservative in the
// direction of no false negatives on the patterns the repo uses.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, returnsPooled bool, pooledFuncs map[types.Object]bool) {
	pooled := map[types.Object]bool{}

	// Fixpoint over assignments: v := pooledSource, v := alias/deref/
	// slice of a pooled local.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					// v, ok := pool.Get().(*T) style is not used for
					// pooled sources here; multi-value RHS is a call
					// whose results we don't track.
					if len(st.Rhs) == 1 && len(st.Lhs) == 2 {
						if isPooledExpr(pass, st.Rhs[0], pooled, pooledFuncs) {
							changed = markIdent(pass, st.Lhs[0], pooled) || changed
						}
					}
					return true
				}
				for i, rhs := range st.Rhs {
					if isPooledExpr(pass, rhs, pooled, pooledFuncs) {
						changed = markIdent(pass, st.Lhs[i], pooled) || changed
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, rhs := range st.Values {
						if isPooledExpr(pass, rhs, pooled, pooledFuncs) {
							obj := pass.TypesInfo.Defs[st.Names[i]]
							if obj != nil && !pooled[obj] {
								pooled[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if returnsPooled {
				return true
			}
			for _, res := range st.Results {
				if isPooledExpr(pass, res, pooled, pooledFuncs) {
					pass.Reportf(res.Pos(), "pooled scratch returned from %s; mark the function //hyperearvet:pooled if it transfers ownership", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				if !isPooledExpr(pass, st.Rhs[i], pooled, pooledFuncs) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					pass.Reportf(st.Pos(), "pooled scratch stored in field %s; it outlives the borrow", l.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(st.Pos(), "pooled scratch stored in a container; it outlives the borrow")
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[l]; obj != nil && isGlobal(obj) {
						pass.Reportf(st.Pos(), "pooled scratch stored in package variable %s", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if isPooledExpr(pass, st.Value, pooled, pooledFuncs) {
				pass.Reportf(st.Pos(), "pooled scratch sent on a channel; the receiver outlives the borrow")
			}
		case *ast.GoStmt:
			for _, arg := range st.Call.Args {
				if isPooledExpr(pass, arg, pooled, pooledFuncs) {
					pass.Reportf(arg.Pos(), "pooled scratch passed to a goroutine that may outlive the borrow")
				}
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := pass.TypesInfo.Uses[id]; obj != nil && pooled[obj] {
						pass.Reportf(id.Pos(), "pooled scratch %s captured by a goroutine that may outlive the borrow", id.Name)
						return false
					}
					return true
				})
			}
		}
		return true
	})
}

// markIdent marks the object defined or used by lhs as pooled,
// reporting whether the set changed.
func markIdent(pass *analysis.Pass, lhs ast.Expr, pooled map[types.Object]bool) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil || pooled[obj] {
		return false
	}
	pooled[obj] = true
	return true
}

// isPooledExpr reports whether e yields a pooled value: a call to a
// pooled source, a reference to a local already marked pooled, or a
// deref/slice/paren/type-assert wrapper around either.
func isPooledExpr(pass *analysis.Pass, e ast.Expr, pooled map[types.Object]bool, pooledFuncs map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && pooled[obj]
	case *ast.ParenExpr:
		return isPooledExpr(pass, e.X, pooled, pooledFuncs)
	case *ast.StarExpr:
		return isPooledExpr(pass, e.X, pooled, pooledFuncs)
	case *ast.UnaryExpr:
		return isPooledExpr(pass, e.X, pooled, pooledFuncs)
	case *ast.TypeAssertExpr:
		return isPooledExpr(pass, e.X, pooled, pooledFuncs)
	case *ast.SliceExpr:
		return isPooledExpr(pass, e.X, pooled, pooledFuncs)
	case *ast.CallExpr:
		return isPooledSource(pass, e, pooledFuncs)
	}
	return false
}

// isPooledSource reports whether the call borrows from a pool:
// (*sync.Pool).Get, or a function marked //hyperearvet:pooled.
func isPooledSource(pass *analysis.Pass, call *ast.CallExpr, pooledFuncs map[types.Object]bool) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Get" {
			if sel, ok := pass.TypesInfo.Selections[fun]; ok {
				if named := typeName(sel.Recv()); strings.HasSuffix(named, "sync.Pool") {
					return true
				}
			}
		}
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && pooledFuncs[obj] {
			return true
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil && pooledFuncs[obj] {
			return true
		}
	}
	return false
}

// typeName renders t with pointers stripped.
func typeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	return t.String()
}

// isGlobal reports whether obj is declared at package scope.
func isGlobal(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}
