package poolleak_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/poolleak"
)

func TestPoolleak(t *testing.T) {
	analysistest.Run(t, "testdata", poolleak.Analyzer, "a")
}
