// Package a exercises the poolleak analyzer: borrows from sync.Pool
// and from //hyperearvet:pooled helpers must not escape.
package a

import "sync"

var bufPool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

var global *[]float64

// getBuf transfers ownership to the caller, which is what the
// directive declares.
//
//hyperearvet:pooled
func getBuf(n int) *[]float64 {
	p := bufPool.Get().(*[]float64)
	*p = (*p)[:0]
	return p
}

func putBuf(p *[]float64) { bufPool.Put(p) }

// ok: the borrow stays local and is returned to the pool.
func sumLocal(xs []float64) float64 {
	p := getBuf(len(xs))
	defer putBuf(p)
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// leakReturn returns a borrow without declaring ownership transfer.
func leakReturn() *[]float64 {
	p := bufPool.Get().(*[]float64)
	return p // want `pooled scratch returned from leakReturn`
}

// leakReturnHelper leaks a helper borrow the same way.
func leakReturnHelper() *[]float64 {
	q := getBuf(8)
	return q // want `pooled scratch returned from leakReturnHelper`
}

type holder struct {
	buf *[]float64
}

func leakField(h *holder) {
	p := getBuf(8)
	h.buf = p // want `pooled scratch stored in field buf`
}

func leakDerived(h *holder) {
	p := bufPool.Get().(*[]float64)
	alias := p
	h.buf = alias // want `pooled scratch stored in field buf`
}

func leakChannel(ch chan *[]float64) {
	p := getBuf(8)
	ch <- p // want `pooled scratch sent on a channel`
}

func leakGoroutine() {
	p := getBuf(8)
	go func() {
		_ = p // want `pooled scratch p captured by a goroutine`
	}()
}

func leakGoArg(f func(*[]float64)) {
	p := getBuf(8)
	go f(p) // want `pooled scratch passed to a goroutine`
}

func leakContainer(m map[string]*[]float64) {
	p := getBuf(8)
	m["k"] = p // want `pooled scratch stored in a container`
}

func leakGlobal() {
	p := getBuf(8)
	global = p // want `pooled scratch stored in package variable global`
}

// suppressedLeak documents a deliberate single-owner cache handoff.
func suppressedLeak(h *holder) {
	p := getBuf(8)
	//hyperearvet:allow poolleak handoff to a single-owner cache that puts the buffer back on eviction
	h.buf = p
}
