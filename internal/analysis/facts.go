package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
)

// FactStore accumulates analyzers' exported package facts:
// package path → analyzer name → flat string facts.
//
// Facts are the cross-package half of annotations like
// `// guarded by mu` and `//hyperearvet:zeroalloc`: the defining
// package exports what its syntax declares (which fields are guarded,
// which functions promise zero allocation), and analyzers consult the
// store when they meet those objects through export data, where the
// source comments are no longer visible.
//
// In the standalone driver one store spans the whole `go list` result
// (facts are collected for every loaded package before any analyzer
// runs, so load order never matters). Under `go vet -vettool=` each
// package's accumulated store is serialized to its .vetx file and
// re-imported by dependents, which makes fact flow transitive without
// the driver having to schedule anything.
type FactStore map[string]map[string]map[string]string

// add merges one analyzer's facts for one package into the store.
func (s FactStore) add(pkgPath, analyzer string, facts map[string]string) {
	if len(facts) == 0 {
		return
	}
	byAnalyzer := s[pkgPath]
	if byAnalyzer == nil {
		byAnalyzer = map[string]map[string]string{}
		s[pkgPath] = byAnalyzer
	}
	dst := byAnalyzer[analyzer]
	if dst == nil {
		dst = map[string]string{}
		byAnalyzer[analyzer] = dst
	}
	for k, v := range facts {
		dst[k] = v
	}
}

// merge folds another store (e.g. a dependency's decoded .vetx
// payload) into this one.
func (s FactStore) merge(other FactStore) {
	for pkgPath, byAnalyzer := range other {
		for analyzer, facts := range byAnalyzer {
			s.add(pkgPath, analyzer, facts)
		}
	}
}

// MergeEncoded decodes a serialized store (one .vetx payload) and
// folds it in. Empty payloads are valid: packages with nothing to
// export (and the pre-facts suite) write zero-byte vetx files.
func (s FactStore) MergeEncoded(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var other FactStore
	if err := json.Unmarshal(data, &other); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	s.merge(other)
	return nil
}

// Encode serializes the store for a .vetx file. The JSON form is
// stable enough for the go vet result cache: map keys marshal sorted.
func (s FactStore) Encode() ([]byte, error) {
	if len(s) == 0 {
		return []byte{}, nil
	}
	return json.Marshal(s)
}

// CollectFacts runs every analyzer's Facts hook over every package and
// merges the results into store. Hooks are syntax-only by contract
// (they may look at the package's own types but must not need other
// packages' facts), so collection is a single flat pass with no
// dependency ordering.
func CollectFacts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, store FactStore) {
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Facts == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				// Facts hooks must not report; diagnostics belong to Run,
				// where suppressions are applied.
				report: func(Diagnostic) {},
			}
			store.add(pkg.PkgPath, a.Name, a.Facts(pass))
		}
	}
}
