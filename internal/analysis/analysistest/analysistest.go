// Package analysistest runs an analyzer over self-contained testdata
// packages and checks its diagnostics against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<pkgpath>/*.go
//
// A line expecting diagnostics carries one or more quoted regexps:
//
//	x := durSamples + durSec // want `mixes unit families`
//
// Every diagnostic must be matched by a want on its line, and every
// want must be matched by a diagnostic; suppression comments
// (//hyperearvet:allow) are honored before matching so suppressed
// negatives can be tested.
//
// Imports inside testdata resolve first against sibling testdata
// packages (so stubs like hyperear/internal/obs can be provided) and
// then against the real toolchain's export data via `go list -export`.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hyperear/internal/analysis"
)

// Run analyzes each named package under dir/src and reports mismatches
// against its // want comments via t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		srcRoot: filepath.Join(dir, "src"),
		local:   map[string]*localPkg{},
		exports: map[string]string{},
	}
	for _, path := range pkgPaths {
		if _, err := ld.load(path); err != nil {
			t.Fatalf("loading testdata package %s: %v", path, err)
		}
	}
	// Collect facts from every local package the loads pulled in —
	// named packages and the sibling dependencies their imports reached
	// — so cross-package annotations (guarded fields, zeroalloc
	// promises) are visible exactly as the real drivers would see them.
	store := analysis.FactStore{}
	var seen []*analysis.Package
	for path, pkg := range ld.local {
		seen = append(seen, &analysis.Package{
			PkgPath:   path,
			Dir:       filepath.Join(ld.srcRoot, path),
			Files:     pkg.files,
			Pkg:       pkg.pkg,
			TypesInfo: pkg.info,
		})
	}
	analysis.CollectFacts(fset, seen, []*analysis.Analyzer{a}, store)

	for _, path := range pkgPaths {
		pkg := ld.local[path]
		for _, err := range pkg.typeErrs {
			t.Errorf("testdata package %s: type error: %v", path, err)
		}
		findings, err := analysis.RunWithFacts(fset, []*analysis.Package{{
			PkgPath:   path,
			Dir:       filepath.Join(ld.srcRoot, path),
			Files:     pkg.files,
			Pkg:       pkg.pkg,
			TypesInfo: pkg.info,
		}}, []*analysis.Analyzer{a}, store)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, fset, pkg.files, findings)
	}
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}

// loader resolves testdata packages and their stdlib dependencies.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	local   map[string]*localPkg
	exports map[string]string
	// gc is shared across every package load so stdlib packages
	// type-check to one identity (two importer instances would give a
	// sibling package and its consumer incompatible context.Contexts).
	gc types.Importer
}

type localPkg struct {
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
	typeErrs []error
}

func (l *loader) load(path string) (*localPkg, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Resolve stdlib imports (anything not present under srcRoot) to
	// export data in one go list call per package set.
	var std []string
	for _, imp := range imports {
		if _, err := os.Stat(filepath.Join(l.srcRoot, imp)); err != nil {
			if _, ok := l.exports[imp]; !ok {
				std = append(std, imp)
			}
		}
	}
	if len(std) > 0 {
		if err := l.loadExports(std); err != nil {
			return nil, err
		}
	}

	p := &localPkg{info: &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}}
	l.local[path] = p // pre-register to tolerate accidental cycles
	conf := types.Config{
		Importer: &testImporter{l: l},
		Error:    func(err error) { p.typeErrs = append(p.typeErrs, err) },
	}
	p.pkg, _ = conf.Check(path, l.fset, files, p.info)
	p.files = files
	return p, nil
}

// loadExports fills l.exports for the given stdlib import paths and
// their dependencies.
func (l *loader) loadExports(paths []string) error {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// testImporter resolves imports against testdata siblings first, then
// toolchain export data.
type testImporter struct {
	l *loader
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ti.l.srcRoot, path)); err == nil {
		p, err := ti.l.load(path)
		if err != nil {
			return nil, err
		}
		if p.pkg == nil {
			return nil, fmt.Errorf("testdata package %s failed to type-check", path)
		}
		return p.pkg, nil
	}
	if ti.l.gc == nil {
		ti.l.gc = importer.ForCompiler(ti.l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := ti.l.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return ti.l.gc.Import(path)
}
