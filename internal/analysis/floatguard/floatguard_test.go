package floatguard_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/floatguard"
)

func TestFloatguardEquality(t *testing.T) {
	analysistest.Run(t, "testdata", floatguard.Analyzer, "a")
}

func TestFloatguardIngestion(t *testing.T) {
	analysistest.Run(t, "testdata", floatguard.Analyzer, "b", "c")
}
