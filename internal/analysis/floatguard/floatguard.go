// Package floatguard defines an analyzer policing float equality and
// float ingestion.
//
// Rule 1 — equality: == and != on floating-point (or float-bearing
// struct) operands is flagged, with three documented exemptions that
// cover the repo's deliberate exact comparisons:
//
//   - zero sentinels: `x == 0` and `cfg == (Config{})` test "unset" or
//     guard a division, and comparing against exact zero is
//     well-defined in IEEE 754;
//   - self-comparison: `x != x` is the NaN idiom;
//   - epsilon helpers: functions marked //hyperearvet:epsilon (the
//     approved approximate comparators) may compare however they like.
//
// Test files are skipped: determinism regression tests compare exact
// float outputs on purpose.
//
// Rule 2 — ingestion: a package that reads floats from the outside
// world (flag.Float64, Float64Var, strconv.ParseFloat) must mention
// math.IsNaN or math.IsInf somewhere in its non-test files, extending
// the NewLocalizer validation convention: `-dist NaN` must die at the
// flag boundary, not propagate into the pipeline.
package floatguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatguard",
	Doc:  "no ==/!= on computed floats outside epsilon helpers; float ingestion must reject NaN/Inf",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ingest := checkEquality(pass)
	checkIngestion(pass, ingest)
	return nil
}

// checkEquality walks non-test files flagging float equality, and
// collects float-ingestion call sites for the package-level NaN/Inf
// check on the way (they share the file walk). It returns the
// ingestion sites unless the package already guards with
// math.IsNaN/IsInf, in which case it returns nil.
func checkEquality(pass *analysis.Pass) []ingestion {
	var sites []ingestion
	guarded := false
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fn, isFunc := d.(*ast.FuncDecl)
			if isFunc && pass.FuncHasDirective(fn, "epsilon") {
				continue
			}
			ast.Inspect(d, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					checkCmp(pass, e)
				case *ast.CallExpr:
					if name, ok := ingestionCall(pass, e); ok {
						sites = append(sites, ingestion{pos: e.Pos(), name: name})
					}
					if isNaNGuard(pass, e) {
						guarded = true
					}
				}
				return true
			})
		}
	}
	if guarded {
		return nil
	}
	return sites
}

func checkCmp(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	tx := pass.TypesInfo.Types[e.X]
	ty := pass.TypesInfo.Types[e.Y]
	if !floatBearing(tx.Type) && !floatBearing(ty.Type) {
		return
	}
	if isZero(tx) || isZero(ty) || isZeroComposite(e.X) || isZeroComposite(e.Y) {
		return
	}
	if types.ExprString(e.X) == types.ExprString(e.Y) {
		return // x != x NaN idiom
	}
	pass.Reportf(e.OpPos, "%s on floating-point operands; use an epsilon comparison (//hyperearvet:epsilon helper) or annotate the exact compare", e.Op)
}

// floatBearing reports whether t is a float/complex scalar, or a
// struct/array whose comparison would compare floats memberwise.
func floatBearing(t types.Type) bool {
	return floatBearingDepth(t, 0)
}

func floatBearingDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if floatBearingDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return floatBearingDepth(u.Elem(), depth+1)
	}
	return false
}

// isZero reports whether the operand is a compile-time numeric zero.
func isZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
		return ok && v == 0
	}
	return false
}

// isZeroComposite reports whether the operand is an empty composite
// literal `T{}`, the zero-value sentinel for struct comparisons.
func isZeroComposite(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	return ok && len(lit.Elts) == 0
}

type ingestion struct {
	pos  token.Pos
	name string
}

// ingestionCall matches flag.Float64 / (*flag.FlagSet).Float64 /
// ...Float64Var and strconv.ParseFloat.
func ingestionCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	pkg := calleePkgPath(pass, sel)
	switch {
	case pkg == "flag" && (name == "Float64" || name == "Float64Var"):
		return "flag." + name, true
	case pkg == "strconv" && name == "ParseFloat":
		return "strconv.ParseFloat", true
	}
	return "", false
}

// isNaNGuard matches math.IsNaN / math.IsInf calls.
func isNaNGuard(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	return calleePkgPath(pass, sel) == "math" && (name == "IsNaN" || name == "IsInf")
}

// calleePkgPath resolves the defining package path of a selector's
// method or function, covering both pkg.Func and value.Method forms.
func calleePkgPath(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

func checkIngestion(pass *analysis.Pass, sites []ingestion) {
	for _, s := range sites {
		pass.Reportf(s.pos, "%s ingests a float but package %s never calls math.IsNaN/math.IsInf; reject NaN/Inf at the boundary", s.name, pass.Pkg.Name())
	}
}
