// Package b ingests floats from flags without ever rejecting NaN/Inf.
package b

import "flag"

func parseFlags(fs *flag.FlagSet) *float64 {
	return fs.Float64("dist", 5, "distance") // want `flag.Float64 ingests a float but package b never calls math.IsNaN/math.IsInf`
}
