// Package a exercises floatguard's equality rule.
package a

// Peak is a float-bearing struct, so == compares floats memberwise.
type Peak struct {
	Lag  int
	Corr float64
}

func compare(x, y float64, a, b Peak) {
	_ = x == y // want `== on floating-point operands`
	_ = x != y // want `!= on floating-point operands`
	_ = a == b // want `== on floating-point operands`

	// ok: zero sentinels are exact in IEEE 754.
	_ = x == 0
	_ = y != 0.0
	_ = a == Peak{}

	// ok: the NaN self-comparison idiom.
	_ = x != x

	// ok: integers.
	_ = a.Lag == b.Lag
}

// approxEqual is the approved comparator; it may compare exactly to
// short-circuit.
//
//hyperearvet:epsilon
func approxEqual(x, y, tol float64) bool {
	if x == y {
		return true
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	return d < tol
}

func suppressedCompare(x, y float64) bool {
	//hyperearvet:allow floatguard bit-exact golden comparison against a stored reference output
	return x == y
}
