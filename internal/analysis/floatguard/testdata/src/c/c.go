// Package c ingests floats and rejects NaN/Inf at the boundary, so the
// ingestion rule stays quiet.
package c

import (
	"errors"
	"math"
	"strconv"
)

func parse(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errors.New("non-finite input")
	}
	return v, nil
}
