// Package zdep is the module-internal dependency of the zeroalloc
// fixtures: Kernel's annotation travels to zfix as a fact, Alloc's
// absence of one is the cross-package finding.
package zdep

//hyperearvet:zeroalloc
func Kernel(dst, src []float64) {
	for i := range src {
		dst[i] = src[i] * 2
	}
}

func Alloc(n int) []float64 {
	return make([]float64, n)
}
