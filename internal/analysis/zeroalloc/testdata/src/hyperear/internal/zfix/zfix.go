// Package zfix exercises every zeroalloc rule: direct allocation
// sites, the cap-guard and cold-exit exemptions, self-append, closure
// captures, interface boxing, and the annotated-callee rule against
// both same-package and cross-package (zdep) targets.
package zfix

import (
	"fmt"

	"hyperear/internal/obs"
	"hyperear/internal/zdep"
)

type buf struct {
	data []float64
	out  []float64
}

//hyperearvet:zeroalloc
func selfAppend(b *buf, xs []float64) {
	b.data = b.data[:0]
	b.data = append(b.data, xs...) // ok: self append into reused capacity
}

//hyperearvet:zeroalloc
func crossAppend(b *buf, xs []float64) {
	b.out = append(b.data, xs...) // want `append into a different destination may allocate`
}

//hyperearvet:zeroalloc
func growGuard(b *buf, n int) {
	if cap(b.data) < n {
		b.data = make([]float64, n) // ok: cap-guarded grow path
	}
	b.data = b.data[:n]
}

//hyperearvet:zeroalloc
func coldError(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bad n %d", n) // ok: cold early-exit body
	}
	return float64(n), nil
}

//hyperearvet:zeroalloc
func hotMake(n int) []float64 {
	return make([]float64, n) // want `make allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func hotNew() *buf {
	return new(buf) // want `new allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func hotSprintf(id int) string {
	return fmt.Sprintf("rq-%d", id) // want `call to fmt.Sprintf allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func mapLit() map[string]int {
	return map[string]int{} // want `map literal allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func sliceLit() []int {
	return []int{1, 2} // want `slice literal allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func escapingLit() *buf {
	return &buf{} // want `&composite literal escapes to the heap on the zeroalloc path`
}

//hyperearvet:zeroalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func byteConv(s string) []byte {
	return []byte(s) // want `conversion between string and \[\]byte allocates on the zeroalloc path`
}

//hyperearvet:zeroalloc
func spawns(ch chan int) {
	go send(ch) // want `go statement allocates a goroutine on the zeroalloc path`
}

func send(ch chan int) { ch <- 1 }

// sink is annotated so call sites only test boxing.
//
//hyperearvet:zeroalloc
func sink(v interface{}) { _ = v }

//hyperearvet:zeroalloc
func boxes(id int) {
	sink(id) // want `passing int as interface interface\{\} boxes and may allocate`
}

//hyperearvet:zeroalloc
func pointerOK(b *buf) {
	sink(b) // ok: pointers store directly in the interface word
}

//hyperearvet:zeroalloc
func each(xs []float64, f func(float64)) {
	for _, v := range xs {
		f(v)
	}
}

//hyperearvet:zeroalloc
func captures(xs []float64) float64 {
	total := 0.0
	each(xs, func(v float64) { total += v }) // want `closure captures total and may allocate on the zeroalloc path`
	return total
}

//hyperearvet:zeroalloc
func nonCapturingBody(xs []float64) {
	each(xs, func(v float64) {
		_ = make([]int, 1) // want `make allocates on the zeroalloc path`
	})
}

//hyperearvet:zeroalloc
func callsKernel(dst, src []float64) {
	zdep.Kernel(dst, src) // ok: annotated cross-package callee
}

//hyperearvet:zeroalloc
func callsAlloc(n int) []float64 {
	return zdep.Alloc(n) // want `calls Alloc, which is not marked //hyperearvet:zeroalloc`
}

//hyperearvet:zeroalloc
func traced(sp *obs.Span, n int) {
	sp.AttrInt("samples", n) // ok: internal/obs is exempt by rule
}

type Detector struct{ scratch []float64 }

//hyperearvet:zeroalloc
func (d *Detector) DetectInto(dst, src []float64) {
	d.prep(src)   // ok: annotated same-package method
	zeroFill(dst) // want `calls zeroFill, which is not marked //hyperearvet:zeroalloc`
}

//hyperearvet:zeroalloc
func (d *Detector) prep(src []float64) {
	d.scratch = append(d.scratch, src...) // ok
}

func zeroFill(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

//hyperearvet:zeroalloc
func suppressed(n int) []float64 {
	//hyperearvet:allow zeroalloc one-time cache fill, amortized across the session
	return make([]float64, n)
}

// unannotated functions may allocate freely.
func free(n int) []float64 { return make([]float64, n) }
