// Package obs is a stub of the real observability package, which the
// zeroalloc callee rule exempts by path.
package obs

type Span struct{ n int }

func (s *Span) AttrInt(k string, v int) { s.n = v }
