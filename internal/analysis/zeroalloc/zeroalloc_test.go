package zeroalloc_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/zeroalloc"
)

func TestZeroalloc(t *testing.T) {
	analysistest.Run(t, "testdata", zeroalloc.Analyzer,
		"hyperear/internal/zfix", "hyperear/internal/zdep")
}
