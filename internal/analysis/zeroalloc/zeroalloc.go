// Package zeroalloc turns the repo's runtime AllocsPerRun pins into a
// compile-time review: a function carrying the //hyperearvet:zeroalloc
// directive promises an allocation-free steady state, and every
// syntactic allocation site inside it is a finding —
//
//	make / new                    composite literals of map or slice type
//	&T{} (escaping literal)       non-self append (not x = append(x, ...))
//	fmt/errors/strconv/strings    string concatenation, string<->[]byte
//	interface boxing              closures that capture variables
//	go statements                 calls to unannotated module-internal code
//
// — unless the site sits on a recognized cold path: the body of an if
// whose condition consults len/cap (the grow-guard idiom of the pooled
// scratch helpers) or an if body that exits early (error paths ending
// in return/panic/break/continue). Amortized growth via self-append
// (x = append(x, ...)) is the repo's steady-state idiom and stays
// legal. Everything else needs an explicit
// //hyperearvet:allow zeroalloc <justification>.
//
// The promise composes through the call graph: a zeroalloc function
// may only call module-internal code that is itself annotated (facts
// carry the annotation across packages), with hyperear/internal/obs
// exempt — its disabled path is benchmark-pinned to 0 B/op, and
// tracing being enabled is an explicit opt-in to allocation.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:  "zeroalloc",
	Doc:   "//hyperearvet:zeroalloc functions contain no allocation sites outside cap-guards, cold exits, and allow suppressions",
	Run:   run,
	Facts: facts,
}

// modulePrefix scopes the annotated-callee rule to this module's own
// packages; stdlib callees are vouched for by the benchmark pins.
const modulePrefix = "hyperear"

// obsPath is exempt from the annotated-callee rule (see package doc).
const obsPath = "hyperear/internal/obs"

// facts exports the package's zeroalloc promises: "Func" or
// "Type.Method" → "zeroalloc".
func facts(pass *analysis.Pass) map[string]string {
	out := map[string]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !pass.FuncHasDirective(fn, "zeroalloc") {
				continue
			}
			if key := declKey(fn); key != "" {
				out[key] = "zeroalloc"
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncHasDirective(fn, "zeroalloc") {
				continue
			}
			z := &zchecker{pass: pass, results: resultTypes(pass, fn)}
			z.block(fn.Body)
		}
	}
	return nil
}

// declKey names a declared function the way calleeKey names its
// call sites: "Func" or "RecvType.Method".
func declKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fn.Name.Name
		default:
			return ""
		}
	}
}

func resultTypes(pass *analysis.Pass, fn *ast.FuncDecl) []types.Type {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

type zchecker struct {
	pass    *analysis.Pass
	results []types.Type
	// sanctioned holds append calls in x = append(x, ...) form.
	sanctioned map[*ast.CallExpr]bool
}

func (z *zchecker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		z.stmt(s)
	}
}

// stmt walks hot-path statements; cold bodies (grow guards, early
// exits) are simply not descended into.
func (z *zchecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		z.block(s)
	case *ast.ExprStmt:
		z.scan(s.X)
	case *ast.IncDecStmt:
		z.scan(s.X)
	case *ast.SendStmt:
		z.scan(s.Chan)
		z.scan(s.Value)
	case *ast.LabeledStmt:
		z.stmt(s.Stmt)
	case *ast.AssignStmt:
		z.sanctionSelfAppends(s)
		for _, e := range s.Lhs {
			z.scan(e)
		}
		for _, e := range s.Rhs {
			z.scan(e)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				if lt, ok := z.pass.TypesInfo.Types[s.Lhs[i]]; ok {
					z.checkBoxing(s.Rhs[i], lt.Type, "assigning")
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						z.scan(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for i, e := range s.Results {
			z.scan(e)
			if i < len(z.results) && len(s.Results) == len(z.results) {
				z.checkBoxing(e, z.results[i], "returning")
			}
		}
	case *ast.GoStmt:
		z.pass.Reportf(s.Pos(), "go statement allocates a goroutine on the zeroalloc path")
	case *ast.DeferStmt:
		z.scan(s.Call.Fun)
		for _, a := range s.Call.Args {
			z.scan(a)
		}
	case *ast.IfStmt:
		z.stmt(s.Init)
		z.scan(s.Cond)
		if !isGrowGuard(z.pass, s.Cond) && !terminates(s.Body) {
			z.block(s.Body)
		}
		switch e := s.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			if !terminates(e) {
				z.block(e)
			}
		default:
			z.stmt(e)
		}
	case *ast.ForStmt:
		z.stmt(s.Init)
		z.scan(s.Cond)
		z.stmt(s.Post)
		z.block(s.Body)
	case *ast.RangeStmt:
		z.scan(s.X)
		z.block(s.Body)
	case *ast.SwitchStmt:
		z.stmt(s.Init)
		z.scan(s.Tag)
		z.clauses(s.Body)
	case *ast.TypeSwitchStmt:
		z.stmt(s.Init)
		z.stmt(s.Assign)
		z.clauses(s.Body)
	case *ast.SelectStmt:
		z.clauses(s.Body)
	}
}

func (z *zchecker) clauses(body *ast.BlockStmt) {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				z.scan(e)
			}
			for _, s := range cl.Body {
				z.stmt(s)
			}
		case *ast.CommClause:
			z.stmt(cl.Comm)
			for _, s := range cl.Body {
				z.stmt(s)
			}
		}
	}
}

// sanctionSelfAppends marks append calls whose destination is their
// own first argument: x = append(x, ...) grows amortized into
// reused capacity and is the steady-state idiom.
func (z *zchecker) sanctionSelfAppends(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, r := range s.Rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isBuiltin(z.pass, call.Fun, "append") {
			continue
		}
		dst := exprKey(s.Lhs[i])
		src := exprKey(call.Args[0])
		if dst != "" && dst == src {
			if z.sanctioned == nil {
				z.sanctioned = map[*ast.CallExpr]bool{}
			}
			z.sanctioned[call] = true
		}
	}
}

// scan flags allocation sites in one hot-path expression tree.
func (z *zchecker) scan(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			z.call(n)
		case *ast.CompositeLit:
			if t := z.typeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					z.pass.Reportf(n.Pos(), "map literal allocates on the zeroalloc path")
				case *types.Slice:
					z.pass.Reportf(n.Pos(), "slice literal allocates on the zeroalloc path")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					z.pass.Reportf(n.Pos(), "&composite literal escapes to the heap on the zeroalloc path")
				}
			}
		case *ast.BinaryExpr:
			if t := z.typeOf(n); t != nil && n.Op == token.ADD {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv := z.pass.TypesInfo.Types[n]; tv.Value == nil { // non-constant
						z.pass.Reportf(n.Pos(), "string concatenation allocates on the zeroalloc path")
					}
				}
			}
		case *ast.FuncLit:
			z.funcLit(n)
			return false
		}
		return true
	})
}

// funcLit checks a literal for captures; non-capturing literals (e.g.
// sort comparators) run on the hot path, so their bodies are scanned.
func (z *zchecker) funcLit(lit *ast.FuncLit) {
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != nil {
			return captured == nil
		}
		obj := z.pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Pkg() == nil {
			return true
		}
		// Package-level vars aren't captures; anything declared outside
		// the literal's own span but inside the enclosing function is.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return captured == nil
	})
	if captured != nil {
		z.pass.Reportf(lit.Pos(), "closure captures %s and may allocate on the zeroalloc path", captured.Name())
		return
	}
	for _, s := range lit.Body.List {
		z.stmt(s)
	}
}

func (z *zchecker) call(call *ast.CallExpr) {
	// Type conversions: only the string<->[]byte pair copies.
	if tv, ok := z.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, z.typeOf(call.Args[0])
		if to != nil && from != nil && isStringByteConv(to, from) {
			z.pass.Reportf(call.Pos(), "conversion between string and []byte allocates on the zeroalloc path")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := z.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				z.pass.Reportf(call.Pos(), "make allocates on the zeroalloc path; grow only behind a cap guard")
			case "new":
				z.pass.Reportf(call.Pos(), "new allocates on the zeroalloc path")
			case "append":
				if !z.sanctioned[call] {
					z.pass.Reportf(call.Pos(), "append into a different destination may allocate; zeroalloc appends must be x = append(x, ...)")
				}
			}
			return
		}
	}

	callee := calleeFunc(z.pass.TypesInfo, call)
	if callee != nil {
		if pkg := callee.Pkg(); pkg != nil {
			if deny := denylisted(pkg.Path(), callee.Name()); deny {
				z.pass.Reportf(call.Pos(), "call to %s.%s allocates on the zeroalloc path", pkg.Name(), callee.Name())
				return
			}
			if isModuleInternal(pkg.Path()) && pkg.Path() != obsPath {
				if key := calleeKey(callee); key != "" {
					if z.pass.PackageFacts(pkg.Path())[key] != "zeroalloc" {
						z.pass.Reportf(call.Pos(), "calls %s, which is not marked //hyperearvet:zeroalloc", key)
					}
				}
			}
		}
	}

	// Interface boxing at argument positions.
	sig, ok := types.Unalias(z.typeOf(call.Fun)).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		z.checkBoxing(arg, pt, "passing")
	}
}

// checkBoxing flags storing a concrete, non-pointer-shaped value into
// an interface-typed slot (param, result, assignment target).
func (z *zchecker) checkBoxing(e ast.Expr, target types.Type, verb string) {
	target = types.Unalias(target)
	if _, isTP := target.(*types.TypeParam); isTP {
		return
	}
	if !types.IsInterface(target) {
		return
	}
	at := z.typeOf(e)
	if at == nil {
		return
	}
	if b, ok := at.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return
	}
	if types.IsInterface(at) || pointerShaped(at) {
		return
	}
	z.pass.Reportf(e.Pos(), "%s %s as interface %s boxes and may allocate on the zeroalloc path", verb, at, target)
}

func (z *zchecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := z.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return types.Unalias(tv.Type)
	}
	return nil
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if sl, ok := types.Unalias(sig.Params().At(n - 1).Type()).(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// pointerShaped reports types whose interface conversion stores the
// word directly without allocating.
func pointerShaped(t types.Type) bool {
	switch t := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Kind() == types.UnsafePointer
	}
	return false
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// denylisted lists stdlib helpers that always allocate their result.
func denylisted(pkgPath, name string) bool {
	switch pkgPath {
	case "fmt", "errors":
		return true
	case "strconv":
		return strings.HasPrefix(name, "Format") || strings.HasPrefix(name, "Quote") || name == "Itoa"
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "ToUpper", "ToLower",
			"Map", "Split", "SplitN", "Fields", "Clone", "Title":
			return true
		}
	}
	return false
}

func isModuleInternal(pkgPath string) bool {
	return pkgPath == modulePrefix || strings.HasPrefix(pkgPath, modulePrefix+"/")
}

// calleeKey names a callee the way facts name declarations.
func calleeKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return f.Name()
	}
	t := types.Unalias(recv.Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "" // interface method or weird receiver: unresolvable target
	}
	if types.IsInterface(named) {
		return ""
	}
	return named.Obj().Name() + "." + f.Name()
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isGrowGuard reports conditions consulting len or cap — the pooled
// scratch grow idiom whose body is an expected allocation site.
func isGrowGuard(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(pass, call.Fun, "cap") || isBuiltin(pass, call.Fun, "len") {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports blocks whose last statement exits the enclosing
// flow (early-error cold paths).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// exprKey renders an lvalue path for self-append matching; slice
// expressions reduce to their base (x = append(x[:0], ...) is self).
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.SliceExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "[i]"
	}
	return ""
}
