// Package ctxflow checks that context.Context flows through the call
// graph instead of silently stopping:
//
//   - a function holding a ctx parameter must not call the plain
//     variant of an API that has a ctx-accepting sibling (Locate2D
//     when Locate2DContext exists, Push when PushContext exists) —
//     that is how a per-request deadline quietly stops applying to
//     the hottest part of the request;
//   - library packages (internal/*, tests excluded) must not mint
//     fresh roots with context.Background()/context.TODO(), except a
//     Background passed directly as the ctx argument of a non-context
//     call — the documented compat-wrapper shape (Push delegating to
//     PushContext) — since the caller visibly chose to have no
//     deadline there;
//   - the ctx parameter must not be shadowed by a non-context value,
//     which makes every later call in the block compile against the
//     wrong object.
//
// The ctx-variant lookup is purely name-based (callee name + "Context"
// or + "Ctx", in the callee's own package or method set) so it works
// through export data with no facts: a cross-package variant worth
// threading into is necessarily exported.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context must thread through ctx-accepting call variants, not be dropped or re-minted",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	lib := isLibraryPath(pass.PkgPath)
	for _, file := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		sanctioned := sanctionedMints(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, lib: lib && !inTest, sanctioned: sanctioned}
			ctxObj, ctxName := ctxParam(pass, fn.Type)
			c.funcBody(fn.Body, ctxObj, ctxName)
		}
	}
	return nil
}

// checker walks one top-level function, tracking the innermost
// context parameter in scope (an enclosing function's ctx stays
// usable inside a FuncLit through capture).
type checker struct {
	pass *analysis.Pass
	// lib is set for non-test files of internal/* packages, where
	// minting fresh context roots is a finding.
	lib bool
	// sanctioned holds context.Background() calls appearing directly
	// as the ctx argument of a non-context call (compat wrappers).
	sanctioned map[*ast.CallExpr]bool
}

func (c *checker) funcBody(body *ast.BlockStmt, ctxObj types.Object, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal with its own ctx parameter rebinds the name;
			// otherwise the outer parameter remains reachable by capture.
			if obj, name := ctxParam(c.pass, n.Type); obj != nil {
				c.funcBody(n.Body, obj, name)
			} else {
				c.funcBody(n.Body, ctxObj, ctxName)
			}
			return false
		case *ast.CallExpr:
			c.call(n, ctxObj, ctxName)
		case *ast.Ident:
			if ctxObj != nil && n.Name == ctxName {
				if obj := c.pass.TypesInfo.Defs[n]; obj != nil && obj != ctxObj {
					if v, ok := obj.(*types.Var); ok && !v.IsField() && !isContextType(v.Type()) {
						c.pass.Reportf(n.Pos(), "%s shadows the context parameter with a non-context %s", ctxName, v.Type())
					}
				}
			}
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, ctxObj types.Object, ctxName string) {
	callee := calleeFunc(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if mint := mintName(callee); mint != "" {
		switch {
		case ctxObj != nil:
			c.pass.Reportf(call.Pos(), "context.%s minted in a function that already has a context parameter %s", mint, ctxName)
		case c.lib && (mint == "TODO" || !c.sanctioned[call]):
			c.pass.Reportf(call.Pos(), "library package mints context.%s; accept a ctx parameter instead", mint)
		}
		return
	}
	if ctxObj == nil {
		return
	}
	if variant := ctxVariant(callee); variant != nil {
		c.pass.Reportf(call.Pos(), "call to %s drops %s; %s accepts a context", callee.Name(), ctxName, variant.Name())
	}
}

// sanctionedMints collects context.Background() calls passed directly
// in a ctx-typed argument position of a call outside package context.
// `return FooContext(context.Background(), x)` is the blessed compat
// shape; `ctx := context.Background()` and derived-root wrapping like
// context.WithTimeout(context.Background(), d) are not.
func sanctionedMints(pass *analysis.Pass, file *ast.File) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || (callee.Pkg() != nil && callee.Pkg().Path() == "context") {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			argee := calleeFunc(pass.TypesInfo, inner)
			if argee == nil || mintName(argee) != "Background" {
				continue
			}
			if i < sig.Params().Len() && isContextType(sig.Params().At(i).Type()) {
				out[inner] = true
			}
		}
		return true
	})
	return out
}

// ctxVariant returns a ctx-accepting sibling of f (f's name plus
// "Context" or "Ctx", in f's package scope for functions or the
// receiver's method set for methods), or nil when f already accepts a
// context or no sibling exists.
func ctxVariant(f *types.Func) *types.Func {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sigHasCtx(sig) {
		return nil
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		name := f.Name() + suffix
		var cand types.Object
		if recv := sig.Recv(); recv != nil {
			cand, _, _ = types.LookupFieldOrMethod(recv.Type(), true, f.Pkg(), name)
		} else if f.Pkg() != nil {
			cand = f.Pkg().Scope().Lookup(name)
		}
		if g, ok := cand.(*types.Func); ok {
			if gsig, ok := g.Type().(*types.Signature); ok && sigHasCtx(gsig) {
				return g
			}
		}
	}
	return nil
}

// ctxParam returns the declared object and name of the first usable
// (named, non-blank) context.Context parameter of fnType.
func ctxParam(pass *analysis.Pass, fnType *ast.FuncType) (types.Object, string) {
	if fnType.Params == nil {
		return nil, ""
	}
	for _, field := range fnType.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj, name.Name
			}
		}
	}
	return nil, ""
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// conversions, and func-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// mintName reports whether f is context.Background or context.TODO.
func mintName(f *types.Func) string {
	if f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
		return f.Name()
	}
	return ""
}

func sigHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isLibraryPath reports whether pkgPath is an internal library package
// (the mint rule's scope); commands and the public facade may build
// fresh roots at their entry points.
func isLibraryPath(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "internal/") || strings.Contains(pkgPath, "/internal/")
}
