// Package app sits outside internal/, where entry points may mint
// context roots; the drop rule is path-independent.
package app

import (
	"context"

	"hyperear/internal/ctxfix"
)

func Main() int {
	ctx := context.Background() // ok: not a library package
	return ctxfix.WorkContext(ctx, 1)
}

func handler(ctx context.Context, n int) int {
	return ctxfix.Work(n) // want `call to Work drops ctx; WorkContext accepts a context`
}
