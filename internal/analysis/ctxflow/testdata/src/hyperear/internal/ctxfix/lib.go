// Package ctxfix exercises every ctxflow rule inside a library
// (internal/*) import path, where minting context roots is a finding.
package ctxfix

import "context"

// WorkContext is the ctx-accepting variant the analyzer should steer
// callers toward.
func WorkContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Work is the blessed compat-wrapper shape: no ctx parameter of its
// own, Background passed directly in the delegated call's ctx slot.
func Work(n int) int {
	return WorkContext(context.Background(), n) // ok: direct delegation argument
}

func caller(ctx context.Context, n int) int {
	return Work(n) // want `call to Work drops ctx; WorkContext accepts a context`
}

func threaded(ctx context.Context, n int) int {
	return WorkContext(ctx, n) // ok
}

func mintsDespiteParam(ctx context.Context) int {
	return WorkContext(context.Background(), 1) // want `context.Background minted in a function that already has a context parameter ctx`
}

func mintsTODO(n int) int {
	return WorkContext(context.TODO(), n) // want `library package mints context.TODO; accept a ctx parameter instead`
}

func storesRoot() context.Context {
	ctx := context.Background() // want `library package mints context.Background; accept a ctx parameter instead`
	return ctx
}

func wrapsRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) // want `library package mints context.Background`
}

type Detector struct{}

func (d *Detector) Detect(n int) int { return n }

func (d *Detector) DetectCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func methodDrop(ctx context.Context, d *Detector) int {
	return d.Detect(3) // want `call to Detect drops ctx; DetectCtx accepts a context`
}

func closureDrop(ctx context.Context, d *Detector) func() int {
	// The literal captures ctx from the enclosing signature, so calls
	// inside it still count as dropping it.
	return func() int {
		return d.Detect(1) // want `call to Detect drops ctx; DetectCtx accepts a context`
	}
}

func closureOwnCtx(ctx context.Context, d *Detector) func(context.Context) int {
	return func(inner context.Context) int {
		return d.DetectCtx(inner, 1) // ok: literal rebinds its own ctx
	}
}

func shadowed(ctx context.Context, xs []int) int {
	total := 0
	for _, ctx := range xs { // want `ctx shadows the context parameter with a non-context int`
		total += ctx
	}
	return total
}

func rederived(ctx context.Context, n int) int {
	ctx, cancel := context.WithCancel(ctx) // ok: still a context
	defer cancel()
	return WorkContext(ctx, n)
}

func suppressedMint() context.Context {
	//hyperearvet:allow ctxflow detached audit trail must outlive any request
	return context.Background()
}
