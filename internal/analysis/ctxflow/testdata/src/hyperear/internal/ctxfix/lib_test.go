package ctxfix

import "context"

// Test files are exempt from the mint rule (tests legitimately build
// fresh roots), but the drop rule still applies to ctx-bearing helpers.
func helperMint() int {
	ctx := context.Background() // ok: _test.go
	return WorkContext(ctx, 1)
}

func helperDrop(ctx context.Context) int {
	return Work(2) // want `call to Work drops ctx; WorkContext accepts a context`
}
