package ctxflow_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "hyperear/internal/ctxfix", "app")
}
