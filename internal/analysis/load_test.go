package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns
// its root. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A module-internal import of a package that does not exist must load
// with type errors attached, not fail the whole run: `go list -e`
// tolerates it and the type checker's diagnostics land in TypeErrors
// for the driver to surface as warnings.
func TestLoadBrokenImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module brokenmod\n\ngo 1.22\n",
		"a.go":   "package a\n\nimport \"brokenmod/missing\"\n\nvar _ = missing.X\n",
	})
	pkgs, err := Load(token.NewFileSet(), dir, false, "./...")
	if err != nil {
		t.Fatalf("Load: %v (broken imports should degrade to TypeErrors, not fail)", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) == 0 {
		t.Fatalf("package with missing import loaded without TypeErrors")
	}
}

// A syntax error in a listed file is a hard load failure: nothing can
// be type-checked, so Load must report which package failed.
func TestLoadParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module parsefail\n\ngo 1.22\n",
		"a.go":   "package a\n\nfunc broken( {\n",
	})
	_, err := Load(token.NewFileSet(), dir, false, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a file with a syntax error")
	}
	if !strings.Contains(err.Error(), "parsefail") {
		t.Fatalf("error does not name the failing package: %v", err)
	}
}

// go list itself failing (here: module dir does not exist) must come
// back as an error naming go list, not a panic or empty result.
func TestLoadGoListFailure(t *testing.T) {
	_, err := Load(token.NewFileSet(), filepath.Join(t.TempDir(), "nope"), false, "./...")
	if err == nil {
		t.Fatal("Load succeeded with a nonexistent module directory")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Fatalf("error does not mention go list: %v", err)
	}
}

// CheckVetPackage with no export data for an import must fail with a
// diagnostic: the vet driver feeds PackageFile from the vet config, and
// a gap there (stale cache, truncated config) should name the import it
// could not resolve.
func TestCheckVetPackageMissingExportData(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"fmt\"\n\nfunc F() { fmt.Println() }\n",
	})
	_, err := CheckVetPackage(token.NewFileSet(), "vetmod/a",
		[]string{filepath.Join(dir, "a.go")}, nil, map[string]string{})
	if err == nil {
		t.Fatal("CheckVetPackage succeeded without export data for fmt")
	}
	if !strings.Contains(err.Error(), "fmt") {
		t.Fatalf("error does not name the unresolved import: %v", err)
	}
}

// CheckVetPackage must honor the vet config's ImportMap: the same
// missing-export failure, but routed through a test-variant redirect,
// should report the mapped path so the operator sees what was actually
// looked up.
func TestCheckVetPackageImportMapRedirect(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"other/pkg\"\n\nvar _ = pkg.X\n",
	})
	_, err := CheckVetPackage(token.NewFileSet(), "vetmod/a",
		[]string{filepath.Join(dir, "a.go")},
		map[string]string{"other/pkg": "other/pkg [other/pkg.test]"},
		map[string]string{})
	if err == nil {
		t.Fatal("CheckVetPackage succeeded without export data for redirected import")
	}
	if !strings.Contains(err.Error(), "other/pkg [other/pkg.test]") {
		t.Fatalf("error does not show the ImportMap-redirected path: %v", err)
	}
}
