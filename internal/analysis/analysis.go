// Package analysis is a stdlib-only reimplementation of the slice of
// golang.org/x/tools/go/analysis that the hyperearvet lint suite needs:
// an Analyzer value (name, doc, Run func), a per-package Pass carrying
// parsed files plus full go/types information, and plain Diagnostics.
//
// The x/tools module is deliberately not a dependency: the build
// environment is offline, so the loader (load.go) recovers type
// information from the toolchain's own export data via
// `go list -export` and go/importer instead of go/packages.
//
// Analyzer authors get the same shape they would upstream: walk
// pass.Files, consult pass.TypesInfo, call pass.Reportf. Suppression
// comments (suppress.go) are applied centrally by Run (run.go), never
// by individual analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named invariant check.
type Analyzer struct {
	// Name is the short rule name used in diagnostics
	// ("poolleak") and in hyperearvet:allow suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
	// Facts, when set, extracts the analyzer's exported facts from one
	// package (see FactStore): a flat string map such as
	// "session.det1" → "mu" or "Correlator.CorrelateInto" → "zeroalloc".
	// It runs for every package before any Run and must derive its
	// result from the package's own syntax and types alone.
	Facts func(*Pass) map[string]string
}

// Pass carries one package's syntax and types to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// TypesInfo has Types, Defs, Uses and Selections filled in.
	TypesInfo *types.Info
	// PkgPath is the package's import path. Test variants keep the
	// plain path ("hyperear/internal/obs", not the bracketed go list
	// display form).
	PkgPath string

	report func(Diagnostic)
	facts  FactStore
}

// PackageFacts returns the running analyzer's facts previously
// exported for the package with the given import path, or nil. During
// Run the store covers every package the driver loaded (standalone) or
// every dependency's .vetx payload (go vet), including the current
// package's own facts.
func (p *Pass) PackageFacts(pkgPath string) map[string]string {
	return p.facts[pkgPath][p.Analyzer.Name]
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Rule: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// FuncHasDirective reports whether the function declaration's doc
// comment carries the given //hyperearvet:<name> marker directive
// (e.g. "pooled", "epsilon").
func (p *Pass) FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// PkgHasDirective reports whether any file in the package carries a
// package-scoped //hyperearvet:<name> directive in its package doc or
// as a standalone comment.
func (p *Pass) PkgHasDirective(name string) bool {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if directiveName(c.Text) == name {
					return true
				}
			}
		}
	}
	return false
}

// directiveName extracts "<name>" from a "//hyperearvet:<name> ..."
// comment, or returns "".
func directiveName(text string) string {
	rest, ok := strings.CutPrefix(text, "//"+directivePrefix)
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(rest, " ")
	return strings.TrimSpace(name)
}

const directivePrefix = "hyperearvet:"
