package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestSuppressionCoversSameAndPreviousLine(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	_ = 1 //hyperearvet:allow demo inline justification
	//hyperearvet:allow demo line-above justification
	_ = 2
}
`)
	var malformed []Diagnostic
	sups := collectSuppressions(fset, []*ast.File{f}, func(d Diagnostic) { malformed = append(malformed, d) })
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", malformed)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(sups))
	}
	// Line 4 carries the inline suppression; line 6 sits under the
	// line-above suppression on line 5.
	for _, line := range []int{4, 6} {
		d := Diagnostic{Pos: posOnLine(fset, f, line), Rule: "demo"}
		if !suppressed(fset, d, sups) {
			t.Errorf("diagnostic on line %d not suppressed", line)
		}
	}
	for _, s := range sups {
		if !s.used {
			t.Errorf("suppression on line %d not marked used", s.line)
		}
	}
	// A different rule on the same line is not covered.
	d := Diagnostic{Pos: posOnLine(fset, f, 4), Rule: "other"}
	if suppressed(fset, d, sups) {
		t.Error("suppression leaked across rules")
	}
}

func TestMalformedSuppressionReported(t *testing.T) {
	fset, f := parseSrc(t, `package p

//hyperearvet:allow demo
func f() {}

//hyperearvet:allow
func g() {}
`)
	var malformed []Diagnostic
	sups := collectSuppressions(fset, []*ast.File{f}, func(d Diagnostic) { malformed = append(malformed, d) })
	if len(sups) != 0 {
		t.Fatalf("malformed directives must not register suppressions, got %d", len(sups))
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2", len(malformed))
	}
	for _, d := range malformed {
		if d.Rule != "suppress" || !strings.Contains(d.Message, "malformed suppression") {
			t.Errorf("unexpected diagnostic: %+v", d)
		}
	}
}

func TestDirectiveName(t *testing.T) {
	cases := map[string]string{
		"//hyperearvet:pooled":                "pooled",
		"//hyperearvet:epsilon trailing note": "epsilon",
		"// hyperearvet:pooled":               "", // directives are unspaced, like //go:build
		"//hyperearvet:":                      "",
		"// ordinary comment":                 "",
	}
	for text, want := range cases {
		if got := directiveName(text); got != want {
			t.Errorf("directiveName(%q) = %q, want %q", text, got, want)
		}
	}
}

// posOnLine returns some token.Pos on the given line of the file.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}
