// Package a exercises the unitmix analyzer: additive/comparison
// arithmetic between identifiers of different unit families.
package a

// Config carries the usual suffix conventions.
type Config struct {
	SampleRate   float64
	WindowSec    float64
	BandMarginHz float64
	RangeM       float64
}

func mixes(cfg Config) {
	durSamples := 441.0
	durSec := 0.01
	offsetHz := 100.0
	distM := 1.5
	speedMps := 0.2
	latencyNS := int64(100)
	budgetMs := int64(3)

	_ = durSamples + durSec  // want `durSamples \(samples\) \+ durSec \(sec\) mixes unit families`
	_ = distM - speedMps     // want `distM \(m\) - speedMps \(m/s\) mixes unit families`
	_ = offsetHz + distM     // want `offsetHz \(hz\) \+ distM \(m\) mixes unit families`
	_ = latencyNS + budgetMs // want `latencyNS \(ns\) \+ budgetMs \(ms\) mixes unit families`

	if durSamples > durSec { // want `durSamples \(samples\) > durSec \(sec\) mixes unit families`
		_ = durSamples
	}
	if cfg.WindowSec == durSamples { // want `WindowSec \(sec\) == durSamples \(samples\) mixes unit families`
		_ = durSec
	}

	durSamples = durSec // want `assigning durSec \(sec\) to durSamples \(samples\) mixes unit families`

	// ok: same family.
	_ = durSamples + 2*cfg.SampleRate*durSec // ok: conversion expression is not a bare identifier
	_ = cfg.WindowSec + durSec
	_ = cfg.BandMarginHz + offsetHz

	// ok: converting through SampleRate takes the operand out of
	// bare-identifier form.
	converted := durSec * cfg.SampleRate
	_ = durSamples + converted

	// ok: acronyms and unsuffixed names carry no unit.
	nPCM := 4.0
	total := 1.0
	_ = nPCM + total
	_ = nPCM + durSamples

	//hyperearvet:allow unitmix score accumulates weighted samples and seconds on purpose in this heuristic
	_ = durSamples + durSec

	//hyperearvet:allow unitmix this suppression never fires and must be reported stale // want `unused suppression for rule unitmix`
	_ = distM
}
