// Package unitmix defines an analyzer that catches arithmetic mixing
// the pipeline's unit families. HyperEar's bookkeeping moves between
// sample counts, seconds, Hertz, meters and angles constantly (ASP
// detects in samples, MSP segments in seconds, PDE/TTL reason in
// meters); the repo's convention is that unit-bearing identifiers carry
// a suffix (DurSamples, BandMarginHz, TrueDistanceM, YawErrDeg, DurNS).
//
// The analyzer flags additive (+, -) and comparison operators whose two
// operands are plain identifiers or selector chains carrying different
// unit suffixes, plus direct assignments between them. Any expression
// that converts — a multiply/divide by SampleRate and friends, or a
// helper call — is structurally exempt because its operand is no longer
// a bare identifier. That keeps the rule quiet on legitimate code and
// loud exactly where samples meet seconds without a conversion.
package unitmix

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"

	"hyperear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "unitmix",
	Doc:  "no additive or comparison arithmetic between identifiers of different unit families (Samples/Sec/Hz/M/Mps/Deg/Rad/NS/PPM/DB)",
	Run:  run,
}

// families maps identifier suffixes to unit families, tried
// longest-first so "Samples" wins over a bare trailing "s" and
// "DBPerM" over "M". Same-dimension-different-scale suffixes (Sec vs
// Ms vs NS) are distinct families on purpose: adding seconds to
// nanoseconds is exactly the class of bug this guards.
var families = []struct{ suffix, family string }{
	{"Samples", "samples"},
	{"Seconds", "sec"},
	{"Meters", "m"},
	{"DBPerM", "db/m"},
	{"Samp", "samples"},
	{"Secs", "sec"},
	{"Sec", "sec"},
	{"Mps", "m/s"},
	{"PPM", "ppm"},
	{"Deg", "deg"},
	{"Rad", "rad"},
	{"Hz", "hz"},
	{"NS", "ns"},
	{"Ms", "ms"},
	{"DB", "db"},
	{"M", "m"},
}

// unitOf classifies an identifier name, returning "" when no suffix
// matches. The character before the suffix must be a lowercase letter
// or digit, so acronyms like PCM and INFOCOM stay unitless.
func unitOf(name string) string {
	for _, f := range families {
		if !strings.HasSuffix(name, f.suffix) || len(name) <= len(f.suffix) {
			continue
		}
		prev := rune(name[len(name)-len(f.suffix)-1])
		if unicode.IsLower(prev) || unicode.IsDigit(prev) {
			return f.family
		}
	}
	return ""
}

// unitOfExpr classifies a bare operand: an identifier or a selector
// chain (cfg.BandMarginHz). Anything else — calls, arithmetic, index
// expressions — is treated as a conversion site and returns "".
func unitOfExpr(e ast.Expr) (string, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return unitOf(e.Name), e.Name
	case *ast.SelectorExpr:
		return unitOf(e.Sel.Name), e.Sel.Name
	}
	return "", ""
}

var flaggedOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if !flaggedOps[e.Op] {
					return true
				}
				ux, nx := unitOfExpr(e.X)
				uy, ny := unitOfExpr(e.Y)
				if ux != "" && uy != "" && ux != uy {
					pass.Reportf(e.OpPos, "%s (%s) %s %s (%s) mixes unit families without a conversion", nx, ux, e.Op, ny, uy)
				}
			case *ast.AssignStmt:
				for i, lhs := range e.Lhs {
					if i >= len(e.Rhs) {
						break
					}
					ul, nl := unitOfExpr(lhs)
					ur, nr := unitOfExpr(e.Rhs[i])
					if ul != "" && ur != "" && ul != ur {
						pass.Reportf(e.Pos(), "assigning %s (%s) to %s (%s) mixes unit families without a conversion", nr, ur, nl, ul)
					}
				}
			}
			return true
		})
	}
	return nil
}
