package unitmix_test

import (
	"testing"

	"hyperear/internal/analysis/analysistest"
	"hyperear/internal/analysis/unitmix"
)

func TestUnitmix(t *testing.T) {
	analysistest.Run(t, "testdata", unitmix.Analyzer, "a")
}
