package experiment

import (
	"fmt"
	"math/rand"

	"hyperear/internal/core"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// ablationSpec builds the standard ablation workload: S4 on the ruler at
// 5 m, 5×55 cm slides, quiet room.
func ablationSpec(mutate func(*trialSpec)) trialSpec {
	spec := trialSpec{
		env:      room.MeetingRoom(),
		phone:    mic.GalaxyS4(),
		distance: 5,
		phoneZ:   1.2, speakerZ: 1.2,
		noise: room.WhiteNoise{}, snrDB: 15,
		protocol: sim.Protocol{
			SlideDist: 0.55,
			SlideDur:  1.0,
			HoldDur:   0.45,
			Slides:    5,
			Mode:      sim.ModeRuler,
		},
	}
	if mutate != nil {
		mutate(&spec)
	}
	return spec
}

// runAblation evaluates one condition.
func runAblation(opt Options, label, paper string, seedOff int64, mutate func(*trialSpec)) Condition {
	errs, failed := runTrials(opt, opt.Seed+seedOff,
		func(_ int, rng *rand.Rand) (float64, error) {
			return runTrial(ablationSpec(mutate), rng)
		})
	return Condition{Label: label, Errors: errs, Failed: failed, Paper: paper}
}

// RunAblations benchmarks the design choices the paper motivates: SFO
// correction, the eq. (4) drift correction, in-direction operation, and
// aggregation width. Each figure pairs the full system with one component
// removed on the standard 5 m ruler workload.
func RunAblations(opt Options) []Figure {
	return []Figure{
		RunAblationSFO(opt),
		RunAblationDrift(opt),
		RunAblationDirection(opt),
		RunAblationAggregation(opt),
	}
}

// RunAblationSFO compares localization with and without SFO correction
// under a fixed 60 ppm speaker clock skew.
func RunAblationSFO(opt Options) Figure {
	fig := Figure{
		ID:    "abl-sfo",
		Title: "Ablation: SFO correction (60 ppm speaker skew, ruler @5m)",
	}
	fig.Conditions = append(fig.Conditions,
		runAblation(opt, "with SFO correction", "", 1000, func(s *trialSpec) {
			s.skewPPM = 60
		}),
		runAblation(opt, "without SFO correction", "n·δT·S error ≈ 4cm/period@60ppm", 1000, func(s *trialSpec) {
			s.skewPPM = 60
			s.pipeline = func(cfg *core.Config) { cfg.ASP.DisableSFOCorrection = true }
		}),
	)
	return fig
}

// RunAblationDrift compares the eq. (4) velocity drift correction against
// raw double integration with a strongly biased accelerometer.
func RunAblationDrift(opt Options) Figure {
	fig := Figure{
		ID:    "abl-drift",
		Title: "Ablation: zero-velocity drift correction (biased IMU, ruler @5m)",
	}
	biased := func(s *trialSpec) {
		cfg := defaultIMUWithBias(0.08)
		s.imuConfig = &cfg
		// Drift can push slide-length estimates below 50 cm; keep the
		// comparison about displacement accuracy, not the gate.
		prev := s.pipeline
		s.pipeline = func(c *core.Config) {
			if prev != nil {
				prev(c)
			}
			c.PDE.MinSlideDist = 0
		}
	}
	fig.Conditions = append(fig.Conditions,
		runAblation(opt, "with drift correction", "", 2000, biased),
		runAblation(opt, "raw double integration", "linear drift uncorrected", 2000, func(s *trialSpec) {
			biased(s)
			prev := s.pipeline
			s.pipeline = func(c *core.Config) {
				prev(c)
				c.DisableDriftCorrection = true
			}
		}),
	)
	return fig
}

// RunAblationDirection quantifies the value of the SDF stage: slides taken
// with the speaker 0°/20°/45° off the broadside in-direction orientation.
func RunAblationDirection(opt Options) Figure {
	fig := Figure{
		ID:    "abl-direction",
		Title: "Ablation: residual direction-finding error (ruler @5m)",
		Notes: []string{"in-direction operation puts the speaker in the densest hyperbola region (Fig 4a)"},
	}
	for _, deg := range []float64{0, 20, 45} {
		deg := deg
		fig.Conditions = append(fig.Conditions,
			runAblation(opt, fmt.Sprintf("yaw error %g°", deg), "", 3000+int64(deg), func(s *trialSpec) {
				s.protocol.YawErrDeg = deg
			}),
		)
	}
	return fig
}

// RunAblationAggregation sweeps the number of aggregated slides (the
// paper's full system aggregates 5).
func RunAblationAggregation(opt Options) Figure {
	fig := Figure{
		ID:    "abl-agg",
		Title: "Ablation: slides aggregated per session (ruler @5m)",
	}
	for _, n := range []int{1, 3, 5, 9} {
		n := n
		fig.Conditions = append(fig.Conditions,
			runAblation(opt, fmt.Sprintf("%d slides", n), "", 4000+int64(n), func(s *trialSpec) {
				s.protocol.Slides = n
			}),
		)
	}
	return fig
}

func defaultIMUWithBias(bias float64) imu.Config {
	cfg := imu.DefaultConfig()
	cfg.AccelBiasStd = bias
	return cfg
}
