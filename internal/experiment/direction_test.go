package experiment

import (
	"strings"
	"testing"
)

func TestRunDirectionComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunDirectionComparison(Options{Trials: 2, Seed: 3})
	if len(fig.Conditions) != 2 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	joined := strings.Join(fig.Notes, " ")
	if !strings.Contains(joined, "SDF:") || !strings.Contains(joined, "Doppler:") {
		t.Errorf("notes missing summaries: %v", fig.Notes)
	}
	if len(fig.Conditions[0].Series)+fig.Conditions[0].Failed != 2 {
		t.Errorf("SDF trials unaccounted: %+v", fig.Conditions[0])
	}
}

func TestRunBaselineComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunBaselineComparison(Options{Trials: 2, Seed: 4})
	if len(fig.Conditions) != 8 {
		t.Fatalf("conditions = %d, want 8", len(fig.Conditions))
	}
	// At 5 m HyperEar must beat the naive scheme decisively.
	var naive5, he5 float64
	for _, c := range fig.Conditions {
		switch c.Label {
		case "naive @5m":
			naive5 = c.Summary().Mean
		case "HyperEar @5m":
			he5 = c.Summary().Mean
		}
	}
	if naive5 == 0 || he5 == 0 {
		t.Fatalf("missing conditions: %+v", fig.Conditions)
	}
	if he5 > naive5/3 {
		t.Errorf("HyperEar @5m = %v should beat naive %v by ≥3x", he5, naive5)
	}
}
