package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/doppler"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
	"hyperear/internal/sim"
	"hyperear/internal/stats"
)

// RunDirectionComparison pits HyperEar's SDF (inter-mic TDoA zero
// crossing during a rotation sweep) against the related-work Doppler
// approach (Shake-and-Walk-style radial-speed projections from two slide
// directions) on identical geometries. Errors are bearing errors in
// DEGREES, reported through the figure notes; the Series hold per-trial
// values (X = trial index, Y = degrees).
func RunDirectionComparison(opt Options) Figure {
	fig := Figure{
		ID:    "cmp-direction",
		Title: "Direction finding: SDF (TDoA zero crossing) vs Doppler baseline (degrees)",
	}
	env := room.MeetingRoom()
	phone := mic.GalaxyS4()
	src := chirp.Default()

	sdfErrs := make([]float64, 0, opt.Trials)
	dopErrs := make([]float64, 0, opt.Trials)
	sdfCond := Condition{Label: "SDF bearing error (deg)"}
	dopCond := Condition{Label: "Doppler bearing error (deg)", Paper: "Shake&Walk reports <3° at 32m; WalkieLokie sub-meter over tens of m"}

	rng := rand.New(rand.NewSource(opt.Seed + 900))
	for trial := 0; trial < opt.Trials; trial++ {
		phonePos, spkPos := placeInRoom(env, 5, 1.2, 1.2, rng)
		trueBearing := sim.BroadsideYaw(phonePos, spkPos)

		if e, err := sdfBearingError(env, phone, src, phonePos, spkPos, trueBearing, rng.Int63()); err == nil {
			sdfErrs = append(sdfErrs, e)
			sdfCond.Series = append(sdfCond.Series, Point{X: float64(trial), Y: e})
		} else {
			sdfCond.Failed++
		}
		if e, err := dopplerBearingError(env, phone, src, phonePos, spkPos, trueBearing, rng.Int63()); err == nil {
			dopErrs = append(dopErrs, e)
			dopCond.Series = append(dopCond.Series, Point{X: float64(trial), Y: e})
		} else {
			dopCond.Failed++
		}
	}
	fig.Conditions = append(fig.Conditions, sdfCond, dopCond)
	s1 := stats.Summarize(sdfErrs)
	s2 := stats.Summarize(dopErrs)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("SDF: n=%d mean=%.1f° p90=%.1f°", s1.N, s1.Mean, s1.P90),
		fmt.Sprintf("Doppler: n=%d mean=%.1f° p90=%.1f°", s2.N, s2.Mean, s2.P90),
		"SDF's zero-crossing fix is the paper's §IV contribution; the Doppler",
		"baseline stands in for the related-work systems of §VIII.")
	return fig
}

func sdfBearingError(env room.Environment, phone mic.Phone, src chirp.Params,
	phonePos, spkPos geom.Vec3, trueBearing float64, seed int64) (float64, error) {
	traj, err := sim.RotationSweep(phonePos, 8)
	if err != nil {
		return 0, err
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env: env, Source: src, SourcePos: spkPos,
		Phone: phone, Traj: traj,
		Noise: room.WhiteNoise{}, SNRdB: 15, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = seed + 1
	trace, err := imu.Sample(traj, imuCfg)
	if err != nil {
		return 0, err
	}
	asp, err := core.NewASP(src, phone.SampleRate, core.DefaultASPConfig())
	if err != nil {
		return 0, err
	}
	res, err := asp.Process(rec)
	if err != nil {
		return 0, err
	}
	yaws := imu.IntegrateYaw(trace, 0)
	yawAt := func(t float64) float64 {
		i := int(t * trace.Fs)
		if i < 0 {
			i = 0
		}
		if i >= len(yaws) {
			i = len(yaws) - 1
		}
		return yaws[i]
	}
	sdf := core.FindDirection(res.Beacons, yawAt, +1)
	if len(sdf.Fixes) == 0 {
		return 0, fmt.Errorf("no SDF fixes")
	}
	best := math.Inf(1)
	for _, f := range sdf.Fixes {
		if d := math.Abs(geom.WrapAngle(f.BearingWorld - trueBearing)); d < best {
			best = d
		}
	}
	return geom.Degrees(best), nil
}

func dopplerBearingError(env room.Environment, phone mic.Phone, src chirp.Params,
	phonePos, spkPos geom.Vec3, trueBearing float64, seed int64) (float64, error) {
	est, err := doppler.NewEstimator(src, phone.SampleRate, doppler.DefaultConfig())
	if err != nil {
		return 0, err
	}
	slide := func(yaw float64) (vr, v float64, err error) {
		traj, err := motion.NewBuilder(phonePos, yaw).
			Hold(0.5).Slide(0.55, 1.0).Hold(0.5).Build()
		if err != nil {
			return 0, 0, err
		}
		rec, rerr := mic.Render(mic.RenderConfig{
			Env: env, Source: src, SourcePos: spkPos,
			Phone: phone, Traj: traj,
			Noise: room.WhiteNoise{}, SNRdB: 15, Seed: seed,
		})
		if rerr != nil {
			return 0, 0, rerr
		}
		ms := est.Measure(rec.Mic1, 0.8, 1.2)
		if len(ms) == 0 {
			return 0, 0, fmt.Errorf("no mid-slide measurements")
		}
		best := ms[0]
		for _, m := range ms {
			if math.Abs(m.Time-1.0) < math.Abs(best.Time-1.0) {
				best = m
			}
		}
		return best.RadialSpeed, traj.Pose(best.Time).Vel.Norm(), nil
	}
	// Slide along world +x (yaw -π/2: body +y points at +x), then +y.
	vr1, v1, err := slide(-math.Pi / 2)
	if err != nil {
		return 0, err
	}
	vr2, v2, err := slide(0)
	if err != nil {
		return 0, err
	}
	bearing, err := doppler.BearingFromProjections(geom.Vec2{X: 1}, geom.Vec2{Y: 1}, vr1, v1, vr2, v2)
	if err != nil {
		return 0, err
	}
	return geom.Degrees(math.Abs(geom.WrapAngle(bearing - trueBearing))), nil
}
