package experiment

import (
	"fmt"
	"math/rand"

	"hyperear/internal/baseline"
	"hyperear/internal/core"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// RunBaselineComparison pits the §II naive scheme (single-position
// quantized TDoA + known 30 cm phone move) against full HyperEar sessions
// at matched distances — the motivating comparison behind Figures 2 and 3.
// The naive scheme gets *idealized* conditions (exact displacement
// knowledge, no noise beyond ADC quantization); HyperEar runs the full
// noisy simulation. It still loses badly beyond 2 m.
func RunBaselineComparison(opt Options) Figure {
	fig := Figure{
		ID:    "cmp-baseline",
		Title: "Naive quantized-TDoA scheme vs HyperEar (ruler, matched distances)",
		Notes: []string{
			"naive scheme is idealized (exact move, quantization only); HyperEar runs the full noisy pipeline",
		},
	}
	cfg := baseline.DefaultConfig()
	rng := rand.New(rand.NewSource(opt.Seed + 500))
	for _, r := range []float64{1, 3, 5, 7} {
		r := r
		naive := baseline.Sweep(cfg, r, opt.Trials*20, rng)
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("naive @%gm", r),
			Errors: naive.Sample,
			Failed: naive.Failed,
		})

		errs, failed := runTrials(opt, opt.Seed+int64(r*17),
			func(_ int, rng *rand.Rand) (float64, error) {
				spec := trialSpec{
					env:      room.MeetingRoom(),
					phone:    mic.GalaxyS4(),
					distance: r,
					phoneZ:   1.2, speakerZ: 1.2,
					noise: room.WhiteNoise{}, snrDB: 15,
					protocol: sim.Protocol{
						SlideDist: 0.55,
						SlideDur:  1.0,
						HoldDur:   0.45,
						Slides:    5,
						Mode:      sim.ModeRuler,
					},
					pipeline: func(c *core.Config) {},
				}
				return runTrial(spec, rng)
			})
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("HyperEar @%gm", r),
			Errors: errs,
			Failed: failed,
		})
	}
	return fig
}
