package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// trialSpec describes one randomized localization trial.
type trialSpec struct {
	env       room.Environment
	phone     mic.Phone
	distance  float64 // horizontal speaker distance in meters
	protocol  sim.Protocol
	noise     room.NoiseSource
	snrDB     float64
	speakerZ  float64 // speaker height (0 = same as phone)
	phoneZ    float64
	threeD    bool // run Locate3D instead of Locate2D
	pipeline  func(cfg *core.Config)
	skewPPM   float64
	imuConfig *imu.Config
}

// placeInRoom draws a phone position and a speaker position the given
// horizontal distance apart, both inside the room with a wall margin.
func placeInRoom(env room.Environment, dist, phoneZ, speakerZ float64, rng *rand.Rand) (phonePos, spkPos geom.Vec3) {
	const margin = 1.0
	for attempt := 0; attempt < 1000; attempt++ {
		px := margin + rng.Float64()*(env.Size.X-2*margin)
		py := margin + rng.Float64()*(env.Size.Y-2*margin)
		theta := rng.Float64() * 2 * math.Pi
		sx := px + dist*math.Cos(theta)
		sy := py + dist*math.Sin(theta)
		if sx < margin || sx > env.Size.X-margin || sy < margin || sy > env.Size.Y-margin {
			continue
		}
		return geom.Vec3{X: px, Y: py, Z: phoneZ}, geom.Vec3{X: sx, Y: sy, Z: speakerZ}
	}
	// Fallback: center placement along x.
	cy := env.Size.Y / 2
	return geom.Vec3{X: margin, Y: cy, Z: phoneZ},
		geom.Vec3{X: margin + dist, Y: cy, Z: speakerZ}
}

// runTrial renders one randomized session and returns the localization
// error in meters (projected for 3D trials).
func runTrial(spec trialSpec, rng *rand.Rand) (float64, error) {
	phonePos, spkPos := placeInRoom(spec.env, spec.distance, spec.phoneZ, spec.speakerZ, rng)
	imuCfg := imu.DefaultConfig()
	if spec.imuConfig != nil {
		imuCfg = *spec.imuConfig
	}
	skew := spec.skewPPM
	if skew == 0 {
		skew = -30 + 60*rng.Float64() // typical consumer clock spread
	}
	sc := sim.Scenario{
		Env:            spec.env,
		Phone:          spec.phone,
		Source:         chirp.Default(),
		SpeakerPos:     spkPos,
		SpeakerSkewPPM: skew,
		PhoneStart:     phonePos,
		Protocol:       spec.protocol,
		IMU:            imuCfg,
		Noise:          spec.noise,
		SNRdB:          spec.snrDB,
		Seed:           rng.Int63(),
	}
	s, err := sim.Run(sc)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultConfig(sc.Source, spec.phone.SampleRate, spec.phone.MicSeparation)
	if spec.pipeline != nil {
		spec.pipeline(&cfg)
	}
	loc, err := core.NewLocalizer(cfg)
	if err != nil {
		return 0, err
	}
	believedYaw := s.TrueYaw - geom.Radians(sc.Protocol.YawErrDeg)
	toWorld := func(p geom.Vec2) geom.Vec2 {
		return sc.PhoneStart.XY().Add(p.Rotate(believedYaw))
	}
	if spec.threeD {
		res, err := loc.Locate3D(s.Recording, s.IMU)
		if err != nil {
			return 0, err
		}
		est := toWorld(res.ProjectedPos)
		return est.Dist(spkPos.XY()), nil
	}
	res, err := loc.Locate2D(s.Recording, s.IMU)
	if err != nil {
		return 0, err
	}
	est := toWorld(res.Pos)
	return est.Dist(spkPos.XY()), nil
}

// slideDuration keeps the commanded peak velocity at ≈1 m/s across slide
// lengths (short slides are quicker), bounded below for realism.
func slideDuration(dist float64) float64 {
	d := 1.875 * dist // min-jerk peak velocity = 1.875·d/T = 1 m/s
	if d < 0.4 {
		return 0.4
	}
	return d
}

// RunFig14 reproduces Figure 14: CDFs of 2D localization error for slide
// buckets 10-20 / 30-40 / 40-50 / 50-60 cm with the Note3 on a slide
// ruler, speaker 5 m away. The paper reports mean error falling from
// 142 cm (10-20 cm slides) to 18 cm (50-60 cm slides).
func RunFig14(opt Options) Figure {
	fig := Figure{
		ID:    "fig14",
		Title: "2D error vs sliding distance, Note3 on slide ruler @5m",
		Notes: []string{"slide-length gate disabled: short slides are the subject here"},
	}
	buckets := []struct {
		lo, hi float64
		paper  string
	}{
		{0.10, 0.20, "mean ≈142cm"},
		{0.30, 0.40, ""},
		{0.40, 0.50, ""},
		{0.50, 0.60, "mean ≈18cm"},
	}
	for _, b := range buckets {
		lo, hi := b.lo, b.hi
		errs, failed := runTrials(opt, opt.Seed+int64(lo*1000),
			func(_ int, rng *rand.Rand) (float64, error) {
				dist := lo + (hi-lo)*rng.Float64()
				spec := trialSpec{
					env:      room.MeetingRoom(),
					phone:    mic.GalaxyNote3(),
					distance: 5,
					phoneZ:   1.2, speakerZ: 1.2,
					noise: room.WhiteNoise{}, snrDB: 15,
					protocol: sim.Protocol{
						SlideDist: dist,
						SlideDur:  slideDuration(dist),
						HoldDur:   0.45,
						Slides:    5,
						Mode:      sim.ModeRuler,
					},
					pipeline: func(cfg *core.Config) { cfg.PDE.MinSlideDist = 0 },
				}
				return runTrial(spec, rng)
			})
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("sliding %.0f-%.0fcm", lo*100, hi*100),
			Errors: errs,
			Failed: failed,
			Paper:  b.paper,
		})
	}
	return fig
}

// distanceFigure runs the Fig 15/16 protocol for one phone: 50-60 cm
// ruler slides, speaker distance 1-7 m, 2D error CDFs.
func distanceFigure(opt Options, id string, phone mic.Phone, paperAt map[float64]string) Figure {
	fig := Figure{
		ID:    id,
		Title: fmt.Sprintf("2D error vs speaker distance, %s on slide ruler (50-60cm slides)", phone.Name),
	}
	for _, r := range []float64{1, 2, 3, 5, 7} {
		r := r
		errs, failed := runTrials(opt, opt.Seed+int64(r*31),
			func(_ int, rng *rand.Rand) (float64, error) {
				dist := 0.50 + 0.10*rng.Float64()
				spec := trialSpec{
					env:      room.MeetingRoom(),
					phone:    phone,
					distance: r,
					phoneZ:   1.2, speakerZ: 1.2,
					noise: room.WhiteNoise{}, snrDB: 15,
					protocol: sim.Protocol{
						SlideDist: dist,
						SlideDur:  slideDuration(dist),
						HoldDur:   0.45,
						Slides:    5,
						Mode:      sim.ModeRuler,
					},
				}
				return runTrial(spec, rng)
			})
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("%gm", r),
			Errors: errs,
			Failed: failed,
			Paper:  paperAt[r],
		})
	}
	return fig
}

// RunFig15 reproduces Figure 15 (Galaxy S4 on the ruler; paper: mean
// 2.0 cm / p90 3.5 cm at 1 m, 14.4 cm / 22.3 cm at 7 m).
func RunFig15(opt Options) Figure {
	return distanceFigure(opt, "fig15", mic.GalaxyS4(), map[float64]string{
		1: "mean 2.0cm, p90 3.5cm",
		7: "mean 14.4cm, p90 22.3cm",
	})
}

// RunFig16 reproduces Figure 16 (Galaxy Note3 on the ruler; the paper
// finds it slightly worse than the S4).
func RunFig16(opt Options) Figure {
	return distanceFigure(opt, "fig16", mic.GalaxyNote3(), map[float64]string{
		7: "slightly worse than S4",
	})
}

// threeDFigure runs the Fig 17/18 protocol for one phone: free-hand
// two-stature sessions (5 slides per stature), projected error.
func threeDFigure(opt Options, id string, phone mic.Phone, paperAt map[float64]string) Figure {
	fig := Figure{
		ID:    id,
		Title: fmt.Sprintf("3D (projected) error vs distance, %s in hand, 5-slide aggregation", phone.Name),
	}
	for _, r := range []float64{1, 2, 3, 5, 7} {
		r := r
		errs, failed := runTrials(opt, opt.Seed+int64(r*53),
			func(_ int, rng *rand.Rand) (float64, error) {
				spec := trialSpec{
					env:      room.MeetingRoom(),
					phone:    phone,
					distance: r,
					phoneZ:   1.0 + 0.4*rng.Float64(), // volunteer stature spread
					speakerZ: 0.5,                     // speaker tripod at 0.5 m (§VII-D)
					noise:    room.WhiteNoise{}, snrDB: 15,
					threeD: true,
					protocol: sim.Protocol{
						SlideDist:     0.55,
						SlideDur:      1.0,
						HoldDur:       0.45,
						Slides:        10,
						Mode:          sim.ModeHand,
						StatureChange: 0.35 + 0.15*rng.Float64(),
					},
				}
				return runTrial(spec, rng)
			})
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("%gm", r),
			Errors: errs,
			Failed: failed,
			Paper:  paperAt[r],
		})
	}
	return fig
}

// RunFig17 reproduces Figure 17 (S4 in hand; paper @7 m: mean 15.8 cm,
// p90 25.2 cm).
func RunFig17(opt Options) Figure {
	return threeDFigure(opt, "fig17", mic.GalaxyS4(), map[float64]string{
		7: "mean 15.8cm, p90 25.2cm",
	})
}

// RunFig18 reproduces Figure 18 (Note3 in hand; paper @7 m: mean 19.4 cm,
// p90 37.5 cm).
func RunFig18(opt Options) Figure {
	return threeDFigure(opt, "fig18", mic.GalaxyNote3(), map[float64]string{
		7: "mean 19.4cm, p90 37.5cm",
	})
}

// RunFig19 reproduces Figure 19: 3D error at 7 m across the four noise
// regimes. The paper's worst case (busy mall, SNR 3 dB) has mean 37.2 cm.
func RunFig19(opt Options) Figure {
	fig := Figure{
		ID:    "fig19",
		Title: "3D (projected) error @7m across noise regimes, S4 in hand",
	}
	regimes := []struct {
		regime room.Regime
		env    room.Environment
		paper  string
	}{
		{room.RegimeQuietRoom, room.MeetingRoom(), "mean ≈15.8cm (SNR > 15dB)"},
		{room.RegimeChatting, room.MeetingRoom(), "voice rejected by band-pass (SNR 9dB)"},
		{room.RegimeMallOffPeak, room.MallCorridor(), "good at SNR ≥ 6dB"},
		{room.RegimeMallBusy, room.MallCorridor(), "mean 37.2cm (SNR 3dB)"},
	}
	for _, rg := range regimes {
		rg := rg
		errs, failed := runTrials(opt, opt.Seed+int64(rg.regime)*101,
			func(_ int, rng *rand.Rand) (float64, error) {
				spec := trialSpec{
					env:      rg.env,
					phone:    mic.GalaxyS4(),
					distance: 7,
					phoneZ:   1.0 + 0.4*rng.Float64(),
					speakerZ: 1.2, // tripod (§VII-E)
					noise:    rg.regime.Source(),
					snrDB:    rg.regime.SNRdB(),
					threeD:   true,
					protocol: sim.Protocol{
						SlideDist:     0.55,
						SlideDur:      1.0,
						HoldDur:       0.45,
						Slides:        10,
						Mode:          sim.ModeHand,
						StatureChange: 0.35 + 0.15*rng.Float64(),
					},
				}
				return runTrial(spec, rng)
			})
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  rg.regime.String(),
			Errors: errs,
			Failed: failed,
			Paper:  rg.paper,
		})
	}
	return fig
}
