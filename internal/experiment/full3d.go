package experiment

import (
	"fmt"
	"math/rand"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// RunFull3DComparison compares the paper's two-stature projection (eq. 7,
// Locate3D) against the joint full-3D solver (LocateFull3D) on identical
// two-stature sessions: same recordings, same IMU traces, two estimators.
// The metric is the planar (floor-map) error; the full-3D solver also
// recovers height, which the projection method never attempts.
func RunFull3DComparison(opt Options) Figure {
	fig := Figure{
		ID:    "cmp-full3d",
		Title: "Two-stature projection (eq. 7) vs joint full-3D solve @5m, hand mode",
	}
	type pair struct{ proj, full float64 }
	results := make([]pair, opt.Trials)
	fails := make([]int, 2)

	env := room.MeetingRoom()
	phone := mic.GalaxyS4()
	rng := rand.New(rand.NewSource(opt.Seed + 700))
	for trial := 0; trial < opt.Trials; trial++ {
		phonePos, spkPos := placeInRoom(env, 5, 1.0+0.4*rng.Float64(), 0.5, rng)
		sc := sim.Scenario{
			Env:            env,
			Phone:          phone,
			Source:         chirp.Default(),
			SpeakerPos:     spkPos,
			SpeakerSkewPPM: -30 + 60*rng.Float64(),
			PhoneStart:     phonePos,
			Protocol: sim.Protocol{
				SlideDist:     0.55,
				SlideDur:      1.0,
				HoldDur:       0.45,
				Slides:        10,
				Mode:          sim.ModeHand,
				StatureChange: 0.35 + 0.15*rng.Float64(),
			},
			IMU:   imu.DefaultConfig(),
			Noise: room.WhiteNoise{},
			SNRdB: 15,
			Seed:  rng.Int63(),
		}
		s, err := sim.Run(sc)
		if err != nil {
			fails[0]++
			fails[1]++
			results[trial] = pair{-1, -1}
			continue
		}
		loc, err := core.NewLocalizer(core.DefaultConfig(sc.Source, phone.SampleRate, phone.MicSeparation))
		if err != nil {
			continue
		}
		toWorld := func(p geom.Vec2) geom.Vec2 {
			return sc.PhoneStart.XY().Add(p.Rotate(s.TrueYaw))
		}
		res := pair{-1, -1}
		if r3, err := loc.Locate3D(s.Recording, s.IMU); err == nil {
			res.proj = toWorld(r3.ProjectedPos).Dist(spkPos.XY())
		} else {
			fails[0]++
		}
		if rf, err := loc.LocateFull3D(s.Recording, s.IMU); err == nil {
			res.full = toWorld(rf.Pos.XY()).Dist(spkPos.XY())
		} else {
			fails[1]++
		}
		results[trial] = res
	}
	var projErrs, fullErrs []float64
	for _, r := range results {
		if r.proj >= 0 {
			projErrs = append(projErrs, r.proj)
		}
		if r.full >= 0 {
			fullErrs = append(fullErrs, r.full)
		}
	}
	fig.Conditions = append(fig.Conditions,
		Condition{Label: "projection (eq. 7)", Errors: projErrs, Failed: fails[0],
			Paper: "the paper's Locate3D path"},
		Condition{Label: "joint full-3D solve", Errors: fullErrs, Failed: fails[1],
			Paper: "also recovers speaker height"},
	)
	fig.Notes = append(fig.Notes, fmt.Sprintf("%d two-stature hand-mode sessions at 5 m", opt.Trials))
	return fig
}
