package experiment

import (
	"math/rand"
	"strings"
	"testing"

	"hyperear/internal/geom"
	"hyperear/internal/room"
	"hyperear/internal/stats"
)

// quickOpt keeps experiment tests fast: 2 trials per condition.
func quickOpt() Options {
	return Options{Trials: 2, Seed: 42}
}

func TestRunTrialsParallelDeterminism(t *testing.T) {
	run := func() ([]float64, int) {
		return runTrials(Options{Trials: 8, Parallelism: 4}, 7, func(trial int, rng *rand.Rand) (float64, error) {
			return float64(trial) + rng.Float64(), nil
		})
	}
	a, _ := run()
	b, _ := run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel trials must be deterministic per seed")
		}
	}
}

func TestRunTrialsCountsFailures(t *testing.T) {
	errs, failed := runTrials(Options{Trials: 5, Parallelism: 2}, 1, func(trial int, _ *rand.Rand) (float64, error) {
		if trial%2 == 0 {
			return 0, errFake
		}
		return 1, nil
	})
	if failed != 3 || len(errs) != 2 {
		t.Errorf("failed=%d errs=%d, want 3/2", failed, len(errs))
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestPlaceInRoom(t *testing.T) {
	env := room.MeetingRoom()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		p, s := placeInRoom(env, 7, 1.2, 0.5, rng)
		if !env.Contains(p) || !env.Contains(s) {
			t.Fatalf("placement outside room: %v %v", p, s)
		}
		if d := p.XY().Dist(s.XY()); d < 6.99 || d > 7.01 {
			t.Fatalf("distance %v, want 7", d)
		}
		if p.Z != 1.2 || s.Z != 0.5 {
			t.Fatalf("heights %v %v", p.Z, s.Z)
		}
	}
}

func TestPlaceInRoomFallback(t *testing.T) {
	// A distance that can never fit with margins triggers the fallback.
	env := room.Environment{Name: "tiny", Size: geom.Vec3{X: 4, Y: 4, Z: 3}}
	rng := rand.New(rand.NewSource(4))
	p, s := placeInRoom(env, 30, 1, 1, rng)
	if d := p.XY().Dist(s.XY()); d != 30 {
		t.Errorf("fallback distance %v, want 30", d)
	}
}

func TestSlideDuration(t *testing.T) {
	if got := slideDuration(0.55); got < 1.0 || got > 1.1 {
		t.Errorf("55cm duration = %v, want ≈1.03", got)
	}
	if got := slideDuration(0.1); got != 0.4 {
		t.Errorf("10cm duration = %v, want floor 0.4", got)
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID:    "figX",
		Title: "test",
		Conditions: []Condition{
			{Label: "a", Errors: []float64{0.1, 0.2}, Paper: "mean 15cm"},
			{Label: "b", Series: []Point{{X: 1, Y: 2}}},
		},
		Notes: []string{"hello"},
	}
	out := f.String()
	for _, want := range []string{"figX", "mean=15.0cm", "paper: mean 15cm", "note: hello", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	cdf := f.CDFReport(0.5)
	if !strings.Contains(cdf, "figX / a") {
		t.Errorf("CDFReport missing condition header:\n%s", cdf)
	}
}

func TestRunFig3(t *testing.T) {
	fig := RunFig3(Options{Trials: 3, Seed: 1})
	if len(fig.Conditions) != 5 {
		t.Fatalf("conditions = %d, want 5", len(fig.Conditions))
	}
	// Error must grow from 1 m to 5 m.
	e1 := fig.Conditions[0].Summary().Mean
	e5 := fig.Conditions[4].Summary().Mean
	if !(e5 > e1) {
		t.Errorf("naive error should grow: 1m=%v 5m=%v", e1, e5)
	}
	if !strings.Contains(fig.Notes[0], "N = 35") {
		t.Errorf("note should quote N=35: %v", fig.Notes)
	}
}

func TestRunFig4(t *testing.T) {
	fig := RunFig4(quickOpt())
	if len(fig.Conditions) != 2 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	// Broadside (90°) width with the wide baseline must be below the
	// narrow baseline's.
	mid := len(fig.Conditions[0].Series) / 2
	narrow := fig.Conditions[0].Series[mid].Y
	wide := fig.Conditions[1].Series[mid].Y
	if !(wide < narrow) {
		t.Errorf("wide baseline should be denser: %v vs %v", wide, narrow)
	}
}

func TestRunFig7(t *testing.T) {
	fig := RunFig7(quickOpt())
	if len(fig.Conditions) < 2 {
		t.Fatalf("conditions = %d (notes: %v)", len(fig.Conditions), fig.Notes)
	}
	meas := fig.Conditions[0].Series
	if len(meas) < 20 {
		t.Fatalf("measured series too short: %d", len(meas))
	}
	// In-direction fixes must appear in the notes.
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "in-direction fix") {
			found = true
		}
	}
	if !found {
		t.Errorf("no SDF fixes reported: %v", fig.Notes)
	}
}

func TestRunFig8(t *testing.T) {
	fig := RunFig8(quickOpt())
	if len(fig.Conditions) != 1 || len(fig.Conditions[0].Series) == 0 {
		t.Fatalf("unexpected conditions: %+v", fig.Conditions)
	}
	if !strings.Contains(strings.Join(fig.Notes, " "), "segments found: 3") {
		t.Errorf("expected 3 segments: %v", fig.Notes)
	}
}

func TestRunFig9(t *testing.T) {
	fig := RunFig9(quickOpt())
	if len(fig.Conditions) != 2 {
		t.Fatalf("conditions = %d (notes: %v)", len(fig.Conditions), fig.Notes)
	}
	// The corrected displacement note must be present.
	joined := strings.Join(fig.Notes, " ")
	if !strings.Contains(joined, "truth 0.550") {
		t.Errorf("notes missing displacement comparison: %v", fig.Notes)
	}
}

func TestRunFig14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunFig14(Options{Trials: 2, Seed: 5})
	if len(fig.Conditions) != 4 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	short := fig.Conditions[0].Summary()
	long := fig.Conditions[3].Summary()
	if short.N == 0 || long.N == 0 {
		t.Fatalf("missing samples: %+v", fig.Conditions)
	}
	if !(long.Mean < short.Mean) {
		t.Errorf("longer slides should be more accurate: 10-20cm=%v 50-60cm=%v",
			short.Mean, long.Mean)
	}
}

func TestRunFig15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunFig15(Options{Trials: 2, Seed: 6})
	if len(fig.Conditions) != 5 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	near := fig.Conditions[0].Summary() // 1 m
	far := fig.Conditions[4].Summary()  // 7 m
	if near.N == 0 || far.N == 0 {
		t.Fatalf("missing samples")
	}
	if !(near.Mean < far.Mean) {
		t.Errorf("near should beat far: 1m=%v 7m=%v", near.Mean, far.Mean)
	}
	if near.Mean > 0.15 {
		t.Errorf("1m mean = %v, want centimeters", near.Mean)
	}
}

func TestRunFig19Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunFig19(Options{Trials: 2, Seed: 7})
	if len(fig.Conditions) != 4 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	for _, c := range fig.Conditions {
		if len(c.Errors)+c.Failed != 2 {
			t.Errorf("%s: %d errors + %d failed != trials", c.Label, len(c.Errors), c.Failed)
		}
	}
}

func TestRunAblationDirectionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig := RunAblationDirection(Options{Trials: 2, Seed: 8})
	if len(fig.Conditions) != 3 {
		t.Fatalf("conditions = %d", len(fig.Conditions))
	}
	aligned := stats.Summarize(fig.Conditions[0].Errors)
	off45 := stats.Summarize(fig.Conditions[2].Errors)
	if aligned.N == 0 {
		t.Fatal("aligned condition has no samples")
	}
	// Off-direction should not be better than aligned (it may fail more).
	if off45.N > 0 && off45.Mean+0.02 < aligned.Mean {
		t.Errorf("45° off-direction unexpectedly better: %v vs %v", off45.Mean, aligned.Mean)
	}
}
