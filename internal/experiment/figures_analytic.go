package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/baseline"
	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
	"hyperear/internal/sim"
)

// RunFig3 reproduces the Section II-C / Figure 3 analysis: the naive
// two-microphone scheme's localization ambiguity grows dramatically with
// the speaker distance. The paper quotes errors up to 18.6 cm at 1 m and
// 266.7 cm at 5 m on a Galaxy S4.
func RunFig3(opt Options) Figure {
	cfg := baseline.DefaultConfig()
	rng := rand.New(rand.NewSource(opt.Seed))
	fig := Figure{
		ID:    "fig3",
		Title: "Naive two-mic scheme: error vs speaker distance (Monte Carlo)",
		Notes: []string{
			fmt.Sprintf("S4 distinguishable hyperbolas N = %d (paper: 35)",
				geom.DistinguishableHyperbolas(cfg.MicSeparation, cfg.SampleRate, cfg.SpeedOfSound)),
			fmt.Sprintf("TDoA resolution %.1f µs, Δd resolution %.2f mm (paper: ~23 µs, 7.78 mm)",
				geom.TDoAResolution(cfg.SampleRate)*1e6,
				geom.DeltaDResolution(cfg.SampleRate, cfg.SpeedOfSound)*1000),
		},
	}
	trials := opt.Trials * 30
	for _, r := range []float64{1, 2, 3, 4, 5} {
		e := baseline.Sweep(cfg, r, trials, rng)
		paper := ""
		switch r {
		case 1:
			paper = "error up to 18.6cm at 1m"
		case 5:
			paper = "error up to 266.7cm at 5m"
		}
		fig.Conditions = append(fig.Conditions, Condition{
			Label:  fmt.Sprintf("naive @%gm", r),
			Errors: e.Sample,
			Failed: e.Failed,
			Paper:  paper,
		})
	}
	return fig
}

// RunFig4 reproduces Figure 4: TDoA hyperbola regions are densest
// broadside (a), and widening the baseline D→D' shrinks them everywhere
// (b) — the two observations HyperEar's design rests on.
func RunFig4(Options) Figure {
	res := geom.DeltaDResolution(44100, geom.SpeedOfSound)
	fig := Figure{
		ID:    "fig4",
		Title: "Hyperbola region width (m) vs bearing at 3 m range",
	}
	for _, d := range []float64{0.1366, 0.55} {
		deg, width := geom.DensityProfile(d, res, 3, 18)
		cond := Condition{Label: fmt.Sprintf("D = %.0f cm", d*100)}
		if d > 0.2 {
			cond.Paper = "wider separation => denser hyperbolas (Fig 4b)"
		} else {
			cond.Paper = "dense broadside, sparse endfire (Fig 4a)"
		}
		for i := range deg {
			y := width[i]
			if math.IsInf(y, 1) {
				y = -1 // sentinel: region unbounded at this bearing
			}
			cond.Series = append(cond.Series, Point{X: deg[i], Y: y})
		}
		fig.Conditions = append(fig.Conditions, cond)
	}
	fig.Notes = append(fig.Notes,
		"width -1 marks bearings whose quantization region is unbounded",
		"sliding the phone 55 cm gives the same densification as a 55 cm mic baseline")
	return fig
}

// RunFig7 reproduces Figure 7: the measured TDoA as the phone rolls
// through 360°, crossing zero at the two in-direction angles. It runs a
// full simulated rotation sweep through the real ASP+SDF stages and pairs
// the measurement with the far-field envelope.
func RunFig7(opt Options) Figure {
	phone := mic.GalaxyS4()
	src := chirp.Default()
	phonePos := geom.Vec3{X: 6, Y: 6, Z: 1.2}
	spk := geom.Vec3{X: 11, Y: 6, Z: 1.2} // due +x: bearing 0

	fig := Figure{
		ID:    "fig7",
		Title: "TDoA vs rotation angle α during a 360° roll (speaker at 5 m)",
	}
	traj, err := sim.RotationSweep(phonePos, 8)
	if err != nil {
		fig.Notes = append(fig.Notes, "sweep build failed: "+err.Error())
		return fig
	}
	rec, err := mic.Render(mic.RenderConfig{
		Env: room.MeetingRoom(), Source: src, SourcePos: spk,
		Phone: phone, Traj: traj,
		Noise: room.WhiteNoise{}, SNRdB: 15, Seed: opt.Seed,
	})
	if err != nil {
		fig.Notes = append(fig.Notes, "render failed: "+err.Error())
		return fig
	}
	imuCfg := imu.DefaultConfig()
	imuCfg.Seed = opt.Seed + 1
	trace, err := imu.Sample(traj, imuCfg)
	if err != nil {
		fig.Notes = append(fig.Notes, "imu failed: "+err.Error())
		return fig
	}
	asp, err := core.NewASP(src, phone.SampleRate, core.DefaultASPConfig())
	if err != nil {
		fig.Notes = append(fig.Notes, "asp failed: "+err.Error())
		return fig
	}
	res, err := asp.Process(rec)
	if err != nil {
		fig.Notes = append(fig.Notes, "asp process failed: "+err.Error())
		return fig
	}
	yaws := imu.IntegrateYaw(trace, 0)
	yawAt := func(t float64) float64 {
		i := int(t * trace.Fs)
		if i < 0 {
			i = 0
		}
		if i >= len(yaws) {
			i = len(yaws) - 1
		}
		return yaws[i]
	}
	// Measured: TDoA per beacon against rotation angle α. With the
	// speaker at world bearing 0 and the phone yaw φ, the paper's α
	// (angle of the speaker from the body +y axis) is α = 90° - (-φ)
	// ... concretely ψ = bearing - φ = -φ and α = 90° - ψ·(180/π).
	meas := Condition{Label: "measured (ASP pipeline)", Paper: "zeros at 90° and 270°"}
	for _, b := range res.Beacons {
		psi := geom.WrapAngle(0 - yawAt(b.T1))
		alpha := 90 - geom.Degrees(psi)
		if alpha < 0 {
			alpha += 360
		}
		meas.Series = append(meas.Series, Point{X: alpha, Y: b.TDoA() * 1000})
	}
	fig.Conditions = append(fig.Conditions, meas)

	env := Condition{Label: "far-field envelope -(D/S)cos α (ms)"}
	alphaDeg, tdoas := core.TDoAEnvelope(phone.MicSeparation, room.MeetingRoom().SpeedOfSound(), 19)
	for i := range alphaDeg {
		env.Series = append(env.Series, Point{X: alphaDeg[i], Y: tdoas[i] * 1000})
	}
	fig.Conditions = append(fig.Conditions, env)

	// SDF zero crossings.
	sdf := core.FindDirection(res.Beacons, yawAt, +1)
	for _, f := range sdf.Fixes {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"SDF in-direction fix at t=%.2fs yaw=%.1f° bearing=%.1f° (true bearing 0°)",
			f.Time, geom.Degrees(f.Yaw), geom.Degrees(f.BearingWorld)))
	}
	return fig
}

// RunFig8 reproduces Figure 8: power-based movement segmentation of a
// back-and-forth slide session.
func RunFig8(opt Options) Figure {
	fig := Figure{
		ID:    "fig8",
		Title: "Movement segmentation from acceleration power (3 slides)",
	}
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(1).Slide(0.55, 1).Hold(0.6).Slide(-0.55, 1).Hold(0.6).Slide(0.55, 1).Hold(1).
		Build()
	if err != nil {
		fig.Notes = append(fig.Notes, "trajectory failed: "+err.Error())
		return fig
	}
	cfg := imu.DefaultConfig()
	cfg.Seed = opt.Seed
	trace, err := imu.Sample(traj, cfg)
	if err != nil {
		fig.Notes = append(fig.Notes, "imu failed: "+err.Error())
		return fig
	}
	msp, err := core.PreprocessIMU(trace, core.DefaultMSPConfig())
	if err != nil {
		fig.Notes = append(fig.Notes, "msp failed: "+err.Error())
		return fig
	}
	// Downsampled power curve.
	cond := Condition{Label: "power level (m/s²)², 10 Hz samples"}
	for i := 0; i < len(msp.Power); i += 10 {
		cond.Series = append(cond.Series, Point{X: float64(i) / msp.Fs, Y: msp.Power[i]})
	}
	fig.Conditions = append(fig.Conditions, cond)
	fig.Notes = append(fig.Notes, fmt.Sprintf("segments found: %d (true slides: 3)", len(msp.Segments)))
	for i, s := range msp.Segments {
		fig.Notes = append(fig.Notes, fmt.Sprintf("segment %d: %.2f-%.2f s",
			i, float64(s.Start)/msp.Fs, float64(s.End)/msp.Fs))
	}
	return fig
}

// RunFig9 reproduces Figure 9: the integral velocity of a slide drifts
// linearly under accelerometer bias; anchoring zero velocity at both ends
// removes the drift (eq. 4).
func RunFig9(opt Options) Figure {
	fig := Figure{
		ID:    "fig9",
		Title: "Velocity drift removal on one slide (biased accelerometer)",
	}
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.6).Slide(0.55, 1).Hold(0.6).Build()
	if err != nil {
		fig.Notes = append(fig.Notes, "trajectory failed: "+err.Error())
		return fig
	}
	cfg := imu.DefaultConfig()
	cfg.AccelBiasStd = 0.12
	cfg.Seed = opt.Seed + 3
	trace, err := imu.Sample(traj, cfg)
	if err != nil {
		fig.Notes = append(fig.Notes, "imu failed: "+err.Error())
		return fig
	}
	msp, err := core.PreprocessIMU(trace, core.DefaultMSPConfig())
	if err != nil || len(msp.Segments) == 0 {
		fig.Notes = append(fig.Notes, "segmentation found no movement")
		return fig
	}
	seg := msp.Segments[0]
	ay := msp.AccelY[seg.Start:seg.End]
	// Raw integral.
	raw := Condition{Label: "integral speed (m/s)", Paper: "drifts from 0 at slide end"}
	var v float64
	dt := 1 / msp.Fs
	for i, a := range ay {
		v += a * dt
		if i%5 == 0 {
			raw.Series = append(raw.Series, Point{X: float64(i) * dt, Y: v})
		}
	}
	rawEnd := v
	corrVel, slope := core.CorrectVelocity(ay, msp.Fs)
	corr := Condition{Label: "corrected speed (m/s)", Paper: "returns to 0 at slide end"}
	for i := 0; i < len(corrVel); i += 5 {
		corr.Series = append(corr.Series, Point{X: float64(i) * dt, Y: corrVel[i]})
	}
	fig.Conditions = append(fig.Conditions, raw, corr)

	rawDisp := 0.0
	v = 0
	for _, a := range ay {
		v += a * dt
		rawDisp += v * dt
	}
	corrDisp := core.IntegrateDisplacement(corrVel, msp.Fs)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("terminal velocity raw %.4f m/s, corrected %.4f m/s (drift slope %.4f m/s²)",
			rawEnd, corrVel[len(corrVel)-1], slope),
		fmt.Sprintf("displacement: raw %.3f m, corrected %.3f m, truth 0.550 m", rawDisp, corrDisp))
	return fig
}
