// Package experiment regenerates every figure of the paper's evaluation
// (and the analytic figures of Sections II-V) on the simulated substrate,
// printing tables and text CDFs comparable to the published plots. Each
// RunFigNN function is indexed in DESIGN.md and wired to a benchmark in
// bench_test.go; cmd/hyperearsim runs them all.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"hyperear/internal/obs"
	"hyperear/internal/stats"
)

// Counter names the per-session loop emits through Options.Obs.
const (
	MTrialsOK     = "experiment.trials.ok"
	MTrialsFailed = "experiment.trials.failed"
)

// Options controls experiment size and reproducibility.
type Options struct {
	// Trials is the number of sessions per condition (the paper uses
	// 5 speaker positions × 5 test positions × 10 volunteers; the default
	// here keeps CLI runs in minutes).
	Trials int
	// Seed derives all randomness.
	Seed int64
	// Parallelism bounds concurrent sessions (0 = GOMAXPROCS).
	Parallelism int
	// Obs is the observability hook for the per-session loop: every
	// trial runs under an "experiment.trial" span and tallies into the
	// experiment.trials.ok/failed counters. Nil disables at zero cost.
	Obs *obs.Obs
}

// DefaultOptions returns a CLI-friendly configuration.
func DefaultOptions() Options {
	return Options{Trials: 10, Seed: 1}
}

// quick returns options scaled down for unit tests.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Point is one (x, y) sample of a reproduced curve.
type Point struct {
	X, Y float64
}

// Condition is one line/curve of a figure: either an error sample (CDF
// figures) or an (x, y) series (analytic figures).
type Condition struct {
	// Label names the condition ("7m", "Sliding 50-60cm", …).
	Label string
	// Errors holds per-trial localization errors in meters (CDF figures).
	Errors []float64
	// Failed counts trials that produced no estimate.
	Failed int
	// Series holds curve samples (analytic figures).
	Series []Point
	// Paper quotes the paper's reported numbers for the condition, for
	// side-by-side display.
	Paper string
}

// Summary summarizes the condition's error sample.
func (c Condition) Summary() stats.Summary { return stats.Summarize(c.Errors) }

// Figure is one reproduced figure.
type Figure struct {
	// ID is the figure tag ("fig14").
	ID string
	// Title describes what is reproduced.
	Title string
	// Conditions are the figure's curves.
	Conditions []Condition
	// Notes carries free-form commentary (substitutions, caveats).
	Notes []string
}

// String renders the figure as a text report.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	for _, c := range f.Conditions {
		if len(c.Errors) > 0 {
			s := c.Summary()
			fmt.Fprintf(&b, "%-24s %s", c.Label, s)
			if c.Failed > 0 {
				fmt.Fprintf(&b, " failed=%d", c.Failed)
			}
			if c.Paper != "" {
				fmt.Fprintf(&b, "   [paper: %s]", c.Paper)
			}
			b.WriteByte('\n')
		}
		if len(c.Series) > 0 {
			fmt.Fprintf(&b, "%-24s", c.Label)
			if c.Paper != "" {
				fmt.Fprintf(&b, " [paper: %s]", c.Paper)
			}
			b.WriteByte('\n')
			for _, p := range c.Series {
				fmt.Fprintf(&b, "    %10.4f  %12.6f\n", p.X, p.Y)
			}
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CDFReport renders text CDF plots for every error condition of a figure.
func (f Figure) CDFReport(xMax float64) string {
	var b strings.Builder
	for _, c := range f.Conditions {
		if len(c.Errors) == 0 {
			continue
		}
		fmt.Fprintf(&b, "--- %s / %s (CDF of error, 0..%.2f m) ---\n", f.ID, c.Label, xMax)
		b.WriteString(stats.NewCDF(c.Errors).AsciiPlot(xMax, 56, 10))
	}
	return b.String()
}

// trialResult carries one parallel trial's outcome.
type trialResult struct {
	err    float64
	failed bool
}

// runTrials executes fn for trial indices 0..opt.Trials-1 in parallel,
// giving each a dedicated deterministic RNG, and collects error samples.
// Each trial runs under an "experiment.trial" span on opt.Obs.
func runTrials(opt Options, seed int64, fn func(trial int, rng *rand.Rand) (float64, error)) ([]float64, int) {
	n, workers := opt.Trials, opt.workers()
	if workers < 1 {
		workers = 1
	}
	results := make([]trialResult, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			sp := opt.Obs.Span("experiment.trial")
			sp.AttrInt("trial", i)
			e, err := fn(i, rng)
			if err != nil {
				sp.AttrStr("error", err.Error())
				sp.End()
				opt.Obs.Inc(MTrialsFailed)
				results[i] = trialResult{failed: true}
				return
			}
			sp.Attr("error_m", e)
			sp.End()
			opt.Obs.Inc(MTrialsOK)
			results[i] = trialResult{err: e}
		}(i)
	}
	wg.Wait()
	var errs []float64
	failed := 0
	for _, r := range results {
		if r.failed {
			failed++
		} else {
			errs = append(errs, r.err)
		}
	}
	return errs, failed
}

// RunAll executes every figure reproduction and the ablation suite.
func RunAll(opt Options) []Figure {
	figs := []Figure{
		RunFig3(opt),
		RunFig4(opt),
		RunFig7(opt),
		RunFig8(opt),
		RunFig9(opt),
		RunFig14(opt),
		RunFig15(opt),
		RunFig16(opt),
		RunFig17(opt),
		RunFig18(opt),
		RunFig19(opt),
	}
	figs = append(figs, RunAblations(opt)...)
	figs = append(figs, RunDirectionComparison(opt))
	figs = append(figs, RunFull3DComparison(opt))
	figs = append(figs, RunBaselineComparison(opt))
	return figs
}
