// Package stats provides the small amount of statistics the experiment
// harness needs: empirical CDFs, means, percentiles, and formatted summary
// rows matching the paper's reporting style (mean and 90%-precision
// accuracy per condition).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of (error) values.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P90    float64
	Min    float64
	Max    float64
	Std    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
		sq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Median: Percentile(s, 50),
		P90:    Percentile(s, 90),
		Min:    s[0],
		Max:    s[len(s)-1],
		Std:    math.Sqrt(variance),
	}
}

// String renders the summary in centimeters, the paper's unit of accuracy.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fcm median=%.1fcm p90=%.1fcm max=%.1fcm",
		s.N, s.Mean*100, s.Median*100, s.P90*100, s.Max*100)
}

// Percentile returns the p-th percentile (0-100) of sorted xs using linear
// interpolation. xs must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Count of values <= x via binary search.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0-1).
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Table renders the CDF evaluated at the given x grid as aligned text rows
// "x  P(X<=x)" — the textual equivalent of the paper's CDF figures.
func (c *CDF) Table(grid []float64, unit string, scale float64) string {
	var b strings.Builder
	for _, x := range grid {
		fmt.Fprintf(&b, "  %7.2f %-4s %6.3f\n", x*scale, unit, c.At(x))
	}
	return b.String()
}

// AsciiPlot draws a coarse text rendering of the CDF over [0, xMax] with
// the given width and height — enough to eyeball the shape against the
// paper's figures in terminal output.
func (c *CDF) AsciiPlot(xMax float64, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := xMax * float64(col) / float64(width-1)
		y := c.At(x)
		r := int(math.Round(float64(height-1) * (1 - y)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		rows[r][col] = '*'
	}
	var b strings.Builder
	b.WriteString("  1.0 |" + string(rows[0]) + "\n")
	for r := 1; r < height-1; r++ {
		b.WriteString("      |" + string(rows[r]) + "\n")
	}
	b.WriteString("  0.0 |" + string(rows[height-1]) + "\n")
	b.WriteString("       " + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("       0%s%.2f\n", strings.Repeat(" ", width-8), xMax))
	return b.String()
}
