package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{0.10, 0.20})
	str := s.String()
	if !strings.Contains(str, "mean=15.0cm") {
		t.Errorf("String() = %q", str)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {90, 4.6}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	if !math.IsNaN(NewCDF(nil).At(1)) {
		t.Error("empty CDF should be NaN")
	}
}

func TestCDFQuantileInvertsAt(t *testing.T) {
	xs := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.5}
	c := NewCDF(xs)
	// Interpolated quantiles invert the step CDF to within 1/n.
	slack := 1 / float64(len(xs))
	for _, q := range []float64{0.1, 0.5, 0.9} {
		x := c.Quantile(q)
		if c.At(x) < q-slack-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < %v - 1/n", q, c.At(x), q)
		}
	}
}

// TestCDFMonotoneProperty: the CDF must be nondecreasing.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 100))
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		probe := append([]float64{}, xs...)
		sort.Float64s(probe)
		prev := 0.0
		for _, x := range probe {
			cur := c.At(x)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFTable(t *testing.T) {
	c := NewCDF([]float64{0.1, 0.2, 0.3})
	out := c.Table([]float64{0.1, 0.3}, "cm", 100)
	if !strings.Contains(out, "10.00") || !strings.Contains(out, "1.000") {
		t.Errorf("table = %q", out)
	}
}

func TestAsciiPlotShape(t *testing.T) {
	c := NewCDF([]float64{0.1, 0.2, 0.3, 0.4})
	out := c.AsciiPlot(0.5, 30, 8)
	if !strings.Contains(out, "*") {
		t.Error("plot has no marks")
	}
	if !strings.Contains(out, "1.0 |") || !strings.Contains(out, "0.0 |") {
		t.Errorf("plot missing axes:\n%s", out)
	}
	// Tiny dimensions are clamped, not rejected.
	if out := c.AsciiPlot(0.5, 1, 1); !strings.Contains(out, "*") {
		t.Error("clamped plot has no marks")
	}
}
