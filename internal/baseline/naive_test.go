package baseline

import (
	"math"
	"math/rand"
	"testing"

	"hyperear/internal/geom"
)

func TestQuantizeTDoA(t *testing.T) {
	fs := 44100.0
	step := 1 / fs
	if got := QuantizeTDoA(0, fs); got != 0 {
		t.Errorf("quantize(0) = %v", got)
	}
	if got := QuantizeTDoA(step*3.4, fs); math.Abs(got-step*3) > 1e-15 {
		t.Errorf("quantize(3.4 steps) = %v, want 3 steps", got)
	}
	if got := QuantizeTDoA(-step*2.6, fs); math.Abs(got+step*3) > 1e-15 {
		t.Errorf("quantize(-2.6 steps) = %v, want -3 steps", got)
	}
}

func TestObserveQuantizes(t *testing.T) {
	src := geom.Vec2{X: 3, Y: 0.7}
	m1 := geom.Vec2{Y: 0.07}
	m2 := geom.Vec2{Y: -0.07}
	fs, sos := 44100.0, 343.0
	obs := Observe(src, m1, m2, fs, sos)
	exact := (src.Dist(m1) - src.Dist(m2)) / sos
	if math.Abs(obs.TDoA-exact) > 0.5/fs {
		t.Errorf("quantized TDoA %v too far from exact %v", obs.TDoA, exact)
	}
	// Must lie exactly on the grid.
	if r := obs.TDoA * fs; math.Abs(r-math.Round(r)) > 1e-9 {
		t.Errorf("TDoA %v not on grid", obs.TDoA)
	}
}

func TestLocalizeWithUnquantizedTDoAIsExact(t *testing.T) {
	// With infinite sampling rate the naive scheme is exact: sanity-check
	// the geometry before testing quantization effects.
	cfg := DefaultConfig()
	cfg.SampleRate = 1e12
	src := geom.Vec2{X: 4, Y: 0.5}
	d := cfg.MicSeparation
	a := Observe(src, geom.Vec2{Y: d / 2}, geom.Vec2{Y: -d / 2}, cfg.SampleRate, cfg.SpeedOfSound)
	b := Observe(src, geom.Vec2{Y: d/2 + 0.3}, geom.Vec2{Y: -d/2 + 0.3}, cfg.SampleRate, cfg.SpeedOfSound)
	est, err := Localize(a, b, cfg.SpeedOfSound, geom.Vec2{X: 3, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if est.X < 0 {
		est.X = -est.X
	}
	if est.Dist(src) > 1e-3 {
		t.Errorf("exact naive estimate = %v, want %v", est, src)
	}
}

func TestTrialErrorGrowsWithRange(t *testing.T) {
	// The §II-C observation: naive error explodes with distance. Compare
	// mean errors at 1 m and 5 m over many bearings.
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	e1 := Sweep(cfg, 1, 300, rng)
	e5 := Sweep(cfg, 5, 300, rng)
	if e1.Mean <= 0 || e5.Mean <= 0 {
		t.Fatalf("degenerate sweeps: %v %v", e1.Mean, e5.Mean)
	}
	if e5.Mean < 3*e1.Mean {
		t.Errorf("naive error should grow strongly with range: 1m=%.3f 5m=%.3f", e1.Mean, e5.Mean)
	}
	// Order-of-magnitude agreement with the paper's worst cases:
	// ~0.19 m at 1 m and ~2.7 m at 5 m. The mean at 1 m is centimeters
	// to decimeters (the max can exceed it near the ±60° bearing edge,
	// where the geometry degenerates).
	if e1.Mean < 0.005 || e1.Mean > 0.5 {
		t.Errorf("1 m mean error = %.3f m, expected cm-dm scale", e1.Mean)
	}
	if e5.Max < 0.8 {
		t.Errorf("5 m max error = %.3f m, expected meter scale", e5.Max)
	}
}

func TestSweepReportsFailures(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	e := Sweep(cfg, 3, 100, rng)
	if len(e.Sample)+e.Failed != 100 {
		t.Errorf("samples %d + failed %d != trials", len(e.Sample), e.Failed)
	}
}

func TestClampDelta(t *testing.T) {
	if got := clampDelta(0.5, 0.3); got != 0.3 {
		t.Errorf("clamp high = %v", got)
	}
	if got := clampDelta(-0.5, 0.3); got != -0.3 {
		t.Errorf("clamp low = %v", got)
	}
	if got := clampDelta(0.1, 0.3); got != 0.1 {
		t.Errorf("clamp pass = %v", got)
	}
}

func BenchmarkNaiveTrial(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Trial(cfg, 3, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
