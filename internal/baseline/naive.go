// Package baseline implements the "naive" localization scheme HyperEar is
// compared against in Section II of the paper: the phone measures one
// quantized TDoA across its own two microphones at position p1, is moved a
// known distance to p2, measures a second quantized TDoA, and intersects
// the two hyperbolas. Its error is dominated by TDoA quantization — the
// 13-15 cm mic baseline yields only ~35 distinguishable hyperbolas at
// 44.1 kHz, so the ambiguity regions grow to meters a few meters out
// (the paper quotes errors up to 18.6 cm at 1 m and 266.7 cm at 5 m for a
// Galaxy S4). HyperEar's sliding scheme exists precisely to beat this.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"hyperear/internal/geom"
)

// QuantizeTDoA rounds an exact time difference to the ADC sampling grid
// 1/fs — the §II-C resolution limit.
func QuantizeTDoA(tdoa, fs float64) float64 {
	return math.Round(tdoa*fs) / fs
}

// Measurement is one two-mic TDoA observation at a known phone position.
type Measurement struct {
	// Mic1 and Mic2 are the microphone world positions (2D).
	Mic1, Mic2 geom.Vec2
	// TDoA is the measured (quantized) t1 - t2 in seconds.
	TDoA float64
}

// Observe produces the quantized measurement a phone with mics at m1, m2
// makes of a source at src.
func Observe(src, m1, m2 geom.Vec2, fs, sos float64) Measurement {
	tdoa := (src.Dist(m1) - src.Dist(m2)) / sos
	return Measurement{Mic1: m1, Mic2: m2, TDoA: QuantizeTDoA(tdoa, fs)}
}

// Localize intersects the two measurement hyperbolas. guess seeds the
// solver. Because the TDoAs are quantized, the returned point is the exact
// intersection of the *quantized* hyperbolas — its distance to the true
// source is the naive scheme's ambiguity error.
func Localize(a, b Measurement, sos float64, guess geom.Vec2) (geom.Vec2, error) {
	h1 := geom.Hyperbola{F1: a.Mic1, F2: a.Mic2, Delta: a.TDoA * sos}
	h2 := geom.Hyperbola{F1: b.Mic1, F2: b.Mic2, Delta: b.TDoA * sos}
	// Clamp quantized deltas onto the valid branch: rounding can push
	// |Δd| marginally past the focal distance for near-endfire sources.
	h1.Delta = clampDelta(h1.Delta, h1.F1.Dist(h1.F2))
	h2.Delta = clampDelta(h2.Delta, h2.F1.Dist(h2.F2))
	p, err := geom.IntersectHyperbolas(h1, h2, guess)
	if err != nil {
		return geom.Vec2{}, fmt.Errorf("baseline: %w", err)
	}
	return p, nil
}

func clampDelta(delta, focal float64) float64 {
	if delta > focal {
		return focal
	}
	if delta < -focal {
		return -focal
	}
	return delta
}

// Config describes the Monte-Carlo setup of the naive scheme.
type Config struct {
	// MicSeparation is the phone's D in meters.
	MicSeparation float64
	// SampleRate is the ADC rate in Hz.
	SampleRate float64
	// SpeedOfSound in m/s.
	SpeedOfSound float64
	// MoveDist is the known displacement between the two measurement
	// positions in meters.
	MoveDist float64
}

// DefaultConfig returns the Galaxy S4 naive-scheme setup with a 30 cm
// phone move.
func DefaultConfig() Config {
	return Config{
		MicSeparation: 0.1366,
		SampleRate:    44100,
		SpeedOfSound:  geom.SpeedOfSound,
		MoveDist:      0.30,
	}
}

// Trial runs one naive localization: the phone (mics along the y axis,
// centered at the origin) observes a source at range r and bearing theta
// (radians from the x axis), moves MoveDist along +y, observes again, and
// triangulates. It returns the position error in meters.
func Trial(cfg Config, r, theta float64) (float64, error) {
	src := geom.Vec2{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	d := cfg.MicSeparation
	m1a := geom.Vec2{Y: +d / 2}
	m2a := geom.Vec2{Y: -d / 2}
	m1b := geom.Vec2{Y: +d/2 + cfg.MoveDist}
	m2b := geom.Vec2{Y: -d/2 + cfg.MoveDist}
	obsA := Observe(src, m1a, m2a, cfg.SampleRate, cfg.SpeedOfSound)
	obsB := Observe(src, m1b, m2b, cfg.SampleRate, cfg.SpeedOfSound)
	est, err := Localize(obsA, obsB, cfg.SpeedOfSound, geom.Vec2{X: r, Y: 0})
	if err != nil {
		return 0, err
	}
	// Fold the mirror solution (x < 0) onto the positive half plane the
	// true source occupies.
	if est.X < 0 {
		est.X = -est.X
	}
	return est.Dist(src), nil
}

// Errors is a Monte-Carlo error sample at one range.
type Errors struct {
	Range  float64
	Mean   float64
	Max    float64
	Failed int
	Sample []float64
}

// Sweep runs trials random-bearing naive localizations at range r.
// Bearings are drawn within ±60° of broadside, the regime a user would
// naturally hold the phone in.
func Sweep(cfg Config, r float64, trials int, rng *rand.Rand) Errors {
	out := Errors{Range: r}
	var sum float64
	for i := 0; i < trials; i++ {
		theta := geom.Radians(-60 + 120*rng.Float64())
		e, err := Trial(cfg, r, theta)
		if err != nil {
			out.Failed++
			continue
		}
		out.Sample = append(out.Sample, e)
		sum += e
		if e > out.Max {
			out.Max = e
		}
	}
	if len(out.Sample) > 0 {
		out.Mean = sum / float64(len(out.Sample))
	}
	return out
}
