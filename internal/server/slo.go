package server

import (
	"bytes"
	"net/http"
	"sort"
	"strings"

	"hyperear/internal/obs"
)

// promNamespace prefixes every metric the Prometheus exposition emits.
const promNamespace = "hyperear"

// wantsPrometheus decides whether /metrics should answer in Prometheus
// text exposition format: an explicit ?format=prometheus always wins,
// any other explicit format always loses, and without one the Accept
// header decides (Prometheus scrapers ask for openmetrics or
// text/plain;version=0.0.4).
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "text", "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "openmetrics") || strings.Contains(accept, "version=0.0.4")
}

// writePrometheus renders the full Prometheus exposition: the registry
// snapshot, the Go runtime's own health metrics, and the rolling-window
// latency quantiles as summaries under a hyperear_rolling_ prefix.
func (s *Server) writePrometheus(w http.ResponseWriter, snap obs.Snapshot) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	obs.WritePrometheus(&b, snap, promNamespace)
	obs.WriteRuntimeMetrics(&b, promNamespace)
	if s.window != nil {
		rolling, _ := s.window.Rolling(s.clock())
		names := make([]string, 0, len(rolling))
		for name := range rolling {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			obs.WriteQuantileSummary(&b, promNamespace+"_rolling_"+obs.PromName(name), rolling[name])
		}
	}
	w.Write(b.Bytes())
}

// quantilesJSON is one histogram's rolling latency summary (seconds).
type quantilesJSON struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func quantiles(h obs.HistSnapshot) quantilesJSON {
	return quantilesJSON{
		Count: h.Count,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// sloResponse is the /debug/slo body: how the service is doing against
// its latency objective over the rolling window.
type sloResponse struct {
	// WindowSeconds is the wall clock the rolling figures actually
	// cover (shorter than NominalSeconds until the ring has filled).
	WindowSeconds float64 `json:"windowSeconds"`
	// NominalSeconds is the configured window span.
	NominalSeconds float64 `json:"nominalSeconds"`
	// TargetSeconds is the per-request latency target.
	TargetSeconds float64 `json:"targetSeconds"`
	// Objective is the attainment fraction the SLO demands (e.g. 0.99).
	Objective float64 `json:"objective"`
	// Requests is how many /v1/* requests the window holds.
	Requests uint64 `json:"requests"`
	// Attainment is the fraction of windowed requests at or under the
	// target (1 when the window is empty: no traffic burns no budget).
	Attainment float64 `json:"attainment"`
	// ErrorBudgetBurn is (1-attainment)/(1-objective): 1.0 means the
	// service is spending error budget exactly as fast as the SLO
	// allows, above 1 it is burning down.
	ErrorBudgetBurn float64 `json:"errorBudgetBurn"`
	// Request is the rolling request-latency summary.
	Request quantilesJSON `json:"request"`
	// Stages maps stage span names (asp, msp, pde, ttl, locate2d, ...)
	// to their rolling latency summaries.
	Stages map[string]quantilesJSON `json:"stages"`
}

// handleSLO reports rolling latency attainment against the configured
// objective (see sloResponse).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.window == nil {
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	rolling, win := s.window.Rolling(s.clock())
	resp := sloResponse{
		WindowSeconds:  win.Seconds(),
		NominalSeconds: s.window.Span().Seconds(),
		TargetSeconds:  s.cfg.SLOTarget.Seconds(),
		Objective:      s.cfg.SLOObjective,
		Attainment:     1,
		Stages:         make(map[string]quantilesJSON),
	}
	if h, ok := rolling[MReqDuration]; ok && h.Count > 0 {
		resp.Requests = h.Count
		resp.Request = quantiles(h)
		resp.Attainment = h.CDF(resp.TargetSeconds)
	}
	if resp.Objective < 1 {
		resp.ErrorBudgetBurn = (1 - resp.Attainment) / (1 - resp.Objective)
	}
	for name, h := range rolling {
		if stage, ok := strings.CutPrefix(name, "span."); ok {
			resp.Stages[stage] = quantiles(h)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
