// Package server exposes the HyperEar localization pipeline as an HTTP
// service. The routing is thin; the substance is the robustness layer:
// a bounded admission pool sized off core.Config.Parallelism, per-request
// deadlines propagated via context into the pipeline's stage loops,
// load-shedding with Retry-After when the queue is full, per-session idle
// eviction for the streaming-ingest path, request-size limits, and a
// graceful drain sequence. DESIGN.md "Service architecture" has the
// diagrams and accounting identities.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/obs"
	"hyperear/internal/sessionio"
	"hyperear/internal/sessionstore"
)

// Config sizes the service. Zero values select the documented defaults;
// Normalize applies them.
type Config struct {
	// Workers bounds concurrently running localizations. 0 uses the
	// pipeline config's Parallelism (itself defaulting to GOMAXPROCS-ish
	// behavior inside the pipeline), floored at 1.
	Workers int
	// Queue bounds admitted-but-waiting localizations beyond Workers.
	// Requests past workers+queue are shed with 429.
	Queue int
	// RequestTimeout is the per-request pipeline deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps any single request body (multipart bundle or
	// audio chunk).
	MaxBodyBytes int64
	// MaxSessionSamples caps the per-channel audio a streaming session
	// may accumulate.
	MaxSessionSamples int
	// MaxSessions caps live streaming sessions; at capacity the stalest
	// is evicted to admit a new one.
	MaxSessions int
	// SessionIdleTimeout evicts sessions with no activity for this long.
	SessionIdleTimeout time.Duration
	// SweepInterval is how often the idle janitor runs.
	SweepInterval time.Duration
	// BatchWindow coalesces the matched-filter FFTs of concurrent
	// localizations into strided shared-plan batches (see
	// core.ASPConfig.BatchWindow): a correlation waits up to BatchWindow
	// for a companion at the same transform size before running alone. 0
	// selects the default (200µs when Workers > 1); negative disables
	// batching. The window trades a bounded per-request latency bump for
	// amortized transform work under concurrency.
	BatchWindow time.Duration
	// MetricsWindow is the nominal span of the rolling latency window
	// behind /debug/slo and the hyperear_rolling_* Prometheus
	// summaries. 0 selects 5 minutes; negative disables windowing. The
	// window advances on the janitor's SweepInterval ticks.
	MetricsWindow time.Duration
	// SLOTarget is the per-request latency target /debug/slo reports
	// attainment against. 0 selects 1s.
	SLOTarget time.Duration
	// SLOObjective is the attainment fraction the SLO demands, in
	// (0, 1]. 0 selects 0.99.
	SLOObjective float64
	// AccessLog, when non-nil, receives one JSON line per HTTP request
	// (trace ID, route, status, admission outcome, duration, bytes).
	// Writes are serialized by the server; the writer itself need not
	// be concurrency-safe.
	AccessLog io.Writer
	// Store persists streaming-session mutations for crash recovery:
	// every create/audio/IMU/locate/evict becomes a store event
	// (appended before the in-memory state mutates), and New replays
	// the store's sessions back into the table so in-flight users
	// survive a restart. nil (the default) keeps sessions only in
	// process memory — the pre-durability behavior. See
	// internal/sessionstore for the WAL-backed implementation and
	// DESIGN.md §11 "Durability" for the recovery sequence.
	Store sessionstore.SessionStore
	// Pipeline is the default localization config (beacon parameters,
	// geometry, stage tuning). Per-request meta may override Source,
	// SampleRate and MicSeparation.
	Pipeline core.Config
	// Obs receives the server.* counters and gauges alongside the
	// pipeline's own metrics; nil disables accounting.
	Obs *obs.Obs
}

// Normalize fills zero fields with defaults and returns the result.
func (c Config) Normalize() Config {
	if c.Workers <= 0 {
		c.Workers = c.Pipeline.Parallelism
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Pipeline.Parallelism == 0 {
		// Divide the machine across the worker pool: each admitted
		// localization gets its share of cores as intra-recording block
		// parallelism (the core two-level channel×block schedule) instead
		// of every locate assuming it owns all of GOMAXPROCS — with a
		// full worker pool that would oversubscribe the box W-fold.
		p := runtime.GOMAXPROCS(0) / c.Workers
		if p < 1 {
			p = 1
		}
		c.Pipeline.Parallelism = p
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxSessionSamples <= 0 {
		c.MaxSessionSamples = 48000 * 120 // two minutes at 48 kHz
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 2 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 15 * time.Second
	}
	if c.BatchWindow == 0 && c.Workers > 1 {
		// Batching only ever helps when two localizations can overlap;
		// a single-worker pool would pay the window for nothing.
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MetricsWindow == 0 {
		c.MetricsWindow = 5 * time.Minute
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = time.Second
	}
	if c.SLOObjective <= 0 || c.SLOObjective > 1 {
		c.SLOObjective = 0.99
	}
	return c
}

// Server is the HTTP front end. Construct with New, serve via Handler,
// shut down with BeginDrain + (http.Server).Shutdown + FinishShutdown.
type Server struct {
	cfg      Config
	o        *obs.Obs
	pool     *pool
	sessions *sessionTable
	mux      *http.ServeMux
	handler  http.Handler
	window   *obs.Window
	accessMu sync.Mutex
	draining atomic.Bool

	// clock is swapped by tests driving idle eviction.
	clock func() time.Time

	// locMu guards the localizer cache: building a Localizer renders the
	// beacon template and FFT plans, so sessions sharing parameters share
	// the instance (Localizer is safe for concurrent use).
	locMu sync.Mutex
	// locs is the localizer cache.
	//
	// guarded by locMu
	locs map[locKey]*core.Localizer

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// locKey identifies a localizer by the per-request-overridable pipeline
// parameters. chirp.Params is an all-float64 struct, so the key is
// comparable.
type locKey struct {
	src    chirp.Params
	fs     float64
	micSep float64
}

// New builds a Server and starts its idle-eviction janitor.
func New(cfg Config) *Server {
	cfg = cfg.Normalize()
	s := &Server{
		cfg:         cfg,
		o:           cfg.Obs,
		pool:        newPool(cfg.Workers, cfg.Queue, cfg.Obs.Gauge(GQueueDepth)),
		sessions:    newSessionTable(cfg.MaxSessions, cfg.SessionIdleTimeout, cfg.Store, cfg.Obs),
		clock:       time.Now,
		locs:        make(map[locKey]*core.Localizer),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if cfg.Store != nil {
		s.recoverSessions()
	}
	s.mux = s.buildMux()
	s.handler = s.withTrace(s.mux)
	s.window = obs.NewWindow(cfg.Obs.Registry(), cfg.MetricsWindow, cfg.SweepInterval,
		s.clock(), MReqDuration, "span.*")
	if reg := cfg.Obs.Registry(); reg != nil {
		// Refresh-on-read levels: registering at the registry (rather
		// than inside one HTTP handler) keeps every snapshot consumer —
		// /metrics in any format, the expvar export, direct Snapshot
		// callers — seeing the same current values.
		reg.OnSnapshot(s.refreshBatchGauges)
	}
	go s.janitor()
	return s
}

// recoverSessions replays the store's persisted sessions into the live
// table at boot, before the server handles a request. Every session the
// store hands back counts toward MSessRecovered; the ones that cannot
// be rebuilt (bad parameters, torn payload) or that find no table
// capacity are evicted — durably, so they do not fail every boot —
// under the recovered.* reason codes, which keeps the session
// accounting identity (created + recovered == evicted.* + active)
// closed.
func (s *Server) recoverSessions() {
	recovered, err := s.cfg.Store.Recover()
	if err != nil {
		s.o.Inc(MStoreErrors)
		return
	}
	now := s.clock()
	for _, rs := range recovered {
		s.o.Inc(MSessRecovered)
		if err := s.sessions.insertRecovered(rs, now); err != nil {
			reason := EvictRecoveredInvalid
			if errors.Is(err, errTableFull) {
				reason = EvictRecoveredCapacity
			}
			s.o.Inc(MSessEvictedPrefix + reason)
			if serr := s.cfg.Store.Evict(rs.ID, reason); serr != nil {
				s.o.Inc(MStoreErrors)
			}
		}
	}
}

// Handler returns the root handler (mount at /).
func (s *Server) Handler() http.Handler { return s.handler }

// QueueBound returns the admission bound (workers + queue), the level
// the queue-depth gauge's high-watermark must never exceed.
func (s *Server) QueueBound() int { return s.pool.bound() }

// BeginDrain starts graceful shutdown: readiness flips to 503, queued
// waiters are shed with 503, and no new work is admitted. Work already
// running is unaffected — the caller's http.Server.Shutdown waits for
// those handlers. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.pool.drain()
}

// FinishShutdown completes the drain after the HTTP listener has
// stopped: every remaining streaming session is evicted and the janitor
// exits. Call after http.Server.Shutdown returns.
func (s *Server) FinishShutdown() {
	s.BeginDrain()
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	<-s.janitorDone
	s.sessions.shutdown()
}

func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := s.clock()
			s.sessions.sweepIdle(now)
			s.window.Tick(now)
		case <-s.janitorStop:
			return
		}
	}
}

// TickWindow advances the rolling latency window by one capture, as the
// janitor does every SweepInterval; exported for tests driving a
// synthetic clock.
func (s *Server) TickWindow(now time.Time) { s.window.Tick(now) }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/locate", s.handleLocate)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/audio", s.handleSessionAudio)
	mux.HandleFunc("POST /v1/sessions/{id}/imu", s.handleSessionIMU)
	mux.HandleFunc("POST /v1/sessions/{id}/locate", s.handleSessionLocate)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// --- error / JSON plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// reject tallies and writes a pre-admission client error.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, code int, msg string) {
	s.o.Inc(MReqRejected)
	setOutcome(r.Context(), outcomeRejected)
	writeJSON(w, code, errorBody{Error: msg})
}

// storeFailed writes a durable-write failure: the session's state did
// not change, the fault is server-side (disk, not input), so 500 with
// Retry-After — the client's bytes are fine to resend once the operator
// fixes the volume.
func (s *Server) storeFailed(w http.ResponseWriter, r *http.Request, err error) {
	setOutcome(r.Context(), outcomeFailed)
	w.Header().Set("Retry-After", "5")
	writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
}

// shed writes an admission refusal with Retry-After.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, errDraining) {
		s.o.Inc(MReqShedPrefix + "draining")
		setOutcome(r.Context(), outcomeShedPrefix+"draining")
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	s.o.Inc(MReqShedPrefix + "queue_full")
	setOutcome(r.Context(), outcomeShedPrefix+"queue_full")
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: errQueueFull.Error()})
}

// bodyPool recycles request-body buffers across requests; a locate
// upload is around a megabyte of WAV, and draining it into a fresh
// io.ReadAll slice every request was the single biggest allocator on the
// ingestion path.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBodyBytes caps what returns to bodyPool so one oversized
// upload cannot pin tens of megabytes in the pool.
const maxPooledBodyBytes = 1 << 25

// readBody drains the (already size-limited) body into a pooled buffer,
// mapping the over-limit error to 413. On success the caller owns the
// buffer until it hands it back with putBody (handlers defer that);
// nothing decoded from the bytes may alias them past that point — every
// decoder on these paths copies what it keeps.
//
//hyperearvet:pooled
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if n := r.ContentLength; n > 0 {
		// Pre-size to skip growth doublings; a lying Content-Length
		// cannot balloon this past the MaxBytesReader bound.
		if n > s.cfg.MaxBodyBytes {
			n = s.cfg.MaxBodyBytes
		}
		buf.Grow(int(n))
	}
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBody(buf)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reject(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
		} else {
			s.reject(w, r, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return nil, false
	}
	return buf, true
}

// putBody returns a readBody buffer to the pool.
func putBody(buf *bytes.Buffer) {
	if buf != nil && buf.Cap() <= maxPooledBodyBytes {
		bodyPool.Put(buf)
	}
}

// --- localizer cache ---

// localizerFor returns the shared Localizer for the request's effective
// parameters: the server's pipeline defaults with any nonzero meta
// overrides applied.
func (s *Server) localizerFor(meta sessionio.Meta) (*core.Localizer, error) {
	cfg := s.cfg.Pipeline
	if meta.SampleRate > 0 {
		cfg.SampleRate = meta.SampleRate
	}
	if meta.MicSeparation > 0 {
		cfg.MicSeparation = meta.MicSeparation
	}
	if meta.ChirpLowHz > 0 {
		cfg.Source.Low = meta.ChirpLowHz
	}
	if meta.ChirpHighHz > 0 {
		cfg.Source.High = meta.ChirpHighHz
	}
	if meta.ChirpDurS > 0 {
		cfg.Source.Duration = meta.ChirpDurS
	}
	if meta.ChirpPeriodS > 0 {
		cfg.Source.Period = meta.ChirpPeriodS
	}
	if s.cfg.BatchWindow > 0 && s.cfg.Workers > 1 {
		// Each cached Localizer batches within itself: concurrent requests
		// sharing parameters share the Localizer (and with it the detector
		// doing the batching), and all their channel correlations land at
		// the same transform size. Lanes per batch is bounded by the two
		// channels of every concurrently running localization.
		cfg.ASP.BatchWindow = s.cfg.BatchWindow
		cfg.ASP.MaxBatch = 2 * s.cfg.Workers
	}
	key := locKey{src: cfg.Source, fs: cfg.SampleRate, micSep: cfg.MicSeparation}
	s.locMu.Lock()
	defer s.locMu.Unlock()
	if l, ok := s.locs[key]; ok {
		return l, nil
	}
	l, err := core.NewLocalizer(cfg)
	if err != nil {
		return nil, err
	}
	s.locs[key] = l
	return l, nil
}

// --- locate responses ---

type diagJSON struct {
	Index  int    `json:"index"`
	Reason string `json:"reason"`
	Error  string `json:"error,omitempty"`
}

func diagsJSON(ds []core.SlideError) []diagJSON {
	out := make([]diagJSON, 0, len(ds))
	for _, d := range ds {
		j := diagJSON{Index: d.Index, Reason: d.Reason}
		if d.Err != nil {
			j.Error = d.Err.Error()
		}
		out = append(out, j)
	}
	return out
}

type locate2DResponse struct {
	Mode        string     `json:"mode"`
	Pos         geom.Vec2  `json:"pos"`
	L           float64    `json:"l"`
	Fixes       int        `json:"fixes"`
	Movements   int        `json:"movements"`
	Beacons     int        `json:"beacons"`
	SFOPPM      float64    `json:"sfoPPM"`
	Diagnostics []diagJSON `json:"diagnostics"`
}

type locate3DResponse struct {
	Mode          string     `json:"mode"`
	ProjectedDist float64    `json:"projectedDist"`
	ProjectedPos  geom.Vec2  `json:"projectedPos"`
	L1            float64    `json:"l1"`
	L2            float64    `json:"l2"`
	H             float64    `json:"h"`
	BetaRad       float64    `json:"betaRad"`
	Fixes         [2]int     `json:"fixes"`
	Movements     int        `json:"movements"`
	Beacons       int        `json:"beacons"`
	SFOPPM        float64    `json:"sfoPPM"`
	Diagnostics   []diagJSON `json:"diagnostics"`
}

// runLocate admits, runs and renders one localization over a decoded
// bundle. mode is "2d" or "3d" (validated by the caller).
func (s *Server) runLocate(w http.ResponseWriter, r *http.Request, b *sessionio.Bundle, mode string) {
	release, err := s.pool.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) || errors.Is(err, errDraining) {
			s.shed(w, r, err)
			return
		}
		// Client gave up while queued.
		s.o.Inc(MReqCanceled)
		setOutcome(r.Context(), outcomeCanceled)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	defer release()
	s.o.Inc(MReqAdmitted)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	loc, err := s.localizerFor(b.Meta)
	if err != nil {
		s.o.Inc(MReqCompleted)
		setOutcome(r.Context(), outcomeFailed)
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: "pipeline config: " + err.Error()})
		return
	}

	switch mode {
	case "2d":
		res, err := loc.Locate2DContext(ctx, b.Recording, b.IMU)
		if err != nil {
			s.writePipelineError(w, r, err)
			return
		}
		s.o.Inc(MReqCompleted)
		setOutcome(r.Context(), outcomeCompleted)
		writeJSON(w, http.StatusOK, locate2DResponse{
			Mode: "2d", Pos: res.Pos, L: res.L,
			Fixes: len(res.Fixes), Movements: len(res.Movements),
			Beacons: len(res.ASP.Beacons), SFOPPM: res.ASP.SFOPPM,
			Diagnostics: diagsJSON(res.Diagnostics),
		})
	case "3d":
		res, err := loc.Locate3DContext(ctx, b.Recording, b.IMU)
		if err != nil {
			s.writePipelineError(w, r, err)
			return
		}
		s.o.Inc(MReqCompleted)
		setOutcome(r.Context(), outcomeCompleted)
		writeJSON(w, http.StatusOK, locate3DResponse{
			Mode: "3d", ProjectedDist: res.ProjectedDist, ProjectedPos: res.ProjectedPos,
			L1: res.L1, L2: res.L2, H: res.H, BetaRad: res.Beta,
			Fixes:     [2]int{len(res.Fixes[0]), len(res.Fixes[1])},
			Movements: len(res.Movements),
			Beacons:   len(res.ASP.Beacons), SFOPPM: res.ASP.SFOPPM,
			Diagnostics: diagsJSON(res.Diagnostics),
		})
	}
}

// writePipelineError maps a pipeline failure: cancellations and
// deadlines are 503 (the work was shed mid-flight, safe to retry);
// everything else is 422 (the input ran the pipeline and produced no
// answer — retrying the same bytes will not help).
func (s *Server) writePipelineError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.o.Inc(MReqCanceled)
		setOutcome(r.Context(), outcomeCanceled)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	s.o.Inc(MReqCompleted)
	setOutcome(r.Context(), outcomeFailed)
	writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
}

func parseMode(r *http.Request) (string, error) {
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "2d"
	}
	if mode != "2d" && mode != "3d" {
		return "", fmt.Errorf("unknown mode %q (want 2d or 3d)", mode)
	}
	return mode, nil
}

// --- batch endpoint ---

// handleLocate is the batch path: one multipart bundle (audio WAV + IMU
// CSV + optional meta JSON) in, one localization out.
func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	mode, err := parseMode(r)
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, err.Error())
		return
	}
	mt, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/form-data" || params["boundary"] == "" {
		s.reject(w, r, http.StatusUnsupportedMediaType,
			"want multipart/form-data with parts audio (WAV), imu (CSV), meta (JSON)")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	b, err := sessionio.ReadBundleMultipart(multipart.NewReader(bytes.NewReader(body.Bytes()), params["boundary"]))
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, "decoding bundle: "+err.Error())
		return
	}
	// The response is fully written inside runLocate and the pipeline
	// keeps nothing aliasing the recording, so the decoded sample buffers
	// go back to the sessionio pool on the way out.
	defer sessionio.RecycleBundle(b)
	s.runLocate(w, r, b, mode)
}

// --- streaming session endpoints ---

type sessionCreateResponse struct {
	ID string `json:"id"`
}

// handleSessionCreate opens a streaming session. The optional JSON body
// is a sessionio.Meta; its beacon parameters configure the session's
// stream detectors.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shed(w, r, errDraining)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	var meta sessionio.Meta
	if body.Len() > 0 {
		meta, ok = s.parseMetaBody(w, r, body.Bytes())
		if !ok {
			return
		}
	}
	src := s.cfg.Pipeline.Source
	if meta.ChirpLowHz > 0 {
		src.Low = meta.ChirpLowHz
	}
	if meta.ChirpHighHz > 0 {
		src.High = meta.ChirpHighHz
	}
	if meta.ChirpDurS > 0 {
		src.Duration = meta.ChirpDurS
	}
	if meta.ChirpPeriodS > 0 {
		src.Period = meta.ChirpPeriodS
	}
	fs := s.cfg.Pipeline.SampleRate
	if meta.SampleRate > 0 {
		fs = meta.SampleRate
	}
	sess, err := s.sessions.create(meta, src, fs, s.clock())
	if err != nil {
		if errors.Is(err, errTableFull) {
			s.shed(w, r, errQueueFull)
			return
		}
		if errors.Is(err, errStoreFailed) {
			s.storeFailed(w, r, err)
			return
		}
		s.reject(w, r, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sessionCreateResponse{ID: sess.id})
}

func (s *Server) parseMetaBody(w http.ResponseWriter, r *http.Request, raw []byte) (sessionio.Meta, bool) {
	meta, err := sessionio.ParseMeta(raw)
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, "meta: "+err.Error())
		return sessionio.Meta{}, false
	}
	return meta, true
}

func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		s.reject(w, r, http.StatusNotFound, err.Error())
		return nil, false
	}
	return sess, true
}

type detectionJSON struct {
	Time     float64 `json:"time"`
	Index    int     `json:"index"`
	Strength float64 `json:"strength"`
	SNR      float64 `json:"snr"`
}

type audioAppendResponse struct {
	Detections []detectionJSON `json:"detections"`
	Buffered   int             `json:"buffered"`
	Consumed   int             `json:"consumed"`
}

// handleSessionAudio appends an interleaved stereo int16 LE PCM chunk
// and returns the newly confirmed beacon detections — the live feedback
// the client shows before the user starts sliding.
func (s *Server) handleSessionAudio(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	dets, err := sess.appendAudio(r.Context(), body.Bytes(), s.cfg.MaxSessionSamples, s.clock())
	if err != nil {
		if errors.Is(err, errStoreFailed) {
			s.storeFailed(w, r, err)
			return
		}
		code := http.StatusBadRequest
		if errors.Is(err, errSessionGone) {
			code = http.StatusNotFound
		} else if errors.Is(err, errSessionTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.reject(w, r, code, err.Error())
		return
	}
	resp := audioAppendResponse{Detections: make([]detectionJSON, 0, len(dets))}
	for _, d := range dets {
		resp.Detections = append(resp.Detections, detectionJSON{
			Time: d.Time, Index: d.Index, Strength: d.Strength, SNR: d.SNR,
		})
	}
	sess.mu.Lock()
	resp.Buffered = sess.det1.Buffered()
	resp.Consumed = sess.det1.Consumed()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionIMU attaches the session's IMU trace (the sessionio CSV
// format, `# fs=` preamble included).
func (s *Server) handleSessionIMU(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	tr, err := sessionio.ReadIMU(bytes.NewReader(body.Bytes()))
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, "imu: "+err.Error())
		return
	}
	if err := sess.setIMU(tr, body.Bytes(), s.clock()); err != nil {
		if errors.Is(err, errStoreFailed) {
			s.storeFailed(w, r, err)
			return
		}
		s.reject(w, r, http.StatusNotFound, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionLocate runs the full pipeline over everything the session
// has accumulated, through the same admission pool as the batch path.
func (s *Server) handleSessionLocate(w http.ResponseWriter, r *http.Request) {
	mode, err := parseMode(r)
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, err.Error())
		return
	}
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	rec, tr, err := sess.snapshotRecording(s.clock())
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, errSessionGone) {
			code = http.StatusNotFound
		}
		s.reject(w, r, code, err.Error())
		return
	}
	s.runLocate(w, r, &sessionio.Bundle{Recording: rec, IMU: tr, Meta: sess.meta}, mode)
}

// handleSessionDelete evicts a session explicitly.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.evict(r.PathValue("id"), EvictExplicit) {
		s.reject(w, r, http.StatusNotFound, errSessionGone.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- metrics ---

// refreshBatchGauges mirrors the localizer cache's strided-FFT batch
// counters into the batch gauges. Registered as an OnSnapshot hook, so
// the levels are current in every snapshot regardless of which
// consumer asked (HTTP /metrics, expvar, direct Snapshot callers) —
// without per-correlation obs traffic.
func (s *Server) refreshBatchGauges() {
	var batches, lanes uint64
	s.locMu.Lock()
	for _, l := range s.locs {
		b, ln := l.BatchStats()
		batches += b
		lanes += ln
	}
	s.locMu.Unlock()
	s.o.Gauge(GBatchBatches).Set(int64(batches))
	s.o.Gauge(GBatchLanes).Set(int64(lanes))
}

// metricsJSON is the default /metrics body: the registry snapshot plus
// the rolling latency summaries the SLO window maintains.
type metricsJSON struct {
	obs.Snapshot
	// RollingSeconds is the wall clock the rolling summaries cover.
	RollingSeconds float64 `json:"rollingSeconds,omitempty"`
	// Rolling maps histogram names to their windowed p50/p95/p99.
	Rolling map[string]quantilesJSON `json:"rolling,omitempty"`
}

// handleMetrics renders the obs registry snapshot: JSON by default
// (snapshot plus rolling quantiles), Prometheus text exposition under
// ?format=prometheus or a scraper Accept header (see wantsPrometheus),
// and the human-readable table under ?format=text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.o == nil || s.o.Registry() == nil {
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	snap := s.o.Registry().Snapshot()
	if wantsPrometheus(r) {
		s.writePrometheus(w, snap)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snap.String())
		return
	}
	body := metricsJSON{Snapshot: snap}
	if s.window != nil {
		rolling, win := s.window.Rolling(s.clock())
		body.RollingSeconds = win.Seconds()
		body.Rolling = make(map[string]quantilesJSON, len(rolling))
		for name, h := range rolling {
			body.Rolling[name] = quantiles(h)
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// RetryAfterSeconds parses a Retry-After header value written by this
// server (always integral seconds); helper for clients and tests.
func RetryAfterSeconds(h http.Header) (int, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}
