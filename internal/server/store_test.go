package server

// Recovery at the server layer: sessions persisted by a SessionStore
// come back into the live table at New, resume streaming under their
// old ids, and localize exactly as if the process had never restarted.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/sessionio"
	"hyperear/internal/sessionstore"
)

func openTestStore(t *testing.T, dir string) *sessionstore.FileStore {
	t.Helper()
	st, err := sessionstore.Open(dir, sessionstore.Options{Fsync: sessionstore.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func createSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d id %q", resp.StatusCode, created.ID)
	}
	return created.ID
}

func pushAudio(t *testing.T, ts *httptest.Server, id string, chunk []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/audio",
		"application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audio append: status %d: %s", resp.StatusCode, body)
	}
}

func sessionLocate(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/locate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session locate: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestSessionRecoveryBitIdentical is the in-process twin of the cmd
// crash soak: a session streamed half into a store-backed server, the
// store closed and reopened under a fresh server (the crash boundary —
// the first server's table simply vanishes), the stream finished there.
// The final locate must be byte-identical to an uninterrupted run.
func TestSessionRecoveryBitIdentical(t *testing.T) {
	s, err := testSession()
	if err != nil {
		t.Fatal(err)
	}
	const chunkSamples = 65536
	var chunks [][]byte
	for at := 0; at < len(s.Recording.Mic1); at += chunkSamples {
		end := at + chunkSamples
		if end > len(s.Recording.Mic1) {
			end = len(s.Recording.Mic1)
		}
		chunks = append(chunks, pcmChunk(s.Recording.Mic1[at:end], s.Recording.Mic2[at:end]))
	}
	if len(chunks) < 2 {
		t.Fatalf("test session renders %d chunks, need >= 2", len(chunks))
	}
	createBody := fmt.Sprintf(`{"sampleRateHz":%g,"micSeparationM":%g}`,
		s.Scenario.Phone.SampleRate, s.Scenario.Phone.MicSeparation)
	var imuBuf bytes.Buffer
	if err := sessionio.WriteIMU(&imuBuf, s.IMU); err != nil {
		t.Fatal(err)
	}
	postIMU := func(ts *httptest.Server, id string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/imu", "text/csv", bytes.NewReader(imuBuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("imu: status %d", resp.StatusCode)
		}
	}

	// Control: uninterrupted, no store.
	_, ctlTS, _ := newTestServer(t, nil)
	ctlID := createSession(t, ctlTS, createBody)
	for _, chunk := range chunks {
		pushAudio(t, ctlTS, ctlID, chunk)
	}
	postIMU(ctlTS, ctlID)
	want := sessionLocate(t, ctlTS, ctlID)

	// Interrupted: stream half into a store-backed server...
	dir := t.TempDir()
	st1 := openTestStore(t, dir)
	_, ts1, _ := newTestServer(t, func(c *Config) {
		c.Store = st1
		c.SweepInterval = time.Hour
	})
	id := createSession(t, ts1, createBody)
	half := len(chunks) / 2
	for _, chunk := range chunks[:half] {
		pushAudio(t, ts1, id, chunk)
	}
	// ...then abandon that server (its in-memory table is the state a
	// crash destroys) and bring up a new one over the same directory.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	_, ts2, reg2 := newTestServer(t, func(c *Config) {
		c.Store = st2
		c.SweepInterval = time.Hour
	})
	if got := reg2.Get(MSessRecovered); got != 1 {
		t.Fatalf("recovered = %d, want 1", got)
	}
	if got := reg2.Gauge(GSessionsActive).Value(); got != 1 {
		t.Fatalf("active after recovery = %d, want 1", got)
	}
	for _, chunk := range chunks[half:] {
		pushAudio(t, ts2, id, chunk)
	}
	postIMU(ts2, id)
	got := sessionLocate(t, ts2, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered locate differs from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// TestRecoveredInvalidEvicted seeds the store with a session whose audio
// cannot be a whole number of stereo frames: boot must count the
// recovery attempt, evict it durably under recovered.invalid, and serve.
func TestRecoveredInvalidEvicted(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	if err := st.Create("bad", sessionio.Meta{}, chirp.Default(), 48000); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAudio("bad", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	_, _, reg := newTestServer(t, func(c *Config) { c.Store = st })
	if got := reg.Get(MSessRecovered); got != 1 {
		t.Errorf("recovered = %d, want 1", got)
	}
	if got := reg.Get(MSessEvictedPrefix + EvictRecoveredInvalid); got != 1 {
		t.Errorf("recovered.invalid evictions = %d, want 1", got)
	}
	if got := reg.Gauge(GSessionsActive).Value(); got != 0 {
		t.Errorf("active = %d, want 0", got)
	}
	// The eviction is durable: a second recovery sees nothing.
	rs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("store still holds %d sessions after invalid eviction", len(rs))
	}
}

// TestRecoveredCapacityEvicted boots a MaxSessions=1 server over a store
// holding two valid sessions: one resumes, the overflow is evicted under
// recovered.capacity, and the accounting identity holds.
func TestRecoveredCapacityEvicted(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	for _, id := range []string{"a", "b"} {
		if err := st.Create(id, sessionio.Meta{}, chirp.Default(), 48000); err != nil {
			t.Fatal(err)
		}
	}
	srv, _, reg := newTestServer(t, func(c *Config) {
		c.Store = st
		c.MaxSessions = 1
	})
	if got := reg.Get(MSessRecovered); got != 2 {
		t.Errorf("recovered = %d, want 2", got)
	}
	if got := reg.Get(MSessEvictedPrefix + EvictRecoveredCapacity); got != 1 {
		t.Errorf("recovered.capacity evictions = %d, want 1", got)
	}
	if got := srv.sessions.len(); got != 1 {
		t.Errorf("live sessions = %d, want 1", got)
	}
	// created + recovered == evicted.* + active
	created, recovered := reg.Get(MSessCreated), reg.Get(MSessRecovered)
	evicted := reg.Get(MSessEvictedPrefix + EvictRecoveredCapacity)
	active := uint64(reg.Gauge(GSessionsActive).Value())
	if created+recovered != evicted+active {
		t.Errorf("accounting identity broken: %d+%d != %d+%d", created, recovered, evicted, active)
	}
}

// failingStore errors on every durable write past a configurable number
// of successes — the disk-full / torn-WAL stand-in.
type failingStore struct {
	sessionstore.SessionStore
	allow int // writes to let through before failing
}

func (f *failingStore) step() error {
	if f.allow > 0 {
		f.allow--
		return nil
	}
	return fmt.Errorf("store: injected write failure")
}

func (f *failingStore) Create(id string, meta sessionio.Meta, src chirp.Params, fs float64) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.SessionStore.Create(id, meta, src, fs)
}

func (f *failingStore) AppendAudio(id string, raw []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.SessionStore.AppendAudio(id, raw)
}

// TestStoreWriteFailure500 maps durable-write failures to the client: a
// failing store makes the mutating request a 500 with Retry-After, and
// the failure is counted.
func TestStoreWriteFailure500(t *testing.T) {
	fs := &failingStore{SessionStore: sessionstore.NewMemory(), allow: 1}
	_, ts, reg := newTestServer(t, func(c *Config) { c.Store = fs })

	// First write (the create) is allowed through.
	id := createSession(t, ts, "")

	// The audio append's store write fails: 500, Retry-After, counted.
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/audio",
		"application/octet-stream", bytes.NewReader(make([]byte, 8)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("append with failing store: status %d, want 500", resp.StatusCode)
	}
	if ra, ok := RetryAfterSeconds(resp.Header); !ok || ra <= 0 {
		t.Errorf("500 must carry a positive Retry-After, got %v %v", ra, ok)
	}
	if got := reg.Get(MStoreErrors); got != 1 {
		t.Errorf("store errors = %d, want 1", got)
	}

	// A failing create also surfaces as 500.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("create with failing store: status %d, want 500", resp.StatusCode)
	}
}

// BenchmarkSessionIngest pins the streaming-append path — PCM decode +
// stream detection — with and without the WAL underneath, so the
// durable path's overhead stays visible next to the in-memory default.
func BenchmarkSessionIngest(b *testing.B) {
	for _, c := range []struct {
		name  string
		store func(b *testing.B) sessionstore.SessionStore
	}{
		{"store=none", func(b *testing.B) sessionstore.SessionStore { return nil }},
		{"store=wal", func(b *testing.B) sessionstore.SessionStore {
			st, err := sessionstore.Open(b.TempDir(), sessionstore.Options{Fsync: sessionstore.FsyncNever})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { st.Close() })
			return st
		}},
	} {
		b.Run(c.name, func(b *testing.B) {
			sess, err := testSession()
			if err != nil {
				b.Fatal(err)
			}
			pipe := core.DefaultConfig(sess.Scenario.Source, sess.Scenario.Phone.SampleRate, sess.Scenario.Phone.MicSeparation)
			srv := New(Config{
				Workers:           1,
				Pipeline:          pipe,
				Store:             c.store(b),
				MaxSessionSamples: 1 << 40,
			})
			defer func() {
				srv.BeginDrain()
				srv.FinishShutdown()
			}()
			h := srv.Handler()

			rr := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/sessions", nil)
			h.ServeHTTP(rr, req)
			if rr.Code != http.StatusCreated {
				b.Fatalf("create: status %d", rr.Code)
			}
			var created sessionCreateResponse
			if err := json.NewDecoder(rr.Body).Decode(&created); err != nil {
				b.Fatal(err)
			}

			chunk := make([]byte, 4*4096) // 4096 stereo frames of silence
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr := httptest.NewRecorder()
				req := httptest.NewRequest("POST", "/v1/sessions/"+created.ID+"/audio", bytes.NewReader(chunk))
				req.Header.Set("Content-Type", "application/octet-stream")
				h.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					b.Fatalf("append %d: status %d: %s", i, rr.Code, rr.Body.String())
				}
			}
		})
	}
}
