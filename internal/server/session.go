package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/obs"
	"hyperear/internal/sessionio"
	"hyperear/internal/sessionstore"
)

// session is one live streaming-ingest session: two per-channel
// StreamDetectors give the client beacon-detection feedback chunk by
// chunk (the paper's direction-finding UX needs to know the beacon is
// audible before the user starts sliding), while the raw samples
// accumulate for the final full-pipeline localization.
type session struct {
	id   string
	meta sessionio.Meta
	fs   float64
	// st persists mutations for crash recovery (nil disables); o tallies
	// store write failures. Both immutable after construction.
	st sessionstore.SessionStore
	o  *obs.Obs

	// mu serializes every mutable field below: the stream detectors'
	// push state, the sample accumulators, and the lifecycle marks.
	mu sync.Mutex
	// det1 and det2 are the per-channel stream detectors.
	//
	// guarded by mu
	det1, det2 *chirp.StreamDetector
	// mic1 and mic2 accumulate the raw per-channel samples.
	//
	// guarded by mu
	mic1, mic2 []float64
	// trace is the attached inertial trace.
	//
	// guarded by mu
	trace *imu.Trace
	// detections counts confirmed channel-1 detections.
	//
	// guarded by mu
	detections int
	// lastTouch is the idle-eviction clock.
	//
	// guarded by mu
	lastTouch time.Time
	// evicted marks a session removed from the table; every method
	// fails fast once set.
	//
	// guarded by mu
	evicted bool
}

// touch marks activity; callers hold s.mu.
func (s *session) touchLocked(now time.Time) { s.lastTouch = now }

// decodePCM decodes interleaved stereo int16 little-endian PCM into the
// per-channel float slices (each len(raw)/4 long). Recovery replays the
// persisted bytes through exactly this decode, which is what makes a
// resumed session's samples — and with them its locate — bit-identical
// to the uninterrupted run's.
func decodePCM(raw []byte, c1, c2 []float64) {
	for i := range c1 {
		c1[i] = float64(int16(binary.LittleEndian.Uint16(raw[i*4:]))) / 32767
		c2[i] = float64(int16(binary.LittleEndian.Uint16(raw[i*4+2:]))) / 32767
	}
}

// appendAudio decodes interleaved stereo int16 little-endian PCM, pushes
// both channels through the stream detectors, and accumulates the
// samples. Returns the newly confirmed detections of channel 1 (the
// client-feedback channel). ctx carries the request's trace IDs into
// the detectors' push spans.
//
// When a store is attached the chunk is WAL-appended before the
// in-memory state mutates: a crash between the two replays the chunk on
// boot instead of losing it, and a failed durable write leaves the
// session exactly as it was.
func (s *session) appendAudio(ctx context.Context, raw []byte, maxSamples int, now time.Time) ([]chirp.Detection, error) {
	if len(raw) == 0 || len(raw)%4 != 0 {
		return nil, fmt.Errorf("audio chunk must be interleaved stereo int16 (got %d bytes)", len(raw))
	}
	n := len(raw) / 4
	// The decoded chunks are copied by everything downstream (the sample
	// accumulator and the stream detectors' carry buffers), so they can
	// come from — and go straight back to — the sessionio sample pool.
	c1 := sessionio.BorrowSamples(n)
	c2 := sessionio.BorrowSamples(n)
	defer sessionio.RecycleSamples(c1, c2)
	decodePCM(raw, c1, c2)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, errSessionGone
	}
	if len(s.mic1)+n > maxSamples {
		return nil, fmt.Errorf("%w: session exceeds %d samples", errSessionTooLarge, maxSamples)
	}
	if s.st != nil {
		if err := s.st.AppendAudio(s.id, raw); err != nil {
			s.o.Inc(MStoreErrors)
			return nil, fmt.Errorf("%w: %v", errStoreFailed, err)
		}
	}
	s.mic1 = append(s.mic1, c1...)
	s.mic2 = append(s.mic2, c2...)
	dets := s.det1.PushContext(ctx, c1)
	s.det2.PushContext(ctx, c2)
	s.detections += len(dets)
	s.touchLocked(now)
	// PushContext reuses its returned slice on the detector's next push;
	// copy while the lock still excludes that push so the handler can
	// serialize the detections after unlocking.
	var out []chirp.Detection
	if len(dets) > 0 {
		out = append(out, dets...)
	}
	return out, nil
}

// setIMU attaches the session's inertial trace. raw is the CSV the
// trace was parsed from; with a store attached it is persisted (WAL
// first) so recovery can re-parse the identical bytes.
func (s *session) setIMU(tr *imu.Trace, raw []byte, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return errSessionGone
	}
	if s.st != nil {
		if err := s.st.SetIMU(s.id, raw); err != nil {
			s.o.Inc(MStoreErrors)
			return fmt.Errorf("%w: %v", errStoreFailed, err)
		}
	}
	s.trace = tr
	s.touchLocked(now)
	return nil
}

// snapshotRecording returns a Recording over the accumulated samples and
// the IMU trace, for the final localization. The slices are copied so the
// pipeline can run outside the session lock while more audio arrives.
func (s *session) snapshotRecording(now time.Time) (*mic.Recording, *imu.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, errSessionGone
	}
	if len(s.mic1) == 0 {
		return nil, nil, fmt.Errorf("session has no audio")
	}
	if s.trace == nil {
		return nil, nil, fmt.Errorf("session has no IMU trace")
	}
	rec := &mic.Recording{
		Fs:        s.fs,
		Mic1:      append([]float64(nil), s.mic1...),
		Mic2:      append([]float64(nil), s.mic2...),
		TrueSNRdB: math.Inf(1),
	}
	if s.st != nil {
		// The locate event is audit trail, not state the pipeline needs;
		// a write failure must not block the localization.
		if err := s.st.NoteLocate(s.id); err != nil {
			s.o.Inc(MStoreErrors)
		}
	}
	s.touchLocked(now)
	return rec, s.trace, nil
}

var (
	errSessionGone     = fmt.Errorf("session not found or evicted")
	errSessionTooLarge = fmt.Errorf("session audio limit exceeded")
	errTableFull       = fmt.Errorf("session table full")
	errStoreFailed     = fmt.Errorf("session store write failed")
)

// sessionTable owns every live session: bounded capacity, idle eviction,
// and gauge accounting. All methods are safe for concurrent use.
type sessionTable struct {
	mu sync.Mutex
	// m maps session id -> live session.
	//
	// guarded by mu
	m map[string]*session
	// max, idle, active, st, and o are immutable after construction.
	max    int
	idle   time.Duration
	active *obs.Gauge
	st     sessionstore.SessionStore
	o      *obs.Obs
}

func newSessionTable(maxSessions int, idle time.Duration, st sessionstore.SessionStore, o *obs.Obs) *sessionTable {
	return &sessionTable{
		m:      make(map[string]*session),
		max:    maxSessions,
		idle:   idle,
		active: o.Gauge(GSessionsActive),
		st:     st,
		o:      o,
	}
}

// newID returns a 128-bit random hex session id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// create registers a new session with per-channel stream detectors built
// from the beacon parameters.
func (t *sessionTable) create(meta sessionio.Meta, src chirp.Params, fs float64, now time.Time) (*session, error) {
	det1, err := chirp.NewStreamDetector(src, fs)
	if err != nil {
		return nil, err
	}
	det2, err := chirp.NewStreamDetector(src, fs)
	if err != nil {
		return nil, err
	}
	// The table's obs hook doubles as the detectors' counter/span sink,
	// so streaming ingest is visible in the same registry and traces as
	// the batch path.
	det1.SetObs(t.o)
	det2.SetObs(t.o)
	id, err := newID()
	if err != nil {
		return nil, err
	}
	if t.st != nil {
		// WAL-first: the create must be durable before the session can
		// accept audio, or a crash after the first chunk would replay
		// audio for an id the log never created.
		if err := t.st.Create(id, meta, src, fs); err != nil {
			t.o.Inc(MStoreErrors)
			return nil, fmt.Errorf("%w: %v", errStoreFailed, err)
		}
	}
	s := &session{id: id, meta: meta, fs: fs, st: t.st, o: t.o, det1: det1, det2: det2, lastTouch: now}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.max {
		// Capacity pressure: evict the stalest session rather than refuse
		// — an abandoned upload should never block a live user.
		stalest := ""
		var oldest time.Time
		for id, cand := range t.m {
			cand.mu.Lock()
			last := cand.lastTouch
			cand.mu.Unlock()
			if stalest == "" || last.Before(oldest) {
				stalest, oldest = id, last
			}
		}
		if stalest == "" {
			return nil, errTableFull
		}
		t.evictLocked(stalest, EvictCapacity)
	}
	t.m[s.id] = s
	t.active.Add(1)
	t.o.Inc(MSessCreated)
	return s, nil
}

// get returns the live session with the given id.
func (t *sessionTable) get(id string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.m[id]
	if s == nil {
		return nil, errSessionGone
	}
	return s, nil
}

// evict removes a session, tallying the reason; returns false when the id
// is unknown (already evicted).
func (t *sessionTable) evict(id, reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictLocked(id, reason)
}

func (t *sessionTable) evictLocked(id, reason string) bool {
	s := t.m[id]
	if s == nil {
		return false
	}
	delete(t.m, id)
	s.mu.Lock()
	s.evicted = true
	s.mu.Unlock()
	if t.st != nil && reason != EvictShutdown {
		// Shutdown evictions stay in the store on purpose: surviving the
		// restart that follows a drain is the whole point of durability.
		// Everything else (idle, capacity, explicit) is gone for good,
		// best-effort — a store error must not resurrect the session.
		if err := t.st.Evict(id, reason); err != nil {
			t.o.Inc(MStoreErrors)
		}
	}
	t.active.Add(-1)
	t.o.Inc(MSessEvictedPrefix + reason)
	return true
}

// insertRecovered rebuilds one persisted session into the live table:
// fresh per-channel StreamDetectors replay the accumulated PCM (the
// detectors' chunked==batch equivalence makes the resumed state agree
// with the uninterrupted run's), the IMU CSV is re-parsed, and the
// detector's Consumed accounting is checked against the persisted
// sample count before the session goes live.
func (t *sessionTable) insertRecovered(rs sessionstore.Session, now time.Time) error {
	if len(rs.Audio)%4 != 0 {
		return fmt.Errorf("persisted audio is %d bytes, not whole stereo frames", len(rs.Audio))
	}
	det1, err := chirp.NewStreamDetector(rs.Src, rs.FS)
	if err != nil {
		return fmt.Errorf("rebuilding detector: %w", err)
	}
	det2, err := chirp.NewStreamDetector(rs.Src, rs.FS)
	if err != nil {
		return fmt.Errorf("rebuilding detector: %w", err)
	}
	det1.SetObs(t.o)
	det2.SetObs(t.o)
	var tr *imu.Trace
	if rs.IMU != nil {
		tr, err = sessionio.ReadIMU(bytes.NewReader(rs.IMU))
		if err != nil {
			return fmt.Errorf("re-parsing imu: %w", err)
		}
	}
	n := len(rs.Audio) / 4
	var mic1, mic2 []float64
	detections := 0
	if n > 0 {
		mic1 = make([]float64, n)
		mic2 = make([]float64, n)
		decodePCM(rs.Audio, mic1, mic2)
		dets := det1.Push(mic1)
		det2.Push(mic2)
		detections = len(dets)
		if det1.Consumed() != n {
			return fmt.Errorf("detector resumed %d of %d samples", det1.Consumed(), n)
		}
	}
	s := &session{
		id: rs.ID, meta: rs.Meta, fs: rs.FS, st: t.st, o: t.o,
		det1: det1, det2: det2, mic1: mic1, mic2: mic2,
		trace: tr, detections: detections, lastTouch: now,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.m[rs.ID]; exists {
		return fmt.Errorf("duplicate recovered session id %q", rs.ID)
	}
	if len(t.m) >= t.max {
		return errTableFull
	}
	t.m[rs.ID] = s
	t.active.Add(1)
	return nil
}

// sweepIdle evicts every session idle longer than the table's idle bound;
// returns how many were evicted. The server's janitor calls this on a
// timer; tests call it directly with a synthetic now.
func (t *sessionTable) sweepIdle(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, s := range t.m {
		s.mu.Lock()
		idle := now.Sub(s.lastTouch)
		s.mu.Unlock()
		if idle > t.idle {
			t.evictLocked(id, EvictIdle)
			n++
		}
	}
	return n
}

// shutdown evicts every remaining session (reason "shutdown").
func (t *sessionTable) shutdown() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.m {
		t.evictLocked(id, EvictShutdown)
	}
}

// len returns the live session count.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
