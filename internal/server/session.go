package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/obs"
	"hyperear/internal/sessionio"
)

// session is one live streaming-ingest session: two per-channel
// StreamDetectors give the client beacon-detection feedback chunk by
// chunk (the paper's direction-finding UX needs to know the beacon is
// audible before the user starts sliding), while the raw samples
// accumulate for the final full-pipeline localization.
type session struct {
	id   string
	meta sessionio.Meta
	fs   float64

	// mu serializes every mutable field below: the stream detectors'
	// push state, the sample accumulators, and the lifecycle marks.
	mu sync.Mutex
	// det1 and det2 are the per-channel stream detectors.
	//
	// guarded by mu
	det1, det2 *chirp.StreamDetector
	// mic1 and mic2 accumulate the raw per-channel samples.
	//
	// guarded by mu
	mic1, mic2 []float64
	// trace is the attached inertial trace.
	//
	// guarded by mu
	trace *imu.Trace
	// detections counts confirmed channel-1 detections.
	//
	// guarded by mu
	detections int
	// lastTouch is the idle-eviction clock.
	//
	// guarded by mu
	lastTouch time.Time
	// evicted marks a session removed from the table; every method
	// fails fast once set.
	//
	// guarded by mu
	evicted bool
}

// touch marks activity; callers hold s.mu.
func (s *session) touchLocked(now time.Time) { s.lastTouch = now }

// appendAudio decodes interleaved stereo int16 little-endian PCM, pushes
// both channels through the stream detectors, and accumulates the
// samples. Returns the newly confirmed detections of channel 1 (the
// client-feedback channel). ctx carries the request's trace IDs into
// the detectors' push spans.
func (s *session) appendAudio(ctx context.Context, raw []byte, maxSamples int, now time.Time) ([]chirp.Detection, error) {
	if len(raw) == 0 || len(raw)%4 != 0 {
		return nil, fmt.Errorf("audio chunk must be interleaved stereo int16 (got %d bytes)", len(raw))
	}
	n := len(raw) / 4
	// The decoded chunks are copied by everything downstream (the sample
	// accumulator and the stream detectors' carry buffers), so they can
	// come from — and go straight back to — the sessionio sample pool.
	c1 := sessionio.BorrowSamples(n)
	c2 := sessionio.BorrowSamples(n)
	defer sessionio.RecycleSamples(c1, c2)
	for i := 0; i < n; i++ {
		c1[i] = float64(int16(binary.LittleEndian.Uint16(raw[i*4:]))) / 32767
		c2[i] = float64(int16(binary.LittleEndian.Uint16(raw[i*4+2:]))) / 32767
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, errSessionGone
	}
	if len(s.mic1)+n > maxSamples {
		return nil, fmt.Errorf("%w: session exceeds %d samples", errSessionTooLarge, maxSamples)
	}
	s.mic1 = append(s.mic1, c1...)
	s.mic2 = append(s.mic2, c2...)
	dets := s.det1.PushContext(ctx, c1)
	s.det2.PushContext(ctx, c2)
	s.detections += len(dets)
	s.touchLocked(now)
	// PushContext reuses its returned slice on the detector's next push;
	// copy while the lock still excludes that push so the handler can
	// serialize the detections after unlocking.
	var out []chirp.Detection
	if len(dets) > 0 {
		out = append(out, dets...)
	}
	return out, nil
}

// setIMU attaches the session's inertial trace.
func (s *session) setIMU(tr *imu.Trace, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return errSessionGone
	}
	s.trace = tr
	s.touchLocked(now)
	return nil
}

// snapshotRecording returns a Recording over the accumulated samples and
// the IMU trace, for the final localization. The slices are copied so the
// pipeline can run outside the session lock while more audio arrives.
func (s *session) snapshotRecording(now time.Time) (*mic.Recording, *imu.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, errSessionGone
	}
	if len(s.mic1) == 0 {
		return nil, nil, fmt.Errorf("session has no audio")
	}
	if s.trace == nil {
		return nil, nil, fmt.Errorf("session has no IMU trace")
	}
	rec := &mic.Recording{
		Fs:        s.fs,
		Mic1:      append([]float64(nil), s.mic1...),
		Mic2:      append([]float64(nil), s.mic2...),
		TrueSNRdB: math.Inf(1),
	}
	s.touchLocked(now)
	return rec, s.trace, nil
}

var (
	errSessionGone     = fmt.Errorf("session not found or evicted")
	errSessionTooLarge = fmt.Errorf("session audio limit exceeded")
	errTableFull       = fmt.Errorf("session table full")
)

// sessionTable owns every live session: bounded capacity, idle eviction,
// and gauge accounting. All methods are safe for concurrent use.
type sessionTable struct {
	mu sync.Mutex
	// m maps session id -> live session.
	//
	// guarded by mu
	m map[string]*session
	// max, idle, active, and o are immutable after construction.
	max    int
	idle   time.Duration
	active *obs.Gauge
	o      *obs.Obs
}

func newSessionTable(maxSessions int, idle time.Duration, o *obs.Obs) *sessionTable {
	return &sessionTable{
		m:      make(map[string]*session),
		max:    maxSessions,
		idle:   idle,
		active: o.Gauge(GSessionsActive),
		o:      o,
	}
}

// newID returns a 128-bit random hex session id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// create registers a new session with per-channel stream detectors built
// from the beacon parameters.
func (t *sessionTable) create(meta sessionio.Meta, src chirp.Params, fs float64, now time.Time) (*session, error) {
	det1, err := chirp.NewStreamDetector(src, fs)
	if err != nil {
		return nil, err
	}
	det2, err := chirp.NewStreamDetector(src, fs)
	if err != nil {
		return nil, err
	}
	// The table's obs hook doubles as the detectors' counter/span sink,
	// so streaming ingest is visible in the same registry and traces as
	// the batch path.
	det1.SetObs(t.o)
	det2.SetObs(t.o)
	id, err := newID()
	if err != nil {
		return nil, err
	}
	s := &session{id: id, meta: meta, fs: fs, det1: det1, det2: det2, lastTouch: now}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.max {
		// Capacity pressure: evict the stalest session rather than refuse
		// — an abandoned upload should never block a live user.
		stalest := ""
		var oldest time.Time
		for id, cand := range t.m {
			cand.mu.Lock()
			last := cand.lastTouch
			cand.mu.Unlock()
			if stalest == "" || last.Before(oldest) {
				stalest, oldest = id, last
			}
		}
		if stalest == "" {
			return nil, errTableFull
		}
		t.evictLocked(stalest, EvictCapacity)
	}
	t.m[s.id] = s
	t.active.Add(1)
	t.o.Inc(MSessCreated)
	return s, nil
}

// get returns the live session with the given id.
func (t *sessionTable) get(id string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.m[id]
	if s == nil {
		return nil, errSessionGone
	}
	return s, nil
}

// evict removes a session, tallying the reason; returns false when the id
// is unknown (already evicted).
func (t *sessionTable) evict(id, reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictLocked(id, reason)
}

func (t *sessionTable) evictLocked(id, reason string) bool {
	s := t.m[id]
	if s == nil {
		return false
	}
	delete(t.m, id)
	s.mu.Lock()
	s.evicted = true
	s.mu.Unlock()
	t.active.Add(-1)
	t.o.Inc(MSessEvictedPrefix + reason)
	return true
}

// sweepIdle evicts every session idle longer than the table's idle bound;
// returns how many were evicted. The server's janitor calls this on a
// timer; tests call it directly with a synthetic now.
func (t *sessionTable) sweepIdle(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, s := range t.m {
		s.mu.Lock()
		idle := now.Sub(s.lastTouch)
		s.mu.Unlock()
		if idle > t.idle {
			t.evictLocked(id, EvictIdle)
			n++
		}
	}
	return n
}

// shutdown evicts every remaining session (reason "shutdown").
func (t *sessionTable) shutdown() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.m {
		t.evictLocked(id, EvictShutdown)
	}
}

// len returns the live session count.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
