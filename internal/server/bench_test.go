package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"hyperear/internal/core"
)

// BenchmarkServerThroughput drives concurrent multipart /v1/locate
// requests through the full service stack — admission pool, localizer
// cache, batched ASP correlations, pipeline — and reports locates/sec.
// Run with -cpu 1,2,4 to see throughput scale with cores: the worker
// pool admits GOMAXPROCS localizations at once and the batch window
// coalesces their matched-filter FFTs.
func BenchmarkServerThroughput(b *testing.B) {
	bd, err := testBundle()
	if err != nil {
		b.Fatal(err)
	}
	sess, err := testSession()
	if err != nil {
		b.Fatal(err)
	}
	pipe := core.DefaultConfig(sess.Scenario.Source, sess.Scenario.Phone.SampleRate, sess.Scenario.Phone.MicSeparation)
	srv := New(Config{
		Workers: runtime.GOMAXPROCS(0),
		// Queue past the bench's in-flight request count so nothing is
		// shed with 429 — this benchmark measures throughput, not
		// admission control.
		Queue:    256,
		Pipeline: pipe,
	})
	defer srv.FinishShutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// One warm-up request so template rendering, FFT plans, and scratch
	// pools are paid before the timer starts.
	doLocate(b, client, ts.URL, bd.body, bd.contentType)

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			doLocate(b, client, ts.URL, bd.body, bd.contentType)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "locates/s")
}

func doLocate(b *testing.B, client *http.Client, base string, body []byte, contentType string) {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/locate?mode=2d", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("locate returned %d", resp.StatusCode)
	}
}
