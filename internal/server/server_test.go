package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperear/internal/chirp"
	"hyperear/internal/core"
	"hyperear/internal/geom"
	"hyperear/internal/imu"
	"hyperear/internal/mic"
	"hyperear/internal/obs"
	"hyperear/internal/room"
	"hyperear/internal/sessionio"
	"hyperear/internal/sim"
)

// testSession lazily renders one small session shared by every test in
// the package (rendering and the pipeline dominate test time; two slides
// keep both short while still producing fixes).
var testSession = sync.OnceValues(func() (*sim.Session, error) {
	phone := mic.GalaxyS4()
	return sim.Run(sim.Scenario{
		Env:            room.MeetingRoom(),
		Phone:          phone,
		Source:         chirp.Default(),
		SpeakerPos:     geom.Vec3{X: 8, Y: 6, Z: 1.2},
		SpeakerSkewPPM: 25,
		PhoneStart:     geom.Vec3{X: 4, Y: 6, Z: 1.2},
		Protocol: sim.Protocol{
			SlideDist: 0.55,
			SlideDur:  1.0,
			HoldDur:   0.45,
			Slides:    2,
			Mode:      sim.ModeRuler,
		},
		IMU:   imu.DefaultConfig(),
		Noise: room.WhiteNoise{},
		SNRdB: 18,
		Seed:  7,
	})
})

// testBundle lazily serializes the shared session as a multipart body.
var testBundle = sync.OnceValues(func() (struct {
	body        []byte
	contentType string
}, error) {
	var out struct {
		body        []byte
		contentType string
	}
	s, err := testSession()
	if err != nil {
		return out, err
	}
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	aw, err := w.CreateFormFile(sessionio.PartAudio, "audio.wav")
	if err != nil {
		return out, err
	}
	if err := sessionio.WriteRecording(aw, s.Recording); err != nil {
		return out, err
	}
	iw, err := w.CreateFormFile(sessionio.PartIMU, "imu.csv")
	if err != nil {
		return out, err
	}
	if err := sessionio.WriteIMU(iw, s.IMU); err != nil {
		return out, err
	}
	mw, err := w.CreateFormFile(sessionio.PartMeta, "meta.json")
	if err != nil {
		return out, err
	}
	meta := sessionio.Meta{
		PhoneName:     s.Scenario.Phone.Name,
		MicSeparation: s.Scenario.Phone.MicSeparation,
		SampleRate:    s.Scenario.Phone.SampleRate,
	}
	if err := json.NewEncoder(mw).Encode(meta); err != nil {
		return out, err
	}
	if err := w.Close(); err != nil {
		return out, err
	}
	out.body = buf.Bytes()
	out.contentType = w.FormDataContentType()
	return out, nil
})

func bundleRequest(t *testing.T, url string) *http.Request {
	t.Helper()
	b, err := testBundle()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b.body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", b.contentType)
	return req
}

// newTestServer builds a Server over the shared session's phone profile.
// mod (optional) tweaks the normalized-input config before New.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	s, err := testSession()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	pipe := core.DefaultConfig(s.Scenario.Source, s.Scenario.Phone.SampleRate, s.Scenario.Phone.MicSeparation)
	pipe.Obs = o
	cfg := Config{
		Workers:  2,
		Queue:    2,
		Pipeline: pipe,
		Obs:      o,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.BeginDrain()
		srv.FinishShutdown()
	})
	return srv, ts, reg
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLocate2D(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeJSON[locate2DResponse](t, resp.Body)
	if res.Mode != "2d" || res.Fixes == 0 || res.Beacons == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Pos.X <= 0 {
		t.Errorf("speaker should be in front of the phone, got pos %+v", res.Pos)
	}
	if got := reg.Get(MReqAdmitted); got != 1 {
		t.Errorf("admitted = %d, want 1", got)
	}
	if got := reg.Get(MReqCompleted); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

func TestLocateBadContentType(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
	if got := reg.Get(MReqRejected); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestLocateBadMode(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate?mode=4d"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestLocateOversizedBody(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 1024 })
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestLocateNonFiniteRejected pins the floatguard ingestion contract at
// the HTTP boundary: non-finite floats in the meta sidecar or the IMU
// CSV must die with 400, not reach the pipeline.
func TestLocateNonFiniteRejected(t *testing.T) {
	b, err := testBundle()
	if err != nil {
		t.Fatal(err)
	}
	build := func(metaJSON, imuCSV string) *http.Request {
		var buf bytes.Buffer
		w := multipart.NewWriter(&buf)
		// Reuse the rendered WAV part bytes by re-parsing the shared body.
		mr := multipart.NewReader(bytes.NewReader(b.body), strings.TrimPrefix(b.contentType, "multipart/form-data; boundary="))
		for {
			p, err := mr.NextPart()
			if err != nil {
				break
			}
			if p.FormName() != sessionio.PartAudio {
				continue
			}
			fw, _ := w.CreateFormFile(sessionio.PartAudio, "audio.wav")
			io.Copy(fw, p)
		}
		iw, _ := w.CreateFormFile(sessionio.PartIMU, "imu.csv")
		io.WriteString(iw, imuCSV)
		if metaJSON != "" {
			mw, _ := w.CreateFormFile(sessionio.PartMeta, "meta.json")
			io.WriteString(mw, metaJSON)
		}
		w.Close()
		req, _ := http.NewRequest("POST", "/v1/locate", &buf)
		req.Header.Set("Content-Type", w.FormDataContentType())
		return req
	}
	goodIMU := "# fs=100\nax,ay,az,gx,gy,gz,gravx,gravy,gravz\n0,0,0,0,0,0,0,0,9.81\n"
	cases := []struct {
		name string
		req  *http.Request
	}{
		{"over-range meta float", build(`{"sampleRateHz":1e999}`, goodIMU)},
		{"NaN IMU sample", build("", "# fs=100\nax,ay,az,gx,gy,gz,gravx,gravy,gravz\nNaN,0,0,0,0,0,0,0,9.81\n")},
		{"Inf IMU sample", build("", "# fs=100\nax,ay,az,gx,gy,gz,gravx,gravy,gravz\n0,+Inf,0,0,0,0,0,0,9.81\n")},
	}
	srv, _, _ := newTestServer(t, nil)
	for _, c := range cases {
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, c.req)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body: %s)", c.name, rr.Code, rr.Body.String())
		}
	}
}

func TestQueueFullSheds429(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Queue = 1
	})
	// Exhaust the admission bound directly (same-package access to the
	// ticket semaphore) so the next HTTP request is deterministically
	// shed — no timing games with real pipeline runs.
	for i := 0; i < srv.QueueBound(); i++ {
		select {
		case srv.pool.tickets <- struct{}{}:
		default:
			t.Fatalf("ticket %d unavailable: bound smaller than expected", i)
		}
	}
	defer func() {
		for i := 0; i < srv.QueueBound(); i++ {
			<-srv.pool.tickets
		}
	}()

	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra, ok := RetryAfterSeconds(resp.Header); !ok || ra <= 0 {
		t.Errorf("429 must carry a positive Retry-After, got %v %v", ra, ok)
	}
	if got := reg.Get(MReqShedPrefix + "queue_full"); got != 1 {
		t.Errorf("shed.queue_full = %d, want 1", got)
	}
}

func TestDrainSheds503(t *testing.T) {
	srv, ts, reg := newTestServer(t, nil)
	srv.BeginDrain()

	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("locate while draining: status = %d, want 503", resp.StatusCode)
	}
	if ra, ok := RetryAfterSeconds(resp.Header); !ok || ra <= 0 {
		t.Errorf("503 must carry a positive Retry-After, got %v %v", ra, ok)
	}

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status = %d, want 503", resp.StatusCode)
	}

	// Liveness is unaffected by draining.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status = %d, want 200", resp.StatusCode)
	}

	resp, err = ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("session create while draining: status = %d, want 503", resp.StatusCode)
	}

	if got := reg.Get(MReqShedPrefix + "draining"); got != 2 {
		t.Errorf("shed.draining = %d, want 2", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics must be JSON: %v", err)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text format content type = %q", ct)
	}
	_ = text
}

// pcmChunk converts a float64 stereo pair into interleaved int16 LE PCM.
func pcmChunk(m1, m2 []float64) []byte {
	out := make([]byte, 4*len(m1))
	for i := range m1 {
		binary.LittleEndian.PutUint16(out[i*4:], uint16(int16(clamp16(m1[i]))))
		binary.LittleEndian.PutUint16(out[i*4+2:], uint16(int16(clamp16(m2[i]))))
	}
	return out
}

func clamp16(v float64) int32 {
	s := int32(v * 32767)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	s, err := testSession()
	if err != nil {
		t.Fatal(err)
	}
	_, ts, reg := newTestServer(t, nil)

	// Create.
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sampleRateHz":%g,"micSeparationM":%g}`,
			s.Scenario.Phone.SampleRate, s.Scenario.Phone.MicSeparation)))
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d id %q", resp.StatusCode, created.ID)
	}

	// Stream the audio in chunks; across the whole stream the detectors
	// must report beacons (live feedback).
	const chunkSamples = 65536
	totalDets := 0
	for at := 0; at < len(s.Recording.Mic1); at += chunkSamples {
		end := at + chunkSamples
		if end > len(s.Recording.Mic1) {
			end = len(s.Recording.Mic1)
		}
		chunk := pcmChunk(s.Recording.Mic1[at:end], s.Recording.Mic2[at:end])
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/audio",
			"application/octet-stream", bytes.NewReader(chunk))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("audio append: status %d: %s", resp.StatusCode, body)
		}
		ar := decodeJSON[audioAppendResponse](t, resp.Body)
		resp.Body.Close()
		totalDets += len(ar.Detections)
	}
	if totalDets == 0 {
		t.Fatal("streaming a full session must yield beacon detections")
	}

	// IMU.
	var imuBuf bytes.Buffer
	if err := sessionio.WriteIMU(&imuBuf, s.IMU); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/imu", "text/csv", &imuBuf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("imu: status %d, want 204", resp.StatusCode)
	}

	// Locate over the accumulated stream.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/locate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("session locate: status %d: %s", resp.StatusCode, body)
	}
	res := decodeJSON[locate2DResponse](t, resp.Body)
	resp.Body.Close()
	if res.Fixes == 0 {
		t.Fatalf("session locate produced no fixes: %+v", res)
	}

	// Delete; a second delete and further appends are 404.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+created.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", resp.StatusCode)
	}

	// Session accounting: one created, one explicit eviction, none active.
	if got := reg.Get(MSessCreated); got != 1 {
		t.Errorf("sessions created = %d, want 1", got)
	}
	if got := reg.Get(MSessEvictedPrefix + EvictExplicit); got != 1 {
		t.Errorf("explicit evictions = %d, want 1", got)
	}
	if got := reg.Gauge(GSessionsActive).Value(); got != 0 {
		t.Errorf("active sessions = %d, want 0", got)
	}
}

func TestSessionAudioBadChunk(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()

	// Not a multiple of one stereo frame.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/audio",
		"application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("odd chunk: status %d, want 400", resp.StatusCode)
	}

	// Unknown session.
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/nope/audio",
		"application/octet-stream", bytes.NewReader(make([]byte, 8)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}
}

func TestSessionSampleLimit(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) { c.MaxSessionSamples = 16 })
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/audio",
		"application/octet-stream", bytes.NewReader(make([]byte, 4*17)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over sample limit: status %d, want 413", resp.StatusCode)
	}
}

func TestSessionIdleEviction(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *Config) {
		c.SessionIdleTimeout = time.Minute
		// Keep the real janitor out of the way; the test drives the sweep.
		c.SweepInterval = time.Hour
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()

	if n := srv.sessions.sweepIdle(time.Now()); n != 0 {
		t.Fatalf("fresh session swept: %d evictions", n)
	}
	if n := srv.sessions.sweepIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("idle sweep evicted %d sessions, want 1", n)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/audio",
		"application/octet-stream", bytes.NewReader(make([]byte, 8)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still reachable: status %d", resp.StatusCode)
	}
	if got := reg.Get(MSessEvictedPrefix + EvictIdle); got != 1 {
		t.Errorf("idle evictions = %d, want 1", got)
	}
}

func TestSessionCapacityEviction(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *Config) { c.MaxSessions = 1 })
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
	}
	if got := srv.sessions.len(); got != 1 {
		t.Errorf("live sessions = %d, want 1 (stalest evicted)", got)
	}
	if got := reg.Get(MSessEvictedPrefix + EvictCapacity); got != 1 {
		t.Errorf("capacity evictions = %d, want 1", got)
	}
	if got := reg.Get(MSessCreated); got != 2 {
		t.Errorf("created = %d, want 2", got)
	}
}

// TestShutdownDrainsInFlight proves the drain sequence: a request
// admitted before BeginDrain completes normally while a request arriving
// after is shed with 503.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, ts, reg := newTestServer(t, nil)

	inflight := make(chan *http.Response, 1)
	inflightErr := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
		if err != nil {
			inflightErr <- err
			return
		}
		inflight <- resp
	}()

	// Wait until the request is admitted (holding a pool ticket).
	deadline := time.Now().Add(10 * time.Second)
	for reg.Gauge(GQueueDepth).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()

	// New work is refused...
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.StatusCode)
	}

	// ...while the admitted request runs to completion.
	select {
	case resp := <-inflight:
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("in-flight request: status %d: %s", resp.StatusCode, body)
		}
	case err := <-inflightErr:
		t.Fatalf("in-flight request failed: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight request hung through drain")
	}
}

func TestPoolQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	p := newPool(1, 1, obs.New(nil, reg).Gauge(GQueueDepth))
	rel1, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second admitted request queues (ticket taken, waiting on a slot) —
	// acquire from a goroutine since it blocks.
	queued := make(chan func(), 1)
	go func() {
		rel, err := p.acquire(context.Background())
		if err != nil {
			t.Error(err)
			queued <- nil
			return
		}
		queued <- rel
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(p.tickets) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never took its ticket")
		}
		time.Sleep(time.Millisecond)
	}
	// Third is past the bound: shed immediately.
	if _, err := p.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-bound acquire: got %v, want errQueueFull", err)
	}
	rel1()
	rel2 := <-queued
	if rel2 == nil {
		t.Fatal("queued acquire failed")
	}
	rel2()
	if got := reg.Gauge(GQueueDepth).Value(); got != 0 {
		t.Errorf("final queue depth = %d, want 0", got)
	}
	if got := reg.Gauge(GQueueDepth).Max(); got != 2 {
		t.Errorf("queue depth watermark = %d, want 2", got)
	}
}

func TestPoolCanceledWhileQueued(t *testing.T) {
	p := newPool(1, 1, nil)
	rel, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued acquire: got %v, want context.Canceled", err)
	}
}

func TestPoolDrainWakesQueued(t *testing.T) {
	p := newPool(1, 1, nil)
	rel, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	got := make(chan error, 1)
	go func() {
		_, err := p.acquire(context.Background())
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(p.tickets) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never took its ticket")
		}
		time.Sleep(time.Millisecond)
	}
	p.drain()
	p.drain() // idempotent
	select {
	case err := <-got:
		if !errors.Is(err, errDraining) {
			t.Fatalf("drained queued acquire: got %v, want errDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire not woken by drain")
	}
	if _, err := p.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain acquire: got %v, want errDraining", err)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	h := http.Header{}
	if _, ok := RetryAfterSeconds(h); ok {
		t.Error("missing header must report !ok")
	}
	h.Set("Retry-After", "5")
	if n, ok := RetryAfterSeconds(h); !ok || n != 5 {
		t.Errorf("got %d %v, want 5 true", n, ok)
	}
	h.Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
	if _, ok := RetryAfterSeconds(h); ok {
		t.Error("date form must report !ok")
	}
}
