package server

import (
	"context"
	"errors"
	"sync"

	"hyperear/internal/obs"
)

// errQueueFull is returned by acquire when the admission queue is at its
// bound; the handler maps it to 429 with Retry-After.
var errQueueFull = errors.New("server: admission queue full")

// errDraining is returned once graceful shutdown has begun; the handler
// maps it to 503 with Retry-After.
var errDraining = errors.New("server: draining")

// pool is the admission-controlled worker pool every localization runs
// through. Two chained channel semaphores give the bounded-queue
// behavior: tickets caps admitted work (running + waiting, the queue
// bound), slots caps concurrently running work (the worker bound). A
// request that cannot take a ticket without blocking is shed immediately
// — the server never builds an unbounded backlog, it pushes back.
type pool struct {
	tickets chan struct{} // capacity workers+queue: admitted (running+queued)
	slots   chan struct{} // capacity workers: running
	depth   *obs.Gauge    // mirrors len(tickets); Max() is the watermark
	done    chan struct{} // closed by drain: wakes queued waiters
	drainMu sync.Once
}

// newPool sizes the pool: workers concurrent localizations, queue
// additional admitted-but-waiting requests. Both must be ≥ 1 / ≥ 0;
// callers normalize before this.
func newPool(workers, queue int, depth *obs.Gauge) *pool {
	return &pool{
		tickets: make(chan struct{}, workers+queue),
		slots:   make(chan struct{}, workers),
		depth:   depth,
		done:    make(chan struct{}),
	}
}

// acquire admits one unit of work. On success the returned release
// function MUST be called exactly once when the work finishes. Failure
// modes: errQueueFull (queue at bound — shed now), errDraining (shutdown
// began while waiting), or the context's error (client gave up while
// queued).
func (p *pool) acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-p.done:
		return nil, errDraining
	default:
	}
	select {
	case p.tickets <- struct{}{}:
	default:
		return nil, errQueueFull
	}
	p.depth.Add(1)
	giveBack := func() {
		<-p.tickets
		p.depth.Add(-1)
	}
	select {
	case p.slots <- struct{}{}:
		return func() {
			<-p.slots
			giveBack()
		}, nil
	case <-ctx.Done():
		giveBack()
		return nil, context.Cause(ctx)
	case <-p.done:
		giveBack()
		return nil, errDraining
	}
}

// drain stops admitting: queued waiters wake with errDraining, future
// acquires fail fast. Work already holding a slot is unaffected — the
// HTTP layer's Shutdown waits for those handlers to return. Idempotent
// and safe to call concurrently.
func (p *pool) drain() {
	p.drainMu.Do(func() { close(p.done) })
}

// bound returns the admission bound (workers + queue).
func (p *pool) bound() int { return cap(p.tickets) }
