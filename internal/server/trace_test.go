package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperear/internal/core"
	"hyperear/internal/obs"
)

// newTracedServer is newTestServer with a MemSink attached, for tests
// asserting on emitted spans.
func newTracedServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server, *obs.MemSink, *obs.Registry) {
	t.Helper()
	s, err := testSession()
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.MemSink{}
	reg := obs.NewRegistry()
	o := obs.New(sink, reg)
	pipe := core.DefaultConfig(s.Scenario.Source, s.Scenario.Phone.SampleRate, s.Scenario.Phone.MicSeparation)
	pipe.Obs = o
	cfg := Config{
		Workers:  2,
		Queue:    2,
		Pipeline: pipe,
		Obs:      o,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.BeginDrain()
		srv.FinishShutdown()
	})
	return srv, ts, sink, reg
}

// TestTracePropagationLocate drives one batch localization and asserts
// every span the pipeline emitted carries the request's trace ID (as
// echoed in X-Request-Id), with the server.request root span as the
// stage spans' parent.
func TestTracePropagationLocate(t *testing.T) {
	_, ts, sink, _ := newTracedServer(t, nil)
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	trace := resp.Header.Get("X-Request-Id")
	if trace == "" {
		t.Fatal("response missing X-Request-Id")
	}

	evs := sink.Events()
	if len(evs) == 0 {
		t.Fatal("no spans emitted")
	}
	var root *obs.Event
	for i := range evs {
		if evs[i].Stage == "server.request" {
			root = &evs[i]
		}
	}
	if root == nil {
		t.Fatalf("no server.request root span among %v", sink.Stages())
	}
	if root.TraceID != trace {
		t.Errorf("root TraceID = %q, want header's %q", root.TraceID, trace)
	}
	if root.SpanID == "" || root.ParentID != "" {
		t.Errorf("root span IDs = (%q, parent %q), want (non-empty, empty)", root.SpanID, root.ParentID)
	}
	wantStages := map[string]bool{"asp": false, "msp": false, "pde": false, "ttl": false, "locate2d": false}
	for _, ev := range evs {
		if ev.TraceID != trace {
			t.Errorf("span %q TraceID = %q, want %q", ev.Stage, ev.TraceID, trace)
		}
		if ev.Stage == "server.request" {
			continue
		}
		if ev.ParentID != root.SpanID {
			t.Errorf("span %q ParentID = %q, want root %q", ev.Stage, ev.ParentID, root.SpanID)
		}
		if ev.SpanID == "" || ev.SpanID == root.SpanID {
			t.Errorf("span %q SpanID = %q, want fresh non-root ID", ev.Stage, ev.SpanID)
		}
		if _, ok := wantStages[ev.Stage]; ok {
			wantStages[ev.Stage] = true
		}
	}
	for stage, seen := range wantStages {
		if !seen {
			t.Errorf("stage %q emitted no span", stage)
		}
	}
}

// TestRequestIDReuse checks a well-formed inbound X-Request-Id is kept
// (retrying clients keep one ID across attempts) and a hostile one is
// replaced.
func TestRequestIDReuse(t *testing.T) {
	_, ts, sink, _ := newTracedServer(t, nil)

	req := bundleRequest(t, ts.URL+"/v1/locate")
	req.Header.Set("X-Request-Id", "client-id-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Errorf("echoed id = %q, want client-id-42", got)
	}
	for _, ev := range sink.Events() {
		if ev.TraceID != "client-id-42" {
			t.Errorf("span %q TraceID = %q, want client-id-42", ev.Stage, ev.TraceID)
		}
	}

	req = bundleRequest(t, ts.URL+"/v1/locate")
	req.Header.Set("X-Request-Id", "evil\"id with spaces")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.ContainsAny(got, " \"") {
		t.Errorf("hostile inbound id must be replaced, got %q", got)
	}
}

// TestTracePropagationStreaming checks the streaming-ingest path: audio
// pushed into a session emits detector spans tagged with that request's
// trace ID.
func TestTracePropagationStreaming(t *testing.T) {
	_, ts, sink, reg := newTracedServer(t, nil)
	sess, err := testSession()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	created := decodeJSON[sessionCreateResponse](t, resp.Body)
	resp.Body.Close()

	chunk := pcmChunk(sess.Recording.Mic1, sess.Recording.Mic2)
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+created.ID+"/audio", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "stream-req-1")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audio push status = %d, want 200", resp.StatusCode)
	}

	var pushSpans int
	for _, ev := range sink.Events() {
		if ev.Stage != "chirp.stream.push" {
			continue
		}
		pushSpans++
		if ev.TraceID != "stream-req-1" {
			t.Errorf("push span TraceID = %q, want stream-req-1", ev.TraceID)
		}
		if ev.ParentID == "" {
			t.Error("push span has no parent (request root expected)")
		}
	}
	if pushSpans == 0 {
		t.Fatal("no chirp.stream.push spans emitted for a full-session chunk")
	}
	if got := reg.Snapshot().Counters["chirp.stream.emitted"]; got == 0 {
		t.Error("stream detector counters not wired into the server registry")
	}
}

// TestAccessLog checks the structured access log: one JSON line per
// request carrying the trace ID, route, status, outcome, duration and
// byte counts.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts, _, _ := newTracedServer(t, func(c *Config) { c.AccessLog = logW })

	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trace := resp.Header.Get("X-Request-Id")

	// The line is written after the handler returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var lines []string
	for time.Now().Before(deadline) {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Count(s, "\n") >= 1 {
			sc := bufio.NewScanner(strings.NewReader(s))
			for sc.Scan() {
				lines = append(lines, sc.Text())
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) == 0 {
		t.Fatal("no access-log line written")
	}
	var entry accessEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access line is not JSON: %v\n%s", err, lines[0])
	}
	if entry.Trace != trace {
		t.Errorf("logged trace = %q, want %q", entry.Trace, trace)
	}
	if entry.Route != "POST /v1/locate" {
		t.Errorf("route = %q, want POST /v1/locate", entry.Route)
	}
	if entry.Status != http.StatusOK {
		t.Errorf("status = %d, want 200", entry.Status)
	}
	if entry.Outcome != outcomeCompleted {
		t.Errorf("outcome = %q, want %q", entry.Outcome, outcomeCompleted)
	}
	if entry.DurMS <= 0 {
		t.Errorf("durMs = %v, want > 0", entry.DurMS)
	}
	if entry.BytesIn <= 0 || entry.BytesOut <= 0 {
		t.Errorf("bytes in/out = %d/%d, want both > 0", entry.BytesIn, entry.BytesOut)
	}
	if t.Failed() {
		t.Logf("access line: %s", lines[0])
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestAccessLogOutcomeShed checks the admission outcome lands in the
// log for refused requests too.
func TestAccessLogOutcomeShed(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	srv, ts, _, _ := newTracedServer(t, func(c *Config) { c.AccessLog = logW })
	srv.BeginDrain()

	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "\n") {
			var entry accessEntry
			if err := json.Unmarshal([]byte(s[:strings.IndexByte(s, '\n')]), &entry); err != nil {
				t.Fatal(err)
			}
			if entry.Outcome != outcomeShedPrefix+"draining" {
				t.Errorf("outcome = %q, want shed:draining", entry.Outcome)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no access-log line written")
}

// TestMetricsPrometheus checks /metrics speaks Prometheus text format
// under both the query parameter and scraper content negotiation, and
// that the output parses line by line.
func TestMetricsPrometheus(t *testing.T) {
	srv, ts, _, _ := newTracedServer(t, nil)
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.TickWindow(time.Now())

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 exposition type", ct)
	}
	body := decodeBody(t, resp)
	checkPromLines(t, body)
	for _, want := range []string{
		"# TYPE hyperear_server_requests_admitted_total counter\n",
		"hyperear_server_requests_admitted_total 1\n",
		"# TYPE hyperear_span_locate2d histogram\n",
		"hyperear_span_locate2d_bucket{le=\"+Inf\"} 1\n",
		"# TYPE hyperear_go_goroutines gauge\n",
		"# TYPE hyperear_rolling_server_request_duration summary\n",
		"hyperear_rolling_server_request_duration{quantile=\"0.99\"} ",
		"hyperear_server_queue_depth ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Scraper-style Accept header negotiates the same format.
	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("negotiated content type = %q, want exposition format", ct)
	}
}

func decodeBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// checkPromLines is a line-grammar check over a full exposition body:
// every line is a TYPE comment or `series value`.
func checkPromLines(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Error("empty exposition line")
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Errorf("malformed comment %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("sample %q has no value", line)
			continue
		}
		if v := line[sp+1:]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Errorf("sample %q: unparsable value: %v", line, err)
			}
		}
	}
}

// TestMetricsJSONRolling checks the default JSON body now carries the
// rolling quantiles next to the raw snapshot.
func TestMetricsJSONRolling(t *testing.T) {
	srv, ts, _, _ := newTracedServer(t, nil)
	srv.TickWindow(time.Now().Add(-30 * time.Second))
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := decodeJSON[struct {
		Counters       map[string]uint64        `json:"counters"`
		RollingSeconds float64                  `json:"rollingSeconds"`
		Rolling        map[string]quantilesJSON `json:"rolling"`
	}](t, resp.Body)
	if body.Counters[MReqAdmitted] != 1 {
		t.Errorf("admitted = %d, want 1", body.Counters[MReqAdmitted])
	}
	if body.RollingSeconds <= 0 {
		t.Errorf("rollingSeconds = %v, want > 0", body.RollingSeconds)
	}
	q, ok := body.Rolling[MReqDuration]
	if !ok {
		t.Fatalf("rolling missing %q (have %v)", MReqDuration, body.Rolling)
	}
	if q.Count != 1 || q.P99 <= 0 {
		t.Errorf("rolling request quantiles = %+v, want count 1 and positive p99", q)
	}
}

// TestDebugSLO checks the /debug/slo endpoint: attainment over the
// rolling window against the configured target, with per-stage
// quantiles.
func TestDebugSLO(t *testing.T) {
	srv, ts, _, _ := newTracedServer(t, func(c *Config) {
		c.SLOTarget = 30 * time.Second // generous: the test request must attain it
		c.SLOObjective = 0.95
	})
	srv.TickWindow(time.Now().Add(-time.Minute))
	resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	slo := decodeJSON[sloResponse](t, resp.Body)
	if !approxf(slo.TargetSeconds, 30, 1e-9) {
		t.Errorf("targetSeconds = %v, want 30", slo.TargetSeconds)
	}
	if !approxf(slo.Objective, 0.95, 1e-9) {
		t.Errorf("objective = %v, want 0.95", slo.Objective)
	}
	if slo.Requests < 1 {
		t.Errorf("requests = %d, want >= 1", slo.Requests)
	}
	if slo.Attainment < 0 || slo.Attainment > 1 {
		t.Errorf("attainment = %v, out of [0,1]", slo.Attainment)
	}
	// The 30s target dwarfs any test-box latency: full attainment, no
	// budget burned.
	if !approxf(slo.Attainment, 1, 1e-9) {
		t.Errorf("attainment = %v, want 1 under a 30s target", slo.Attainment)
	}
	if slo.ErrorBudgetBurn > 1e-9 {
		t.Errorf("errorBudgetBurn = %v, want 0", slo.ErrorBudgetBurn)
	}
	if slo.WindowSeconds <= 0 {
		t.Errorf("windowSeconds = %v, want > 0", slo.WindowSeconds)
	}
	if slo.Request.P50 <= 0 || slo.Request.P99 < slo.Request.P50 {
		t.Errorf("request quantiles inconsistent: %+v", slo.Request)
	}
	for _, stage := range []string{"locate2d", "asp"} {
		if _, ok := slo.Stages[stage]; !ok {
			t.Errorf("stages missing %q (have %v)", stage, slo.Stages)
		}
	}
}

// TestBatchGaugesFreshEverywhere pins the OnSnapshot refresh: the
// batch-coalescing gauges must be current in a *direct* registry
// snapshot (as the expvar export takes), not only after an HTTP
// /metrics render.
func TestBatchGaugesFreshEverywhere(t *testing.T) {
	srv, ts, _ := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.Queue = 8
		c.BatchWindow = 20 * time.Millisecond
	})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Do(bundleRequest(t, ts.URL+"/v1/locate"))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var batches, lanes uint64
	srv.locMu.Lock()
	for _, l := range srv.locs {
		b, ln := l.BatchStats()
		batches += b
		lanes += ln
	}
	srv.locMu.Unlock()
	if lanes == 0 {
		t.Fatal("no correlation lanes batched despite a 20ms window and 4 concurrent locates")
	}

	// Direct snapshot — not via the HTTP handler.
	snap := srv.o.Registry().Snapshot()
	if got := snap.Gauges[GBatchBatches].Value; uint64(got) != batches {
		t.Errorf("direct snapshot batches gauge = %d, want %d", got, batches)
	}
	if got := snap.Gauges[GBatchLanes].Value; uint64(got) != lanes {
		t.Errorf("direct snapshot lanes gauge = %d, want %d", got, lanes)
	}
}

func approxf(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
