package server

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestSoakConcurrentClients is the load/fault gate the CI soak job runs
// under -race: many concurrent clients against a small pool. Every
// request must resolve to 200 (ran the pipeline), 429 (queue full) or
// 503 (shed) — none may hang or see a transport error — and afterwards
// the admission accounting must balance exactly:
//
//	admitted + shed.queue_full + shed.draining == requests sent
//	completed + canceled                       == admitted
//	queue-depth watermark                      <= workers + queue
//
// The "Concurrent" in the name opts it into the obs-check race gate's
// -run filter as well.
func TestSoakConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const clients = 32
	srv, ts, reg := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.Queue = 2
	})

	b, err := testBundle()
	if err != nil {
		t.Fatal(err)
	}

	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/locate", bytes.NewReader(b.body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", b.contentType)
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("client %d: transport error: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	byCode := map[int]int{}
	for i, c := range codes {
		switch c {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			byCode[c]++
		default:
			t.Errorf("client %d: status %d, want 200/429/503", i, c)
		}
	}
	t.Logf("soak outcomes: %v", byCode)
	if byCode[http.StatusOK] == 0 {
		t.Error("no client completed a localization")
	}

	admitted := reg.Get(MReqAdmitted)
	shed := reg.Get(MReqShedPrefix+"queue_full") + reg.Get(MReqShedPrefix+"draining")
	completed := reg.Get(MReqCompleted)
	canceled := reg.Get(MReqCanceled)
	if admitted+shed != clients {
		t.Errorf("admission accounting leak: admitted %d + shed %d != %d requests",
			admitted, shed, clients)
	}
	if completed+canceled != admitted {
		t.Errorf("completion accounting leak: completed %d + canceled %d != admitted %d",
			completed, canceled, admitted)
	}
	if rejected := reg.Get(MReqRejected); rejected != 0 {
		t.Errorf("well-formed soak requests rejected: %d", rejected)
	}

	depth := reg.Gauge(GQueueDepth)
	if max := depth.Max(); max > int64(srv.QueueBound()) {
		t.Errorf("queue depth watermark %d exceeded bound %d", max, srv.QueueBound())
	}
	if v := depth.Value(); v != 0 {
		t.Errorf("queue depth after soak = %d, want 0", v)
	}
}
