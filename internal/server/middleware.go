package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"hyperear/internal/obs"
)

// Request-scoped observability: the outermost handler mints a trace
// context per request (reusing a syntactically sane inbound
// X-Request-Id so a retrying client keeps one ID across attempts),
// echoes it in the X-Request-Id response header, and carries it via
// context so every pipeline stage span emitted downstream — ASP, MSP,
// PDE, TTL, even the streaming detector's push passes — lands in the
// sink tagged with the request's IDs. /v1/* requests additionally get a
// "server.request" root span (the stage spans' parent) and a
// server.request.duration observation feeding the rolling SLO window.

// Access-log outcome codes, recorded where the admission decision is
// made. "completed" and "failed" both mean the pipeline ran to an
// answer (mirroring MReqCompleted); "canceled" covers both queue
// abandonment and mid-pipeline deadline/cancellation.
const (
	outcomeCompleted = "completed"
	outcomeFailed    = "failed"
	outcomeCanceled  = "canceled"
	outcomeRejected  = "rejected"
	// outcomeShedPrefix + reason ("queue_full", "draining") mirrors the
	// MReqShedPrefix counters.
	outcomeShedPrefix = "shed:"
)

// reqInfo is the middleware's per-request state, reachable from
// handlers via the request context so the admission outcome can be
// recorded at the decision point and read back when the access-log
// line is written. Handlers run synchronously in the request
// goroutine, so no locking is needed.
type reqInfo struct {
	outcome string
}

type reqInfoKey struct{}

// setOutcome records the request's admission outcome (last write
// wins). No-op when the request did not pass through the middleware
// (direct handler tests).
func setOutcome(ctx context.Context, outcome string) {
	if info, _ := ctx.Value(reqInfoKey{}).(*reqInfo); info != nil {
		info.outcome = outcome
	}
}

// statusWriter captures the response status and body bytes for the
// root span and the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// status returns the response code, defaulting to 200 for handlers
// that never called WriteHeader explicitly.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// maxInboundRequestID bounds how long an inbound X-Request-Id may be
// before it is replaced rather than echoed.
const maxInboundRequestID = 64

// requestTraceID returns the inbound X-Request-Id when it is usable as
// a trace ID (bounded length, [0-9a-zA-Z_-] only, so it is safe to
// echo into headers and JSON logs), else mints a fresh one.
func requestTraceID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > maxInboundRequestID {
		return obs.NewTraceID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return obs.NewTraceID()
		}
	}
	return id
}

// withTrace is the request-scoped observability middleware wrapped
// around the whole mux (see the file comment).
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc := obs.TraceContext{TraceID: requestTraceID(r), SpanID: obs.NewSpanID()}
		w.Header().Set("X-Request-Id", tc.TraceID)
		info := &reqInfo{}
		ctx := obs.ContextWithTrace(r.Context(), tc)
		ctx = context.WithValue(ctx, reqInfoKey{}, info)
		sw := &statusWriter{ResponseWriter: w}
		api := strings.HasPrefix(r.URL.Path, "/v1/")
		var sp obs.Span
		if api {
			sp = s.o.RequestSpan("server.request", tc)
		}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)
		if api {
			sp.AttrStr("route", r.Method+" "+r.URL.Path)
			sp.AttrInt("status", sw.status())
			if info.outcome != "" {
				sp.AttrStr("outcome", info.outcome)
			}
			sp.End()
			if reg := s.o.Registry(); reg != nil {
				reg.ObserveDur(MReqDuration, dur)
			}
		}
		s.logAccess(r, tc.TraceID, sw, info.outcome, dur)
	})
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time     string  `json:"time"`
	Trace    string  `json:"trace"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Outcome  string  `json:"outcome,omitempty"`
	DurMS    float64 `json:"durMs"`
	BytesIn  int64   `json:"bytesIn"`
	BytesOut int64   `json:"bytesOut"`
}

// logAccess writes one JSON line per request to the configured access
// log (nil disables). Lines are marshaled outside the lock and written
// with a single Write so concurrent requests never interleave bytes.
func (s *Server) logAccess(r *http.Request, trace string, sw *statusWriter, outcome string, dur time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	in := r.ContentLength
	if in < 0 {
		in = 0
	}
	line, err := json.Marshal(accessEntry{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Trace:    trace,
		Route:    r.Method + " " + r.URL.Path,
		Status:   sw.status(),
		Outcome:  outcome,
		DurMS:    float64(dur.Nanoseconds()) / 1e6,
		BytesIn:  in,
		BytesOut: sw.bytes,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.accessMu.Lock()
	s.cfg.AccessLog.Write(line)
	s.accessMu.Unlock()
}
