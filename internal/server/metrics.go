package server

// Metric names the service emits into its obs.Registry, alongside the
// pipeline's own asp./msp./pde./pipeline. counters (one registry serves
// both). Gauges carry live levels with high-watermarks; everything else
// is a monotone counter. DESIGN.md "Service architecture" documents the
// accounting identities the soak test asserts.
const (
	// MReqAdmitted counts requests that won a pool ticket.
	MReqAdmitted = "server.requests.admitted"
	// MReqCompleted counts admitted requests that finished the pipeline
	// (successfully or with a pipeline error — the work ran to an answer).
	MReqCompleted = "server.requests.completed"
	// MReqCanceled counts admitted requests abandoned mid-pipeline
	// (client gone, deadline hit).
	MReqCanceled = "server.requests.canceled"
	// MReqShedPrefix + reason counts requests refused admission:
	// "queue_full" (429) or "draining" (503). admitted + shed.* accounts
	// for every localization request exactly once.
	MReqShedPrefix = "server.requests.shed."
	// MReqRejected counts requests refused before admission for malformed
	// input (bad content type, oversized body, undecodable bundle).
	MReqRejected = "server.requests.rejected"
	// MReqDuration is the end-to-end /v1/* request latency histogram
	// (seconds), observed by the trace middleware; the rolling SLO
	// window reads it for windowed p50/p95/p99 and attainment.
	MReqDuration = "server.request.duration"

	// GQueueDepth is the admitted-work level (running + queued); its Max
	// must never exceed workers + queue bound.
	GQueueDepth = "server.queue.depth"
	// GBatchBatches / GBatchLanes mirror the localizer cache's strided-FFT
	// batch counters at snapshot time (see core.ASPConfig.BatchWindow):
	// lanes/batches is the achieved coalescing factor. They are levels
	// refreshed by /metrics, not incremented per event.
	GBatchBatches = "server.batch.batches"
	GBatchLanes   = "server.batch.lanes"
	// GSessionsActive is the live streaming-session count.
	GSessionsActive = "server.sessions.active"

	// MSessCreated / MSessRecovered / MSessEvicted account for every
	// streaming session: created + recovered == evicted.* + active.
	// MSessRecovered counts every session the store handed back at
	// boot; the ones that failed to rebuild land under
	// evicted.recovered.*, so successful resumes are
	// recovered − evicted.recovered.*.
	MSessCreated       = "server.sessions.created"
	MSessRecovered     = "server.sessions.recovered"
	MSessEvictedPrefix = "server.sessions.evicted."

	// MStoreErrors counts session-store write failures (WAL append or
	// fsync errors). Durable-write failures surface as 500s on the
	// mutating request; best-effort events (locate audit, evictions)
	// only tally here.
	MStoreErrors = "server.store.errors"
)

// Eviction reason codes appended to MSessEvictedPrefix. The
// recovered.* reasons are boot-time: a session came back from the
// store but could not be rebuilt (bad parameters, torn payload) or
// found no table capacity.
const (
	EvictIdle              = "idle"
	EvictCapacity          = "capacity"
	EvictExplicit          = "explicit"
	EvictShutdown          = "shutdown"
	EvictRecoveredInvalid  = "recovered.invalid"
	EvictRecoveredCapacity = "recovered.capacity"
)
