// Package mic models the smartphone's audio front end: the two-microphone
// geometry of the paper's test devices, and the rendering of what each
// microphone records as the phone moves through a room — per-sample
// propagation delays over every image path (so Doppler and sub-sample TDoA
// structure emerge from the physics), sampling-frequency offset between the
// speaker clock and the phone ADC, additive background noise at a
// calibrated SNR, microphone self noise, and 16-bit quantization.
package mic

import (
	"fmt"
	"math"

	"hyperear/internal/geom"
)

// Phone describes a two-microphone handset. The body frame follows the
// paper's Fig. 6 convention: x to the right, y along the long axis, z out
// of the screen. Mic1 sits at body (0, +D/2, 0) (top edge) and Mic2 at
// (0, -D/2, 0) (bottom edge).
type Phone struct {
	// Name labels the device in reports.
	Name string
	// MicSeparation is the distance D between the two microphones in
	// meters.
	MicSeparation float64
	// SampleRate is the nominal ADC rate in Hz.
	SampleRate float64
	// SFOPPM is the ADC clock error in parts per million: the k-th sample
	// is taken at true time k / (SampleRate·(1+SFOPPM·1e-6)).
	SFOPPM float64
	// BitDepth is the ADC resolution in bits (16 on both test phones).
	BitDepth int
	// SelfNoiseRMS is the microphone/ADC noise floor as a fraction of
	// full scale.
	SelfNoiseRMS float64
	// HFRolloffDB is the microphone's sensitivity loss at 20 kHz relative
	// to the mid band, in dB (positive = loss). Phone MEMS capsules are
	// flat through the voice band but roll off near ultrasound — the
	// "frequency selectivity" the paper's future-work section flags as
	// the obstacle to inaudible beacons. The loss is interpolated
	// linearly in dB between 10 kHz (no loss) and 20 kHz.
	HFRolloffDB float64
}

// GalaxyS4 returns the Samsung Galaxy S4 profile (D = 13.66 cm, §VII-A).
// The small positive SFO reflects a typical crystal tolerance.
func GalaxyS4() Phone {
	return Phone{
		Name:          "galaxy-s4",
		MicSeparation: 0.1366,
		SampleRate:    44100,
		SFOPPM:        12,
		BitDepth:      16,
		SelfNoiseRMS:  2e-4,
		HFRolloffDB:   8,
	}
}

// GalaxyNote3 returns the Samsung Galaxy Note3 profile (D = 15.12 cm).
// The paper observes slightly worse accuracy on the Note3 than the S4; we
// model its front end with a marginally noisier mic path and a larger
// clock offset, consistent with that observation.
func GalaxyNote3() Phone {
	return Phone{
		Name:          "galaxy-note3",
		MicSeparation: 0.1512,
		SampleRate:    44100,
		SFOPPM:        -18,
		BitDepth:      16,
		SelfNoiseRMS:  3.5e-4,
		HFRolloffDB:   10,
	}
}

// Validate reports configuration errors.
func (p Phone) Validate() error {
	switch {
	case p.MicSeparation <= 0 || p.MicSeparation > 0.5:
		return fmt.Errorf("mic: separation %v m implausible", p.MicSeparation)
	case p.SampleRate < 8000:
		return fmt.Errorf("mic: sample rate %v Hz too low", p.SampleRate)
	case p.BitDepth < 8 || p.BitDepth > 32:
		return fmt.Errorf("mic: bit depth %d outside [8,32]", p.BitDepth)
	case p.SelfNoiseRMS < 0:
		return fmt.Errorf("mic: self noise %v negative", p.SelfNoiseRMS)
	case p.HFRolloffDB < 0 || p.HFRolloffDB > 60:
		return fmt.Errorf("mic: HF rolloff %v dB outside [0,60]", p.HFRolloffDB)
	}
	return nil
}

// HFGain returns the microphone's amplitude gain at frequency f Hz: unity
// through 10 kHz, rolling off linearly in dB to -HFRolloffDB at 20 kHz and
// continuing at the same slope above.
func (p Phone) HFGain(f float64) float64 {
	if p.HFRolloffDB == 0 || f <= 10000 {
		return 1
	}
	loss := p.HFRolloffDB * (f - 10000) / 10000
	return math.Pow(10, -loss/20)
}

// HiResVariant returns the phone reconfigured for near-ultrasonic capture:
// a 48 kHz ADC (supported by both test devices) so an 18-21.5 kHz beacon
// sits comfortably below Nyquist.
func (p Phone) HiResVariant() Phone {
	p.Name += "-48k"
	p.SampleRate = 48000
	return p
}

// MicBodyPos returns the body-frame position of microphone i (1 or 2).
func (p Phone) MicBodyPos(i int) geom.Vec3 {
	switch i {
	case 1:
		return geom.Vec3{Y: p.MicSeparation / 2}
	case 2:
		return geom.Vec3{Y: -p.MicSeparation / 2}
	default:
		return geom.Vec3{}
	}
}

// EffectiveRate returns the true samples-per-second of the ADC including
// its clock error.
func (p Phone) EffectiveRate() float64 {
	return p.SampleRate * (1 + p.SFOPPM*1e-6)
}
