package mic

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/motion"
	"hyperear/internal/room"
)

// RenderConfig describes one recording session to synthesize.
type RenderConfig struct {
	// Env is the acoustic environment.
	Env room.Environment
	// Source is the beacon waveform.
	Source chirp.Params
	// SourcePos is the (static) speaker position in world coordinates.
	SourcePos geom.Vec3
	// SpeakerSkewPPM is the speaker clock error in ppm: the speaker plays
	// Source.Eval(t·(1+SpeakerSkewPPM·1e-6)). Combined with the phone's
	// SFO this produces the sampling-frequency offset the ASP stage must
	// estimate and correct.
	SpeakerSkewPPM float64
	// Phone is the recording device.
	Phone Phone
	// Traj is the phone trajectory over the session.
	Traj motion.Trajectory
	// Noise, when non-nil, adds background noise scaled so the recorded
	// chirp-to-noise ratio at the mics is SNRdB.
	Noise room.NoiseSource
	// SNRdB is the target in-recording SNR (ignored when Noise is nil).
	SNRdB float64
	// Duration of the recording in seconds; 0 uses the trajectory length.
	Duration float64
	// Seed drives all random draws (noise realizations, dither).
	Seed int64
	// DisableQuantization bypasses the 16-bit ADC model (for tests that
	// need to isolate other error sources).
	DisableQuantization bool
}

// Recording is a synthesized stereo capture plus the ground truth needed
// by experiments.
type Recording struct {
	// Fs is the nominal sample rate the recording claims (the phone's
	// SampleRate; samples were actually taken at EffectiveRate).
	Fs float64
	// Mic1 and Mic2 are the two channels.
	Mic1, Mic2 []float64
	// TrueSNRdB is the measured chirp-to-noise ratio of channel 1
	// (+Inf when no noise was added).
	TrueSNRdB float64
}

// Channel returns channel i (1 or 2).
func (r *Recording) Channel(i int) []float64 {
	if i == 1 {
		return r.Mic1
	}
	return r.Mic2
}

// Render synthesizes the stereo recording for cfg.
func Render(cfg RenderConfig) (*Recording, error) {
	if err := cfg.Env.Validate(); err != nil {
		return nil, fmt.Errorf("mic: render: %w", err)
	}
	if err := cfg.Source.Validate(); err != nil {
		return nil, fmt.Errorf("mic: render: %w", err)
	}
	if err := cfg.Phone.Validate(); err != nil {
		return nil, fmt.Errorf("mic: render: %w", err)
	}
	if cfg.Traj == nil {
		return nil, fmt.Errorf("mic: render: nil trajectory")
	}
	dur := cfg.Duration
	if dur == 0 {
		dur = cfg.Traj.Duration()
	}
	if dur <= 0 {
		return nil, fmt.Errorf("mic: render: non-positive duration %v", dur)
	}

	c := cfg.Env.SpeedOfSound()
	paths := cfg.Env.Paths(cfg.SourcePos)
	skew := 1 + cfg.SpeakerSkewPPM*1e-6
	n := int(dur * cfg.Phone.SampleRate)
	adcRate := cfg.Phone.EffectiveRate()

	rng := rand.New(rand.NewSource(cfg.Seed))
	clean := [2][]float64{make([]float64, n), make([]float64, n)}
	active := [2][]bool{make([]bool, n), make([]bool, n)}

	// The per-sample synthesis is pure — trajectory poses, chirp evaluation
	// and path attenuation are all analytic, and the RNG is only consulted
	// after this loop — so it splits into contiguous chunks across cores
	// without changing a single output sample. This loop dominates render
	// cost (every sample evaluates every image-source path twice).
	renderRange := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			t := float64(k) / adcRate
			pose := cfg.Traj.Pose(t)
			for m := 0; m < 2; m++ {
				micPos := pose.Pos.Add(pose.Orient.Apply(cfg.Phone.MicBodyPos(m + 1)))
				var v float64
				act := false
				for _, p := range paths {
					d := p.Image.Dist(micPos)
					emit := (t - d/c) * skew
					s := cfg.Source.Eval(emit)
					if s != 0 {
						g := 1.0
						if cfg.Phone.HFRolloffDB > 0 {
							within := math.Mod(emit, cfg.Source.Period)
							g = cfg.Phone.HFGain(cfg.Source.InstantFrequency(within))
						}
						v += cfg.Env.Attenuation(d, p.Gain) * s * g
						if p.Bounces == 0 {
							act = true
						}
					}
				}
				clean[m][k] = v
				active[m][k] = act
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if n < 1<<14 {
		// Short renders are not worth the goroutine fan-out.
		workers = 1
	}
	if workers <= 1 {
		renderRange(0, n)
	} else {
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				renderRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Measure the received chirp level on channel 1 (direct-path active
	// samples) to calibrate noise.
	sigRMS := rmsWhere(clean[0], active[0])
	trueSNR := math.Inf(1)

	out := [2][]float64{make([]float64, n), make([]float64, n)}
	copy(out[0], clean[0])
	copy(out[1], clean[1])

	if cfg.Noise != nil && sigRMS > 0 {
		noiseRMS := sigRMS / math.Pow(10, cfg.SNRdB/20)
		for m := 0; m < 2; m++ {
			nz := cfg.Noise.Generate(n, cfg.Phone.SampleRate, rng)
			for k := range out[m] {
				out[m][k] += noiseRMS * nz[k]
			}
		}
		trueSNR = cfg.SNRdB
	}

	// Microphone self noise (relative to the eventual full-scale level).
	peak := math.Max(maxAbs2(out[0]), maxAbs2(out[1]))
	if peak == 0 {
		peak = 1
	}
	if cfg.Phone.SelfNoiseRMS > 0 {
		sn := cfg.Phone.SelfNoiseRMS * peak
		for m := 0; m < 2; m++ {
			for k := range out[m] {
				out[m][k] += sn * rng.NormFloat64()
			}
		}
	}

	// ADC: normalize to half full scale (automatic gain) and quantize.
	if !cfg.DisableQuantization {
		gain := 0.5 / peak
		q := math.Exp2(float64(cfg.Phone.BitDepth - 1))
		for m := 0; m < 2; m++ {
			for k := range out[m] {
				v := out[m][k] * gain
				out[m][k] = math.Round(v*q) / q
			}
		}
	}

	return &Recording{
		Fs:        cfg.Phone.SampleRate,
		Mic1:      out[0],
		Mic2:      out[1],
		TrueSNRdB: trueSNR,
	}, nil
}

func rmsWhere(x []float64, mask []bool) float64 {
	var s float64
	var cnt int
	for i, v := range x {
		if mask[i] {
			s += v * v
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return math.Sqrt(s / float64(cnt))
}

func maxAbs2(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
