package mic

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/motion"
	"hyperear/internal/room"
)

func TestPhonePresetsValidate(t *testing.T) {
	for _, p := range []Phone{GalaxyS4(), GalaxyNote3()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPhoneValidateRejects(t *testing.T) {
	cases := []func(*Phone){
		func(p *Phone) { p.MicSeparation = 0 },
		func(p *Phone) { p.MicSeparation = 1 },
		func(p *Phone) { p.SampleRate = 100 },
		func(p *Phone) { p.BitDepth = 4 },
		func(p *Phone) { p.SelfNoiseRMS = -1 },
	}
	for i, mut := range cases {
		p := GalaxyS4()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMicBodyPositions(t *testing.T) {
	p := GalaxyS4()
	m1 := p.MicBodyPos(1)
	m2 := p.MicBodyPos(2)
	if math.Abs(m1.Dist(m2)-p.MicSeparation) > 1e-12 {
		t.Errorf("mic separation %v, want %v", m1.Dist(m2), p.MicSeparation)
	}
	if m1.Y <= m2.Y {
		t.Error("Mic1 should sit at +y, Mic2 at -y")
	}
	if p.MicBodyPos(3) != (geom.Vec3{}) {
		t.Error("invalid mic index should return zero")
	}
}

func TestEffectiveRate(t *testing.T) {
	p := GalaxyS4()
	p.SFOPPM = 100
	want := 44100 * (1 + 100e-6)
	if got := p.EffectiveRate(); math.Abs(got-want) > 1e-9 {
		t.Errorf("EffectiveRate = %v, want %v", got, want)
	}
}

// staticPhone builds a hold trajectory with yaw 0 (body y = world y).
func staticPhone(pos geom.Vec3, dur float64) motion.Trajectory {
	traj, err := motion.NewBuilder(pos, 0).Hold(dur).Build()
	if err != nil {
		panic(err)
	}
	return traj
}

// cleanPhone returns a noiseless, skewless S4 for physics checks.
func cleanPhone() Phone {
	p := GalaxyS4()
	p.SFOPPM = 0
	p.SelfNoiseRMS = 0
	return p
}

func TestRenderValidation(t *testing.T) {
	base := RenderConfig{
		Env:       room.FreeField(),
		Source:    chirp.Default(),
		SourcePos: geom.Vec3{X: 3, Y: 1, Z: 1.2},
		Phone:     cleanPhone(),
		Traj:      staticPhone(geom.Vec3{Z: 1.2}, 0.5),
	}
	bad := base
	bad.Traj = nil
	if _, err := Render(bad); err == nil {
		t.Error("nil trajectory should error")
	}
	bad = base
	bad.Phone.MicSeparation = 0
	if _, err := Render(bad); err == nil {
		t.Error("invalid phone should error")
	}
	bad = base
	bad.Source.Duration = 0
	if _, err := Render(bad); err == nil {
		t.Error("invalid source should error")
	}
	bad = base
	bad.Env.Size.X = 0
	if _, err := Render(bad); err == nil {
		t.Error("invalid env should error")
	}
}

// TestRenderTDoAPhysics places the speaker broadside and endfire and
// verifies the inter-mic TDoA seen by a matched-filter detector matches
// geometry to within a few microseconds.
func TestRenderTDoAPhysics(t *testing.T) {
	env := room.FreeField()
	p := cleanPhone()
	src := chirp.Default()
	c := env.SpeedOfSound()

	cases := []struct {
		name      string
		sourcePos geom.Vec3
	}{
		// Phone at origin with body y = world y: mics at y = ±D/2.
		{"broadside", geom.Vec3{X: 4, Y: 0, Z: 0}},   // equal distance: TDoA 0
		{"endfire+y", geom.Vec3{X: 0, Y: 5, Z: 0}},   // nearer Mic1: t1 < t2
		{"oblique", geom.Vec3{X: 3, Y: 2.5, Z: 0.4}}, //
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := Render(RenderConfig{
				Env: env, Source: src, SourcePos: tc.sourcePos,
				Phone: p, Traj: staticPhone(geom.Vec3{}, 0.5),
				DisableQuantization: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			det, err := chirp.NewDetector(src, p.SampleRate)
			if err != nil {
				t.Fatal(err)
			}
			d1 := det.Detect(rec.Mic1)
			d2 := det.Detect(rec.Mic2)
			if len(d1) == 0 || len(d2) == 0 {
				t.Fatal("no detections")
			}
			gotTDoA := d1[0].Time - d2[0].Time
			m1 := geom.Vec3{Y: p.MicSeparation / 2}
			m2 := geom.Vec3{Y: -p.MicSeparation / 2}
			wantTDoA := (tc.sourcePos.Dist(m1) - tc.sourcePos.Dist(m2)) / c
			if math.Abs(gotTDoA-wantTDoA) > 8e-6 {
				t.Errorf("TDoA = %v s, want %v s (err %.2f µs)",
					gotTDoA, wantTDoA, (gotTDoA-wantTDoA)*1e6)
			}
		})
	}
}

// TestRenderAugmentedTDoA verifies the core HyperEar observable: sliding
// the phone toward the speaker between two beacons shortens the arrival
// time at the same mic by (moved distance)/c.
func TestRenderAugmentedTDoA(t *testing.T) {
	env := room.FreeField()
	p := cleanPhone()
	src := chirp.Default()
	c := env.SpeedOfSound()

	// Speaker along +y; slide phone 0.5 m along +y (toward it).
	srcPos := geom.Vec3{Y: 6}
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.3).
		Slide(0.5, 1.0).
		Hold(0.3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Render(RenderConfig{
		Env: env, Source: src, SourcePos: srcPos,
		Phone: p, Traj: traj, DisableQuantization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := chirp.NewDetector(src, p.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	d1 := det.Detect(rec.Mic1)
	if len(d1) < 8 {
		t.Fatalf("want ≥8 beacons over 1.6 s, got %d", len(d1))
	}
	first := d1[0]
	last := d1[len(d1)-1]
	n := int(math.Round((last.Time - first.Time) / src.Period))
	augTDoA := last.Time - first.Time - float64(n)*src.Period
	want := -0.5 / c // moved 0.5 m closer
	if math.Abs(augTDoA-want) > 10e-6 {
		t.Errorf("augmented TDoA = %v s, want %v s (err %.1f µs)",
			augTDoA, want, (augTDoA-want)*1e6)
	}
}

// TestRenderSpeakerSkewStretchesPeriod verifies SFO modeling: with a
// +100 ppm speaker clock the detected beacon period shrinks by 100 ppm
// (the speaker runs fast).
func TestRenderSpeakerSkewStretchesPeriod(t *testing.T) {
	env := room.FreeField()
	p := cleanPhone()
	src := chirp.Default()
	rec, err := Render(RenderConfig{
		Env: env, Source: src, SourcePos: geom.Vec3{X: 3},
		SpeakerSkewPPM: 100,
		Phone:          p, Traj: staticPhone(geom.Vec3{}, 4.0),
		DisableQuantization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := chirp.NewDetector(src, p.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	d1 := det.Detect(rec.Mic1)
	if len(d1) < 15 {
		t.Fatalf("detections %d, want ≥15", len(d1))
	}
	span := d1[len(d1)-1].Time - d1[0].Time
	period := span / float64(len(d1)-1)
	wantPeriod := src.Period / (1 + 100e-6)
	if math.Abs(period-wantPeriod) > 1e-6 {
		t.Errorf("period = %.9f s, want %.9f s", period, wantPeriod)
	}
	// And it must differ measurably from the nominal period.
	if math.Abs(period-src.Period) < 1e-8 {
		t.Error("skew had no effect on the detected period")
	}
}

func TestRenderSNRCalibration(t *testing.T) {
	env := room.MeetingRoom()
	p := GalaxyS4()
	src := chirp.Default()
	rec, err := Render(RenderConfig{
		Env: env, Source: src, SourcePos: geom.Vec3{X: 8, Y: 6, Z: 1.2},
		Phone: p, Traj: staticPhone(geom.Vec3{X: 3, Y: 6, Z: 1.2}, 1.0),
		Noise: room.WhiteNoise{}, SNRdB: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TrueSNRdB != 10 {
		t.Errorf("TrueSNRdB = %v, want 10", rec.TrueSNRdB)
	}
	// The chirps must still be detectable at 10 dB.
	det, err := chirp.NewDetector(src, p.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if d := det.Detect(rec.Mic1); len(d) < 4 {
		t.Errorf("only %d detections at 10 dB SNR", len(d))
	}
}

func TestRenderQuantizationGrid(t *testing.T) {
	env := room.FreeField()
	p := cleanPhone()
	src := chirp.Default()
	rec, err := Render(RenderConfig{
		Env: env, Source: src, SourcePos: geom.Vec3{X: 2},
		Phone: p, Traj: staticPhone(geom.Vec3{}, 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	q := math.Exp2(float64(p.BitDepth - 1))
	for i, v := range rec.Mic1[:2000] {
		scaled := v * q
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("sample %d = %v not on the %d-bit grid", i, v, p.BitDepth)
		}
	}
}

func TestRenderChannelAccessor(t *testing.T) {
	r := &Recording{Mic1: []float64{1}, Mic2: []float64{2}}
	if r.Channel(1)[0] != 1 || r.Channel(2)[0] != 2 {
		t.Error("Channel accessor mismatch")
	}
}

func TestRenderAttenuationWithDistance(t *testing.T) {
	env := room.FreeField()
	p := cleanPhone()
	src := chirp.Default()
	level := func(dist float64) float64 {
		rec, err := Render(RenderConfig{
			Env: env, Source: src, SourcePos: geom.Vec3{X: dist},
			Phone: p, Traj: staticPhone(geom.Vec3{}, 0.3),
			DisableQuantization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxAbs2(rec.Mic1)
	}
	near := level(1)
	far := level(7)
	if far >= near {
		t.Errorf("amplitude should fall with distance: 1m=%v 7m=%v", near, far)
	}
	if ratio := near / far; ratio < 5 || ratio > 9 {
		t.Errorf("1m/7m amplitude ratio = %v, want ≈7 (spherical spreading)", ratio)
	}
}

func BenchmarkRenderOneSecond(b *testing.B) {
	env := room.MeetingRoom()
	p := GalaxyS4()
	src := chirp.Default()
	cfg := RenderConfig{
		Env: env, Source: src, SourcePos: geom.Vec3{X: 8, Y: 6, Z: 1.2},
		Phone: p, Traj: staticPhone(geom.Vec3{X: 3, Y: 6, Z: 1.2}, 1.0),
		Noise: room.WhiteNoise{}, SNRdB: 15,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Render(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
