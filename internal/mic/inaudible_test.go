package mic

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/room"
)

func TestHFGain(t *testing.T) {
	p := GalaxyS4() // 8 dB rolloff at 20 kHz
	if g := p.HFGain(4000); g != 1 {
		t.Errorf("mid-band gain = %v, want 1", g)
	}
	if g := p.HFGain(10000); g != 1 {
		t.Errorf("10 kHz gain = %v, want 1", g)
	}
	want := math.Pow(10, -8.0/20)
	if g := p.HFGain(20000); math.Abs(g-want) > 1e-12 {
		t.Errorf("20 kHz gain = %v, want %v", g, want)
	}
	// Halfway: 4 dB loss.
	want = math.Pow(10, -4.0/20)
	if g := p.HFGain(15000); math.Abs(g-want) > 1e-12 {
		t.Errorf("15 kHz gain = %v, want %v", g, want)
	}
	// Zero rolloff disables.
	p.HFRolloffDB = 0
	if g := p.HFGain(20000); g != 1 {
		t.Errorf("disabled rolloff gain = %v, want 1", g)
	}
}

func TestHFRolloffValidation(t *testing.T) {
	p := GalaxyS4()
	p.HFRolloffDB = -1
	if err := p.Validate(); err == nil {
		t.Error("negative rolloff should error")
	}
	p.HFRolloffDB = 100
	if err := p.Validate(); err == nil {
		t.Error("absurd rolloff should error")
	}
}

func TestHiResVariant(t *testing.T) {
	p := GalaxyS4().HiResVariant()
	if p.SampleRate != 48000 {
		t.Errorf("sample rate = %v, want 48000", p.SampleRate)
	}
	if p.Name != "galaxy-s4-48k" {
		t.Errorf("name = %q", p.Name)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("hi-res variant invalid: %v", err)
	}
}

// TestInaudibleBeaconDetectable renders the future-work 18-21.5 kHz beacon
// through the 48 kHz front end with HF rolloff and verifies the matched
// filter still times it accurately.
func TestInaudibleBeaconDetectable(t *testing.T) {
	phone := GalaxyS4().HiResVariant()
	phone.SFOPPM = 0
	phone.SelfNoiseRMS = 0
	src := chirp.Inaudible()
	rec, err := Render(RenderConfig{
		Env:                 room.FreeField(),
		Source:              src,
		SourcePos:           geom.Vec3{X: 4},
		Phone:               phone,
		Traj:                staticPhone(geom.Vec3{}, 0.7),
		DisableQuantization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := room.FreeField().SpeedOfSound()
	want := 4.0 / c

	// Flat template: the mic's spectral tilt biases the timing by tens of
	// microseconds — the distortion the paper anticipates.
	flat, err := chirp.NewDetector(src, phone.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	flatDets := flat.Detect(rec.Mic1)
	if len(flatDets) < 3 {
		t.Fatalf("flat-template detections = %d, want ≥3", len(flatDets))
	}
	flatErr := math.Abs(flatDets[0].Time - want)

	// Response-matched template: bias removed.
	shaped, err := chirp.NewDetectorShaped(src, phone.SampleRate, phone.HFGain)
	if err != nil {
		t.Fatal(err)
	}
	dets := shaped.Detect(rec.Mic1)
	if len(dets) < 3 {
		t.Fatalf("shaped-template detections = %d, want ≥3", len(dets))
	}
	if got := math.Abs(dets[0].Time - want); got > 10e-6 {
		t.Errorf("shaped first arrival = %v, want %v (err %.1f µs)", dets[0].Time, want, got*1e6)
	}
	if got := math.Abs(dets[0].Time - want); got >= flatErr && flatErr > 15e-6 {
		t.Errorf("calibrated template should beat flat: %.1f µs vs %.1f µs", got*1e6, flatErr*1e6)
	}
}

// TestHFRolloffCostsAmplitude: with rolloff the received near-ultrasonic
// level is measurably below the no-rolloff case — the distortion the
// paper's future-work section anticipates.
func TestHFRolloffCostsAmplitude(t *testing.T) {
	render := func(rolloff float64) float64 {
		phone := GalaxyS4().HiResVariant()
		phone.SFOPPM = 0
		phone.SelfNoiseRMS = 0
		phone.HFRolloffDB = rolloff
		rec, err := Render(RenderConfig{
			Env:                 room.FreeField(),
			Source:              chirp.Inaudible(),
			SourcePos:           geom.Vec3{X: 3},
			Phone:               phone,
			Traj:                staticPhone(geom.Vec3{}, 0.3),
			DisableQuantization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxAbs2(rec.Mic1)
	}
	flat := render(0)
	rolled := render(8)
	if rolled >= flat {
		t.Fatalf("rolloff should attenuate: flat=%v rolled=%v", flat, rolled)
	}
	// The 18-21.5 kHz band sits ~19.75 kHz center: expect ≈7.8 dB loss.
	lossDB := 20 * math.Log10(flat/rolled)
	if lossDB < 5 || lossDB > 10 {
		t.Errorf("band loss = %.1f dB, want ≈7-8 dB", lossDB)
	}
}

// TestAudibleBandUnaffectedByRolloff: the default 2-6.4 kHz beacon must be
// untouched by the HF rolloff model.
func TestAudibleBandUnaffectedByRolloff(t *testing.T) {
	render := func(rolloff float64) float64 {
		phone := cleanPhone()
		phone.HFRolloffDB = rolloff
		rec, err := Render(RenderConfig{
			Env:                 room.FreeField(),
			Source:              chirp.Default(),
			SourcePos:           geom.Vec3{X: 3},
			Phone:               phone,
			Traj:                staticPhone(geom.Vec3{}, 0.3),
			DisableQuantization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxAbs2(rec.Mic1)
	}
	if a, b := render(0), render(10); math.Abs(a-b) > 1e-12 {
		t.Errorf("audible band changed: %v vs %v", a, b)
	}
}
