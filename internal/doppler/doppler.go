// Package doppler implements a Doppler-effect direction finder in the
// spirit of Shake-and-Walk (Huang et al., INFOCOM 2014) and WalkieLokie —
// the class of single-microphone acoustic direction systems the paper
// compares against. While HyperEar reads direction from the inter-mic
// TDoA zero crossing, the Doppler approach moves the phone and measures
// the motion-induced time-compression of the received beacon: moving
// toward the speaker at radial speed v scales the received waveform by
// (1 + v/c). Slides along two known directions give two radial-speed
// projections of the unit bearing vector, which solve the bearing.
//
// The estimator correlates received chirps against a bank of time-scaled
// templates and interpolates the peak response over the scale axis.
package doppler

import (
	"fmt"
	"math"

	"hyperear/internal/chirp"
	"hyperear/internal/dsp"
	"hyperear/internal/geom"
)

// Estimator measures the radial speed encoded in one received chirp.
type Estimator struct {
	params chirp.Params
	fs     float64
	sos    float64
	speeds []float64
	// correlators hold one matched filter per time-scaled template; each
	// caches its template spectrum per transform size, so measuring many
	// chirps re-runs only the per-window FFT, not the bank's.
	correlators []*dsp.Correlator
	detector    *chirp.Detector
}

// Config tunes the estimator.
type Config struct {
	// MaxSpeed bounds |radial speed| covered by the template bank (m/s).
	MaxSpeed float64
	// Steps is the number of template scales per side of zero.
	Steps int
	// SpeedOfSound in m/s.
	SpeedOfSound float64
}

// DefaultConfig covers hand-slide speeds (±1.6 m/s) with 0.1 m/s steps.
func DefaultConfig() Config {
	return Config{MaxSpeed: 1.6, Steps: 16, SpeedOfSound: geom.SpeedOfSound}
}

// NewEstimator precomputes the scaled template bank.
func NewEstimator(p chirp.Params, fs float64, cfg Config) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSpeed <= 0 || cfg.Steps < 2 {
		return nil, fmt.Errorf("doppler: bad config %+v", cfg)
	}
	if cfg.SpeedOfSound == 0 {
		cfg.SpeedOfSound = geom.SpeedOfSound
	}
	det, err := chirp.NewDetector(p, fs)
	if err != nil {
		return nil, err
	}
	e := &Estimator{params: p, fs: fs, sos: cfg.SpeedOfSound, detector: det}
	base := p.Reference(fs)
	for k := -cfg.Steps; k <= cfg.Steps; k++ {
		v := cfg.MaxSpeed * float64(k) / float64(cfg.Steps)
		// Approaching at +v compresses the waveform: the template is the
		// base chirp resampled by factor (1 + v/c).
		scale := 1 + v/cfg.SpeedOfSound
		e.speeds = append(e.speeds, v)
		e.correlators = append(e.correlators, dsp.NewCorrelator(resample(base, scale)))
	}
	return e, nil
}

// resample stretches x in time by 1/scale (scale > 1 shortens it) with
// Catmull-Rom interpolation.
func resample(x []float64, scale float64) []float64 {
	n := int(float64(len(x)) / scale)
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = dsp.SampleAt(x, float64(i)*scale)
	}
	return out
}

// Measurement is one radial-speed estimate.
type Measurement struct {
	// Time is the chirp arrival in seconds.
	Time float64
	// RadialSpeed is the estimated approach speed toward the speaker in
	// m/s (positive = closing).
	RadialSpeed float64
	// Confidence is the ratio of the best template response to the
	// zero-speed response (≥1; larger = stronger Doppler evidence).
	Confidence float64
}

// Measure estimates the radial speed of each chirp arrival in x. Only
// chirps between tMin and tMax (seconds) are measured — callers restrict
// to the mid-slide window where the phone is actually moving.
func (e *Estimator) Measure(x []float64, tMin, tMax float64) []Measurement {
	dets := e.detector.Detect(x)
	var out []Measurement
	refLen := e.correlators[len(e.correlators)/2].RefLen()
	var r, env []float64
	for _, d := range dets {
		if d.Time < tMin || d.Time > tMax {
			continue
		}
		start := d.Index - refLen/4
		if start < 0 {
			start = 0
		}
		end := d.Index + refLen + refLen/4
		if end > len(x) {
			end = len(x)
		}
		window := x[start:end]
		scores := make([]float64, len(e.correlators))
		for k, corr := range e.correlators {
			if len(window) < corr.RefLen() {
				continue
			}
			r = corr.CrossCorrelateInto(r, window)
			env = dsp.EnvelopeInto(env, r)
			best := 0.0
			for _, v := range env {
				if v > best {
					best = v
				}
			}
			scores[k] = best
		}
		kBest := 0
		for k := range scores {
			if scores[k] > scores[kBest] {
				kBest = k
			}
		}
		off, _ := dsp.ParabolicInterp(scores, kBest)
		step := e.speeds[1] - e.speeds[0]
		v := e.speeds[kBest] + off*step
		conf := 1.0
		if mid := scores[len(scores)/2]; mid > 0 {
			conf = scores[kBest] / mid
		}
		out = append(out, Measurement{Time: d.Time, RadialSpeed: v, Confidence: conf})
	}
	return out
}

// BearingFromProjections solves the speaker bearing from radial-speed
// projections observed while moving along two world directions d1 and d2
// (unit vectors, typically orthogonal): cos(angle to speaker) = v_r / v.
// vr1, vr2 are radial speeds and v1, v2 the corresponding phone speeds
// (positive along d1/d2). The returned bearing is the world angle of the
// speaker direction.
func BearingFromProjections(d1, d2 geom.Vec2, vr1, v1, vr2, v2 float64) (float64, error) {
	if v1 == 0 || v2 == 0 {
		return 0, fmt.Errorf("doppler: zero phone speed")
	}
	c1 := geom.Clamp(vr1/v1, -1, 1)
	c2 := geom.Clamp(vr2/v2, -1, 1)
	// Solve u·d1 = c1, u·d2 = c2 for the unit bearing u.
	det := d1.X*d2.Y - d1.Y*d2.X
	if math.Abs(det) < 1e-9 {
		return 0, fmt.Errorf("doppler: slide directions are collinear")
	}
	ux := (c1*d2.Y - c2*d1.Y) / det
	uy := (c2*d1.X - c1*d2.X) / det
	if ux == 0 && uy == 0 {
		return 0, fmt.Errorf("doppler: degenerate projections")
	}
	return math.Atan2(uy, ux), nil
}
