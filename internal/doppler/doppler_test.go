package doppler

import (
	"math"
	"testing"

	"hyperear/internal/chirp"
	"hyperear/internal/geom"
	"hyperear/internal/mic"
	"hyperear/internal/motion"
	"hyperear/internal/room"
)

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(chirp.Params{}, 44100, DefaultConfig()); err == nil {
		t.Error("invalid chirp should error")
	}
	bad := DefaultConfig()
	bad.MaxSpeed = 0
	if _, err := NewEstimator(chirp.Default(), 44100, bad); err == nil {
		t.Error("zero max speed should error")
	}
	bad = DefaultConfig()
	bad.Steps = 1
	if _, err := NewEstimator(chirp.Default(), 44100, bad); err == nil {
		t.Error("single step should error")
	}
	if _, err := NewEstimator(chirp.Default(), 44100, DefaultConfig()); err != nil {
		t.Errorf("valid config: %v", err)
	}
}

func TestResample(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	// scale 2 halves the length; values follow the line.
	y := resample(x, 2)
	if len(y) != 4 {
		t.Fatalf("length %d, want 4", len(y))
	}
	for i, v := range y {
		if math.Abs(v-float64(2*i)) > 1e-9 {
			t.Errorf("y[%d] = %v, want %v", i, v, 2*i)
		}
	}
	// Tiny inputs clamp to length ≥2.
	if got := resample([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("clamped length %d", len(got))
	}
}

// renderApproach renders a session in which the phone slides directly
// toward (positive dist) or away from the speaker, and returns the
// recording plus the slide's mid time and peak speed.
func renderApproach(t *testing.T, dist float64) (*mic.Recording, float64, float64) {
	t.Helper()
	// Speaker along +y; slide along body +y (yaw 0) => radial motion.
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).
		Hold(0.5).
		Slide(dist, 1.0).
		Hold(0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	phone := mic.GalaxyS4()
	phone.SFOPPM = 0
	phone.SelfNoiseRMS = 0
	rec, err := mic.Render(mic.RenderConfig{
		Env:       room.FreeField(),
		Source:    chirp.Default(),
		SourcePos: geom.Vec3{Y: 5},
		Phone:     phone,
		Traj:      traj,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := 1.875 * math.Abs(dist) / 1.0
	return rec, 1.0, peak // slide mid at t = 1.0 s
}

func TestMeasureApproachingSpeaker(t *testing.T) {
	rec, mid, peak := renderApproach(t, 0.55) // toward the speaker
	e, err := NewEstimator(chirp.Default(), rec.Fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms := e.Measure(rec.Mic1, mid-0.25, mid+0.25)
	if len(ms) == 0 {
		t.Fatal("no mid-slide measurements")
	}
	// At least one measurement should see a strongly positive radial
	// speed, bounded by the peak slide speed.
	best := ms[0]
	for _, m := range ms {
		if m.RadialSpeed > best.RadialSpeed {
			best = m
		}
	}
	if best.RadialSpeed < 0.3 {
		t.Errorf("approach radial speed = %v, want > 0.3 m/s", best.RadialSpeed)
	}
	if best.RadialSpeed > peak+0.3 {
		t.Errorf("radial speed %v exceeds peak slide speed %v", best.RadialSpeed, peak)
	}
}

func TestMeasureRecedingSpeaker(t *testing.T) {
	rec, mid, _ := renderApproach(t, -0.55) // away from the speaker
	e, err := NewEstimator(chirp.Default(), rec.Fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms := e.Measure(rec.Mic1, mid-0.25, mid+0.25)
	if len(ms) == 0 {
		t.Fatal("no mid-slide measurements")
	}
	worst := ms[0]
	for _, m := range ms {
		if m.RadialSpeed < worst.RadialSpeed {
			worst = m
		}
	}
	if worst.RadialSpeed > -0.3 {
		t.Errorf("receding radial speed = %v, want < -0.3 m/s", worst.RadialSpeed)
	}
}

func TestMeasureStationaryIsNearZero(t *testing.T) {
	traj, err := motion.NewBuilder(geom.Vec3{}, 0).Hold(1.0).Build()
	if err != nil {
		t.Fatal(err)
	}
	phone := mic.GalaxyS4()
	phone.SFOPPM = 0
	rec, err := mic.Render(mic.RenderConfig{
		Env:       room.FreeField(),
		Source:    chirp.Default(),
		SourcePos: geom.Vec3{Y: 5},
		Phone:     phone,
		Traj:      traj,
		Seed:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(chirp.Default(), rec.Fs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms := e.Measure(rec.Mic1, 0, 1)
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range ms {
		if math.Abs(m.RadialSpeed) > 0.25 {
			t.Errorf("stationary radial speed = %v, want ≈0", m.RadialSpeed)
		}
	}
}

func TestBearingFromProjections(t *testing.T) {
	d1 := geom.Vec2{X: 1, Y: 0}
	d2 := geom.Vec2{X: 0, Y: 1}
	// Speaker at 30°: projections are v·cos30 and v·cos60.
	v := 1.0
	bearing, err := BearingFromProjections(d1, d2, v*math.Cos(math.Pi/6), v, v*math.Sin(math.Pi/6), v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bearing-math.Pi/6) > 1e-9 {
		t.Errorf("bearing = %v, want π/6", bearing)
	}
	// Behind: negative projections.
	bearing, err = BearingFromProjections(d1, d2, -v, v, 0, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(bearing)-math.Pi) > 1e-9 {
		t.Errorf("bearing = %v, want ±π", bearing)
	}
}

func TestBearingFromProjectionsErrors(t *testing.T) {
	d := geom.Vec2{X: 1, Y: 0}
	if _, err := BearingFromProjections(d, d, 1, 1, 1, 1); err == nil {
		t.Error("collinear directions should error")
	}
	if _, err := BearingFromProjections(d, geom.Vec2{Y: 1}, 1, 0, 1, 1); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := BearingFromProjections(d, geom.Vec2{Y: 1}, 0, 1, 0, 1); err == nil {
		t.Error("zero projections should error")
	}
}

// TestDopplerBearingEndToEnd: slides along world +x then world +y, with
// the speaker at a known bearing; the two radial-speed measurements must
// recover the bearing to within ~15°. This is the Shake-and-Walk-style
// baseline HyperEar's SDF is compared against.
func TestDopplerBearingEndToEnd(t *testing.T) {
	phone := mic.GalaxyS4()
	phone.SFOPPM = 0
	phone.SelfNoiseRMS = 0
	speaker := geom.Vec3{X: 4, Y: 3} // bearing atan2(3,4) ≈ 36.9°
	trueBearing := math.Atan2(3, 4)

	slideAlong := func(yaw float64) (vr float64, vPeak float64) {
		traj, err := motion.NewBuilder(geom.Vec3{}, yaw).
			Hold(0.5).Slide(0.55, 1.0).Hold(0.5).Build()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := mic.Render(mic.RenderConfig{
			Env: room.FreeField(), Source: chirp.Default(), SourcePos: speaker,
			Phone: phone, Traj: traj, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEstimator(chirp.Default(), rec.Fs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ms := e.Measure(rec.Mic1, 0.8, 1.2)
		if len(ms) == 0 {
			t.Fatal("no mid-slide measurements")
		}
		// Use the measurement nearest mid-slide and the true speed there.
		best := ms[0]
		for _, m := range ms {
			if math.Abs(m.Time-1.0) < math.Abs(best.Time-1.0) {
				best = m
			}
		}
		pose := traj.Pose(best.Time)
		return best.RadialSpeed, pose.Vel.Norm()
	}

	// Slide along world +x: body +y must point along +x => yaw -π/2.
	vr1, v1 := slideAlong(-math.Pi / 2)
	// Slide along world +y: yaw 0.
	vr2, v2 := slideAlong(0)

	bearing, err := BearingFromProjections(geom.Vec2{X: 1}, geom.Vec2{Y: 1}, vr1, v1, vr2, v2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(geom.WrapAngle(bearing - trueBearing)); diff > geom.Radians(15) {
		t.Errorf("Doppler bearing = %.1f°, want %.1f° (err %.1f°)",
			geom.Degrees(bearing), geom.Degrees(trueBearing), geom.Degrees(diff))
	}
}
