package obs

import (
	"context"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "abc123", SpanID: "0000000000000001"}
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok {
		t.Fatal("TraceFromContext: not found after ContextWithTrace")
	}
	if got != tc {
		t.Fatalf("TraceFromContext = %+v, want %+v", got, tc)
	}
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("TraceFromContext on a bare context must report absence")
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if id == "" {
			t.Fatal("empty trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestSpanCtxCarriesTrace(t *testing.T) {
	sink := &MemSink{}
	o := New(sink, nil)
	tc := TraceContext{TraceID: "trace-1", SpanID: "root-span"}
	ctx := ContextWithTrace(context.Background(), tc)

	sp := o.SpanCtx(ctx, "stage")
	sp.End()

	evs := sink.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != "trace-1" {
		t.Errorf("TraceID = %q, want trace-1", ev.TraceID)
	}
	if ev.ParentID != "root-span" {
		t.Errorf("ParentID = %q, want root-span", ev.ParentID)
	}
	if ev.SpanID == "" || ev.SpanID == "root-span" {
		t.Errorf("SpanID = %q, want a fresh non-root ID", ev.SpanID)
	}
}

func TestSpanCtxWithoutTraceMatchesSpan(t *testing.T) {
	sink := &MemSink{}
	o := New(sink, nil)
	sp := o.SpanCtx(context.Background(), "stage")
	sp.End()
	ev := sink.Events()[0]
	if ev.TraceID != "" || ev.ParentID != "" {
		t.Errorf("untraced context must emit empty trace fields, got trace=%q parent=%q",
			ev.TraceID, ev.ParentID)
	}
}

func TestRequestSpanUsesContextIDs(t *testing.T) {
	sink := &MemSink{}
	o := New(sink, nil)
	tc := TraceContext{TraceID: "trace-9", SpanID: "root-9"}
	sp := o.RequestSpan("server.request", tc)
	sp.End()
	ev := sink.Events()[0]
	if ev.TraceID != "trace-9" || ev.SpanID != "root-9" || ev.ParentID != "" {
		t.Errorf("root span IDs = (%q, %q, parent %q), want (trace-9, root-9, empty)",
			ev.TraceID, ev.SpanID, ev.ParentID)
	}
}

func TestSpanCtxNilObs(t *testing.T) {
	var o *Obs
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: "t", SpanID: "s"})
	sp := o.SpanCtx(ctx, "stage")
	sp.AttrInt("n", 1)
	sp.End() // must not panic
	rp := o.RequestSpan("server.request", TraceContext{TraceID: "t", SpanID: "s"})
	rp.End()
}
