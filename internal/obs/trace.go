package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. An HTTP front end mints one TraceContext per
// request (TraceID plus the root span's SpanID), stores it in the
// request's context.Context, and every pipeline stage opened with
// Obs.SpanCtx stamps the emitted Event with that identity — so a
// request's complete span tree is greppable from one JSONL trace file
// by its TraceID (which the server also echoes as X-Request-Id).
//
// The disabled contract is unchanged: on a nil *Obs, SpanCtx returns
// the inert zero Span without reading the context, the clock, or
// allocating, so instrumented code stays free when observability is
// off (BenchmarkDisabledSpanCtx pins 0 B/op).

// TraceContext is the request identity carried through context.Context:
// the request's TraceID and the SpanID of the currently enclosing span
// (the parent for any span opened under this context).
type TraceContext struct {
	TraceID string
	SpanID  string
}

// traceKey is the private context key for TraceContext values.
type traceKey struct{}

// ContextWithTrace returns a context carrying tc. Spans opened from it
// via Obs.SpanCtx inherit tc.TraceID and record tc.SpanID as parent.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFromContext extracts the trace context stored by
// ContextWithTrace, reporting whether one was present.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey{}).(TraceContext)
	return tc, ok
}

// spanCtr backs NewSpanID: a process-wide monotone counter keeps span
// IDs unique without per-span entropy reads.
var spanCtr atomic.Uint64

// NewTraceID mints a 64-bit random trace ID as 16 lowercase hex
// characters. Entropy failure (never observed on supported platforms)
// falls back to the span counter so a request is still traceable.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", spanCtr.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a process-unique span ID as 16 lowercase hex
// characters.
func NewSpanID() string {
	return fmt.Sprintf("%016x", spanCtr.Add(1))
}

// SpanCtx opens a stage span inheriting the request identity stored in
// ctx (if any): the span's Event carries the context's TraceID, a fresh
// SpanID, and the context's SpanID as parent. On a nil receiver it
// returns an inert Span without touching ctx or the clock — the
// disabled path stays free.
func (o *Obs) SpanCtx(ctx context.Context, stage string) Span {
	if o == nil {
		return Span{}
	}
	sp := Span{o: o, stage: stage, start: time.Now(), spanID: NewSpanID()}
	if tc, ok := TraceFromContext(ctx); ok {
		sp.traceID = tc.TraceID
		sp.parent = tc.SpanID
	}
	return sp
}

// RequestSpan opens the root span of a request trace: the span adopts
// tc's TraceID and SpanID verbatim with no parent, so child spans
// opened from a context carrying tc point back at it. Safe on a nil
// receiver.
func (o *Obs) RequestSpan(stage string, tc TraceContext) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, stage: stage, start: time.Now(), traceID: tc.TraceID, spanID: tc.SpanID}
}
