package obs

import (
	"context"
	"io"
	"testing"
	"time"
)

// BenchmarkDisabledSpan measures the disabled path that every pipeline
// stage pays by default: it must report 0 B/op (see `make obs-check`).
func BenchmarkDisabledSpan(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Span("asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}

// BenchmarkDisabledSpanCtx is the trace-aware variant of the disabled
// path: even with a trace-laden context the nil receiver must stay at
// 0 B/op, because every pipeline stage now threads a context through.
func BenchmarkDisabledSpanCtx(b *testing.B) {
	var o *Obs
	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: "bench-trace", SpanID: "bench-span",
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := o.SpanCtx(ctx, "asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}

// BenchmarkEnabledSpan is the enabled-path comparator: a span with two
// attributes into an in-memory registry (no sink).
func BenchmarkEnabledSpan(b *testing.B) {
	o := New(nil, NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Span("asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}

// BenchmarkEnabledSpanCtx measures the traced enabled path the server
// request loop pays: trace extraction plus span-ID minting per span.
func BenchmarkEnabledSpanCtx(b *testing.B) {
	o := New(nil, NewRegistry())
	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: "bench-trace", SpanID: "bench-span",
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := o.SpanCtx(ctx, "asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}

// BenchmarkPromExposition measures a full Prometheus text render of a
// moderately populated snapshot — the recurring cost a scraper imposes.
func BenchmarkPromExposition(b *testing.B) {
	reg := NewRegistry()
	for i, name := range []string{
		"server.requests.admitted", "server.requests.rejected",
		"asp.detections", "chirp.stream.emitted",
	} {
		reg.Add(name, uint64(i+1)*17)
	}
	reg.Gauge("server.queue.depth").Set(3)
	reg.Gauge("server.sessions.live").Set(5)
	for _, name := range []string{
		"server.request.duration", "span.asp", "span.msp", "span.pde",
		"span.ttl", "span.locate2d",
	} {
		for i := 1; i <= 64; i++ {
			reg.ObserveDur(name, time.Duration(i)*time.Millisecond)
		}
	}
	snap := reg.Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WritePrometheus(io.Discard, snap, "hyperear")
	}
}
