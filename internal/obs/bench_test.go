package obs

import "testing"

// BenchmarkDisabledSpan measures the disabled path that every pipeline
// stage pays by default: it must report 0 B/op (see `make obs-check`).
func BenchmarkDisabledSpan(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Span("asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}

// BenchmarkEnabledSpan is the enabled-path comparator: a span with two
// attributes into an in-memory registry (no sink).
func BenchmarkEnabledSpan(b *testing.B) {
	o := New(nil, NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Span("asp")
		sp.Attr("v", 1.5)
		sp.AttrInt("n", i)
		sp.End()
		o.Inc("c")
		o.Observe("h", 0.5)
	}
}
