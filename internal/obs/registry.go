package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBounds are the magnitude buckets used when a histogram is first
// observed without explicit bounds — a 1/3/10 ladder spanning the
// pipeline's physical quantities (drift slopes in m/s², displacements in
// meters).
var DefaultBounds = []float64{1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// DurationBounds are the span-duration buckets in seconds (1 µs … 10 s,
// decade steps).
var DurationBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Registry holds named atomic counters and histograms. All methods are
// safe for concurrent use; reads on the hot path take only an RLock on
// the name table plus atomic ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Uint64
	hists    map[string]*Histogram
	gauges   map[string]*Gauge

	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomic.Uint64),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*Gauge),
	}
}

// counter returns the named counter, creating it on first use.
func (r *Registry) counter(name string) *atomic.Uint64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(atomic.Uint64)
		r.counters[name] = c
	}
	return c
}

// Add adds n to the named counter.
func (r *Registry) Add(name string, n uint64) { r.counter(name).Add(n) }

// Inc adds 1 to the named counter.
func (r *Registry) Inc(name string) { r.counter(name).Add(1) }

// Get returns the named counter's current value (0 if never touched).
func (r *Registry) Get(name string) uint64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Gauge returns the named gauge, creating it on first use. Unlike
// counters, gauges are signed point-in-time levels (queue depth, live
// sessions) and track their own high-watermark.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Gauge is a signed point-in-time level with a monotone high-watermark,
// safe for concurrent use. A nil *Gauge is a valid receiver: every method
// is a no-op (reads return 0), mirroring the package's nil-disabled
// convention.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bump(v)
}

// Add adjusts the level by d (negative to decrement) and returns the new
// level.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(d)
	g.bump(v)
	return v
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the highest level ever observed (never below 0: the
// watermark starts at the zero level).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

func (g *Gauge) bump(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Hist returns the named histogram, creating it with the given bounds on
// first use (bounds must be sorted ascending; nil selects DefaultBounds).
// Bounds are fixed at creation; later calls ignore the argument.
func (r *Registry) Hist(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram (DefaultBounds on first
// use).
func (r *Registry) Observe(name string, v float64) {
	r.Hist(name, DefaultBounds).Observe(v)
}

// ObserveDur records a duration (in seconds) into the named histogram
// (DurationBounds on first use).
func (r *Registry) ObserveDur(name string, d time.Duration) {
	r.Hist(name, DurationBounds).Observe(d.Seconds())
}

// Histogram is a fixed-bucket histogram with atomic counters. Bucket i
// counts observations v <= Bounds[i]; the final implicit bucket counts
// overflows.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the p-quantile (p in [0,1], clamped) with linear
// interpolation inside the straddling bucket, the same estimator
// Prometheus's histogram_quantile uses: observations are assumed
// uniform within a bucket, the lowest bucket's lower edge is 0 (the
// registry's histograms hold non-negative durations and magnitudes),
// and a quantile landing in the overflow bucket reports the highest
// finite bound — the histogram cannot resolve beyond it. Returns 0 on
// an empty snapshot.
func (h HistSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		hi := h.Bounds[i]
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		} else if hi < 0 {
			lo = hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// CDF estimates the fraction of observations at or below v, with the
// same within-bucket uniformity assumption as Quantile. Returns 0 on an
// empty snapshot; 1 when v is at or above the highest finite bound's
// bucket (the overflow bucket's upper edge is unknowable, so any v past
// the last bound counts all of it).
func (h HistSnapshot) CDF(v float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	var below float64
	for i := range h.Bounds {
		hi := h.Bounds[i]
		c := float64(h.Counts[i])
		if v >= hi {
			below += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		} else if hi < 0 {
			lo = hi
		}
		if v > lo && hi > lo {
			below += c * (v - lo) / (hi - lo)
		}
		return below / float64(h.Count)
	}
	// v at or above every bound: the overflow bucket counts wholly.
	below += float64(h.Counts[len(h.Counts)-1])
	return below / float64(h.Count)
}

// Sub returns the observations recorded between old and h (two
// cumulative snapshots of the same histogram, h the later one): the
// windowed delta behind rolling quantiles. Mismatched bounds or a
// counter reset (old ahead of h) return h unchanged — the window
// restarts rather than reporting negative counts. Sum differences are
// floored at 0 against concurrent-update skew.
func (h HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	if len(old.Bounds) != len(h.Bounds) || len(old.Counts) != len(h.Counts) || old.Count > h.Count {
		return h
	}
	for i := range h.Bounds {
		//hyperearvet:allow floatguard exact compare of bucket bounds copied verbatim from the same fixed-at-creation histogram
		if h.Bounds[i] != old.Bounds[i] {
			return h
		}
	}
	d := HistSnapshot{
		Count:  h.Count - old.Count,
		Sum:    h.Sum - old.Sum,
		Bounds: h.Bounds,
		Counts: make([]uint64, len(h.Counts)),
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	for i := range h.Counts {
		if h.Counts[i] >= old.Counts[i] {
			d.Counts[i] = h.Counts[i] - old.Counts[i]
		}
	}
	return d
}

// GaugeSnapshot is a point-in-time copy of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding (it is what the expvar export publishes).
type Snapshot struct {
	Counters   map[string]uint64        `json:"counters"`
	Histograms map[string]HistSnapshot  `json:"histograms"`
	Gauges     map[string]GaugeSnapshot `json:"gauges,omitempty"`
}

// OnSnapshot registers f to run at the start of every Snapshot call —
// the hook for metrics that are levels refreshed on read rather than
// incremented per event (the server's batch-coalescing gauges). Hooks
// run before the registry lock is taken, so they may Set gauges and
// Add counters; they must not call Snapshot themselves. Every snapshot
// consumer (HTTP /metrics, expvar, direct Snapshot callers) sees the
// refreshed values, so all readers agree.
func (r *Registry) OnSnapshot(f func()) {
	r.hookMu.Lock()
	r.hooks = append(r.hooks, f)
	r.hookMu.Unlock()
}

// Snapshot copies every counter, histogram, and gauge, after running
// the OnSnapshot refresh hooks.
func (r *Registry) Snapshot() Snapshot {
	r.hookMu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Count:  h.n.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// SumPrefix totals every counter whose name starts with prefix.
func (s Snapshot) SumPrefix(prefix string) uint64 {
	var total uint64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// String renders the snapshot as a sorted human-readable table: one line
// per counter, then one summary line per histogram.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-44s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "%-44s %d (max %d)\n", name, g.Value, g.Max)
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-44s n=%d mean=%.6g sum=%.6g\n", name, h.Count, h.Mean(), h.Sum)
	}
	return b.String()
}
