package obs

import (
	"testing"
	"time"
)

func TestHistSnapshotQuantile(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h HistSnapshot
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty Quantile = %v, want 0", got)
		}
	})
	t.Run("single bucket interpolation", func(t *testing.T) {
		// 10 observations all landing in the (0, 1] bucket: the p50
		// interpolates to the bucket midpoint, p100 to its upper edge.
		h := HistSnapshot{
			Count:  10,
			Bounds: []float64{1, 2},
			Counts: []uint64{10, 0, 0},
		}
		if got := h.Quantile(0.5); !approx(got, 0.5, 1e-12) {
			t.Errorf("p50 = %v, want 0.5", got)
		}
		if got := h.Quantile(1); !approx(got, 1, 1e-12) {
			t.Errorf("p100 = %v, want 1", got)
		}
	})
	t.Run("within-bucket linear", func(t *testing.T) {
		// 4 in (0,1], 4 in (1,2]: p75 is halfway into the second bucket.
		h := HistSnapshot{
			Count:  8,
			Bounds: []float64{1, 2},
			Counts: []uint64{4, 4, 0},
		}
		if got := h.Quantile(0.75); !approx(got, 1.5, 1e-12) {
			t.Errorf("p75 = %v, want 1.5", got)
		}
	})
	t.Run("overflow bucket clamps", func(t *testing.T) {
		h := HistSnapshot{
			Count:  10,
			Bounds: []float64{1, 2},
			Counts: []uint64{0, 0, 10},
		}
		if got := h.Quantile(0.99); !approx(got, 2, 1e-12) {
			t.Errorf("overflow p99 = %v, want highest bound 2", got)
		}
	})
	t.Run("clamps p", func(t *testing.T) {
		h := HistSnapshot{Count: 4, Bounds: []float64{1}, Counts: []uint64{4, 0}}
		if got := h.Quantile(-1); got < 0 || got > 1 {
			t.Errorf("Quantile(-1) = %v out of range", got)
		}
		if got := h.Quantile(2); !approx(got, 1, 1e-12) {
			t.Errorf("Quantile(2) = %v, want 1", got)
		}
	})
}

func TestHistSnapshotCDF(t *testing.T) {
	h := HistSnapshot{
		Count:  8,
		Bounds: []float64{1, 2},
		Counts: []uint64{4, 4, 0},
	}
	if got := h.CDF(1); !approx(got, 0.5, 1e-12) {
		t.Errorf("CDF(1) = %v, want 0.5", got)
	}
	if got := h.CDF(1.5); !approx(got, 0.75, 1e-12) {
		t.Errorf("CDF(1.5) = %v, want 0.75", got)
	}
	if got := h.CDF(5); !approx(got, 1, 1e-12) {
		t.Errorf("CDF(5) = %v, want 1", got)
	}
	var empty HistSnapshot
	if got := empty.CDF(1); got != 0 {
		t.Errorf("empty CDF = %v, want 0", got)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	old := HistSnapshot{Count: 3, Sum: 3, Bounds: []float64{1, 2}, Counts: []uint64{2, 1, 0}}
	cur := HistSnapshot{Count: 8, Sum: 11, Bounds: []float64{1, 2}, Counts: []uint64{4, 3, 1}}
	d := cur.Sub(old)
	if d.Count != 5 || !approx(d.Sum, 8, 1e-12) {
		t.Errorf("delta count/sum = %d/%v, want 5/8", d.Count, d.Sum)
	}
	want := []uint64{2, 2, 1}
	for i, c := range d.Counts {
		if c != want[i] {
			t.Errorf("delta bucket %d = %d, want %d", i, c, want[i])
		}
	}
	// Counter reset (old ahead): the window restarts from cur.
	reset := cur.Sub(HistSnapshot{Count: 99, Bounds: []float64{1, 2}, Counts: []uint64{99, 0, 0}})
	if reset.Count != cur.Count {
		t.Errorf("reset delta count = %d, want cur's %d", reset.Count, cur.Count)
	}
	// Mismatched bounds: likewise.
	mis := cur.Sub(HistSnapshot{Count: 1, Bounds: []float64{5, 6}, Counts: []uint64{1, 0, 0}})
	if mis.Count != cur.Count {
		t.Errorf("mismatched-bounds delta count = %d, want cur's %d", mis.Count, cur.Count)
	}
}

func TestWindowRolling(t *testing.T) {
	reg := NewRegistry()
	start := time.Unix(1000, 0)
	w := NewWindow(reg, time.Minute, 15*time.Second, start, "server.request.duration", "span.*")
	if w == nil {
		t.Fatal("NewWindow returned nil for a live registry")
	}
	if w.Span() != time.Minute {
		t.Errorf("Span = %v, want 1m", w.Span())
	}

	reg.ObserveDur("server.request.duration", 100*time.Millisecond)
	reg.ObserveDur("span.asp", 10*time.Millisecond)
	reg.ObserveDur("ignored.histogram", time.Millisecond)

	// Before any periodic tick, the base is the priming capture at
	// birth: observations landing in the first interval are visible.
	now := start.Add(5 * time.Second)
	rolling, win := w.Rolling(now)
	if win != 5*time.Second {
		t.Errorf("pre-tick window = %v, want 5s (since birth)", win)
	}
	if rolling["server.request.duration"].Count != 1 {
		t.Errorf("pre-tick count = %d, want 1", rolling["server.request.duration"].Count)
	}
	if _, ok := rolling["ignored.histogram"]; ok {
		t.Error("untracked histogram leaked into the window")
	}

	// Once the ring wraps past the birth capture, earlier observations
	// age out and only the delta since the oldest retained tick remains.
	// Ring = span/tick+1 = 5 slots; birth took one, so five more ticks
	// push it out.
	for i := 1; i <= 5; i++ {
		w.Tick(start.Add(time.Duration(i) * 15 * time.Second))
	}
	reg.ObserveDur("server.request.duration", 200*time.Millisecond)
	reg.ObserveDur("server.request.duration", 300*time.Millisecond)
	reg.ObserveDur("span.asp", 20*time.Millisecond)
	now = start.Add(75 * time.Second)
	rolling, win = w.Rolling(now)
	if win != time.Minute {
		t.Errorf("window = %v, want 1m (now - oldest retained tick)", win)
	}
	if got := rolling["server.request.duration"].Count; got != 2 {
		t.Errorf("windowed request count = %d, want 2 (birth-interval observation aged out)", got)
	}
	if got := rolling["span.asp"].Count; got != 1 {
		t.Errorf("windowed span.asp count = %d, want 1", got)
	}

	// Histogram born inside the window comes through whole.
	reg.ObserveDur("span.msp", 5*time.Millisecond)
	rolling, _ = w.Rolling(now)
	if got := rolling["span.msp"].Count; got != 1 {
		t.Errorf("newborn histogram count = %d, want 1", got)
	}
}

// TestWindowRingEviction checks that old captures age out: after the
// ring wraps, the base slot is the oldest retained tick, not the first
// ever.
func TestWindowRingEviction(t *testing.T) {
	reg := NewRegistry()
	tick := 10 * time.Second
	now := time.Unix(2000, 0)
	w := NewWindow(reg, 30*time.Second, tick, now, "h")
	for i := 0; i < 10; i++ {
		reg.Observe("h", 1)
		w.Tick(now)
		now = now.Add(tick)
	}
	// 10 observations total, ring holds span/tick+1 = 4 slots: the
	// base capture saw 7 of them, so the window holds the last 3 plus
	// anything after the final tick.
	rolling, win := w.Rolling(now)
	if got := rolling["h"].Count; got != 3 {
		t.Errorf("windowed count = %d, want 3", got)
	}
	if want := 4 * tick; win != want {
		t.Errorf("window = %v, want %v", win, want)
	}
}

func TestWindowNil(t *testing.T) {
	var w *Window
	w.Tick(time.Now())
	if m, win := w.Rolling(time.Now()); m != nil || win != 0 {
		t.Error("nil window must report nothing")
	}
	if w.Span() != 0 {
		t.Error("nil window Span must be 0")
	}
	if NewWindow(nil, time.Minute, time.Second, time.Unix(0, 0)) != nil {
		t.Error("NewWindow(nil registry) must return the nil no-op window")
	}
	if NewWindow(NewRegistry(), 0, time.Second, time.Unix(0, 0)) != nil {
		t.Error("NewWindow with zero span must return nil")
	}
}

// approx reports |got-want| <= tol, the float comparison idiom the
// analyzer suite allows.
func approx(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
