package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue.depth")
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatalf("fresh gauge = %d/%d, want 0/0", g.Value(), g.Max())
	}
	if got := g.Add(3); got != 3 {
		t.Fatalf("Add(3) = %d, want 3", got)
	}
	g.Add(-2)
	if g.Value() != 1 {
		t.Fatalf("after +3-2: %d, want 1", g.Value())
	}
	if g.Max() != 3 {
		t.Fatalf("max = %d, want 3", g.Max())
	}
	g.Set(-5)
	if g.Value() != -5 || g.Max() != 3 {
		t.Fatalf("after Set(-5): %d/%d, want -5/3", g.Value(), g.Max())
	}
	if r.Gauge("queue.depth") != g {
		t.Fatal("same name must return the same gauge")
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Set(7)
	if g.Add(1) != 0 || g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge methods must be no-ops")
	}
	var o *Obs
	if o.Gauge("x") != nil {
		t.Fatal("nil Obs must return a nil gauge")
	}
	o.Gauge("x").Add(1) // must not panic
}

// TestGaugeConcurrent drives one gauge from many goroutines and checks
// the level and high-watermark stay consistent; run under -race via the
// obs-check gate's Concurrent pattern.
func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("balanced adds left level %d, want 0", g.Value())
	}
	if m := g.Max(); m < 1 || m > workers {
		t.Fatalf("max %d outside [1,%d]", m, workers)
	}
}

func TestSnapshotIncludesGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("sessions.active").Add(4)
	r.Gauge("sessions.active").Add(-1)
	snap := r.Snapshot()
	gs, ok := snap.Gauges["sessions.active"]
	if !ok {
		t.Fatal("snapshot missing gauge")
	}
	if gs.Value != 3 || gs.Max != 4 {
		t.Fatalf("snapshot gauge = %+v, want value 3 max 4", gs)
	}
	if !strings.Contains(snap.String(), "sessions.active") {
		t.Fatal("String() must render gauges")
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"sessions.active"`) {
		t.Fatalf("JSON snapshot missing gauge: %s", raw)
	}
}
