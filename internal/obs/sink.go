package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per completed span to an io.Writer —
// the trace format behind the CLIs' -trace flag. A mutex serializes
// concurrent emits (pipeline stages end spans from worker goroutines);
// the caller owns the writer and closes it after the run.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps a writer. Encoding errors are sticky and readable
// via Err — a trace is diagnostics, so a failed write must not abort the
// localization it was observing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemSink collects events in memory for tests.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Stages returns the emitted stage names in emission order.
func (s *MemSink) Stages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.events))
	for i, e := range s.events {
		out[i] = e.Stage
	}
	return out
}
