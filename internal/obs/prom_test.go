package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSnapshot builds a registry with one of everything and returns its
// snapshot.
func promSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Add("server.requests.admitted", 7)
	reg.Add("asp.detections", 123)
	reg.Gauge("server.queue.depth").Set(3)
	reg.Gauge("server.queue.depth").Set(1)
	reg.ObserveDur("span.asp", 2*time.Millisecond)
	reg.ObserveDur("span.asp", 40*time.Millisecond)
	reg.ObserveDur("server.request.duration", 120*time.Millisecond)
	return reg.Snapshot()
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests.admitted": "server_requests_admitted",
		"span.chirp.stream.push":   "span_chirp_stream_push",
		"already_ok:name":          "already_ok:name",
		"0weird":                   "_0weird",
		"dash-ed":                  "dash_ed",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusGrammar checks every emitted line against the text
// exposition line grammar: either a `# TYPE <name> <kind>` comment or a
// `<series> <number>` sample whose series is a metric name with an
// optional single-label set.
func TestPrometheusGrammar(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, promSnapshot(), "hyperear")
	checkPromGrammar(t, b.String())
}

func TestRuntimeMetricsGrammar(t *testing.T) {
	var b strings.Builder
	WriteRuntimeMetrics(&b, "hyperear")
	out := b.String()
	checkPromGrammar(t, out)
	if !strings.Contains(out, "hyperear_go_goroutines") {
		t.Error("runtime exposition missing goroutine gauge")
	}
	if !strings.Contains(out, "hyperear_go_heap_objects_bytes") {
		t.Error("runtime exposition missing heap gauge")
	}
}

func checkPromGrammar(t *testing.T, out string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	for _, line := range lines {
		if line == "" {
			t.Error("empty line in exposition")
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Errorf("unknown TYPE %q in %q", fields[3], line)
			}
			continue
		}
		// Sample line: <name>[{label="value"}] <float>
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line %q has no value", line)
			continue
		}
		series, val := line[:sp], line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("sample %q: bad value %q", line, val)
			}
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("series %q: unterminated label set", series)
			}
			name = series[:i]
			labels := series[i+1 : len(series)-1]
			eq := strings.IndexByte(labels, '=')
			if eq <= 0 {
				t.Errorf("series %q: malformed label %q", series, labels)
				continue
			}
			lv := labels[eq+1:]
			if len(lv) < 2 || lv[0] != '"' || lv[len(lv)-1] != '"' {
				t.Errorf("series %q: label value %q not quoted", series, lv)
			}
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				t.Errorf("metric name %q: invalid char %q", name, c)
				break
			}
		}
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	snap := promSnapshot()
	var a, b strings.Builder
	WritePrometheus(&a, snap, "hyperear")
	WritePrometheus(&b, snap, "hyperear")
	if a.String() != b.String() {
		t.Error("identical snapshots encoded differently")
	}
}

func TestPrometheusContent(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, promSnapshot(), "hyperear")
	out := b.String()
	for _, want := range []string{
		"# TYPE hyperear_server_requests_admitted_total counter\n",
		"hyperear_server_requests_admitted_total 7\n",
		"hyperear_server_queue_depth 1\n",
		"hyperear_server_queue_depth_max 3\n",
		"# TYPE hyperear_span_asp histogram\n",
		"hyperear_span_asp_bucket{le=\"+Inf\"} 2\n",
		"hyperear_span_asp_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestPrometheusBucketsCumulative checks the le buckets are cumulative
// and monotone, ending at the +Inf bucket equal to _count.
func TestPrometheusBucketsCumulative(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, promSnapshot(), "hyperear")
	var prev uint64
	var sawInf bool
	var count uint64
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "hyperear_span_asp_bucket{") {
			sp := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseUint(line[sp+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not monotone at %q", line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
			}
		}
		if strings.HasPrefix(line, "hyperear_span_asp_count ") {
			count, _ = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if !sawInf {
		t.Error("no +Inf bucket emitted")
	}
	if prev != count {
		t.Errorf("+Inf bucket %d != _count %d", prev, count)
	}
}

func TestQuantileSummary(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 100; i++ {
		reg.ObserveDur("span.x", 5*time.Millisecond)
	}
	h := reg.Snapshot().Histograms["span.x"]
	var b strings.Builder
	WriteQuantileSummary(&b, "hyperear_rolling_span_x", h)
	out := b.String()
	checkPromGrammar(t, out)
	for _, want := range []string{
		"# TYPE hyperear_rolling_span_x summary\n",
		"hyperear_rolling_span_x{quantile=\"0.5\"} ",
		"hyperear_rolling_span_x{quantile=\"0.95\"} ",
		"hyperear_rolling_span_x{quantile=\"0.99\"} ",
		"hyperear_rolling_span_x_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q\n%s", want, out)
		}
	}
}
