// Package obs is the pipeline's observability core: stage-scoped spans
// emitted to a pluggable Sink (JSONL trace files, in-memory test sinks),
// atomic reason-coded counters and fixed-bucket histograms collected in a
// Registry, and debug exports via expvar and net/http/pprof.
//
// The package is stdlib-only and designed around one invariant: the
// disabled path is free. A nil *Obs is a valid receiver for every method,
// performs no time lookups, takes no locks, and allocates nothing
// (TestDisabledPathZeroAlloc pins 0 allocs; BenchmarkDisabledSpan shows
// 0 B/op), so pipeline code calls the hooks unconditionally and the
// default configuration pays nothing.
//
// Typical wiring (see core.Config.Obs and the locate/replay/hyperearsim
// CLIs):
//
//	f, _ := os.Create("trace.jsonl")
//	reg := obs.NewRegistry()
//	o := obs.New(obs.NewJSONLSink(f), reg)
//	cfg.Obs = o                       // pipeline emits spans + counters
//	...
//	fmt.Print(reg.Snapshot().String()) // reason-coded tallies
package obs

import "time"

// Attr is one key/value annotation on a span event.
type Attr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// Event is one completed span as delivered to a Sink.
type Event struct {
	// Stage is the span's stage name ("asp", "ttl", "experiment.trial").
	Stage string `json:"stage"`
	// StartNS is the span start in Unix nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's wall-clock duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// TraceID ties the span to the request that caused it (see
	// TraceContext); empty when the span was opened outside any request
	// scope. Grep a JSONL trace for one TraceID to recover a request's
	// full span tree.
	TraceID string `json:"trace,omitempty"`
	// SpanID identifies this span within its trace.
	SpanID string `json:"span,omitempty"`
	// ParentID is the SpanID of the enclosing span (the request root for
	// pipeline stage spans); empty on root spans.
	ParentID string `json:"parent,omitempty"`
	// Attrs are the span's annotations in the order they were set.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Sink receives completed spans. Implementations must be safe for
// concurrent use: the pipeline ends spans from worker goroutines.
type Sink interface {
	Emit(Event)
}

// Obs bundles a trace sink and a metrics registry into the single hook
// the pipeline threads through its stages. Either half may be nil; a nil
// *Obs disables everything at zero cost.
type Obs struct {
	sink Sink
	reg  *Registry
}

// New builds an Obs from a sink and/or registry. If both are nil it
// returns nil, which keeps the caller on the free disabled path.
func New(sink Sink, reg *Registry) *Obs {
	if sink == nil && reg == nil {
		return nil
	}
	return &Obs{sink: sink, reg: reg}
}

// Registry returns the metrics registry, or nil when metrics are
// disabled. Safe on a nil receiver.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Span opens a stage span. On a nil receiver it returns an inert Span
// without reading the clock. End the span with Span.End; attributes set
// in between are attached to the emitted event.
func (o *Obs) Span(stage string) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, stage: stage, start: time.Now()}
}

// Inc adds 1 to the named counter. Safe on a nil receiver.
func (o *Obs) Inc(name string) { o.Add(name, 1) }

// Add adds n to the named counter. Safe on a nil receiver.
func (o *Obs) Add(name string, n uint64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.Add(name, n)
}

// Gauge returns the named gauge from the registry, or nil when metrics
// are disabled. A nil *Gauge is itself a safe no-op receiver, so callers
// chain unconditionally: o.Gauge("queue.depth").Add(1). Safe on a nil
// receiver.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil || o.reg == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Observe records v into the named histogram (created with DefaultBounds
// on first use). Safe on a nil receiver.
func (o *Obs) Observe(name string, v float64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.Observe(name, v)
}

// Span is one in-flight stage measurement. The zero value is inert:
// every method is a no-op, so disabled pipelines pay only a nil check.
type Span struct {
	o       *Obs
	stage   string
	start   time.Time
	traceID string
	spanID  string
	parent  string
	attrs   []Attr
}

// Attr attaches a numeric attribute. No-op on an inert span; the
// float64 parameter (rather than any) keeps the disabled call site free
// of interface boxing.
func (s *Span) Attr(key string, v float64) {
	if s.o == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// AttrInt attaches an integer attribute. No-op on an inert span.
func (s *Span) AttrInt(key string, v int) {
	if s.o == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// AttrStr attaches a string attribute. No-op on an inert span.
func (s *Span) AttrStr(key, v string) {
	if s.o == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// End closes the span, emitting it to the sink (if any) and recording
// its duration into the registry's "span.<stage>" histogram (if any).
// End is idempotent and a no-op on an inert span.
func (s *Span) End() {
	if s.o == nil {
		return
	}
	d := time.Since(s.start)
	if s.o.sink != nil {
		s.o.sink.Emit(Event{
			Stage:    s.stage,
			StartNS:  s.start.UnixNano(),
			DurNS:    d.Nanoseconds(),
			TraceID:  s.traceID,
			SpanID:   s.spanID,
			ParentID: s.parent,
			Attrs:    s.attrs,
		})
	}
	if s.o.reg != nil {
		s.o.reg.ObserveDur("span."+s.stage, d)
	}
	s.o = nil
}
