package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published maps expvar names to swappable registry holders. expvar
// forbids re-Publish of a name, so each name is published once with a
// Func that reads through the holder; publishing again under the same
// name just swaps the holder's registry (which keeps tests and repeated
// CLI runs in one process working).
var (
	pubMu     sync.Mutex
	published = map[string]*registryHolder{}
)

type registryHolder struct {
	mu  sync.Mutex
	reg *Registry
}

// PublishExpvar exposes the registry's live snapshot as the named expvar
// variable (visible at /debug/vars on any expvar-serving mux, including
// the one ServeDebug starts).
func (r *Registry) PublishExpvar(name string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if h, ok := published[name]; ok {
		h.mu.Lock()
		h.reg = r
		h.mu.Unlock()
		return
	}
	h := &registryHolder{reg: r}
	published[name] = h
	expvar.Publish(name, expvar.Func(func() any {
		h.mu.Lock()
		reg := h.reg
		h.mu.Unlock()
		return reg.Snapshot()
	}))
}

// ServeDebug starts an HTTP server on addr exposing the net/http/pprof
// profiles under /debug/pprof/ and expvar (including registries published
// with PublishExpvar) under /debug/vars. It returns the running server
// and its bound address (useful with ":0"); the caller closes the server.
// A dedicated mux — not http.DefaultServeMux — so importing this package
// never widens the attack surface of an application's own server.
func ServeDebug(addr string) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
