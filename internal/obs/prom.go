package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib-only. A
// Snapshot renders deterministically: counters as `<ns>_<name>_total`,
// gauges as `<ns>_<name>` plus a `<ns>_<name>_max` high-watermark, and
// histograms as the standard cumulative `_bucket{le=...}/_sum/_count`
// triplet. WriteRuntimeMetrics adds the Go runtime's own health signals
// (goroutines, heap, GC) sampled via runtime/metrics, and
// WriteQuantileSummary renders a windowed histogram delta as a summary
// (rolling p50/p95/p99). Names are sanitized by PromName; no escaping
// beyond that is needed because the only labels emitted are numeric
// `le` and `quantile` values.

// summaryQuantiles are the quantiles every summary exposition carries.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// PromName sanitizes a registry metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:], mapping every other rune
// (the registry's dots, dashes) to '_' and prefixing '_' when the name
// would start with a digit.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat renders a float the way Prometheus parsers expect,
// including the +Inf spelling for bucket bounds.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the given namespace prefix (e.g. "hyperear"). Output is
// sorted by metric name within each kind, so identical snapshots encode
// identically.
func WritePrometheus(w io.Writer, s Snapshot, namespace string) {
	for _, name := range sortedKeys(s.Counters) {
		m := namespace + "_" + PromName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		m := namespace + "_" + PromName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", m, m, g.Max)
	}
	for _, name := range sortedKeys(s.Histograms) {
		writeHistogram(w, namespace+"_"+PromName(name), s.Histograms[name])
	}
}

// writeHistogram renders one fixed-bucket histogram as the cumulative
// _bucket/_sum/_count triplet.
func writeHistogram(w io.Writer, m string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", m)
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, promFloat(bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", m, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
}

// WriteQuantileSummary renders a histogram delta (typically a rolling
// window from Window.Rolling) as a Prometheus summary: p50/p95/p99
// quantile samples plus _sum and _count. The quantiles carry the same
// within-bucket interpolation caveats as HistSnapshot.Quantile.
func WriteQuantileSummary(w io.Writer, m string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s summary\n", m)
	for _, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", m, promFloat(q), promFloat(h.Quantile(q)))
	}
	fmt.Fprintf(w, "%s_sum %s\n", m, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
}

// runtimeSamples are the runtime/metrics series the exposition carries:
// scheduler load, heap footprint, and GC behavior — the fleet-dashboard
// basics for spotting a leaking or thrashing worker.
var runtimeSamples = []struct {
	name   string // runtime/metrics key
	metric string // exposition suffix (namespace is prepended)
	kind   string // "gauge" or "counter"
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter"},
}

// gcPausesKey is the runtime histogram rendered as a pause-time summary.
const gcPausesKey = "/gc/pauses:seconds"

// WriteRuntimeMetrics samples the Go runtime via runtime/metrics and
// renders the result in exposition format under the namespace. Metrics
// the running toolchain does not provide are silently skipped, so the
// output degrades rather than breaks across Go versions.
func WriteRuntimeMetrics(w io.Writer, namespace string) {
	samples := make([]metrics.Sample, 0, len(runtimeSamples)+1)
	for _, rs := range runtimeSamples {
		samples = append(samples, metrics.Sample{Name: rs.name})
	}
	samples = append(samples, metrics.Sample{Name: gcPausesKey})
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		v := samples[i].Value
		if v.Kind() != metrics.KindUint64 {
			continue
		}
		m := namespace + "_" + rs.metric
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m, rs.kind, m, v.Uint64())
	}
	if v := samples[len(samples)-1].Value; v.Kind() == metrics.KindFloat64Histogram {
		writeRuntimeHistSummary(w, namespace+"_go_gc_pause_seconds", v.Float64Histogram())
	}
}

// writeRuntimeHistSummary renders a runtime/metrics Float64Histogram as
// quantile samples plus a count. Runtime bucket boundaries may be ±Inf
// at the edges; quantiles landing there clamp to the nearest finite
// boundary.
func writeRuntimeHistSummary(w io.Writer, m string, h *metrics.Float64Histogram) {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	fmt.Fprintf(w, "# TYPE %s summary\n", m)
	for _, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", m, promFloat(q), promFloat(runtimeHistQuantile(h, total, q)))
	}
	fmt.Fprintf(w, "%s_count %d\n", m, total)
}

// runtimeHistQuantile interpolates the q-quantile of a runtime
// histogram: bucket i spans [Buckets[i], Buckets[i+1]).
func runtimeHistQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		lo, hi = clampFinite(lo, hi)
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	_, hi := clampFinite(h.Buckets[len(h.Buckets)-2], h.Buckets[len(h.Buckets)-1])
	return hi
}

// clampFinite replaces infinite bucket edges by their finite partner so
// interpolation stays finite.
func clampFinite(lo, hi float64) (float64, float64) {
	if math.IsInf(lo, 0) && math.IsInf(hi, 0) {
		return 0, 0
	}
	if math.IsInf(lo, 0) {
		lo = hi
	}
	if math.IsInf(hi, 0) {
		hi = lo
	}
	return lo, hi
}
