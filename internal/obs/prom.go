package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4), stdlib-only. A
// Snapshot renders deterministically: counters as `<ns>_<name>_total`,
// gauges as `<ns>_<name>` plus a `<ns>_<name>_max` high-watermark, and
// histograms as the standard cumulative `_bucket{le=...}/_sum/_count`
// triplet. WriteRuntimeMetrics adds the Go runtime's own health signals
// (goroutines, heap, GC) sampled via runtime/metrics, and
// WriteQuantileSummary renders a windowed histogram delta as a summary
// (rolling p50/p95/p99). Names are sanitized by PromName; no escaping
// beyond that is needed because the only labels emitted are numeric
// `le` and `quantile` values.

// summaryQuantiles are the quantiles every summary exposition carries.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// PromName sanitizes a registry metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:], mapping every other rune
// (the registry's dots, dashes) to '_' and prefixing '_' when the name
// would start with a digit.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat renders a float the way Prometheus parsers expect,
// including the +Inf spelling for bucket bounds.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendPromName appends PromName(name) to dst without the
// strings.Builder round trip.
//
//hyperearvet:zeroalloc
func appendPromName(dst []byte, name string) []byte {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			dst = append(dst, '_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			dst = append(dst, '_')
		}
		dst = append(dst, byte(r))
	}
	return dst
}

// appendSortedKeys appends the map's keys to dst and sorts them, for
// deterministic output on reused scratch.
//
//hyperearvet:zeroalloc
func appendSortedKeys[V any](dst []string, m map[string]V) []string {
	for k := range m {
		dst = append(dst, k)
	}
	sort.Strings(dst)
	return dst
}

// promScratch is the pooled working set of one exposition render: the
// output buffer (one Write to the scraper per render), the sorted-key
// slice, and the sanitized-metric-name scratch. A scrape every 15 s was
// paying ~270 allocations in fmt boxing and string concatenation for
// output that is byte-for-byte identical between quiet scrapes.
type promScratch struct {
	buf  []byte
	keys []string
	name []byte
}

var promPool = sync.Pool{New: func() any { return new(promScratch) }}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the given namespace prefix (e.g. "hyperear"). Output is
// sorted by metric name within each kind, so identical snapshots encode
// identically.
//
//hyperearvet:zeroalloc
func WritePrometheus(w io.Writer, s Snapshot, namespace string) {
	sc := promPool.Get().(*promScratch)
	b, keys, name := sc.buf[:0], sc.keys[:0], sc.name

	keys = appendSortedKeys(keys, s.Counters)
	for _, k := range keys {
		name = append(name[:0], namespace...)
		name = append(name, '_')
		name = appendPromName(name, k)
		name = append(name, "_total"...)
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, " counter\n"...)
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, s.Counters[k], 10)
		b = append(b, '\n')
	}
	keys = appendSortedKeys(keys[:0], s.Gauges)
	for _, k := range keys {
		g := s.Gauges[k]
		name = append(name[:0], namespace...)
		name = append(name, '_')
		name = appendPromName(name, k)
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, " gauge\n"...)
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, g.Value, 10)
		b = append(b, '\n')
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, "_max gauge\n"...)
		b = append(b, name...)
		b = append(b, "_max "...)
		b = strconv.AppendInt(b, g.Max, 10)
		b = append(b, '\n')
	}
	keys = appendSortedKeys(keys[:0], s.Histograms)
	for _, k := range keys {
		name = append(name[:0], namespace...)
		name = append(name, '_')
		name = appendPromName(name, k)
		b = appendHistogram(b, name, s.Histograms[k])
	}
	w.Write(b)

	sc.buf, sc.keys, sc.name = b, keys, name
	promPool.Put(sc)
}

// appendHistogram renders one fixed-bucket histogram as the cumulative
// _bucket/_sum/_count triplet.
//
//hyperearvet:zeroalloc
func appendHistogram(b, name []byte, h HistSnapshot) []byte {
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, " histogram\n"...)
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = strconv.AppendFloat(b, bound, 'g', -1, 64)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendUint(b, h.Count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendFloat(b, h.Sum, 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendUint(b, h.Count, 10)
	b = append(b, '\n')
	return b
}

// WriteQuantileSummary renders a histogram delta (typically a rolling
// window from Window.Rolling) as a Prometheus summary: p50/p95/p99
// quantile samples plus _sum and _count. The quantiles carry the same
// within-bucket interpolation caveats as HistSnapshot.Quantile. It
// shares the pooled render scratch with WritePrometheus, so the /metrics
// summary section is allocation-free too.
//
//hyperearvet:zeroalloc
func WriteQuantileSummary(w io.Writer, m string, h HistSnapshot) {
	sc := promPool.Get().(*promScratch)
	b := sc.buf[:0]
	b = append(b, "# TYPE "...)
	b = append(b, m...)
	b = append(b, " summary\n"...)
	for _, q := range summaryQuantiles {
		b = append(b, m...)
		b = append(b, `{quantile="`...)
		b = strconv.AppendFloat(b, q, 'g', -1, 64)
		b = append(b, `"} `...)
		b = strconv.AppendFloat(b, h.Quantile(q), 'g', -1, 64)
		b = append(b, '\n')
	}
	b = append(b, m...)
	b = append(b, "_sum "...)
	b = strconv.AppendFloat(b, h.Sum, 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, m...)
	b = append(b, "_count "...)
	b = strconv.AppendUint(b, h.Count, 10)
	b = append(b, '\n')
	w.Write(b)
	sc.buf = b
	promPool.Put(sc)
}

// runtimeSamples are the runtime/metrics series the exposition carries:
// scheduler load, heap footprint, and GC behavior — the fleet-dashboard
// basics for spotting a leaking or thrashing worker.
var runtimeSamples = []struct {
	name   string // runtime/metrics key
	metric string // exposition suffix (namespace is prepended)
	kind   string // "gauge" or "counter"
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter"},
}

// gcPausesKey is the runtime histogram rendered as a pause-time summary.
const gcPausesKey = "/gc/pauses:seconds"

// WriteRuntimeMetrics samples the Go runtime via runtime/metrics and
// renders the result in exposition format under the namespace. Metrics
// the running toolchain does not provide are silently skipped, so the
// output degrades rather than breaks across Go versions.
func WriteRuntimeMetrics(w io.Writer, namespace string) {
	samples := make([]metrics.Sample, 0, len(runtimeSamples)+1)
	for _, rs := range runtimeSamples {
		samples = append(samples, metrics.Sample{Name: rs.name})
	}
	samples = append(samples, metrics.Sample{Name: gcPausesKey})
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		v := samples[i].Value
		if v.Kind() != metrics.KindUint64 {
			continue
		}
		m := namespace + "_" + rs.metric
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m, rs.kind, m, v.Uint64())
	}
	if v := samples[len(samples)-1].Value; v.Kind() == metrics.KindFloat64Histogram {
		writeRuntimeHistSummary(w, namespace+"_go_gc_pause_seconds", v.Float64Histogram())
	}
}

// writeRuntimeHistSummary renders a runtime/metrics Float64Histogram as
// quantile samples plus a count. Runtime bucket boundaries may be ±Inf
// at the edges; quantiles landing there clamp to the nearest finite
// boundary.
func writeRuntimeHistSummary(w io.Writer, m string, h *metrics.Float64Histogram) {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	fmt.Fprintf(w, "# TYPE %s summary\n", m)
	for _, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", m, promFloat(q), promFloat(runtimeHistQuantile(h, total, q)))
	}
	fmt.Fprintf(w, "%s_count %d\n", m, total)
}

// runtimeHistQuantile interpolates the q-quantile of a runtime
// histogram: bucket i spans [Buckets[i], Buckets[i+1]).
func runtimeHistQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		lo, hi = clampFinite(lo, hi)
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	_, hi := clampFinite(h.Buckets[len(h.Buckets)-2], h.Buckets[len(h.Buckets)-1])
	return hi
}

// clampFinite replaces infinite bucket edges by their finite partner so
// interpolation stays finite.
func clampFinite(lo, hi float64) (float64, float64) {
	if math.IsInf(lo, 0) && math.IsInf(hi, 0) {
		return 0, 0
	}
	if math.IsInf(lo, 0) {
		lo = hi
	}
	if math.IsInf(hi, 0) {
		hi = lo
	}
	return lo, hi
}
