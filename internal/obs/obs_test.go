package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestDisabledObsIsFree pins the package's core invariant: a nil *Obs
// (the default configuration) allocates nothing on any hook.
func TestDisabledObsIsFree(t *testing.T) {
	var o *Obs
	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: "t", SpanID: "s",
	})
	allocs := testing.AllocsPerRun(100, func() {
		sp := o.Span("asp")
		sp.Attr("dist", 7.25)
		sp.AttrInt("beacons", 3)
		sp.AttrStr("reason", "none")
		sp.End()
		csp := o.SpanCtx(ctx, "msp")
		csp.AttrInt("n", 1)
		csp.End()
		rsp := o.RequestSpan("server.request", TraceContext{TraceID: "t", SpanID: "s"})
		rsp.End()
		o.Inc("pipeline.slide.accepted")
		o.Add("asp.detections", 12)
		o.Observe("pde.drift", 0.003)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f times per run, want 0", allocs)
	}
	if o.Registry() != nil {
		t.Fatal("nil Obs should report a nil registry")
	}
}

func TestNewNilBothStaysNil(t *testing.T) {
	if o := New(nil, nil); o != nil {
		t.Fatalf("New(nil, nil) = %v, want nil", o)
	}
}

func TestSpanEmitsEventAndDuration(t *testing.T) {
	sink := &MemSink{}
	reg := NewRegistry()
	o := New(sink, reg)

	sp := o.Span("asp")
	sp.AttrInt("beacons", 3)
	sp.Attr("sfo_ppm", 19.5)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent: must not double-emit

	evs := sink.Events()
	if len(evs) != 1 {
		t.Fatalf("emitted %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Stage != "asp" {
		t.Fatalf("stage = %q", e.Stage)
	}
	if e.DurNS <= 0 {
		t.Fatalf("duration = %d ns, want > 0", e.DurNS)
	}
	if len(e.Attrs) != 2 || e.Attrs[0].Key != "beacons" || e.Attrs[1].Key != "sfo_ppm" {
		t.Fatalf("attrs = %+v", e.Attrs)
	}
	hs, ok := reg.Snapshot().Histograms["span.asp"]
	if !ok || hs.Count != 1 {
		t.Fatalf("span duration histogram = %+v, ok=%v", hs, ok)
	}
	if hs.Sum <= 0 {
		t.Fatalf("span duration sum = %g s, want > 0", hs.Sum)
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Inc("a")
	reg.Add("a", 4)
	reg.Add("b.x", 2)
	reg.Add("b.y", 3)
	reg.Observe("h", 0.02)
	reg.Observe("h", 5)
	reg.Observe("h", 1e6) // overflow bucket

	if got := reg.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := reg.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	s := reg.Snapshot()
	if got := s.SumPrefix("b."); got != 5 {
		t.Fatalf("SumPrefix(b.) = %d, want 5", got)
	}
	h := s.Histograms["h"]
	if h.Count != 3 {
		t.Fatalf("h count = %d, want 3", h.Count)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (counts %v)", h.Counts[len(h.Counts)-1], h.Counts)
	}
	wantSum := 0.02 + 5 + 1e6
	if h.Sum != wantSum {
		t.Fatalf("h sum = %g, want %g", h.Sum, wantSum)
	}
	if s.String() == "" {
		t.Fatal("snapshot table should not be empty")
	}
}

// TestConcurrentRegistry hammers counters, histograms, spans, and
// snapshots from many goroutines; `make obs-check` runs it under the
// race detector.
func TestConcurrentRegistry(t *testing.T) {
	sink := &MemSink{}
	reg := NewRegistry()
	o := New(sink, reg)

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				o.Inc("shared")
				o.Add(fmt.Sprintf("per.%d", w%3), 2)
				o.Observe("vals", float64(i)*1e-3)
				sp := o.Span("stage")
				sp.AttrInt("i", i)
				sp.End()
				if i%32 == 0 {
					_ = reg.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counters["shared"]; got != workers*iters {
		t.Fatalf("shared = %d, want %d", got, workers*iters)
	}
	if got := s.SumPrefix("per."); got != workers*iters*2 {
		t.Fatalf("per.* total = %d, want %d", got, workers*iters*2)
	}
	if got := s.Histograms["vals"].Count; got != workers*iters {
		t.Fatalf("vals count = %d, want %d", got, workers*iters)
	}
	if got := s.Histograms["span.stage"].Count; got != workers*iters {
		t.Fatalf("span.stage count = %d, want %d", got, workers*iters)
	}
	if got := len(sink.Events()); got != workers*iters {
		t.Fatalf("sink events = %d, want %d", got, workers*iters)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink, nil)
	for i := 0; i < 3; i++ {
		sp := o.Span("msp")
		sp.AttrInt("segments", i)
		sp.End()
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if e.Stage != "msp" || e.DurNS < 0 {
			t.Fatalf("line %d: %+v", lines, e)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("trace has %d lines, want 3", lines)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	sink.Emit(Event{Stage: "asp"})
	sink.Emit(Event{Stage: "msp"}) // must not panic or reset the error
	if err := sink.Err(); err == nil {
		t.Fatal("expected a sticky write error")
	}
}

// TestPublishExpvarRepublish verifies a name can be republished (expvar
// itself panics on duplicate Publish) and that the export follows the
// newest registry.
func TestPublishExpvarRepublish(t *testing.T) {
	r1 := NewRegistry()
	r1.Add("x", 1)
	r1.PublishExpvar("obs_test_registry")
	r2 := NewRegistry()
	r2.Add("x", 2)
	r2.PublishExpvar("obs_test_registry") // must not panic
	r2.PublishExpvar("obs_test_registry_other")
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Add("pipeline.slide.accepted", 4)
	reg.PublishExpvar("obs_test_serve")

	srv, addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	raw, ok := vars["obs_test_serve"]
	if !ok {
		t.Fatal("published registry missing from /debug/vars")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if snap.Counters["pipeline.slide.accepted"] != 4 {
		t.Fatalf("exported counters = %v", snap.Counters)
	}
}
