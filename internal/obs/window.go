package obs

import (
	"strings"
	"sync"
	"time"
)

// Window turns the registry's cumulative histograms into rolling ones:
// a ring of periodic snapshots, where the delta between the live
// histogram and the oldest retained snapshot is "what happened over the
// last N minutes" — the windowed p50/p95/p99 a latency SLO is stated
// over, which a monotone since-process-start histogram cannot answer.
//
// The caller drives time explicitly: Tick(now) captures one ring slot
// (the server's janitor calls it on its sweep interval; tests pass a
// synthetic clock), and Rolling(now) returns the per-name deltas plus
// the span of wall clock they actually cover. The ring is primed with
// a capture at the window's birth, so before it has wrapped the window
// is simply "since start", shorter than nominal — reported, never
// extrapolated.
//
// A nil *Window is a valid no-op receiver, mirroring the package's
// nil-disabled convention: a server without a registry skips windowing
// with no call-site branches.
type Window struct {
	reg  *Registry
	span time.Duration
	// track selects histograms by exact name, or by prefix for entries
	// ending in '*' ("span.*" tracks every stage-duration histogram,
	// including ones created after the window).
	track []string

	mu    sync.Mutex
	slots []windowSlot
	head  int // next slot to overwrite
	n     int // filled slots
}

// windowSlot is one captured cumulative state.
type windowSlot struct {
	at    time.Time
	hists map[string]HistSnapshot
}

// NewWindow builds a rolling window of the given nominal span over reg,
// assuming Tick is called roughly every tick. start is the window's
// birth time: the ring is primed with a capture of reg's current state
// at start, so observations landing before the first periodic Tick are
// still inside the window (without the priming capture, the first tick
// would become the base and silently swallow everything before it).
// track entries are histogram names; a trailing '*' makes an entry a
// prefix match. Returns nil (the no-op window) when reg is nil or the
// durations are non-positive.
func NewWindow(reg *Registry, span, tick time.Duration, start time.Time, track ...string) *Window {
	if reg == nil || span <= 0 || tick <= 0 {
		return nil
	}
	slots := int(span/tick) + 1
	if slots < 2 {
		slots = 2
	}
	w := &Window{reg: reg, span: span, track: track, slots: make([]windowSlot, slots)}
	w.Tick(start)
	return w
}

// Span returns the nominal window span (0 on a nil window).
func (w *Window) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.span
}

// tracked reports whether the histogram name matches the track list.
func (w *Window) tracked(name string) bool {
	for _, t := range w.track {
		if strings.HasSuffix(t, "*") {
			if strings.HasPrefix(name, t[:len(t)-1]) {
				return true
			}
		} else if name == t {
			return true
		}
	}
	return false
}

// capture copies the tracked histograms' cumulative state.
func (w *Window) capture() map[string]HistSnapshot {
	snap := w.reg.Snapshot()
	hists := make(map[string]HistSnapshot, len(snap.Histograms))
	for name, h := range snap.Histograms {
		if w.tracked(name) {
			hists[name] = h
		}
	}
	return hists
}

// Tick captures one ring slot at the given time. No-op on nil.
func (w *Window) Tick(now time.Time) {
	if w == nil {
		return
	}
	hists := w.capture()
	w.mu.Lock()
	w.slots[w.head] = windowSlot{at: now, hists: hists}
	w.head = (w.head + 1) % len(w.slots)
	if w.n < len(w.slots) {
		w.n++
	}
	w.mu.Unlock()
}

// Rolling returns, per tracked histogram, the observations recorded
// between the oldest retained capture (at latest the window's birth)
// and now, and the wall-clock span those deltas cover. Nil returns
// (nil, 0).
func (w *Window) Rolling(now time.Time) (map[string]HistSnapshot, time.Duration) {
	if w == nil {
		return nil, 0
	}
	current := w.capture()
	w.mu.Lock()
	var base windowSlot
	if w.n > 0 {
		oldest := (w.head - w.n + len(w.slots)) % len(w.slots)
		base = w.slots[oldest]
	}
	w.mu.Unlock()
	if base.hists == nil {
		return current, 0
	}
	out := make(map[string]HistSnapshot, len(current))
	for name, h := range current {
		if old, ok := base.hists[name]; ok {
			out[name] = h.Sub(old)
		} else {
			// Histogram born inside the window: everything it holds is
			// recent by definition.
			out[name] = h
		}
	}
	win := now.Sub(base.at)
	if win < 0 {
		win = 0
	}
	return out, win
}
